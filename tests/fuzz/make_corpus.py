"""Regenerate the checked-in fuzz corpus (``tests/fuzz/corpus/``).

Run from the repo root::

    PYTHONPATH=src python tests/fuzz/make_corpus.py

Every artifact is deterministic (fixed seeds, fixed schemas), so a
regeneration only changes the files when the wire format itself changes
— at which point the diff *is* the review artifact.

Corpus contents:

* ``announce.bin`` / ``record.bin`` — a valid format announcement and
  data message (X86 sender, the fuzz schema);
* ``meta.bin``        — the bare meta block (``to_meta_bytes``);
* ``meta_v1.bin``     — the same block without the fingerprint trailer;
* ``clean_v1.pbio`` / ``clean_v2.pbio`` — intact record files;
* ``damaged_v2.pbio`` — a v2 file with a CRC-corrupted middle record
  AND a torn tail (the fsck/recovery fixture: 3 written, 1 clean +
  1 recovered readable, repairable to 2);
* ``garbage_NN.bin``  — seeded random byte blobs;
* ``regress_*.bin``   — inputs that previously escaped the taxonomy,
  kept forever as regression tests.
"""

from __future__ import annotations

import io
import random
from pathlib import Path

from repro.abi import X86
from repro.core import IOContext
from repro.core.files import PbioFileWriter, file_to_buffer

try:  # runnable both as a module and as a script
    from .common import RECORD, SCHEMA
except ImportError:  # pragma: no cover
    import sys

    sys.path.insert(0, str(Path(__file__).parent))
    from common import RECORD, SCHEMA  # type: ignore[no-redef]

CORPUS = Path(__file__).parent / "corpus"


def build_damaged_v2() -> bytes:
    """Three records; corrupt the second's payload (CRC mismatch) and
    tear the third mid-frame, as a crash would."""
    buf = io.BytesIO()
    ctx = IOContext(X86)
    writer = PbioFileWriter(ctx, buf, version=2)
    handle = ctx.register_format(SCHEMA)
    offsets = []
    for i in range(3):
        offsets.append(buf.tell())
        writer.write(handle, {**RECORD, "i": i})
    blob = bytearray(buf.getvalue())
    # Flip a payload byte inside record #2 (offset + len-prefix + header).
    blob[offsets[1] + 4 + 16 + 3] ^= 0xFF
    # Tear the tail: drop the last 10 bytes of record #3's frame.
    return bytes(blob[:-10])


def main() -> None:
    CORPUS.mkdir(exist_ok=True)
    sender = IOContext(X86)
    handle = sender.register_format(SCHEMA)

    artifacts: dict[str, bytes] = {
        "announce.bin": sender.announce(handle),
        "record.bin": sender.encode(handle, RECORD),
        "meta.bin": handle.iofmt.to_meta_bytes(),
        "meta_v1.bin": handle.iofmt.to_meta_bytes()[:-20],
        "clean_v1.pbio": file_to_buffer(IOContext(X86), SCHEMA, [RECORD] * 2, version=1),
        "clean_v2.pbio": file_to_buffer(IOContext(X86), SCHEMA, [RECORD] * 2, version=2),
        "damaged_v2.pbio": build_damaged_v2(),
    }
    rng = random.Random("pbio-fuzz-corpus")
    for i in range(4):
        artifacts[f"garbage_{i:02d}.bin"] = bytes(
            rng.randrange(256) for _ in range(rng.randrange(8, 200))
        )

    for name, data in sorted(artifacts.items()):
        (CORPUS / name).write_bytes(data)
        print(f"wrote {name}: {len(data)} bytes")


if __name__ == "__main__":
    main()
