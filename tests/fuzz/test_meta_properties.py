"""Hypothesis properties for the format meta-information codec.

The central property (ISSUE 3 satellite): a *single-byte* mutation of a
valid meta block either fails to parse (PbioError) or parses to a format
that is semantically identical to the original — i.e. re-serializes to
the original canonical bytes.  The sha1 fingerprint trailer is what
makes this hold: every semantic field is covered by the digest, so the
only mutations that survive parsing are non-canonical encodings of the
same description (e.g. a flag byte of 2 instead of 1).
"""

from hypothesis import given, settings, strategies as st

from repro.abi import SPARC_V8, X86, X86_64, RecordSchema
from repro.core import IOContext, IOFormat, PbioError

from .common import SCHEMA

MACHINES = (X86, X86_64, SPARC_V8)

SCHEMAS = (
    SCHEMA,
    RecordSchema.from_pairs("pair", [("a", "int"), ("b", "double")]),
    RecordSchema.from_pairs("strs", [("tag", "string"), ("n", "int")]),
)


def canonical_meta(machine, schema) -> bytes:
    ctx = IOContext(machine)
    return ctx.register_format(schema).iofmt.to_meta_bytes()


@settings(max_examples=200, deadline=None)
@given(
    machine_i=st.integers(min_value=0, max_value=len(MACHINES) - 1),
    schema_i=st.integers(min_value=0, max_value=len(SCHEMAS) - 1),
    pos=st.integers(min_value=0, max_value=10_000),
    value=st.integers(min_value=0, max_value=255),
)
def test_single_byte_mutation_roundtrips_or_raises(machine_i, schema_i, pos, value):
    original = canonical_meta(MACHINES[machine_i], SCHEMAS[schema_i])
    mutated = bytearray(original)
    pos %= len(mutated)
    mutated[pos] = value
    try:
        fmt = IOFormat.from_meta_bytes(bytes(mutated))
    except PbioError:
        return
    assert fmt.to_meta_bytes() == original


@settings(max_examples=100, deadline=None)
@given(
    cut=st.integers(min_value=0, max_value=10_000),
    machine_i=st.integers(min_value=0, max_value=len(MACHINES) - 1),
)
def test_truncation_always_raises(cut, machine_i):
    original = canonical_meta(MACHINES[machine_i], SCHEMA)
    cut %= len(original)  # strictly shorter than the full block
    if cut == len(original) - 20:
        return  # stripping exactly the trailer leaves a legal v1 block
    try:
        IOFormat.from_meta_bytes(original[:cut])
    except PbioError:
        return
    raise AssertionError(f"truncation at {cut}/{len(original)} parsed silently")


@settings(max_examples=100, deadline=None)
@given(junk=st.binary(min_size=1, max_size=32))
def test_trailing_garbage_always_raises(junk):
    original = canonical_meta(X86, SCHEMA)
    try:
        IOFormat.from_meta_bytes(original + junk)
    except PbioError:
        return
    raise AssertionError("trailing garbage parsed silently")


def test_v1_trailerless_block_still_parses():
    """Compatibility: a meta block without the fingerprint trailer (as
    written by v1 files / the seed encoder) parses and re-fingerprints."""
    original = canonical_meta(X86, SCHEMA)
    v1_block = original[:-20]
    fmt = IOFormat.from_meta_bytes(v1_block)
    assert fmt.to_meta_bytes() == original
