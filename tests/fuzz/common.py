"""Shared machinery for the deterministic fuzz harness.

All randomness is drawn from ``random.Random`` instances seeded from
``PBIO_CHAOS_SEED`` (the same knob the chaos suite uses, default 0) plus
a per-test stream id — every run with the same seed replays the exact
same mutations, and the CI matrix explores three seeds.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext

CHAOS_SEED = int(os.environ.get("PBIO_CHAOS_SEED", "0"))

CORPUS_DIR = Path(__file__).parent / "corpus"

SCHEMA = RecordSchema.from_pairs(
    "fuzzed", [("i", "int"), ("d", "double[4]"), ("name", "char[8]")]
)

RECORD = {"i": 7, "d": (1.0, -2.0, 3.5, 0.0), "name": b"abc"}


def rng_for(stream: str) -> random.Random:
    """A deterministic generator for one named fuzz stream."""
    return random.Random(f"{CHAOS_SEED}:{stream}")


def sender_messages():
    """A sender context plus (announce, data message) for SCHEMA."""
    sender = IOContext(X86)
    handle = sender.register_format(SCHEMA)
    return sender.announce(handle), sender.encode(handle, RECORD)


def fresh_receiver() -> IOContext:
    receiver = IOContext(SPARC_V8)
    receiver.expect(SCHEMA)
    return receiver


def mutate(rng: random.Random, data: bytes) -> bytes:
    """One random structural mutation of ``data``.

    The operators cover the damage classes the decode frontend must
    survive: bit/byte corruption, truncation, garbage extension, length
    field inflation (multi-byte overwrites), and splicing.
    """
    buf = bytearray(data)
    op = rng.randrange(6)
    if op == 0 and buf:  # flip one byte
        i = rng.randrange(len(buf))
        buf[i] ^= 1 << rng.randrange(8)
    elif op == 1 and buf:  # overwrite one byte
        buf[rng.randrange(len(buf))] = rng.randrange(256)
    elif op == 2 and buf:  # truncate
        del buf[rng.randrange(len(buf)) :]
    elif op == 3:  # extend with garbage
        buf += bytes(rng.randrange(256) for _ in range(rng.randrange(1, 24)))
    elif op == 4 and len(buf) >= 4:  # smash a 2/4-byte window (length fields)
        width = rng.choice((2, 4))
        i = rng.randrange(len(buf) - width + 1)
        buf[i : i + width] = bytes(rng.randrange(256) for _ in range(width))
    elif len(buf) >= 2:  # splice: duplicate an internal span elsewhere
        a, b = sorted(rng.randrange(len(buf)) for _ in range(2))
        if a != b:
            i = rng.randrange(len(buf))
            buf[i : i + (b - a)] = buf[a:b]
    return bytes(buf)


def mutations(stream: str, data: bytes, count: int):
    """``count`` seeded mutations of ``data`` (1..3 operators stacked)."""
    rng = rng_for(stream)
    for _ in range(count):
        out = data
        for _ in range(rng.randrange(1, 4)):
            out = mutate(rng, out)
        yield out
