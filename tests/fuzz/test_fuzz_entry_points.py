"""Deterministic mutation fuzzing of every decode entry point.

The invariant under test (ISSUE 3 tentpole): feeding mutated or
arbitrary bytes into any PBIO ingress — meta parser, context receive,
the three decode forms, the file reader, RPC serving, relay forwarding —
either succeeds or raises an exception from the PBIO taxonomy.  A
``struct.error``, ``IndexError``, ``UnicodeDecodeError`` or unbounded
allocation escaping any of these is a bug.
"""

import io

import pytest

from repro.core import (
    DecodeLimits,
    IOContext,
    IOFormat,
    PbioError,
    RpcError,
    RpcInterface,
    RpcOperation,
    RpcServer,
)
from repro.core.files import PbioFileReader, file_to_buffer
from repro.abi import SPARC_V8, X86, RecordSchema
from repro.net import InMemoryPipe, Relay, TransportError

from .common import (
    RECORD,
    SCHEMA,
    fresh_receiver,
    mutate,
    mutations,
    rng_for,
    sender_messages,
)

N = 200  # mutations per entry point; fast (<1 s each) but broad


class TestMetaParser:
    def test_mutated_meta_only_raises_pbio_errors(self):
        announce, _ = sender_messages()
        meta = bytes(announce[16:])
        for blob in mutations("meta", meta, N):
            try:
                IOFormat.from_meta_bytes(blob)
            except PbioError:
                pass

    def test_random_bytes_only_raise_pbio_errors(self):
        rng = rng_for("meta-random")
        for _ in range(N):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 120)))
            try:
                IOFormat.from_meta_bytes(blob)
            except PbioError:
                pass


class TestContextReceive:
    def test_mutated_announce(self):
        announce, _ = sender_messages()
        for blob in mutations("announce", bytes(announce), N):
            receiver = fresh_receiver()
            try:
                receiver.receive(blob)
            except PbioError:
                pass

    def test_mutated_data_message(self):
        announce, message = sender_messages()
        receiver = fresh_receiver()
        receiver.receive(announce)
        for blob in mutations("data", bytes(message), N):
            try:
                receiver.receive(blob)
            except PbioError:
                pass

    def test_all_decode_forms(self):
        announce, message = sender_messages()
        receiver = fresh_receiver()
        receiver.receive(announce)
        decoders = (receiver.decode, receiver.decode_native, receiver.decode_view)
        for i, blob in enumerate(mutations("decode-forms", bytes(message), N)):
            try:
                decoders[i % 3](blob)
            except PbioError:
                pass


class TestFileReader:
    def _blob(self):
        return file_to_buffer(IOContext(X86), SCHEMA, [RECORD] * 3)

    def test_mutated_file_raise_policy(self):
        blob = self._blob()
        for mutated in mutations("file-raise", blob, N):
            ctx = fresh_receiver()
            try:
                list(PbioFileReader(ctx, io.BytesIO(mutated)))
            except PbioError:
                pass

    def test_mutated_file_skip_policy_never_raises_past_header(self):
        """With recover="skip", damage ends or thins iteration — it never
        raises once the file header was accepted."""
        blob = self._blob()
        for mutated in mutations("file-skip", blob, N):
            ctx = fresh_receiver()
            try:
                reader = PbioFileReader(ctx, io.BytesIO(mutated), recover="skip")
            except PbioError:
                continue  # damaged file header: rejected at open
            list(reader)  # must not raise


_REQ = RecordSchema.from_pairs("fz_req", [("x", "double")])
_REP = RecordSchema.from_pairs("fz_rep", [("y", "double")])
_IFACE = RpcInterface("Fuzz", [RpcOperation("echo", _REQ, _REP)])


class TestRpcServer:
    def test_mutated_frames_never_leak_stdlib_errors(self):
        """serve_one on a mutated frame stream: succeeds, or raises from
        the PBIO/RPC/transport taxonomies only."""
        from repro.core.rpc import _call_header

        header = _call_header(1, reply=False, fault=False, operation="echo", key=b"obj")
        client = IOContext(X86)
        handle = client.register_format(_REQ)
        frames = [
            bytes(client.announce(handle)),
            bytes(header),
            bytes(client.encode(handle, {"x": 2.0})),
        ]
        rng = rng_for("rpc")
        for case in range(N):
            server = RpcServer(SPARC_V8, _IFACE)
            server.register(b"obj", {"echo": lambda r: {"y": r["x"]}})
            pipe = InMemoryPipe()
            victim = rng.randrange(len(frames))
            for i, frame in enumerate(frames):
                blob = frame
                if i == victim:
                    for _ in range(rng.randrange(1, 4)):
                        blob = mutate(rng, blob)
                pipe.a.send(blob)
            try:
                server.serve_one(pipe.b)
            except (PbioError, RpcError, TransportError):
                pass


class TestRelay:
    def test_forward_never_raises(self):
        """The relay is an intermediary: damaged frames are dropped and
        counted, never raised into the pump loop."""
        announce, message = sender_messages()
        relay = Relay()
        downstream = InMemoryPipe()
        relay.attach(downstream.a)
        for blob in mutations("relay", bytes(announce) + bytes(message), N):
            relay.forward(blob)  # must not raise
        assert relay.metrics.value("relay.rejected") > 0


class TestResourceLimits:
    def test_oversized_message_rejected_before_decode(self):
        from repro.core import LimitError

        announce, message = sender_messages()
        receiver = IOContext(SPARC_V8, limits=DecodeLimits(max_message_size=64))
        receiver.expect(SCHEMA)
        with pytest.raises(LimitError):
            receiver.receive(bytes(message) + b"\0" * 128)

    def test_field_count_bomb_rejected(self):
        import struct

        # A meta block declaring 65535 fields backed by no data.
        bomb = b"PBFM" + b"\0\0" + struct.pack(">IH", 8, 1) + b"f" + struct.pack(">H", 0xFFFF)
        with pytest.raises(PbioError):
            IOFormat.from_meta_bytes(bomb)
