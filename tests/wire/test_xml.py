"""Tests for the XML baseline: SAX parser, encoder, decoder."""

import pytest

from repro.abi import SPARC_V8, X86, RecordSchema, codec_for, layout_record, records_equal
from repro.wire import WireFormatError, XmlWire
from repro.wire.xml import SaxParser, XmlEncoder, XmlParseError, escape_text, unescape


class Recorder:
    def __init__(self):
        self.events = []

    def start_element(self, name, attrs):
        self.events.append(("start", name, attrs))

    def characters(self, text):
        self.events.append(("chars", text))

    def end_element(self, name):
        self.events.append(("end", name))


def parse(doc):
    rec = Recorder()
    SaxParser(rec).parse(doc)
    return rec.events


class TestSaxParser:
    def test_simple_element(self):
        assert parse("<a>hi</a>") == [("start", "a", {}), ("chars", "hi"), ("end", "a")]

    def test_nested_elements(self):
        events = parse("<r><x>1</x><y>2</y></r>")
        names = [e[1] for e in events if e[0] == "start"]
        assert names == ["r", "x", "y"]

    def test_attributes(self):
        events = parse('<a x="1" y="two"/>')
        assert events[0] == ("start", "a", {"x": "1", "y": "two"})
        assert events[1] == ("end", "a")

    def test_single_quoted_attributes(self):
        events = parse("<a x='v'/>")
        assert events[0][2] == {"x": "v"}

    def test_entities_in_text(self):
        events = parse("<a>&lt;b&gt;&amp;&quot;&apos;</a>")
        assert events[1] == ("chars", "<b>&\"'")

    def test_numeric_character_references(self):
        events = parse("<a>&#65;&#x42;</a>")
        assert events[1] == ("chars", "AB")

    def test_comments_skipped(self):
        events = parse("<a><!-- nothing --><b>1</b></a>")
        assert ("start", "b", {}) in events

    def test_processing_instruction_skipped(self):
        events = parse('<?xml version="1.0"?><a>1</a>')
        assert events[0] == ("start", "a", {})

    def test_cdata_passes_raw_text(self):
        events = parse("<a><![CDATA[<raw>&amp;]]></a>")
        assert events[1] == ("chars", "<raw>&amp;")

    def test_doctype_skipped(self):
        events = parse("<!DOCTYPE rec><a>1</a>")
        assert events[0] == ("start", "a", {})

    def test_bytes_input_decoded_as_utf8(self):
        events = parse("<a>héllo</a>".encode("utf-8"))
        assert events[1] == ("chars", "héllo")

    def test_whitespace_between_elements(self):
        events = parse("<r>\n  <x>1</x>\n</r>")
        assert ("start", "x", {}) in events

    @pytest.mark.parametrize(
        "bad",
        [
            "<a><b></a></b>",  # mismatched nesting
            "<a>unclosed",
            "text outside <a>x</a>",
            "<a>x</a><b>y</b>",  # multiple roots
            "<a x=1></a>",  # unquoted attribute
            '<a x="1" x="2"></a>',  # duplicate attribute
            "<a>&bogus;</a>",  # unknown entity
            "<a><!-- unterminated </a>",
            "",  # no root
            "<1bad>x</1bad>",  # bad name start
        ],
    )
    def test_malformed_documents_rejected(self, bad):
        with pytest.raises(XmlParseError):
            parse(bad)

    def test_escape_unescape_inverse(self):
        text = 'a<b>&c"d\'e'
        assert unescape(escape_text(text)) == text


class TestXmlRecordFormat:
    def make(self, src_machine=X86, dst_machine=SPARC_V8, pairs=None, dst_pairs=None):
        pairs = pairs or [("i", "int"), ("d", "double"), ("name", "char[8]")]
        src = layout_record(RecordSchema.from_pairs("rec", pairs), src_machine)
        dst = layout_record(RecordSchema.from_pairs("rec", dst_pairs or pairs), dst_machine)
        return src, dst, XmlWire().bind(src, dst)

    def test_round_trip(self):
        src, dst, bound = self.make()
        rec = {"i": -42, "d": 3.141592653589793, "name": b"node1"}
        out = codec_for(dst).decode(bound.decode(bound.encode(codec_for(src).encode(rec))))
        assert records_equal(rec, out)

    def test_double_round_trip_precision_exact(self):
        # %.17g must reproduce doubles bit-exactly.
        src, dst, bound = self.make(pairs=[("d", "double")])
        rec = {"d": 0.1 + 0.2}
        out = codec_for(dst).decode(bound.decode(bound.encode(codec_for(src).encode(rec))))
        assert out["d"] == rec["d"]

    def test_wire_is_readable_text(self):
        src, dst, bound = self.make(pairs=[("i", "int")])
        wire = bound.encode(codec_for(src).encode({"i": 7}))
        assert b"<rec>" in wire and b"<i>7</i>" in wire

    def test_expansion_factor_on_binary_data(self):
        # Section 2: "an expansion factor of 6-8 is not unusual".
        import numpy as np

        pairs = [("v", "double[64]")]
        src, dst, bound = self.make(pairs=pairs)
        rng = np.random.default_rng(1)
        native = codec_for(src).encode({"v": rng.uniform(-1e3, 1e3, 64)})
        factor = len(bound.encode(native)) / len(native)
        assert 2.0 < factor < 10.0

    def test_field_name_matching_tolerates_reorder(self):
        src = layout_record(RecordSchema.from_pairs("rec", [("b", "int"), ("a", "int")]), X86)
        dst = layout_record(RecordSchema.from_pairs("rec", [("a", "int"), ("b", "int")]), X86)
        bound = XmlWire().bind(src, dst)
        out = codec_for(dst).decode(bound.decode(bound.encode(codec_for(src).encode({"a": 1, "b": 2}))))
        assert out == {"a": 1, "b": 2}

    def test_unexpected_field_ignored(self):
        src, dst, bound = self.make(
            pairs=[("extra", "int"), ("i", "int")], dst_pairs=[("i", "int")]
        )
        out = codec_for(dst).decode(bound.decode(bound.encode(codec_for(src).encode({"extra": 9, "i": 5}))))
        assert out == {"i": 5}

    def test_missing_field_zeroed(self):
        src, dst, bound = self.make(pairs=[("i", "int")], dst_pairs=[("i", "int"), ("j", "int")])
        out = codec_for(dst).decode(bound.decode(bound.encode(codec_for(src).encode({"i": 5}))))
        assert out == {"i": 5, "j": 0}

    def test_bool_field(self):
        src, dst, bound = self.make(pairs=[("ok", "bool")])
        wire = bound.encode(codec_for(src).encode({"ok": True}))
        assert b"true" in wire
        out = codec_for(dst).decode(bound.decode(wire))
        assert out["ok"] == 1

    def test_bad_numeric_content_raises(self):
        _, dst, bound = self.make(pairs=[("i", "int")])
        with pytest.raises(WireFormatError):
            bound.decode(b"<rec><i>not-a-number</i></rec>")

    def test_strings_unsupported_in_baseline(self):
        src = layout_record(RecordSchema.from_pairs("rec", [("s", "string")]), X86)
        with pytest.raises(WireFormatError):
            XmlEncoder(src)
