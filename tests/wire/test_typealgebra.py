"""Tests for the MPI derived-datatype algebra."""

import struct

import pytest

from repro.abi import SPARC_V8, X86, CType
from repro.wire import WireFormatError
from repro.wire.mpi import Datatype


def INT(machine=X86):
    return Datatype.basic(CType.INT, machine)


def DOUBLE(machine=X86):
    return Datatype.basic(CType.DOUBLE, machine)


class TestConstructors:
    def test_basic_type(self):
        t = INT()
        assert t.extent == 4
        assert t.num_elements == 1
        assert t.typemap[0].displacement == 0

    def test_contiguous(self):
        t = INT().contiguous(5)
        assert t.extent == 20
        assert [i.displacement for i in t.typemap] == [0, 4, 8, 12, 16]

    def test_contiguous_of_contiguous(self):
        t = INT().contiguous(2).contiguous(3)
        assert t.num_elements == 6
        assert t.extent == 24

    def test_vector_strided(self):
        # 3 blocks of 2 ints, stride 4 ints: a column of a 3x4 int matrix.
        t = INT().vector(3, 2, 4)
        assert [i.displacement for i in t.typemap] == [0, 4, 16, 20, 32, 36]
        assert t.extent == (2 * 4 + 2) * 4

    def test_vector_unit_stride_equals_contiguous(self):
        assert [i.displacement for i in INT().vector(1, 6, 1).typemap] == [
            i.displacement for i in INT().contiguous(6).typemap
        ]

    def test_indexed(self):
        t = INT().indexed([2, 1], [0, 5])
        assert [i.displacement for i in t.typemap] == [0, 4, 20]

    def test_indexed_length_mismatch(self):
        with pytest.raises(WireFormatError):
            INT().indexed([1, 2], [0])

    def test_create_struct_mixed(self):
        # struct { char c; double d; } with explicit displacements 0, 8
        c = Datatype.basic(CType.CHAR, SPARC_V8)
        t = Datatype.create_struct([1, 1], [0, 8], [c, DOUBLE(SPARC_V8)])
        assert t.num_elements == 2
        assert t.extent == 16  # padded to double alignment
        assert t.alignment == 8

    def test_struct_extent_padding_follows_abi(self):
        # struct { double d; char c; }: extent pads to the ABI's double
        # alignment — 16 on SPARC (align 8) but 12 on i386 (align 4).
        for machine, expected in ((SPARC_V8, 16), (X86, 12)):
            c = Datatype.basic(CType.CHAR, machine)
            t = Datatype.create_struct([1, 1], [0, 8], [DOUBLE(machine), c])
            assert t.extent == expected, machine.name

    def test_bad_counts(self):
        with pytest.raises(WireFormatError):
            INT().contiguous(0)
        with pytest.raises(WireFormatError):
            INT().vector(0, 1, 1)


class TestSignatures:
    def test_signature_ignores_displacements(self):
        assert INT().vector(2, 1, 5).signature() == INT().contiguous(2).signature()

    def test_signature_across_machines(self):
        # int on x86 and int on sparc: same signature, so they match.
        assert INT(X86).signature() == INT(SPARC_V8).signature()

    def test_signature_differs_by_basic_type(self):
        assert INT().signature() != DOUBLE().signature()


class TestPackUnpack:
    def test_contiguous_round_trip(self):
        t = INT().contiguous(4).commit()
        native = struct.pack("<4i", 1, -2, 3, -4)
        wire = bytearray(t.wire_size)
        t.pack(native, wire)
        assert bytes(wire) == struct.pack(">4i", 1, -2, 3, -4)  # external32
        out = bytearray(16)
        t.unpack(wire, 0, out)
        assert out == native

    def test_vector_gathers_strided_data(self):
        # pack a column out of a row-major 3x4 int matrix
        matrix = struct.pack("<12i", *range(12))
        col = INT().vector(3, 1, 4).commit()
        wire = bytearray(col.wire_size)
        col.pack(matrix, wire)
        assert struct.unpack(">3i", wire) == (0, 4, 8)

    def test_unpack_scatters_back(self):
        col = INT().vector(3, 1, 4).commit()
        wire = struct.pack(">3i", 7, 8, 9)
        out = bytearray(48)
        col.unpack(wire, 0, out)
        values = struct.unpack("<12i", out)
        assert values[0] == 7 and values[4] == 8 and values[8] == 9
        assert values[1] == 0

    def test_heterogeneous_exchange_via_signature_match(self):
        # Sender commits on sparc, receiver on x86; signatures match, and
        # external32 bridges representations.
        send = Datatype.create_struct(
            [1, 3],
            [0, 8],
            [Datatype.basic(CType.INT, SPARC_V8), Datatype.basic(CType.DOUBLE, SPARC_V8)],
        ).commit()
        recv = Datatype.create_struct(
            [1, 3],
            [0, 8],
            [Datatype.basic(CType.INT, X86), Datatype.basic(CType.DOUBLE, X86)],
        ).commit()
        assert send.signature() == recv.signature()
        native = struct.pack(">i4x3d", -5, 1.5, 2.5, 3.5)
        wire = bytearray(send.wire_size)
        send.pack(native, wire)
        out = bytearray(32)
        recv.unpack(wire, 0, out)
        assert struct.unpack("<i4x3d", out) == (-5, 1.5, 2.5, 3.5)

    def test_char_elements(self):
        t = Datatype.basic(CType.CHAR, X86).contiguous(3).commit()
        wire = bytearray(t.wire_size)
        t.pack(b"abc", wire)
        assert bytes(wire) == b"abc"

    def test_pack_positions_chain(self):
        t = INT().commit()
        buf = bytearray(8)
        pos = t.pack(struct.pack("<i", 1), buf, 0)
        pos = t.pack(struct.pack("<i", 2), buf, pos)
        assert pos == 8
        assert struct.unpack(">2i", buf) == (1, 2)

    def test_commit_cached(self):
        t = INT().contiguous(2)
        assert t.commit() is t.commit()

    def test_empty_rejected(self):
        with pytest.raises(WireFormatError):
            Datatype([], 0, 1)
