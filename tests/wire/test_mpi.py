"""Tests for the MPICH-like baseline: datatypes, pack/unpack, endpoints."""

import pytest

from repro.abi import ALPHA, SPARC_V8, X86, RecordSchema, codec_for, layout_record, records_equal
from repro.net import InMemoryPipe
from repro.wire import MpiWire, WireFormatError
from repro.wire.mpi import CommittedDatatype, MpiEndpoint, mpi_pack, mpi_unpack


def layout(machine, *pairs, name="t"):
    return layout_record(RecordSchema.from_pairs(name, list(pairs)), machine)


class TestCommittedDatatype:
    def test_typemap_flattens_arrays(self):
        dtype = CommittedDatatype(layout(X86, ("i", "int"), ("v", "double[5]")))
        # 1 int element + 5 double elements
        assert len(dtype) == 6

    def test_char_arrays_are_single_block(self):
        dtype = CommittedDatatype(layout(X86, ("name", "char[16]")))
        assert len(dtype) == 1
        assert dtype.entries[0].is_block

    def test_wire_size_is_packed_external32(self):
        # native: char + pad(3) + int = 8; wire: 1 + 4 = 5
        dtype = CommittedDatatype(layout(X86, ("c", "char"), ("i", "int")))
        assert dtype.wire_size == 5

    def test_long_uses_external32_size(self):
        # external32 long is 4 bytes even on LP64 machines
        dtype = CommittedDatatype(layout(ALPHA, ("l", "long")))
        assert dtype.wire_size == 4

    def test_signature_matching(self):
        a = CommittedDatatype(layout(X86, ("i", "int"), ("d", "double")))
        b = CommittedDatatype(layout(SPARC_V8, ("i", "int"), ("d", "double")))
        assert a.signature() == b.signature()

    def test_signature_mismatch_on_type_change(self):
        a = CommittedDatatype(layout(X86, ("i", "int")))
        b = CommittedDatatype(layout(X86, ("i", "double")))
        assert a.signature() != b.signature()

    def test_strings_rejected(self):
        with pytest.raises(WireFormatError):
            CommittedDatatype(layout(X86, ("s", "string")))


class TestPackUnpack:
    def test_pack_position_advances(self):
        dtype = CommittedDatatype(layout(X86, ("i", "int")))
        buf = bytearray(dtype.wire_size * 2)
        native = codec_for(dtype.layout).encode({"i": 1})
        pos = mpi_pack(dtype, native, buf, 0)
        pos = mpi_pack(dtype, native, buf, pos)
        assert pos == 8

    def test_pack_then_unpack_heterogeneous(self):
        rec = {"i": -5, "d": 1.25, "v": tuple(range(10))}
        src = layout(SPARC_V8, ("i", "int"), ("d", "double"), ("v", "int[10]"))
        dst = layout(X86, ("i", "int"), ("d", "double"), ("v", "int[10]"))
        sd, dd = CommittedDatatype(src), CommittedDatatype(dst)
        wire = bytearray(sd.wire_size)
        mpi_pack(sd, codec_for(src).encode(rec), wire)
        out = bytearray(dst.size)
        mpi_unpack(dd, wire, 0, out)
        assert records_equal(rec, codec_for(dst).decode(out))

    def test_wire_is_big_endian(self):
        dtype = CommittedDatatype(layout(X86, ("i", "int")))
        buf = bytearray(4)
        mpi_pack(dtype, codec_for(dtype.layout).encode({"i": 1}), buf)
        assert bytes(buf) == b"\x00\x00\x00\x01"


class TestMpiWireSystem:
    def test_round_trip(self):
        rec = {"a": 1, "b": -2.5}
        src = layout(X86, ("a", "int"), ("b", "double"))
        dst = layout(SPARC_V8, ("a", "int"), ("b", "double"))
        bound = MpiWire().bind(src, dst)
        out = codec_for(dst).decode(bound.decode(bound.encode(codec_for(src).encode(rec))))
        assert records_equal(rec, out)

    def test_message_length_variation_invalidates(self):
        src = layout(X86, ("a", "int"))
        bound = MpiWire().bind(src, src)
        wire = bound.encode(codec_for(src).encode({"a": 1}))
        with pytest.raises(WireFormatError, match="invalidates"):
            bound.decode(wire + b"\x00\x00\x00\x00")

    def test_field_rename_breaks_a_priori_agreement(self):
        a = layout(X86, ("a", "int"))
        b = layout(X86, ("b", "int"))
        with pytest.raises(WireFormatError, match="a priori"):
            MpiWire().bind(a, b)

    def test_added_field_breaks_agreement(self):
        # The contrast with PBIO's type extension (Section 4.4).
        a = layout(X86, ("a", "int"))
        b = layout(X86, ("a", "int"), ("b", "int"))
        with pytest.raises(WireFormatError):
            MpiWire().bind(a, b)


class TestMpiEndpoint:
    def test_send_recv_over_pipe(self):
        pipe = InMemoryPipe()
        schema = RecordSchema.from_pairs("t", [("i", "int"), ("d", "double")])
        sender = MpiEndpoint(pipe.a)
        receiver = MpiEndpoint(pipe.b)
        st = sender.commit(layout_record(schema, X86))
        rt = receiver.commit(layout_record(schema, SPARC_V8))
        rec = {"i": 3, "d": -0.5}
        sender.send(st, codec_for(st.layout).encode(rec), tag=7)
        out = receiver.recv(rt, expected_tag=7)
        assert records_equal(rec, codec_for(rt.layout).decode(out))

    def test_tag_mismatch(self):
        pipe = InMemoryPipe()
        schema = RecordSchema.from_pairs("t", [("i", "int")])
        sender, receiver = MpiEndpoint(pipe.a), MpiEndpoint(pipe.b)
        st = sender.commit(layout_record(schema, X86))
        rt = receiver.commit(layout_record(schema, X86))
        sender.send(st, codec_for(st.layout).encode({"i": 1}), tag=1)
        with pytest.raises(WireFormatError, match="tag"):
            receiver.recv(rt, expected_tag=2)

    def test_truncation_error(self):
        pipe = InMemoryPipe()
        s_schema = RecordSchema.from_pairs("t", [("i", "int")])
        r_schema = RecordSchema.from_pairs("t", [("i", "int"), ("j", "int")])
        sender, receiver = MpiEndpoint(pipe.a), MpiEndpoint(pipe.b)
        st = sender.commit(layout_record(s_schema, X86))
        rt = receiver.commit(layout_record(r_schema, X86))
        sender.send(st, codec_for(st.layout).encode({"i": 1}))
        with pytest.raises(WireFormatError, match="truncation"):
            receiver.recv(rt)
