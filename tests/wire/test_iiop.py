"""Tests for the CORBA IIOP baseline: CDR streams, stub codec, GIOP."""

import pytest

from repro.abi import ALPHA, SPARC_V8, X86, RecordSchema, codec_for, layout_record, records_equal
from repro.wire import IiopWire, WireFormatError
from repro.wire.iiop import (
    HEADER_SIZE,
    CdrInputStream,
    CdrOutputStream,
    CdrStructCodec,
    pack_header,
    unpack_header,
)


def layout(machine, *pairs, name="t"):
    return layout_record(RecordSchema.from_pairs(name, list(pairs)), machine)


class TestCdrStreams:
    def test_alignment_on_write(self):
        out = CdrOutputStream("big")
        out.put("B", 1, 7)
        out.put("I", 4, 1)  # must pad to offset 4
        data = out.getvalue()
        assert len(data) == 8
        assert data[4:] == b"\x00\x00\x00\x01"

    def test_reader_applies_same_alignment(self):
        out = CdrOutputStream("little")
        out.put("B", 1, 9)
        out.put("d", 8, 2.5)
        stream = CdrInputStream(out.getvalue(), "little", "big")
        assert stream.get("B", 1) == 9
        assert stream.get("d", 8) == 2.5
        assert stream.needs_swap

    def test_no_swap_needed_same_order(self):
        stream = CdrInputStream(b"", "big", "big")
        assert not stream.needs_swap

    def test_truncated_read(self):
        stream = CdrInputStream(b"\x00\x00", "big", "big")
        with pytest.raises(WireFormatError):
            stream.get("I", 4)

    def test_octets(self):
        out = CdrOutputStream("big")
        out.put_octets(b"abc")
        stream = CdrInputStream(out.getvalue(), "big", "big")
        assert stream.get_octets(3) == b"abc"


class TestGiopHeader:
    def test_round_trip_big(self):
        header = pack_header("big", 0, 128)
        order, msg_type, size = unpack_header(header + b"\x00" * 128)
        assert order == "big" and msg_type == 0 and size == 128

    def test_round_trip_little_flag(self):
        header = pack_header("little", 1, 5)
        order, msg_type, _ = unpack_header(header + b"\x00" * 5)
        assert order == "little" and msg_type == 1

    def test_bad_magic(self):
        with pytest.raises(WireFormatError, match="magic"):
            unpack_header(b"JUNK" + b"\x00" * 8)

    def test_short_message(self):
        with pytest.raises(WireFormatError, match="shorter"):
            unpack_header(b"GIOP")

    def test_header_size(self):
        assert HEADER_SIZE == 12


class TestCdrStructCodec:
    def test_wire_size_alignment(self):
        # char (1) + align pad (3) + int (4) = 8
        codec = CdrStructCodec(layout(X86, ("c", "char"), ("i", "int")))
        assert codec.wire_size == 8

    def test_idl_long_is_4_bytes(self):
        codec = CdrStructCodec(layout(ALPHA, ("l", "long")))
        assert codec.wire_size == 4

    def test_marshal_unmarshal_same_order(self):
        lay = layout(X86, ("i", "int"), ("d", "double"), ("name", "char[5]"))
        codec = CdrStructCodec(lay)
        rec = {"i": 1, "d": 2.5, "name": b"abcd"}
        wire = bytearray(codec.wire_size)
        codec.marshal(codec_for(lay).encode(rec), wire, "little")
        out = bytearray(lay.size)
        codec.unmarshal(wire, "little", out)
        assert records_equal(rec, codec_for(lay).decode(out))

    def test_strings_rejected(self):
        with pytest.raises(WireFormatError):
            CdrStructCodec(layout(X86, ("s", "string")))


class TestIiopWireSystem:
    def test_heterogeneous_round_trip(self):
        rec = {"i": -3, "d": 9.5, "v": tuple(range(8))}
        pairs = [("i", "int"), ("d", "double"), ("v", "int[8]")]
        src, dst = layout(SPARC_V8, *pairs), layout(X86, *pairs)
        bound = IiopWire().bind(src, dst)
        out = codec_for(dst).decode(bound.decode(bound.encode(codec_for(src).encode(rec))))
        assert records_equal(rec, out)

    def test_reader_makes_right_no_swap_homogeneous(self):
        # Same byte order: wire bytes for an int match native bytes.
        pairs = [("i", "int")]
        src = layout(X86, *pairs)
        bound = IiopWire().bind(src, src)
        wire = bound.encode(codec_for(src).encode({"i": 1}))
        assert wire[HEADER_SIZE:] == b"\x01\x00\x00\x00"  # still little-endian

    def test_sender_order_flag_in_header(self):
        pairs = [("i", "int")]
        big = IiopWire().bind(layout(SPARC_V8, *pairs), layout(SPARC_V8, *pairs))
        little = IiopWire().bind(layout(X86, *pairs), layout(X86, *pairs))
        rec_big = codec_for(layout(SPARC_V8, *pairs)).encode({"i": 1})
        rec_little = codec_for(layout(X86, *pairs)).encode({"i": 1})
        assert unpack_header(big.encode(rec_big))[0] == "big"
        assert unpack_header(little.encode(rec_little))[0] == "little"

    def test_payload_length_mismatch(self):
        pairs = [("i", "int")]
        src = layout(X86, *pairs)
        bound = IiopWire().bind(src, src)
        wire = bound.encode(codec_for(src).encode({"i": 1}))
        with pytest.raises(WireFormatError, match="length"):
            bound.decode(wire + b"\x00")

    def test_a_priori_agreement_enforced(self):
        a = layout(X86, ("x", "int"))
        b = layout(X86, ("y", "int"))
        with pytest.raises(WireFormatError):
            IiopWire().bind(a, b)

    def test_wire_packed_smaller_than_padded_native(self):
        pairs = [("c", "char"), ("d", "double")]
        src = layout(SPARC_V8, *pairs)  # 16 bytes native
        bound = IiopWire().bind(src, src)
        wire = bound.encode(codec_for(src).encode({"c": b"x", "d": 1.0}))
        assert len(wire) - HEADER_SIZE == 16  # CDR: 1 + 7 pad + 8
