"""Property-based tests for the XML parser and record codec."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.abi import MACHINES, codec_for, layout_record, records_equal
from repro.wire.xml import SaxParser, XmlParseError, XmlWire, escape_text, unescape
from repro.workloads.generators import random_record, random_schema

# -- parser round-trip over generated documents ------------------------------

name_strategy = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.\-]{0,10}", fullmatch=True)
text_strategy = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), blacklist_characters="<>&"),
    max_size=40,
)


@st.composite
def xml_tree(draw, depth=0):
    name = draw(name_strategy)
    if depth >= 3 or draw(st.booleans()):
        children = []
    else:
        children = draw(st.lists(xml_tree(depth=depth + 1), max_size=3))
    text = draw(text_strategy)
    return (name, text, children)


def render(tree) -> str:
    name, text, children = tree
    inner = escape_text(text) + "".join(render(c) for c in children)
    return f"<{name}>{inner}</{name}>"


def collect_names(tree, out):
    name, _, children = tree
    out.append(name)
    for c in children:
        collect_names(c, out)


class _Collector:
    def __init__(self):
        self.starts = []
        self.ends = []
        self.text = []

    def start_element(self, name, attrs):
        self.starts.append(name)

    def characters(self, text):
        self.text.append(text)

    def end_element(self, name):
        self.ends.append(name)


@settings(max_examples=80, deadline=None)
@given(tree=xml_tree())
def test_parser_round_trips_generated_documents(tree):
    document = render(tree)
    collector = _Collector()
    SaxParser(collector).parse(document)
    expected = []
    collect_names(tree, expected)
    assert collector.starts == expected
    # every start has a matching end, properly nested
    assert sorted(collector.ends) == sorted(expected)


@settings(max_examples=80, deadline=None)
@given(text=text_strategy)
def test_escape_unescape_inverse(text):
    assert unescape(escape_text(text)) == text


@settings(max_examples=60, deadline=None)
@given(junk=st.text(max_size=30))
def test_parser_never_hangs_or_crashes_on_junk(junk):
    collector = _Collector()
    try:
        SaxParser(collector).parse(junk)
    except XmlParseError:
        pass  # rejection is fine; uncontrolled exceptions are not
    except (ValueError,) as exc:
        # entity code points can overflow chr(); must surface as parse error
        raise AssertionError(f"non-XmlParseError escaped: {exc!r}")


@settings(max_examples=40, deadline=None)
@given(prefix=st.text(max_size=10), cut=st.integers(min_value=0, max_value=60))
def test_truncated_documents_rejected_cleanly(prefix, cut):
    document = f"<root a='1'><x>{escape_text(prefix)}</x><y>2</y></root>"
    truncated = document[:cut]
    if truncated == document:
        return
    collector = _Collector()
    try:
        SaxParser(collector).parse(truncated)
    except XmlParseError:
        pass


# -- full record codec over random schemas ------------------------------------


_IEEE = sorted(m for m in MACHINES if MACHINES[m].float_format == "ieee754")


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    src=st.sampled_from(_IEEE),
    dst=st.sampled_from(_IEEE),
)
def test_xml_record_round_trip_random_schemas(seed, src, dst):
    rng = np.random.default_rng(seed)
    schema = random_schema(rng, allow_strings=False, allow_nested=True)
    record = random_record(schema, rng)
    src_layout = layout_record(schema, MACHINES[src])
    dst_layout = layout_record(schema, MACHINES[dst])
    bound = XmlWire().bind(src_layout, dst_layout)
    native = codec_for(src_layout).encode(record)
    out = codec_for(dst_layout).decode(bound.decode(bound.encode(native)))
    assert records_equal(record, out, rel_tol=1e-5)
