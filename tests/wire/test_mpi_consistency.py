"""Consistency between the two MPI datatype implementations.

`CommittedDatatype` flattens a C struct layout directly; the algebra
(`Datatype.create_struct`) composes the same structure from basic types
and explicit displacements.  For any scalar-field struct the two must
produce identical external32 bytes — they model the same standard.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.abi import MACHINES, CType, RecordSchema, codec_for, layout_record
from repro.wire.mpi import CommittedDatatype, Datatype, mpi_pack

SCALARS = ["int", "unsigned int", "short", "double", "float", "long", "long long"]
IEEE = sorted(m for m in MACHINES if MACHINES[m].float_format == "ieee754")


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    machine=st.sampled_from(IEEE),
)
def test_struct_flattening_agrees_with_algebra(seed, machine):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 8))
    pairs = [(f"f{i}", SCALARS[int(rng.integers(len(SCALARS)))]) for i in range(n)]
    schema = RecordSchema.from_pairs("t", pairs)
    m = MACHINES[machine]
    layout = layout_record(schema, m)

    # Engine 1: direct layout flattening.
    direct = CommittedDatatype(layout)

    # Engine 2: the constructor algebra with the layout's displacements.
    types = [Datatype.basic(f.ctype, m) for f in layout.fields]
    displs = [f.offset for f in layout.fields]
    algebra = Datatype.create_struct([1] * len(types), displs, types).commit()

    assert direct.wire_size == algebra.wire_size

    # Same bytes for the same native record.
    record = {}
    for i, (name, spec) in enumerate(pairs):
        if spec in ("double", "float"):
            record[name] = float(rng.integers(-1000, 1000))
        elif spec == "unsigned int":
            record[name] = int(rng.integers(0, 2**31))
        elif spec == "short":
            record[name] = int(rng.integers(-30000, 30000))
        else:
            record[name] = int(rng.integers(-(2**31), 2**31))
    native = codec_for(layout).encode(record)
    wire_a = bytearray(direct.wire_size)
    mpi_pack(direct, native, wire_a)
    wire_b = bytearray(algebra.wire_size)
    algebra.pack(native, wire_b)
    assert bytes(wire_a) == bytes(wire_b)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_algebra_pack_unpack_inverse(seed):
    """pack followed by unpack restores the native bytes it read."""
    rng = np.random.default_rng(seed)
    m = MACHINES["sparc"]
    count = int(rng.integers(1, 20))
    dtype = Datatype.basic(CType.INT, m).contiguous(count).commit()
    values = rng.integers(-(2**31), 2**31, count)
    native = np.asarray(values, dtype=">i4").tobytes()
    wire = bytearray(dtype.wire_size)
    dtype.pack(native, wire)
    out = bytearray(len(native))
    dtype.unpack(wire, 0, out)
    assert bytes(out) == native
