"""Tests for XDR streams and the XDR record baseline."""

import pytest

from repro.abi import SPARC_V8, SPARC_V9_64, X86, RecordSchema, codec_for, layout_record, records_equal
from repro.wire import WireFormatError, XdrWire
from repro.wire.xdr import XdrDecoder, XdrEncoder


class TestXdrStreams:
    def test_int_round_trip(self):
        enc = XdrEncoder()
        enc.put_int(-5)
        enc.put_uint(4000000000)
        dec = XdrDecoder(enc.getvalue())
        assert dec.get_int() == -5
        assert dec.get_uint() == 4000000000

    def test_everything_is_4_byte_aligned(self):
        enc = XdrEncoder()
        enc.put_bool(True)
        enc.put_int(1)
        assert len(enc.getvalue()) == 8

    def test_hyper_round_trip(self):
        enc = XdrEncoder()
        enc.put_hyper(-(1 << 60))
        enc.put_uhyper(1 << 63)
        dec = XdrDecoder(enc.getvalue())
        assert dec.get_hyper() == -(1 << 60)
        assert dec.get_uhyper() == 1 << 63

    def test_floats(self):
        enc = XdrEncoder()
        enc.put_float(1.5)
        enc.put_double(-2.25)
        dec = XdrDecoder(enc.getvalue())
        assert dec.get_float() == 1.5
        assert dec.get_double() == -2.25

    def test_opaque_fixed_padding(self):
        enc = XdrEncoder()
        enc.put_opaque_fixed(b"abcde")  # 5 bytes -> 8 on wire
        data = enc.getvalue()
        assert len(data) == 8
        assert XdrDecoder(data).get_opaque_fixed(5) == b"abcde"

    def test_opaque_var_and_string(self):
        enc = XdrEncoder()
        enc.put_opaque_var(b"xyz")
        enc.put_string("héllo")
        dec = XdrDecoder(enc.getvalue())
        assert dec.get_opaque_var() == b"xyz"
        assert dec.get_string() == "héllo"

    def test_big_endian_on_wire(self):
        enc = XdrEncoder()
        enc.put_int(1)
        assert enc.getvalue() == b"\x00\x00\x00\x01"

    def test_truncated_stream_raises(self):
        dec = XdrDecoder(b"\x00\x00")
        with pytest.raises(WireFormatError, match="truncated"):
            dec.get_int()

    def test_remaining(self):
        dec = XdrDecoder(b"\x00" * 8)
        dec.get_int()
        assert dec.remaining == 4


class TestXdrRecordBaseline:
    def test_heterogeneous_record(self):
        schema = RecordSchema.from_pairs(
            "t", [("i", "int"), ("d", "double"), ("name", "char[6]"), ("v", "float[3]")]
        )
        rec = {"i": -1, "d": 3.5, "name": b"hello", "v": (1.0, 2.0, 3.0)}
        src, dst = layout_record(schema, X86), layout_record(schema, SPARC_V8)
        bound = XdrWire().bind(src, dst)
        out = codec_for(dst).decode(bound.decode(bound.encode(codec_for(src).encode(rec))))
        assert records_equal(rec, out)

    def test_long_size_bridged_via_sender_size(self):
        schema = RecordSchema.from_pairs("t", [("l", "long")])
        src, dst = layout_record(schema, SPARC_V9_64), layout_record(schema, SPARC_V8)
        bound = XdrWire().bind(src, dst)
        native = codec_for(src).encode({"l": -77})
        assert codec_for(dst).decode(bound.decode(bound.encode(native)))["l"] == -77

    def test_wire_is_packed_no_native_padding(self):
        schema = RecordSchema.from_pairs("t", [("c", "char"), ("d", "double")])
        src = layout_record(schema, SPARC_V8)  # native 16 bytes with 7 pad
        bound = XdrWire().bind(src, src)
        wire = bound.encode(codec_for(src).encode({"c": b"x", "d": 1.0}))
        assert len(wire) == 12  # char->4 + double->8, no gaps

    def test_schema_disagreement_rejected(self):
        a = layout_record(RecordSchema.from_pairs("t", [("i", "int")]), X86)
        b = layout_record(RecordSchema.from_pairs("t", [("j", "int")]), X86)
        with pytest.raises(WireFormatError, match="a priori"):
            XdrWire().bind(a, b)
