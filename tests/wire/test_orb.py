"""Tests for the minimal ORB (GIOP Request/Reply RPC)."""

import pytest

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.net import InMemoryPipe, loopback_pair
from repro.wire import WireFormatError
from repro.wire.iiop import (
    CorbaSystemException,
    Interface,
    ObjectAdapter,
    Operation,
    OrbClient,
)

ADD_REQ = RecordSchema.from_pairs("add_req", [("a", "double"), ("b", "double")])
ADD_REP = RecordSchema.from_pairs("add_rep", [("sum", "double")])
STAT_REQ = RecordSchema.from_pairs("stat_req", [("n", "int"), ("values", "double[8]")])
STAT_REP = RecordSchema.from_pairs("stat_rep", [("mean", "double"), ("peak", "double")])

CALC = Interface(
    "Calculator",
    [
        Operation("add", ADD_REQ, ADD_REP),
        Operation("stats", STAT_REQ, STAT_REP),
    ],
)


def make_servant(adapter):
    def add(req):
        return {"sum": req["a"] + req["b"]}

    def stats(req):
        values = list(req["values"])[: req["n"]]
        return {"mean": sum(values) / len(values), "peak": max(values)}

    adapter.register(b"calc-1", {"add": add, "stats": stats})


def rpc_pair(client_machine=X86, server_machine=SPARC_V8):
    pipe = InMemoryPipe()
    client = OrbClient(client_machine, CALC)
    adapter = ObjectAdapter(server_machine, CALC)
    make_servant(adapter)

    class Loop:
        """Connect the pipe ends through the adapter synchronously."""

        def send(self, data):
            pipe.a.send(data)
            pipe.b.send(adapter.handle(pipe.b.recv()))

        def recv(self):
            return pipe.a.recv()

        def close(self):
            pass

    return client, Loop()


class TestRpc:
    def test_simple_invocation(self):
        client, transport = rpc_pair()
        result = client.invoke(transport, b"calc-1", "add", {"a": 2.0, "b": 3.5})
        assert result == {"sum": 5.5}

    def test_heterogeneous_byte_orders(self):
        # little-endian client, big-endian server: reader-makes-right both ways
        client, transport = rpc_pair(X86, SPARC_V8)
        result = client.invoke(
            transport,
            b"calc-1",
            "stats",
            {"n": 3, "values": (4.0, 8.0, 6.0, 0, 0, 0, 0, 0)},
        )
        assert result == {"mean": 6.0, "peak": 8.0}

    def test_reverse_direction(self):
        client, transport = rpc_pair(SPARC_V8, X86)
        result = client.invoke(transport, b"calc-1", "add", {"a": 1.0, "b": -1.0})
        assert result == {"sum": 0.0}

    def test_request_ids_increment(self):
        client, transport = rpc_pair()
        client.invoke(transport, b"calc-1", "add", {"a": 1.0, "b": 1.0})
        client.invoke(transport, b"calc-1", "add", {"a": 1.0, "b": 1.0})
        assert client._next_request_id == 3

    def test_unknown_object_raises(self):
        client, transport = rpc_pair()
        with pytest.raises(CorbaSystemException, match="OBJECT_NOT_EXIST"):
            client.invoke(transport, b"nope", "add", {"a": 1.0, "b": 1.0})

    def test_unknown_operation_raises(self):
        client, transport = rpc_pair()
        with pytest.raises(WireFormatError, match="no operation"):
            client.invoke(transport, b"calc-1", "mul", {"a": 1.0, "b": 1.0})

    def test_server_rejects_operation_missing_from_servant(self):
        # Operation exists in the interface but the servant lacks it.
        pipe = InMemoryPipe()
        client = OrbClient(X86, CALC)
        adapter = ObjectAdapter(X86, CALC)
        adapter.register(b"calc-1", {})

        class Loop:
            def send(self, data):
                pipe.a.send(data)
                pipe.b.send(adapter.handle(pipe.b.recv()))

            def recv(self):
                return pipe.a.recv()

        with pytest.raises(CorbaSystemException, match="BAD_OPERATION"):
            client.invoke(Loop(), b"calc-1", "add", {"a": 1.0, "b": 2.0})

    def test_over_real_sockets(self):
        import threading

        client_t, server_t = loopback_pair()
        client = OrbClient(X86, CALC)
        adapter = ObjectAdapter(SPARC_V8, CALC)
        make_servant(adapter)

        def serve():
            server_t.send(adapter.handle(server_t.recv()))

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            result = client.invoke(client_t, b"calc-1", "add", {"a": 10.0, "b": 0.5})
            assert result == {"sum": 10.5}
        finally:
            thread.join(timeout=5)
            client_t.close()
            server_t.close()


class TestInterface:
    def test_duplicate_operations_rejected(self):
        with pytest.raises(WireFormatError, match="duplicate"):
            Interface("X", [Operation("f", ADD_REQ, ADD_REP), Operation("f", ADD_REQ, ADD_REP)])

    def test_register_unknown_operation_rejected(self):
        adapter = ObjectAdapter(X86, CALC)
        with pytest.raises(WireFormatError, match="not in interface"):
            adapter.register(b"k", {"frobnicate": lambda r: r})

    def test_contains(self):
        assert "add" in CALC and "mul" not in CALC
