"""Tests for the shared WireSystem interface and cross-system parity."""

import pytest

from repro.abi import SPARC_V8, X86, layout_record
from repro.core import PbioWire
from repro.wire import IiopWire, MpiWire, WireFormatError, XdrWire, XmlWire
from repro.wire.common import check_same_schema
from repro.workloads import mechanical

ALL_SYSTEMS = [PbioWire, MpiWire, IiopWire, XdrWire, XmlWire]


class TestBoundFormatInterface:
    @pytest.mark.parametrize("factory", ALL_SYSTEMS)
    def test_wire_size_reports_encoded_length(self, factory):
        schema = mechanical.schema_for_size("100b")
        src = layout_record(schema, X86)
        dst = layout_record(schema, SPARC_V8)
        bound = factory().bind(src, dst)
        native = mechanical.native_bytes("100b", X86)
        assert bound.wire_size(native) == len(bound.encode(native))

    @pytest.mark.parametrize("factory", ALL_SYSTEMS)
    def test_system_attribute_set(self, factory):
        schema = mechanical.schema_for_size("100b")
        src = layout_record(schema, X86)
        bound = factory().bind(src, src)
        assert isinstance(bound.system, str) and bound.system

    @pytest.mark.parametrize("factory", ALL_SYSTEMS)
    def test_decode_of_encode_is_dst_record_size(self, factory):
        schema = mechanical.schema_for_size("100b")
        src = layout_record(schema, X86)
        dst = layout_record(schema, SPARC_V8)
        bound = factory().bind(src, dst)
        out = bound.decode(bound.encode(mechanical.native_bytes("100b", X86)))
        assert len(out) == dst.size


class TestAPrioriAgreement:
    def test_check_same_schema_accepts_size_differences(self):
        # Same field names/kinds/counts but different machine sizes: the
        # agreement is at the type level, not the representation level.
        from repro.abi import SPARC_V9_64, RecordSchema

        schema = RecordSchema.from_pairs("t", [("l", "long")])
        check_same_schema(
            layout_record(schema, SPARC_V8), layout_record(schema, SPARC_V9_64), "test"
        )

    def test_check_same_schema_rejects_count_change(self):
        from repro.abi import RecordSchema

        a = layout_record(RecordSchema.from_pairs("t", [("v", "int[3]")]), X86)
        b = layout_record(RecordSchema.from_pairs("t", [("v", "int[4]")]), X86)
        with pytest.raises(WireFormatError):
            check_same_schema(a, b, "test")

    def test_pbio_is_the_only_system_accepting_schema_drift(self):
        from repro.abi import RecordSchema

        src = layout_record(
            RecordSchema.from_pairs("t", [("a", "int"), ("extra", "int")]), X86
        )
        dst = layout_record(RecordSchema.from_pairs("t", [("a", "int")]), X86)
        for factory in (MpiWire, IiopWire, XdrWire):
            with pytest.raises(WireFormatError):
                factory().bind(src, dst)
        # XML and PBIO both tolerate drift (name matching).
        assert XmlWire().bind(src, dst) is not None
        assert PbioWire().bind(src, dst) is not None


class TestPbioWireNames:
    def test_conversion_mode_in_name(self):
        assert PbioWire().name == "PBIO"
        assert PbioWire("interpreted").name == "PBIO-interpreted"
        assert PbioWire("vcode").name == "PBIO-vcode"

    def test_decode_view_available(self):
        schema = mechanical.schema_for_size("100b")
        src = layout_record(schema, X86)
        bound = PbioWire().bind(src, src)
        native = mechanical.native_bytes("100b", X86)
        view = bound.decode_view(bound.encode(native))
        assert view.node_id == mechanical.sample_record("100b")["node_id"]
