"""Tests for the mixed-type trace workload."""

import pytest

from repro.abi import RecordSchema
from repro.workloads import TraceEntry, TraceSpec, generate_trace, trace_summary


def small_spec():
    return TraceSpec(
        [
            TraceEntry(RecordSchema.from_pairs("a", [("x", "int")]), 3.0),
            TraceEntry(RecordSchema.from_pairs("b", [("y", "double")]), 1.0),
        ]
    )


class TestTraceSpec:
    def test_paper_mixture_has_four_types(self):
        spec = TraceSpec.paper_mixture()
        assert len(spec.schemas()) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec([])

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec([TraceEntry(RecordSchema.from_pairs("a", [("x", "int")]), 0.0)])

    def test_duplicate_names_rejected(self):
        entry = TraceEntry(RecordSchema.from_pairs("a", [("x", "int")]), 1.0)
        with pytest.raises(ValueError, match="distinct"):
            TraceSpec([entry, entry])


class TestGeneration:
    def test_deterministic(self):
        a = list(generate_trace(small_spec(), count=50, seed=9))
        b = list(generate_trace(small_spec(), count=50, seed=9))
        assert [e.schema.name for e in a] == [e.schema.name for e in b]
        assert a[0].record == b[0].record

    def test_count_and_indices(self):
        events = list(generate_trace(small_spec(), count=25, seed=1))
        assert len(events) == 25
        assert [e.index for e in events] == list(range(25))

    def test_weights_respected_roughly(self):
        events = list(generate_trace(small_spec(), count=2000, seed=2))
        summary = trace_summary(events)
        # a is 3x more likely than b
        assert 2.0 < summary["a"] / summary["b"] < 4.5

    def test_records_match_schema(self):
        for event in generate_trace(small_spec(), count=10, seed=3):
            assert set(event.record) == set(event.schema.field_names())

    def test_trace_replays_through_pbio(self):
        from repro.abi import SPARC_V8, X86, records_equal
        from repro.core import IOContext, PbioConnection
        from repro.net import InMemoryPipe

        spec = small_spec()
        events = list(generate_trace(spec, count=30, seed=4))
        pipe = InMemoryPipe()
        tx = PbioConnection(IOContext(X86), pipe.a)
        rx = PbioConnection(IOContext(SPARC_V8), pipe.b)
        handles = {s.name: tx.ctx.register_format(s) for s in spec.schemas()}
        for s in spec.schemas():
            rx.ctx.expect(s)
        for event in events:
            tx.send(handles[event.schema.name], event.record)
        for event in events:
            assert records_equal(event.record, rx.recv(), rel_tol=1e-5)
        # One converter per record type, not per message.
        assert rx.ctx.stats.converters_generated == len(
            {e.schema.name for e in events}
        )
