"""Tests for the paper-workload record definitions."""

import pytest

from repro.abi import ALPHA, SPARC_V8, X86, layout_record
from repro.workloads import mechanical as m


class TestSchemas:
    @pytest.mark.parametrize("size", m.SIZES)
    def test_native_size_near_nominal(self, size):
        for machine in (X86, SPARC_V8, ALPHA):
            native = layout_record(m.schema_for_size(size), machine).size
            assert abs(native - m.nominal_bytes(size)) / m.nominal_bytes(size) < 0.05

    def test_all_sizes_share_scalar_header(self):
        names_small = set(m.schema_for_size("100b").field_names())
        for size in m.SIZES[1:]:
            assert names_small <= set(m.schema_for_size(size).field_names())

    def test_mixed_field_types(self):
        # The records must be mixed-type so conversion is nontrivial.
        schema = m.schema_for_size("1kb")
        kinds = {f.ctype.kind for f in schema}
        assert len(kinds) >= 3

    def test_layouts_differ_across_abis(self):
        # x86 vs sparc must disagree on at least one offset (the paper's
        # third heterogeneity source).
        schema = m.schema_for_size("100b")
        lx = layout_record(schema, X86)
        ls = layout_record(schema, SPARC_V8)
        assert any(lx[f].offset != ls[f].offset for f in schema.field_names())

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            m.schema_for_size("1mb")

    def test_all_schemas_returns_four(self):
        assert list(m.all_schemas()) == list(m.SIZES)


class TestSampleRecords:
    @pytest.mark.parametrize("size", m.SIZES)
    def test_sample_covers_every_field(self, size):
        schema = m.schema_for_size(size)
        rec = m.sample_record(size)
        assert set(rec) == set(schema.field_names())

    def test_deterministic_given_seed(self):
        a = m.sample_record("100b", seed=3)
        b = m.sample_record("100b", seed=3)
        assert a["node_id"] == b["node_id"] and a["mass"] == b["mass"]

    def test_seeds_differ(self):
        assert m.sample_record("100b", seed=1)["node_id"] != m.sample_record("100b", seed=2)["node_id"]

    @pytest.mark.parametrize("size", m.SIZES)
    def test_native_bytes_encodes(self, size):
        data = m.native_bytes(size, X86)
        assert len(data) == layout_record(m.schema_for_size(size), X86).size
