"""Tests for the high-level conversion macros."""

import struct

import pytest

from repro.vcode import VM, ConversionEmitter, UNROLL_LIMIT
from repro.vcode.isa import Op


def execute(ce, src, dst_len):
    program = ce.finish()
    dst = bytearray(dst_len)
    VM().run(program, {"src": bytearray(src), "dst": dst})
    return dst, program


class TestCopy:
    def test_copy_bytes_verbatim(self):
        ce = ConversionEmitter("big", "big")
        ce.copy_bytes(0, 4, 4)
        dst, _ = execute(ce, b"\x00\x00\x00\x00\xde\xad\xbe\xef", 4)
        assert dst == b"\xde\xad\xbe\xef"


class TestIntConversion:
    def test_swap_scalar(self):
        ce = ConversionEmitter("big", "little")
        ce.convert_int(0, 4, 0, 4, signed=True)
        dst, _ = execute(ce, struct.pack(">i", -5), 4)
        assert struct.unpack("<i", dst)[0] == -5

    def test_widen_4_to_8(self):
        ce = ConversionEmitter("big", "little")
        ce.convert_int(0, 8, 0, 4, signed=True)
        dst, _ = execute(ce, struct.pack(">i", -77), 8)
        assert struct.unpack("<q", dst)[0] == -77

    def test_narrow_8_to_4(self):
        ce = ConversionEmitter("little", "big")
        ce.convert_int(0, 4, 0, 8, signed=True)
        dst, _ = execute(ce, struct.pack("<q", 123456), 4)
        assert struct.unpack(">i", dst)[0] == 123456

    def test_small_array_unrolled(self):
        count = UNROLL_LIMIT
        ce = ConversionEmitter("big", "little")
        ce.convert_int(0, 4, 0, 4, signed=True, count=count)
        src = struct.pack(f">{count}i", *range(count))
        dst, program = execute(ce, src, 4 * count)
        assert struct.unpack(f"<{count}i", dst) == tuple(range(count))
        assert not any(i.op is Op.JMP for i in program.instrs)  # unrolled

    def test_large_array_uses_loop(self):
        count = 50
        ce = ConversionEmitter("big", "little")
        ce.convert_int(0, 4, 0, 4, signed=True, count=count)
        src = struct.pack(f">{count}i", *range(count))
        dst, program = execute(ce, src, 4 * count)
        assert struct.unpack(f"<{count}i", dst) == tuple(range(count))
        assert any(i.op is Op.JMP for i in program.instrs)  # looped
        assert len(program) < 4 * count  # code size independent of count

    def test_loop_with_widening_strides(self):
        count = 20
        ce = ConversionEmitter("big", "little")
        ce.convert_int(0, 8, 0, 4, signed=True, count=count)
        src = struct.pack(f">{count}i", *[-i for i in range(count)])
        dst, _ = execute(ce, src, 8 * count)
        assert struct.unpack(f"<{count}q", dst) == tuple(-i for i in range(count))


class TestFloatConversion:
    def test_swap_double(self):
        ce = ConversionEmitter("big", "little")
        ce.convert_float(0, 8, 0, 8)
        dst, _ = execute(ce, struct.pack(">d", 2.25), 8)
        assert struct.unpack("<d", dst)[0] == 2.25

    def test_float_to_double(self):
        ce = ConversionEmitter("big", "little")
        ce.convert_float(0, 8, 0, 4)
        dst, _ = execute(ce, struct.pack(">f", 0.5), 8)
        assert struct.unpack("<d", dst)[0] == 0.5

    def test_double_array_loop(self):
        count = 30
        ce = ConversionEmitter("big", "little")
        ce.convert_float(0, 8, 0, 8, count=count)
        values = [i * 0.25 for i in range(count)]
        dst, _ = execute(ce, struct.pack(f">{count}d", *values), 8 * count)
        assert struct.unpack(f"<{count}d", dst) == tuple(values)


class TestCrossKind:
    def test_int_to_float(self):
        ce = ConversionEmitter("big", "little")
        ce.convert_int_to_float(0, 8, 0, 4, signed=True)
        dst, _ = execute(ce, struct.pack(">i", -3), 8)
        assert struct.unpack("<d", dst)[0] == -3.0

    def test_float_to_int(self):
        ce = ConversionEmitter("little", "big")
        ce.convert_float_to_int(0, 4, 0, 8)
        dst, _ = execute(ce, struct.pack("<d", 9.75), 4)
        assert struct.unpack(">i", dst)[0] == 9


class TestZeroFill:
    @pytest.mark.parametrize("length", [1, 4, 8, 12, 17])
    def test_zero_fill_lengths(self, length):
        ce = ConversionEmitter("big", "little")
        ce.zero_fill(0, length)
        dst = bytearray(b"\xff" * length)
        VM().run(ce.finish(), {"src": bytearray(), "dst": dst})
        assert dst == b"\x00" * length


class TestRegisterHygiene:
    def test_no_registers_leak_across_fields(self):
        ce = ConversionEmitter("big", "little")
        for i in range(40):  # far more fields than registers
            ce.convert_int(i * 4, 4, i * 4, 4, signed=True)
            ce.convert_float(i * 8, 8, i * 8, 8, count=20)
        assert ce.pool.live_counts == (0, 0)
