"""Tests for the vcode peephole optimizer."""

import struct

import numpy as np
import pytest

from repro.vcode import VM, ConversionEmitter, Emitter, Op, optimize


def run_program(program, src, dst_len):
    dst = bytearray(dst_len)
    VM().run(program, {"src": bytearray(src), "dst": dst})
    return bytes(dst)


def ops_of(program):
    return [i.op for i in program.instrs]


class TestMoveCoalescing:
    def build_moves(self, n, elem=4):
        em = Emitter()
        for i in range(n):
            em.ld(2, "src", i * elem, elem, signed=False, endian="little")
            em.st(2, "dst", i * elem, elem, endian="little")
        em.ret()
        return em.seal()

    def test_contiguous_moves_become_memcpy(self):
        program = self.build_moves(8)
        opt, stats = optimize(program)
        assert stats.memcpys_created == 1
        assert stats.moves_coalesced == 8
        assert Op.MEMCPY in ops_of(opt)
        assert len(opt) < len(program)

    def test_coalesced_program_equivalent(self):
        program = self.build_moves(8)
        opt, _ = optimize(program)
        src = bytes(range(32))
        assert run_program(opt, src, 32) == run_program(program, src, 32)

    def test_swapping_moves_not_coalesced(self):
        em = Emitter()
        for i in range(4):
            em.ld(2, "src", i * 4, 4, signed=False, endian="big")
            em.st(2, "dst", i * 4, 4, endian="little")  # byte swap
        em.ret()
        opt, stats = optimize(em.seal())
        assert stats.memcpys_created == 0

    def test_non_contiguous_moves_not_coalesced(self):
        em = Emitter()
        em.ld(2, "src", 0, 4, signed=False, endian="little")
        em.st(2, "dst", 0, 4, endian="little")
        em.ld(2, "src", 12, 4, signed=False, endian="little")  # gap
        em.st(2, "dst", 12, 4, endian="little")
        em.ret()
        opt, stats = optimize(em.seal())
        assert stats.memcpys_created == 0

    def test_relocating_run_coalesces(self):
        # src offset != dst offset but both advance in lockstep.
        em = Emitter()
        for i in range(4):
            em.ld(2, "src", 8 + i * 4, 4, signed=False, endian="little")
            em.st(2, "dst", i * 4, 4, endian="little")
        em.ret()
        opt, stats = optimize(em.seal())
        assert stats.memcpys_created == 1
        src = bytes(range(24))
        assert run_program(opt, src, 16) == src[8:24]


class TestAddiFolding:
    def test_chain_folds(self):
        em = Emitter()
        em.movi(2, 0)
        em.addi(2, 2, 4)
        em.addi(2, 2, 4)
        em.addi(2, 2, 8)
        em.mov(1, 2)
        em.ret()
        opt, stats = optimize(em.seal())
        assert stats.addis_folded == 2
        assert VM().run(opt, {}) == 16

    def test_different_registers_not_folded(self):
        em = Emitter()
        em.movi(2, 0)
        em.movi(3, 0)
        em.addi(2, 2, 4)
        em.addi(3, 3, 4)
        em.ret()
        _, stats = optimize(em.seal())
        assert stats.addis_folded == 0


class TestDeadMovi:
    def test_overwritten_movi_removed(self):
        em = Emitter()
        em.movi(1, 111)  # dead: overwritten before any read
        em.movi(1, 42)
        em.ret()
        opt, stats = optimize(em.seal())
        assert stats.dead_movis_removed == 1
        assert VM().run(opt, {}) == 42

    def test_read_movi_kept(self):
        em = Emitter()
        em.movi(2, 21)
        em.addi(1, 2, 21)
        em.ret()
        opt, stats = optimize(em.seal())
        assert stats.dead_movis_removed == 0
        assert VM().run(opt, {}) == 42

    def test_movi_before_branch_kept(self):
        em = Emitter()
        em.movi(1, 5)  # may be observed by code after the label
        em.label("x")
        em.movi(1, 9)
        em.ret()
        # emit a user of the label so it isn't pruned
        _, stats = optimize(em.seal())
        assert stats.dead_movis_removed == 0


class TestLabelPruning:
    def test_untargeted_labels_removed(self):
        em = Emitter()
        em.label("unused")
        em.movi(1, 1)
        em.ret()
        opt, stats = optimize(em.seal())
        assert stats.labels_pruned == 1
        assert Op.LABEL not in ops_of(opt)

    def test_targeted_labels_kept_and_remapped(self):
        em = Emitter()
        em.movi(1, 0)
        em.movi(2, 3)
        em.label("dead1")  # prunable
        em.label("top")  # branch target, must survive resealing
        em.addi(1, 1, 10)
        em.addi(2, 2, -1)
        em.movi(3, 0)
        em.bne(2, 3, "top")
        em.ret()
        opt, stats = optimize(em.seal())
        assert stats.labels_pruned == 1
        assert VM().run(opt, {}) == 30


class TestOnRealConversionPrograms:
    @pytest.mark.parametrize("same_order", [True, False])
    def test_differential_against_unoptimized(self, same_order):
        src_endian = "little"
        dst_endian = "little" if same_order else "big"
        ce = ConversionEmitter(src_endian, dst_endian)
        ce.convert_int(0, 4, 0, 4, signed=True, count=6)
        ce.convert_float(24, 8, 24, 8, count=4)
        ce.copy_bytes(56, 56, 8)
        program = ce.finish()
        opt, stats = optimize(program)
        rng = np.random.default_rng(3)
        payload = struct.pack(
            f"{'<' if src_endian == 'little' else '>'}6i4d8s",
            *rng.integers(-1000, 1000, 6),
            *rng.uniform(-1, 1, 4),
            b"tailtail",
        )
        assert run_program(opt, payload, 64) == run_program(program, payload, 64)
        if same_order:
            # pure moves: the unrolled loop collapses
            assert stats.memcpys_created >= 1

    def test_stats_total_removed_counts(self):
        em = Emitter()
        em.movi(1, 1)
        em.movi(1, 2)
        em.label("gone")
        em.ret()
        _, stats = optimize(em.seal())
        assert stats.total_removed == 2
        assert "prune_labels" in stats.passes


class TestIntegrationWithCodegen:
    def test_vcode_converter_optimized_by_default(self):
        from repro.abi import SPARC_V8, MIPS_O32, RecordSchema, layout_record
        from repro.core import IOFormat, build_plan
        from repro.core.conversion import generate_vcode_converter

        # same byte order, different layout -> offset moves -> coalescible
        schema_a = RecordSchema.from_pairs("t", [("pad", "int"), ("a", "int"), ("b", "int")])
        schema_b = RecordSchema.from_pairs("t", [("a", "int"), ("b", "int")])
        plan = build_plan(
            IOFormat.from_layout(layout_record(schema_a, SPARC_V8)),
            IOFormat.from_layout(layout_record(schema_b, MIPS_O32)),
        )
        gen = generate_vcode_converter(plan)
        assert gen.vcode_stats is not None
        unopt = generate_vcode_converter(plan, optimize=False)
        assert unopt.vcode_stats is None
        payload = struct.pack(">3i", 0, 7, 9)
        assert gen.convert(payload) == unopt.convert(payload)
