"""Differential fuzzing of the vcode peephole optimizer.

The optimizer's contract is behavioural equivalence: for ANY program,
the optimized form must leave registers and memory in exactly the state
the original would.  We generate random (but well-formed) programs mixing
straight-line ALU work, loads/stores in both byte orders, and bounded
loops, then compare final memory and the return register.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.vcode import VM, Emitter, optimize

MEM_SIZE = 64
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def build_random_program(rng: np.random.Generator) -> "Emitter":
    """Emit a random well-formed program over segments src/dst."""
    em = Emitter()
    n_ops = int(rng.integers(3, 40))
    # registers 2..9 are general purpose in these programs
    for _ in range(n_ops):
        choice = int(rng.integers(0, 9))
        r = int(rng.integers(2, 10))
        r2 = int(rng.integers(2, 10))
        if choice == 0:
            em.movi(r, int(rng.integers(-1000, 1000)))
        elif choice == 1:
            em.addi(r, r, int(rng.integers(-16, 16)))
        elif choice == 2:
            em.add(r, r, r2)
        elif choice == 3:
            em.sub(r, r, r2)
        elif choice == 4:
            em.muli(r, r, int(rng.integers(0, 5)))
        elif choice == 5:
            size = int(rng.choice([1, 2, 4, 8]))
            offset = int(rng.integers(0, MEM_SIZE - size))
            endian = str(rng.choice(["big", "little"]))
            em.ld(r, "src", offset, size, signed=bool(rng.integers(2)), endian=endian)
        elif choice == 6:
            size = int(rng.choice([1, 2, 4, 8]))
            offset = int(rng.integers(0, MEM_SIZE - size))
            endian = str(rng.choice(["big", "little"]))
            em.st(r, "dst", offset, size, endian=endian)
        elif choice == 7:
            # a contiguous unrolled move run (coalescing bait)
            count = int(rng.integers(2, 6))
            elem = int(rng.choice([1, 2, 4]))
            src0 = int(rng.integers(0, MEM_SIZE - count * elem))
            dst0 = int(rng.integers(0, MEM_SIZE - count * elem))
            endian = str(rng.choice(["big", "little"]))
            for i in range(count):
                em.ld(r, "src", src0 + i * elem, elem, signed=False, endian=endian)
                em.st(r, "dst", dst0 + i * elem, elem, endian=endian)
        else:
            # a bounded counted loop accumulating into r1
            counter = int(rng.integers(2, 10))
            label = em.new_label("L")
            done = em.new_label("D")
            em.movi(r, int(rng.integers(1, 5)))  # loop count
            em.movi(r2, 0)
            em.label(label)
            em.bge(r2, r, done)
            em.addi(1, 1, counter)
            em.addi(r2, r2, 1)
            em.jmp(label)
            em.label(done)
    em.mov(1, int(rng.integers(2, 10)))
    em.ret()
    return em


def run(program, src_bytes):
    vm = VM(max_steps=100_000)
    dst = bytearray(MEM_SIZE)
    result = vm.run(program, {"src": src_bytes, "dst": dst})
    return result, bytes(dst)


@settings(max_examples=120, deadline=None)
@given(seed=seeds)
def test_optimized_programs_behave_identically(seed):
    rng = np.random.default_rng(seed)
    program = build_random_program(rng).seal()
    optimized, _stats = optimize(program)
    src = bytes(rng.integers(0, 256, MEM_SIZE, dtype=np.uint8))
    result_a, dst_a = run(program, src)
    result_b, dst_b = run(optimized, src)
    assert result_a == result_b
    assert dst_a == dst_b


@settings(max_examples=60, deadline=None)
@given(seed=seeds)
def test_optimization_is_idempotent(seed):
    rng = np.random.default_rng(seed)
    program = build_random_program(rng).seal()
    once, _ = optimize(program)
    twice, stats = optimize(once)
    # A second pass finds nothing new of the structural kinds.
    assert stats.moves_coalesced == 0
    assert stats.dead_movis_removed == 0
    assert stats.labels_pruned == 0
    src = bytes(rng.integers(0, 256, MEM_SIZE, dtype=np.uint8))
    assert run(once, src) == run(twice, src)


@settings(max_examples=60, deadline=None)
@given(seed=seeds)
def test_optimizer_never_grows_programs(seed):
    rng = np.random.default_rng(seed)
    program = build_random_program(rng).seal()
    optimized, _ = optimize(program)
    assert len(optimized) <= len(program)
