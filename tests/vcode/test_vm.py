"""Unit tests for the vcode emitter and VM."""

import struct

import pytest

from repro.vcode import VM, Emitter, Op, VMError


def run(build, memory=None, **vm_kwargs):
    em = Emitter()
    build(em)
    em.ret()
    program = em.seal()
    vm = VM(**vm_kwargs)
    result = vm.run(program, memory or {})
    return result, vm


class TestAlu:
    def test_movi_and_return_register(self):
        result, _ = run(lambda em: em.movi(1, 42))
        assert result == 42

    def test_add_addi(self):
        def build(em):
            em.movi(2, 10)
            em.movi(3, 32)
            em.add(1, 2, 3)
            em.addi(1, 1, 5)

        assert run(build)[0] == 47

    def test_sub_and_muli(self):
        def build(em):
            em.movi(2, 100)
            em.movi(3, 58)
            em.sub(1, 2, 3)
            em.muli(1, 1, 3)

        assert run(build)[0] == 126

    def test_mov(self):
        def build(em):
            em.movi(5, 7)
            em.mov(1, 5)

        assert run(build)[0] == 7

    def test_wraparound_64bit(self):
        def build(em):
            em.movi(2, (1 << 64) - 1)
            em.addi(1, 2, 1)

        assert run(build)[0] == 0


class TestMemory:
    def test_ld_st_round_trip(self):
        src = bytearray(struct.pack(">i", -123456))
        dst = bytearray(4)

        def build(em):
            em.ld(2, "src", 0, 4, signed=True, endian="big")
            em.st(2, "dst", 0, 4, endian="little")

        run(build, {"src": src, "dst": dst})
        assert struct.unpack("<i", dst)[0] == -123456

    def test_byteswap_via_endian_load_store(self):
        src = bytearray(b"\x01\x02\x03\x04")
        dst = bytearray(4)

        def build(em):
            em.ld(2, "src", 0, 4, signed=False, endian="big")
            em.st(2, "dst", 0, 4, endian="little")

        run(build, {"src": src, "dst": dst})
        assert dst == b"\x04\x03\x02\x01"

    def test_widening_int4_to_int8(self):
        src = bytearray(struct.pack(">i", -7))
        dst = bytearray(8)

        def build(em):
            em.ld(2, "src", 0, 4, signed=True, endian="big")
            em.st(2, "dst", 0, 8, endian="little")

        run(build, {"src": src, "dst": dst})
        assert struct.unpack("<q", dst)[0] == -7

    def test_unsigned_load(self):
        src = bytearray(b"\xff\xff")
        dst = bytearray(4)

        def build(em):
            em.ld(2, "src", 0, 2, signed=False, endian="big")
            em.st(2, "dst", 0, 4, endian="little")

        run(build, {"src": src, "dst": dst})
        assert struct.unpack("<I", dst)[0] == 65535

    def test_float_load_store_width_change(self):
        src = bytearray(struct.pack(">f", 1.5))
        dst = bytearray(8)

        def build(em):
            em.ldf(0, "src", 0, 4, endian="big")
            em.stf(0, "dst", 0, 8, endian="little")

        run(build, {"src": src, "dst": dst})
        assert struct.unpack("<d", dst)[0] == 1.5

    def test_register_indexed_addressing(self):
        src = bytearray(struct.pack("<ii", 11, 22))
        dst = bytearray(8)

        def build(em):
            em.movi(3, 4)  # index register
            em.ld(2, "src", (3, 0), 4, signed=True, endian="little")
            em.st(2, "dst", (3, 0), 4, endian="little")

        run(build, {"src": src, "dst": dst})
        assert struct.unpack("<ii", dst) == (0, 22)

    def test_memcpy(self):
        src = bytearray(b"abcdefgh")
        dst = bytearray(8)

        def build(em):
            em.memcpy("dst", 2, "src", 0, 4)

        run(build, {"src": src, "dst": dst})
        assert dst == b"\x00\x00abcd\x00\x00"

    def test_out_of_bounds_faults(self):
        def build(em):
            em.ld(2, "src", 100, 4, signed=True, endian="big")

        with pytest.raises(VMError, match="fault"):
            run(build, {"src": bytearray(4)})

    def test_unknown_segment_faults(self):
        def build(em):
            em.ld(2, "nope", 0, 4, signed=True, endian="big")

        with pytest.raises(VMError):
            run(build, {"src": bytearray(4)})


class TestControlFlow:
    def test_loop_sums_array(self):
        values = list(range(10))
        src = bytearray(struct.pack("<10i", *values))

        def build(em):
            em.movi(1, 0)  # acc
            em.movi(2, 0)  # idx (bytes)
            em.movi(3, 40)  # end
            em.label("top")
            em.bge(2, 3, "done")
            em.ld(4, "src", (2, 0), 4, signed=True, endian="little")
            em.add(1, 1, 4)
            em.addi(2, 2, 4)
            em.jmp("top")
            em.label("done")

        result, vm = run(build, {"src": src})
        assert result == sum(values)
        assert vm.steps > 10

    def test_beq_bne(self):
        def build(em):
            em.movi(2, 5)
            em.movi(3, 5)
            em.movi(1, 0)
            em.beq(2, 3, "eq")
            em.movi(1, 111)
            em.label("eq")
            em.addi(1, 1, 1)

        assert run(build)[0] == 1

    def test_blt_signed_comparison(self):
        def build(em):
            em.movi(2, (1 << 64) - 1)  # -1 as two's complement
            em.movi(3, 1)
            em.movi(1, 0)
            em.blt(2, 3, "less")
            em.jmp("end")
            em.label("less")
            em.movi(1, 1)
            em.label("end")

        assert run(build)[0] == 1

    def test_step_limit_stops_runaway(self):
        def build(em):
            em.label("spin")
            em.jmp("spin")

        with pytest.raises(VMError, match="step limit"):
            run(build, max_steps=1000)

    def test_undefined_label_rejected_at_seal(self):
        em = Emitter()
        em.jmp("nowhere")
        em.ret()
        with pytest.raises(ValueError, match="undefined label"):
            em.seal()

    def test_duplicate_label_rejected(self):
        em = Emitter()
        em.label("a")
        with pytest.raises(ValueError):
            em.label("a")

    def test_cannot_emit_after_seal(self):
        em = Emitter()
        em.ret()
        em.seal()
        with pytest.raises(RuntimeError):
            em.movi(1, 0)


class TestConversions:
    def test_i2f(self):
        dst = bytearray(8)

        def build(em):
            em.movi(2, -9)
            em.cvt_i2f(0, 2)
            em.stf(0, "dst", 0, 8, endian="little")

        run(build, {"dst": dst})
        assert struct.unpack("<d", dst)[0] == -9.0

    def test_f2i_truncates(self):
        src = bytearray(struct.pack("<d", 3.9))
        dst = bytearray(4)

        def build(em):
            em.ldf(0, "src", 0, 8, endian="little")
            em.cvt_f2i(2, 0)
            em.st(2, "dst", 0, 4, endian="little")

        run(build, {"src": src, "dst": dst})
        assert struct.unpack("<i", dst)[0] == 3


class TestValidation:
    def test_bad_width_rejected_at_emit(self):
        em = Emitter()
        with pytest.raises(ValueError, match="width"):
            em.ld(2, "src", 0, 3, signed=True, endian="big")

    def test_bad_endian_rejected(self):
        em = Emitter()
        with pytest.raises(ValueError, match="endian"):
            em.ld(2, "src", 0, 4, signed=True, endian="middle")

    def test_disassemble_lists_instructions(self):
        em = Emitter()
        em.movi(1, 3)
        em.ret()
        text = em.seal().disassemble()
        assert "movi" in text and "ret" in text


class TestRegisterPool:
    def test_get_put_round_trip(self):
        from repro.vcode import RegisterPool

        pool = RegisterPool()
        r = pool.get_int()
        pool.put_int(r)
        assert pool.get_int() == r

    def test_double_free_rejected(self):
        from repro.vcode import RegisterPool

        pool = RegisterPool()
        r = pool.get_int()
        pool.put_int(r)
        with pytest.raises(ValueError):
            pool.put_int(r)

    def test_exhaustion(self):
        from repro.vcode import RegisterExhausted, RegisterPool

        pool = RegisterPool(num_int=4, reserved_int=2)
        pool.get_int()
        pool.get_int()
        with pytest.raises(RegisterExhausted):
            pool.get_int()

    def test_scratch_context_manager(self):
        from repro.vcode import RegisterPool

        pool = RegisterPool()
        with pool.scratch_int() as r:
            assert pool.live_counts == (1, 0)
        assert pool.live_counts == (0, 0)
