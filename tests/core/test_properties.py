"""Property-based tests (hypothesis): core invariants over random schemas.

The central invariant of the whole system: for ANY record schema and ANY
pair of simulated machines, a record encoded on the sender round-trips
bit-meaningfully through every wire system — and through every PBIO
conversion backend — to the receiver's native representation.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.abi import (
    MACHINES,
    CType,
    FieldDecl,
    RecordSchema,
    codec_for,
    layout_record,
    records_equal,
)
from repro.core import IOContext, IOFormat, build_plan, match_formats
from repro.core.conversion import InterpretedConverter, generate_converter
from repro.workloads.generators import random_record, random_schema

MACHINE_NAMES = sorted(MACHINES)

machines = st.sampled_from(MACHINE_NAMES)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def build_schema_and_record(seed: int, allow_strings: bool = False, allow_nested: bool = False):
    rng = np.random.default_rng(seed)
    schema = random_schema(rng, allow_strings=allow_strings, allow_nested=allow_nested)
    record = random_record(schema, rng)
    return schema, record


@settings(max_examples=60, deadline=None)
@given(seed=seeds, src=machines, dst=machines)
def test_pbio_dcg_round_trips_any_schema(seed, src, dst):
    schema, record = build_schema_and_record(seed, allow_strings=True, allow_nested=True)
    sender = IOContext(MACHINES[src])
    receiver = IOContext(MACHINES[dst])
    h = sender.register_format(schema)
    receiver.expect(schema)
    receiver.receive(sender.announce(h))
    out = receiver.receive(sender.encode(h, record))
    assert records_equal(record, out, rel_tol=1e-5)


@settings(max_examples=30, deadline=None)
@given(seed=seeds, src=machines, dst=machines)
def test_interpreted_and_dcg_agree_bit_for_bit(seed, src, dst):
    schema, record = build_schema_and_record(seed, allow_strings=True, allow_nested=True)
    src_layout = layout_record(schema, MACHINES[src])
    dst_layout = layout_record(schema, MACHINES[dst])
    plan = build_plan(IOFormat.from_layout(src_layout), IOFormat.from_layout(dst_layout))
    native = codec_for(src_layout).encode(record)
    interpreted = InterpretedConverter(plan)(native)
    generated = generate_converter(plan, backend="python").convert(native)
    assert interpreted == generated


ieee_machines = st.sampled_from([m for m in MACHINE_NAMES if MACHINES[m].float_format == "ieee754"])


@settings(max_examples=20, deadline=None)
@given(seed=seeds, src=ieee_machines, dst=ieee_machines)
def test_vcode_backend_agrees_with_python(seed, src, dst):
    schema, record = build_schema_and_record(seed, allow_strings=False)
    src_layout = layout_record(schema, MACHINES[src])
    dst_layout = layout_record(schema, MACHINES[dst])
    plan = build_plan(IOFormat.from_layout(src_layout), IOFormat.from_layout(dst_layout))
    native = codec_for(src_layout).encode(record)
    py = generate_converter(plan, backend="python").convert(native)
    vc = generate_converter(plan, backend="vcode").convert(native)
    assert py == vc


@settings(max_examples=60, deadline=None)
@given(seed=seeds, machine=machines)
def test_format_meta_round_trips(seed, machine):
    schema, _ = build_schema_and_record(seed, allow_strings=True)
    fmt = IOFormat.from_layout(layout_record(schema, MACHINES[machine]))
    assert IOFormat.from_meta_bytes(fmt.to_meta_bytes()) == fmt


@settings(max_examples=60, deadline=None)
@given(seed=seeds, machine=machines)
def test_layout_invariants(seed, machine):
    rng = np.random.default_rng(seed)
    schema = random_schema(rng, allow_strings=True)
    layout = layout_record(schema, MACHINES[machine])
    # offsets are aligned, non-overlapping, inside the record
    pos = 0
    for f in layout.fields:
        align = layout.machine.align_of(f.ctype)
        assert f.offset % align == 0
        assert f.offset >= pos
        pos = f.end
    assert layout.size >= pos
    assert layout.size % layout.alignment == 0
    assert layout.padding_bytes() == sum(g for _, g in layout.gaps())


@settings(max_examples=40, deadline=None)
@given(seed=seeds, machine=machines)
def test_native_codec_round_trip(seed, machine):
    rng = np.random.default_rng(seed)
    schema = random_schema(rng, allow_strings=True)
    record = random_record(schema, rng)
    codec = codec_for(layout_record(schema, MACHINES[machine]))
    assert records_equal(record, codec.decode(codec.encode(record)), rel_tol=1e-5)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, src=machines, dst=machines)
def test_same_machine_match_is_zero_copy(seed, src, dst):
    schema, _ = build_schema_and_record(seed)
    wire = IOFormat.from_layout(layout_record(schema, MACHINES[src]))
    native = IOFormat.from_layout(layout_record(schema, MACHINES[dst]))
    match = match_formats(wire, native)
    if src == dst:
        assert match.zero_copy
        assert match.mismatch_count == 0
    # No fields ever go missing between identical schemas.
    assert not match.missing_names and not match.ignored_wire_fields


@settings(max_examples=40, deadline=None)
@given(seed=seeds, src=machines, dst=machines)
def test_plan_ops_stay_in_bounds(seed, src, dst):
    schema, _ = build_schema_and_record(seed)
    wire = IOFormat.from_layout(layout_record(schema, MACHINES[src]))
    native = IOFormat.from_layout(layout_record(schema, MACHINES[dst]))
    plan = build_plan(wire, native)
    for op in plan.ops:
        assert 0 <= op.dst_off and op.dst_end <= native.record_size
        if op.kind.value != "zero":
            assert 0 <= op.src_off and op.src_end <= wire.record_size


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_wire_systems_round_trip_random_schemas(seed):
    from repro.wire import IiopWire, MpiWire, XdrWire, XmlWire

    rng = np.random.default_rng(seed)
    schema = random_schema(rng, allow_strings=False)
    record = random_record(schema, rng)
    src = layout_record(schema, MACHINES["i86"])
    dst = layout_record(schema, MACHINES["sparc"])
    native = codec_for(src).encode(record)
    for system in (MpiWire(), XdrWire(), IiopWire(), XmlWire()):
        bound = system.bind(src, dst)
        out = codec_for(dst).decode(bound.decode(bound.encode(native)))
        assert records_equal(record, out, rel_tol=1e-5), system.name
