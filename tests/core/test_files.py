"""Tests for PBIO self-describing files."""

import io

import pytest

from repro.abi import ALPHA, SPARC_V8, X86, RecordSchema, records_equal
from repro.core import IOContext, MessageError, read_records, write_records
from repro.core.files import (
    FILE_MAGIC,
    PbioFileReader,
    PbioFileWriter,
    file_to_buffer,
)
from repro.workloads.generators import record_stream


def schema(*pairs, name="rec"):
    return RecordSchema.from_pairs(name, list(pairs))


SIMPLE = schema(("i", "int"), ("d", "double"), ("name", "char[8]"))


class TestWriteRead:
    def test_round_trip_same_machine(self, tmp_path):
        path = str(tmp_path / "data.pbio")
        records = [{"i": k, "d": k * 0.5, "name": b"n%d" % k} for k in range(10)]
        write_records(IOContext(X86), path, SIMPLE, records)
        out = read_records(IOContext(X86), path, SIMPLE)
        assert len(out) == 10
        for want, got in zip(records, out):
            assert records_equal(want, got)

    def test_cross_machine_file(self, tmp_path):
        # Written on sparc, read on x86: the file carries its own format.
        path = str(tmp_path / "data.pbio")
        records = [{"i": 1, "d": 2.5, "name": b"abc"}]
        write_records(IOContext(SPARC_V8), path, SIMPLE, records)
        out = read_records(IOContext(X86), path, SIMPLE)
        assert records_equal(records[0], out[0])

    def test_read_by_three_different_machines(self, tmp_path):
        path = str(tmp_path / "data.pbio")
        records = list(record_stream(SIMPLE, count=4, seed=5))
        write_records(IOContext(ALPHA), path, SIMPLE, records)
        for machine in (X86, SPARC_V8, ALPHA):
            out = read_records(IOContext(machine), path, SIMPLE)
            for want, got in zip(records, out):
                assert records_equal(want, got, rel_tol=1e-5)

    def test_meta_written_once_per_format(self):
        ctx = IOContext(X86)
        buf = io.BytesIO()
        writer = PbioFileWriter(ctx, buf)
        h = ctx.register_format(SIMPLE)
        for k in range(5):
            writer.write(h, {"i": k, "d": 0.0, "name": b"x"})
        assert writer.records_written == 5
        reader_ctx = IOContext(X86)
        reader_ctx.expect(SIMPLE)
        reader = PbioFileReader(reader_ctx, io.BytesIO(buf.getvalue()))
        assert len(reader.read_all()) == 5
        assert reader_ctx.registry.announcements_received == 1

    def test_multiple_formats_interleaved(self, tmp_path):
        path = str(tmp_path / "multi.pbio")
        s1 = schema(("a", "int"), name="r1")
        s2 = schema(("b", "double"), name="r2")
        ctx = IOContext(X86)
        with PbioFileWriter.open(ctx, path) as writer:
            h1, h2 = ctx.register_format(s1), ctx.register_format(s2)
            writer.write(h1, {"a": 1})
            writer.write(h2, {"b": 2.0})
            writer.write(h1, {"a": 3})
        rctx = IOContext(SPARC_V8)
        rctx.expect(s1)
        rctx.expect(s2)
        with PbioFileReader.open(rctx, path) as reader:
            out = reader.read_all()
        assert out == [{"a": 1}, {"b": 2.0}, {"a": 3}]

    def test_empty_file_has_no_records(self, tmp_path):
        path = str(tmp_path / "empty.pbio")
        ctx = IOContext(X86)
        PbioFileWriter.open(ctx, path).close()
        rctx = IOContext(X86)
        with PbioFileReader.open(rctx, path) as reader:
            assert reader.read_all() == []

    def test_file_to_buffer(self):
        blob = file_to_buffer(IOContext(X86), SIMPLE, [{"i": 1, "d": 1.0, "name": b"z"}])
        assert blob.startswith(FILE_MAGIC)


class TestCorruption:
    def test_bad_magic_rejected(self):
        with pytest.raises(MessageError, match="magic"):
            PbioFileReader(IOContext(X86), io.BytesIO(b"NOTPBIO!" + b"\x00" * 4))

    def test_truncated_header_rejected(self):
        with pytest.raises(MessageError, match="truncated"):
            PbioFileReader(IOContext(X86), io.BytesIO(b"PB"))

    def test_truncated_body_rejected(self):
        blob = file_to_buffer(IOContext(X86), SIMPLE, [{"i": 1, "d": 1.0, "name": b"z"}])
        rctx = IOContext(X86)
        rctx.expect(SIMPLE)
        reader = PbioFileReader(rctx, io.BytesIO(blob[:-5]))
        with pytest.raises(MessageError, match="truncated"):
            reader.read_all()

    def test_truncated_length_prefix_rejected(self):
        blob = file_to_buffer(IOContext(X86), SIMPLE, [{"i": 1, "d": 1.0, "name": b"z"}])
        rctx = IOContext(X86)
        rctx.expect(SIMPLE)
        # cut inside the final record's length prefix
        header_plus = blob[: len(blob) - 1]
        # find a cut that leaves 1-3 bytes of a length prefix: cut to the
        # last message boundary + 2
        reader = PbioFileReader(rctx, io.BytesIO(header_plus))
        with pytest.raises(MessageError):
            reader.read_all()


class TestCrashSafety:
    """v2 framing: CRC trailers, recover policies, append, v1 compat."""

    RECORDS = [{"i": k, "d": k * 1.5, "name": b"r%d" % k} for k in range(4)]

    def reader_for(self, blob, recover="raise"):
        rctx = IOContext(X86)
        rctx.expect(SIMPLE)
        return rctx, PbioFileReader(rctx, io.BytesIO(blob), recover=recover)

    def frame_boundaries(self, blob):
        import struct as _struct

        boundaries, pos = [12], 12
        while pos < len(blob):
            (n,) = _struct.unpack_from(">I", blob, pos)
            pos += 4 + n + 8
            boundaries.append(pos)
        return boundaries

    def test_kill_minus_nine_mid_append_recovers_prefix(self):
        """Simulated crash: the file truncated at EVERY possible byte is
        readable up to the last intact record with recover="skip"."""
        blob = file_to_buffer(IOContext(X86), SIMPLE, self.RECORDS)
        boundaries = self.frame_boundaries(blob)
        for cut in range(12, len(blob)):
            intact_frames = sum(1 for b in boundaries if b <= cut) - 1
            expected = max(0, intact_frames - 1)  # first frame is the meta
            rctx, reader = self.reader_for(blob[:cut], recover="skip")
            out = [r["i"] for r in reader]
            assert out == [r["i"] for r in self.RECORDS[:expected]]
            if cut not in boundaries:
                assert rctx.metrics.value("file.torn_tails") == 1

    def test_corrupt_record_raise_policy(self):
        blob = bytearray(file_to_buffer(IOContext(X86), SIMPLE, self.RECORDS))
        second_record = self.frame_boundaries(blob)[2]
        blob[second_record + 4 + 16 + 2] ^= 0xFF  # payload byte of record 2
        _, reader = self.reader_for(bytes(blob))
        with pytest.raises(MessageError, match="CRC"):
            reader.read_all()

    def test_corrupt_record_skip_policy_salvages_the_rest(self):
        blob = bytearray(file_to_buffer(IOContext(X86), SIMPLE, self.RECORDS))
        second_record = self.frame_boundaries(blob)[2]
        blob[second_record + 4 + 16 + 2] ^= 0xFF
        rctx, reader = self.reader_for(bytes(blob), recover="skip")
        assert [r["i"] for r in reader] == [0, 2, 3]  # record 1 dropped
        assert rctx.metrics.value("file.corrupt_records") == 1
        assert rctx.metrics.value("file.recovered_records") == 2

    def test_corrupt_record_stop_policy(self):
        blob = bytearray(file_to_buffer(IOContext(X86), SIMPLE, self.RECORDS))
        second_record = self.frame_boundaries(blob)[2]
        blob[second_record + 4 + 16 + 2] ^= 0xFF
        rctx, reader = self.reader_for(bytes(blob), recover="stop")
        assert [r["i"] for r in reader] == [0]

    def test_v1_file_still_reads(self):
        blob = file_to_buffer(IOContext(X86), SIMPLE, self.RECORDS, version=1)
        _, reader = self.reader_for(blob)
        assert reader.version == 1
        assert [r["i"] for r in reader] == [0, 1, 2, 3]

    def test_v1_torn_tail_skip_policy_stops_cleanly(self):
        blob = file_to_buffer(IOContext(X86), SIMPLE, self.RECORDS, version=1)
        rctx, reader = self.reader_for(blob[:-3], recover="skip")
        assert [r["i"] for r in reader] == [0, 1, 2]
        assert rctx.metrics.value("file.torn_tails") == 1

    def test_append_continues_the_file(self, tmp_path):
        path = str(tmp_path / "grow.pbio")
        ctx = IOContext(X86)
        with PbioFileWriter.open(ctx, path) as writer:
            writer.write(ctx.register_format(SIMPLE), self.RECORDS[0])
        ctx2 = IOContext(X86)
        with PbioFileWriter.append(ctx2, path) as writer:
            assert writer.version == 2
            writer.write(ctx2.register_format(SIMPLE), self.RECORDS[1])
        out = read_records(IOContext(SPARC_V8), path, SIMPLE)
        assert [r["i"] for r in out] == [0, 1]

    def test_append_preserves_v1_framing(self, tmp_path):
        path = str(tmp_path / "old.pbio")
        ctx = IOContext(X86)
        with PbioFileWriter.open(ctx, path, version=1) as writer:
            writer.write(ctx.register_format(SIMPLE), self.RECORDS[0])
        ctx2 = IOContext(X86)
        with PbioFileWriter.append(ctx2, path) as writer:
            assert writer.version == 1
            writer.write(ctx2.register_format(SIMPLE), self.RECORDS[1])
        out = read_records(IOContext(X86), path, SIMPLE)
        assert [r["i"] for r in out] == [0, 1]

    def test_bogus_length_prefix_cannot_demand_gigabytes(self):
        import struct as _struct

        blob = bytearray(file_to_buffer(IOContext(X86), SIMPLE, self.RECORDS[:1]))
        _struct.pack_into(">I", blob, 12, 0x7FFFFFFF)
        _, reader = self.reader_for(bytes(blob))
        with pytest.raises(MessageError):
            reader.read_all()

    def test_invalid_recover_policy_rejected(self):
        with pytest.raises(ValueError):
            PbioFileReader(IOContext(X86), io.BytesIO(b""), recover="maybe")


class TestReflectionOverFiles:
    def test_iter_raw_with_generic_decode(self, tmp_path):
        from repro.core import generic_decode

        path = str(tmp_path / "gen.pbio")
        write_records(IOContext(SPARC_V8), path, SIMPLE, [{"i": 7, "d": 1.5, "name": b"q"}])
        # Reader never calls expect(): pure reflection.
        rctx = IOContext(X86)
        with PbioFileReader.open(rctx, path) as reader:
            records = [generic_decode(rctx, m) for m in reader.iter_raw()]
        assert records[0]["i"] == 7
        assert records[0]["d"] == 1.5

    def test_versioned_file_read_by_old_reader(self, tmp_path):
        from repro.abi import CType, FieldDecl

        path = str(tmp_path / "v2.pbio")
        v2 = SIMPLE.extended("rec", [FieldDecl("extra", CType.INT)])
        write_records(
            IOContext(X86), path, v2, [{"i": 1, "d": 2.0, "name": b"a", "extra": 9}]
        )
        out = read_records(IOContext(X86), path, SIMPLE)  # old reader
        assert out[0] == {"i": 1, "d": 2.0, "name": b"a\x00" * 1 + b"\x00" * 6}
        assert "extra" not in out[0]
