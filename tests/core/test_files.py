"""Tests for PBIO self-describing files."""

import io

import pytest

from repro.abi import ALPHA, SPARC_V8, X86, RecordSchema, records_equal
from repro.core import IOContext, MessageError, read_records, write_records
from repro.core.files import (
    FILE_MAGIC,
    PbioFileReader,
    PbioFileWriter,
    file_to_buffer,
)
from repro.workloads.generators import record_stream


def schema(*pairs, name="rec"):
    return RecordSchema.from_pairs(name, list(pairs))


SIMPLE = schema(("i", "int"), ("d", "double"), ("name", "char[8]"))


class TestWriteRead:
    def test_round_trip_same_machine(self, tmp_path):
        path = str(tmp_path / "data.pbio")
        records = [{"i": k, "d": k * 0.5, "name": b"n%d" % k} for k in range(10)]
        write_records(IOContext(X86), path, SIMPLE, records)
        out = read_records(IOContext(X86), path, SIMPLE)
        assert len(out) == 10
        for want, got in zip(records, out):
            assert records_equal(want, got)

    def test_cross_machine_file(self, tmp_path):
        # Written on sparc, read on x86: the file carries its own format.
        path = str(tmp_path / "data.pbio")
        records = [{"i": 1, "d": 2.5, "name": b"abc"}]
        write_records(IOContext(SPARC_V8), path, SIMPLE, records)
        out = read_records(IOContext(X86), path, SIMPLE)
        assert records_equal(records[0], out[0])

    def test_read_by_three_different_machines(self, tmp_path):
        path = str(tmp_path / "data.pbio")
        records = list(record_stream(SIMPLE, count=4, seed=5))
        write_records(IOContext(ALPHA), path, SIMPLE, records)
        for machine in (X86, SPARC_V8, ALPHA):
            out = read_records(IOContext(machine), path, SIMPLE)
            for want, got in zip(records, out):
                assert records_equal(want, got, rel_tol=1e-5)

    def test_meta_written_once_per_format(self):
        ctx = IOContext(X86)
        buf = io.BytesIO()
        writer = PbioFileWriter(ctx, buf)
        h = ctx.register_format(SIMPLE)
        for k in range(5):
            writer.write(h, {"i": k, "d": 0.0, "name": b"x"})
        assert writer.records_written == 5
        reader_ctx = IOContext(X86)
        reader_ctx.expect(SIMPLE)
        reader = PbioFileReader(reader_ctx, io.BytesIO(buf.getvalue()))
        assert len(reader.read_all()) == 5
        assert reader_ctx.registry.announcements_received == 1

    def test_multiple_formats_interleaved(self, tmp_path):
        path = str(tmp_path / "multi.pbio")
        s1 = schema(("a", "int"), name="r1")
        s2 = schema(("b", "double"), name="r2")
        ctx = IOContext(X86)
        with PbioFileWriter.open(ctx, path) as writer:
            h1, h2 = ctx.register_format(s1), ctx.register_format(s2)
            writer.write(h1, {"a": 1})
            writer.write(h2, {"b": 2.0})
            writer.write(h1, {"a": 3})
        rctx = IOContext(SPARC_V8)
        rctx.expect(s1)
        rctx.expect(s2)
        with PbioFileReader.open(rctx, path) as reader:
            out = reader.read_all()
        assert out == [{"a": 1}, {"b": 2.0}, {"a": 3}]

    def test_empty_file_has_no_records(self, tmp_path):
        path = str(tmp_path / "empty.pbio")
        ctx = IOContext(X86)
        PbioFileWriter.open(ctx, path).close()
        rctx = IOContext(X86)
        with PbioFileReader.open(rctx, path) as reader:
            assert reader.read_all() == []

    def test_file_to_buffer(self):
        blob = file_to_buffer(IOContext(X86), SIMPLE, [{"i": 1, "d": 1.0, "name": b"z"}])
        assert blob.startswith(FILE_MAGIC)


class TestCorruption:
    def test_bad_magic_rejected(self):
        with pytest.raises(MessageError, match="magic"):
            PbioFileReader(IOContext(X86), io.BytesIO(b"NOTPBIO!" + b"\x00" * 4))

    def test_truncated_header_rejected(self):
        with pytest.raises(MessageError, match="truncated"):
            PbioFileReader(IOContext(X86), io.BytesIO(b"PB"))

    def test_truncated_body_rejected(self):
        blob = file_to_buffer(IOContext(X86), SIMPLE, [{"i": 1, "d": 1.0, "name": b"z"}])
        rctx = IOContext(X86)
        rctx.expect(SIMPLE)
        reader = PbioFileReader(rctx, io.BytesIO(blob[:-5]))
        with pytest.raises(MessageError, match="truncated"):
            reader.read_all()

    def test_truncated_length_prefix_rejected(self):
        blob = file_to_buffer(IOContext(X86), SIMPLE, [{"i": 1, "d": 1.0, "name": b"z"}])
        rctx = IOContext(X86)
        rctx.expect(SIMPLE)
        # cut inside the final record's length prefix
        header_plus = blob[: len(blob) - 1]
        # find a cut that leaves 1-3 bytes of a length prefix: cut to the
        # last message boundary + 2
        reader = PbioFileReader(rctx, io.BytesIO(header_plus))
        with pytest.raises(MessageError):
            reader.read_all()


class TestReflectionOverFiles:
    def test_iter_raw_with_generic_decode(self, tmp_path):
        from repro.core import generic_decode

        path = str(tmp_path / "gen.pbio")
        write_records(IOContext(SPARC_V8), path, SIMPLE, [{"i": 7, "d": 1.5, "name": b"q"}])
        # Reader never calls expect(): pure reflection.
        rctx = IOContext(X86)
        with PbioFileReader.open(rctx, path) as reader:
            records = [generic_decode(rctx, m) for m in reader.iter_raw()]
        assert records[0]["i"] == 7
        assert records[0]["d"] == 1.5

    def test_versioned_file_read_by_old_reader(self, tmp_path):
        from repro.abi import CType, FieldDecl

        path = str(tmp_path / "v2.pbio")
        v2 = SIMPLE.extended("rec", [FieldDecl("extra", CType.INT)])
        write_records(
            IOContext(X86), path, v2, [{"i": 1, "d": 2.0, "name": b"a", "extra": 9}]
        )
        out = read_records(IOContext(X86), path, SIMPLE)  # old reader
        assert out[0] == {"i": 1, "d": 2.0, "name": b"a\x00" * 1 + b"\x00" * 6}
        assert "extra" not in out[0]
