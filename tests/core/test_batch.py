"""Batch decode: byte-identity with the sequential path, under chaos too.

The record-batch fast path (columnar conversion, consecutive-run
grouping) is only allowed to be *faster* than a sequential
``ingest``/``decode`` loop — never observably different.  These tests
pin that down over random schemas, mixed-format interleavings, fault-
injected streams and DecodeLimits rejections.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.abi import MACHINES, SPARC_V8, X86, RecordSchema, records_equal
from repro.core import IOContext, PbioError
from repro.core.conversion import build_batch_converter, build_plan
from repro.core.safety import DecodeLimits
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.transport import InMemoryPipe
from repro.workloads.generators import random_record, random_schema

MACHINE_NAMES = sorted(MACHINES)

machines = st.sampled_from(MACHINE_NAMES)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def fresh_receiver(dst, schemas, conversion="dcg", limits=None):
    kwargs = {"conversion": conversion}
    if limits is not None:
        kwargs["limits"] = limits
    receiver = IOContext(MACHINES[dst] if isinstance(dst, str) else dst, **kwargs)
    for schema in schemas:
        receiver.expect(schema)
    return receiver


def assert_same_decodes(batched, reference):
    """Slot-for-slot equality; record dicts may hold numpy array fields."""
    assert len(batched) == len(reference)
    for got, want in zip(batched, reference):
        if want is None or got is None:
            assert got is None and want is None
        else:
            assert records_equal(got, want)


def sequential_ingest(receiver, frames):
    """The reference loop: one slot per frame, None for absorbed/rejected."""
    out = []
    for frame in frames:
        try:
            out.append(receiver.pipeline.ingest(frame))
        except PbioError:
            out.append(None)
    return out


def build_stream(seed, src):
    """Two random formats, their announcements, and interleaved data."""
    rng = np.random.default_rng(seed)
    schema_a = random_schema(rng, name="fmt_a", allow_strings=True, allow_nested=True)
    schema_b = random_schema(rng, name="fmt_b", allow_strings=True, allow_nested=True)
    sender = IOContext(MACHINES[src] if isinstance(src, str) else src)
    ha = sender.register_format(schema_a)
    hb = sender.register_format(schema_b)
    frames = [sender.announce(ha), sender.announce(hb)]
    for _ in range(int(rng.integers(3, 20))):
        handle, schema = (ha, schema_a) if rng.random() < 0.6 else (hb, schema_b)
        frames.append(sender.encode(handle, random_record(schema, rng)))
    return (schema_a, schema_b), frames


@settings(max_examples=40, deadline=None)
@given(seed=seeds, src=machines, dst=machines)
def test_decode_batch_matches_sequential_over_mixed_streams(seed, src, dst):
    schemas, frames = build_stream(seed, src)
    reference = sequential_ingest(fresh_receiver(dst, schemas), frames)
    batched = fresh_receiver(dst, schemas).pipeline.decode_batch(frames)
    assert_same_decodes(batched, reference)


@settings(max_examples=25, deadline=None)
@given(seed=seeds, src=machines, dst=machines)
def test_decode_batch_native_is_byte_identical(seed, src, dst):
    schemas, frames = build_stream(seed, src)
    scalar = fresh_receiver(dst, schemas)
    reference = []
    for frame in frames:
        try:
            scalar.pipeline.ingest(frame)
        except PbioError:
            reference.append(None)
            continue
        try:
            reference.append(scalar.pipeline.decode_native(frame))
        except PbioError:
            reference.append(None)
    # Announcements decode as None on both sides; data frames must match
    # byte for byte (ingest above decoded them once already, so replace
    # the double-decoded announcements with None explicitly).
    reference[0] = reference[1] = None
    batched = fresh_receiver(dst, schemas).pipeline.decode_batch_native(frames)
    assert batched == reference


@settings(max_examples=25, deadline=None)
@given(seed=seeds, chaos_seed=st.integers(min_value=0, max_value=2**16))
def test_decode_batch_matches_sequential_under_chaos(seed, chaos_seed):
    """A fault-perturbed stream decodes identically batched or looped —
    and a damaged frame rejects only itself under on_error="skip"."""
    schemas, frames = build_stream(seed, "sparc")
    pipe = InMemoryPipe()
    chaotic = FaultInjectingTransport(
        pipe.a,
        FaultPlan(drop=0.1, truncate=0.1, corrupt=0.15, duplicate=0.1, delay=0.1),
        seed=chaos_seed,
    )
    for frame in frames:
        chaotic.send(frame)
    chaotic.flush()
    received = [pipe.b.recv() for _ in range(pipe.b.pending())]
    reference = sequential_ingest(fresh_receiver("i86", schemas), received)
    batched = fresh_receiver("i86", schemas).pipeline.decode_batch(
        received, on_error="skip"
    )
    assert_same_decodes(batched, reference)


def linked(sch, src=SPARC_V8, dst=X86, **kwargs):
    sender = IOContext(src)
    receiver = IOContext(dst, **kwargs)
    handle = sender.register_format(sch)
    receiver.expect(sch)
    return sender, receiver, handle


class TestBatchRejectionIsolation:
    SCHEMA = RecordSchema.from_pairs("rec", [("i", "int"), ("d", "double[4]")])

    def frames(self, sender, handle, n=8):
        out = [sender.announce(handle)]
        out += [
            sender.encode(handle, {"i": k, "d": [k * 0.5] * 4}) for k in range(n)
        ]
        return out

    def test_bad_frame_rejects_only_itself(self):
        sender, receiver, handle = linked(self.SCHEMA)
        frames = self.frames(sender, handle)
        frames[4] = frames[4][:-3]  # torn payload: length mismatch
        out = receiver.pipeline.decode_batch(frames, on_error="skip")
        assert out[4] is None
        assert [o is not None for o in out[1:]] == [
            True, True, True, False, True, True, True, True,
        ]
        assert receiver.metrics.value("decode.batch.rejected") == 1
        assert receiver.metrics.value("decode.rejected") == 1

    def test_oversized_frame_rejected_by_limits(self):
        limits = DecodeLimits(max_message_size=256)
        sender, receiver, handle = linked(self.SCHEMA, limits=limits)
        frames = self.frames(sender, handle, n=4)
        frames.insert(3, frames[3] + b"\x00" * 512)  # blows max_message_size
        out = receiver.pipeline.decode_batch(frames, on_error="skip")
        assert out[3] is None
        assert sum(o is not None for o in out) == 4
        assert receiver.metrics.value("decode.rejected") == 1

    def test_on_error_raise_propagates_first_rejection(self):
        sender, receiver, handle = linked(self.SCHEMA)
        frames = self.frames(sender, handle)
        frames[2] = b"\x00" * 40
        with pytest.raises(PbioError):
            receiver.pipeline.decode_batch(frames)

    def test_invalid_on_error_rejected(self):
        _, receiver, _ = linked(self.SCHEMA)
        with pytest.raises(ValueError, match="on_error"):
            receiver.pipeline.decode_batch([], on_error="ignore")


class TestBatchConverterDispatch:
    def test_liftable_schema_uses_columnar_converter(self):
        sch = RecordSchema.from_pairs("rec", [("i", "int"), ("d", "double[4]")])
        sender, receiver, handle = linked(sch)
        frames = [sender.announce(handle)] + [
            sender.encode(handle, {"i": k, "d": [float(k)] * 4}) for k in range(6)
        ]
        receiver.pipeline.decode_batch(frames)
        assert receiver.metrics.value("decode.batch.converted") == 6
        assert receiver.metrics.value("decode.batch.fallback") == 0
        assert receiver.metrics.value("decode.batch.groups") == 1

    def test_string_schema_falls_back_to_scalar_loop(self):
        sch = RecordSchema.from_pairs("rec", [("i", "int"), ("s", "string")])
        sender, receiver, handle = linked(sch)
        frames = [sender.announce(handle)] + [
            sender.encode(handle, {"i": k, "s": f"v{k}"}) for k in range(5)
        ]
        out = receiver.pipeline.decode_batch(frames)
        assert [o for o in out if o is not None] == [
            {"i": k, "s": f"v{k}"} for k in range(5)
        ]
        assert receiver.metrics.value("decode.batch.fallback") == 5
        assert receiver.metrics.value("decode.batch.converted") == 0

    def test_zero_copy_pairs_stay_zero_copy(self):
        sch = RecordSchema.from_pairs("rec", [("i", "int"), ("d", "double")])
        sender, receiver, handle = linked(sch, src=X86, dst=X86)
        frames = [sender.announce(handle)] + [
            sender.encode(handle, {"i": k, "d": 0.5}) for k in range(4)
        ]
        receiver.pipeline.decode_batch(frames)
        assert receiver.metrics.value("zero_copy_decodes") == 4
        assert receiver.metrics.value("decode.batch.converted") == 0
        assert receiver.metrics.value("converted_decodes") == 0

    def test_float_to_int_plans_are_not_lifted(self):
        # CVT_FLOAT_INT's scalar semantics (raise on NaN, truncate toward
        # zero) are not reproducible with astype: the builder must refuse.
        wire = IOContext(SPARC_V8).expect(
            RecordSchema.from_pairs("r", [("x", "double")])
        )
        native = IOContext(X86).expect(RecordSchema.from_pairs("r", [("x", "int")]))
        plan = build_plan(wire, native)
        assert build_batch_converter(plan) is None
