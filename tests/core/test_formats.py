"""Tests for wire fields, IOFormat meta-information, and the registry."""

import pytest

from repro.abi import SPARC_V8, X86, PrimKind, RecordSchema, layout_record
from repro.core import FormatError, FormatRegistry, IOFormat, UnknownFormatError, WireField
from repro.core.fields import validate_wire_fields, wire_fields_from_layout


def fmt_for(machine, *pairs, name="t"):
    schema = RecordSchema.from_pairs(name, list(pairs))
    return IOFormat.from_layout(layout_record(schema, machine))


class TestWireField:
    def test_from_layout_carries_geometry(self):
        fmt = fmt_for(SPARC_V8, ("c", "char"), ("d", "double"))
        f = fmt["d"]
        assert f.offset == 8 and f.size == 8 and f.count == 1
        assert f.kind is PrimKind.FLOAT

    def test_invalid_geometry_rejected(self):
        with pytest.raises(FormatError):
            WireField("x", PrimKind.INTEGER, 0, 0, 1)
        with pytest.raises(FormatError):
            WireField("x", PrimKind.INTEGER, 4, -1, 1)

    def test_total_size_arrays(self):
        f = WireField("v", PrimKind.FLOAT, 8, 0, 10)
        assert f.total_size == 80 and f.end == 80

    def test_validate_rejects_overlap(self):
        fields = (
            WireField("a", PrimKind.INTEGER, 4, 0, 1),
            WireField("b", PrimKind.INTEGER, 4, 2, 1),
        )
        with pytest.raises(FormatError, match="overlap"):
            validate_wire_fields(fields, 8)

    def test_validate_rejects_out_of_bounds(self):
        fields = (WireField("a", PrimKind.INTEGER, 4, 8, 1),)
        with pytest.raises(FormatError, match="past record size"):
            validate_wire_fields(fields, 8)

    def test_validate_rejects_duplicates(self):
        fields = (
            WireField("a", PrimKind.INTEGER, 4, 0, 1),
            WireField("a", PrimKind.INTEGER, 4, 4, 1),
        )
        with pytest.raises(FormatError, match="duplicate"):
            validate_wire_fields(fields, 8)


class TestIOFormatMeta:
    def test_meta_round_trip(self):
        fmt = fmt_for(SPARC_V8, ("i", "int"), ("d", "double[5]"), ("name", "char[16]"))
        back = IOFormat.from_meta_bytes(fmt.to_meta_bytes())
        assert back == fmt
        assert back.byte_order == "big"
        assert back.record_size == fmt.record_size
        assert back.field_names() == fmt.field_names()
        assert back["d"].count == 5

    def test_meta_round_trip_little_endian(self):
        fmt = fmt_for(X86, ("x", "float"))
        back = IOFormat.from_meta_bytes(fmt.to_meta_bytes())
        assert back.byte_order == "little"

    def test_meta_with_string_field(self):
        fmt = fmt_for(X86, ("tag", "string"), ("n", "int"))
        back = IOFormat.from_meta_bytes(fmt.to_meta_bytes())
        assert back["tag"].kind is PrimKind.STRING
        assert back.has_strings

    def test_bad_magic_rejected(self):
        with pytest.raises(FormatError, match="magic"):
            IOFormat.from_meta_bytes(b"XXXX" + b"\x00" * 20)

    def test_truncated_meta_rejected(self):
        fmt = fmt_for(X86, ("i", "int"))
        data = fmt.to_meta_bytes()
        with pytest.raises(FormatError):
            IOFormat.from_meta_bytes(data[: len(data) - 3])

    def test_fingerprint_distinguishes_layouts(self):
        # Same schema, different machines -> different natural formats.
        schema_pairs = (("i", "int"), ("d", "double"))
        assert fmt_for(X86, *schema_pairs) != fmt_for(SPARC_V8, *schema_pairs)

    def test_fingerprint_stable(self):
        assert fmt_for(X86, ("i", "int")) == fmt_for(X86, ("i", "int"))

    def test_describe_lists_fields(self):
        text = fmt_for(X86, ("i", "int"), ("v", "double[3]")).describe()
        assert "v" in text and "[3]" in text and "little-endian" in text

    def test_bad_byte_order_rejected(self):
        with pytest.raises(FormatError):
            IOFormat("t", (WireField("a", PrimKind.INTEGER, 4, 0, 1),), "middle", 4)


class TestFormatRegistry:
    def test_local_registration_idempotent(self):
        reg = FormatRegistry()
        fmt = fmt_for(X86, ("i", "int"))
        a = reg.register_local(fmt)
        b = reg.register_local(fmt_for(X86, ("i", "int")))
        assert a == b
        assert reg.local_format(a) == fmt

    def test_distinct_formats_distinct_ids(self):
        reg = FormatRegistry()
        a = reg.register_local(fmt_for(X86, ("i", "int")))
        b = reg.register_local(fmt_for(X86, ("j", "int")))
        assert a != b
        assert reg.local_ids() == [a, b]

    def test_remote_round_trip(self):
        reg = FormatRegistry()
        fmt = fmt_for(SPARC_V8, ("i", "int"))
        reg.register_remote(0xABC, 7, fmt)
        assert reg.knows_remote(0xABC, 7)
        assert reg.remote_format(0xABC, 7) == fmt
        assert reg.announcements_received == 1

    def test_unknown_remote_raises(self):
        reg = FormatRegistry()
        with pytest.raises(UnknownFormatError):
            reg.remote_format(1, 1)

    def test_conflicting_reannouncement_rejected(self):
        reg = FormatRegistry()
        reg.register_remote(1, 1, fmt_for(X86, ("i", "int")))
        with pytest.raises(FormatError, match="re-announced"):
            reg.register_remote(1, 1, fmt_for(X86, ("j", "int")))

    def test_same_reannouncement_allowed(self):
        reg = FormatRegistry()
        reg.register_remote(1, 1, fmt_for(X86, ("i", "int")))
        reg.register_remote(1, 1, fmt_for(X86, ("i", "int")))
        assert reg.announcements_received == 2

    def test_context_ids_scope_format_ids(self):
        reg = FormatRegistry()
        fa = fmt_for(X86, ("i", "int"))
        fb = fmt_for(SPARC_V8, ("i", "int"))
        reg.register_remote(1, 1, fa)
        reg.register_remote(2, 1, fb)
        assert reg.remote_format(1, 1) == fa
        assert reg.remote_format(2, 1) == fb
        assert len(reg.remote_formats()) == 2

    def test_unknown_local_id(self):
        reg = FormatRegistry()
        with pytest.raises(FormatError):
            reg.local_format(99)
