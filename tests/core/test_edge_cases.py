"""Edge-case coverage across the PBIO core."""

import pytest

from repro.abi import ALPHA, SPARC_V8, VAX, X86, RecordSchema, layout_record, records_equal
from repro.core import (
    IOContext,
    IOFormat,
    OpKind,
    PbioConnection,
    build_plan,
)
from repro.net import InMemoryPipe


def schema(*pairs, name="rec"):
    return RecordSchema.from_pairs(name, list(pairs))


def fmt(machine, sch):
    return IOFormat.from_layout(layout_record(sch, machine))


class TestArrayLengthMismatch:
    """Field matching tolerates arrays whose lengths changed between
    versions: extra wire elements are ignored, extra native elements are
    defaulted (same rule as whole fields)."""

    def run(self, src_spec, dst_spec, value):
        sender = IOContext(X86)
        receiver = IOContext(X86)
        h = sender.register_format(schema((("v"), src_spec)))
        receiver.expect(schema((("v"), dst_spec)))
        receiver.receive(sender.announce(h))
        return receiver.receive(sender.encode(h, {"v": value}))

    def test_wire_array_longer(self):
        out = self.run("int[6]", "int[4]", (1, 2, 3, 4, 5, 6))
        assert tuple(out["v"]) == (1, 2, 3, 4)

    def test_wire_array_shorter(self):
        out = self.run("int[3]", "int[5]", (1, 2, 3))
        assert tuple(out["v"]) == (1, 2, 3, 0, 0)

    def test_char_buffer_shrinks(self):
        out = self.run("char[12]", "char[4]", b"abcdefgh")
        assert out["v"] == b"abcd"

    def test_char_buffer_grows(self):
        out = self.run("char[4]", "char[12]", b"abcd")
        assert out["v"].rstrip(b"\x00") == b"abcd"

    def test_scalar_to_array_is_prefix(self):
        out = self.run("int", "int[3]", 7)
        assert tuple(out["v"]) == (7, 0, 0)


class TestPlanEdges:
    def test_empty_overlap_all_zeroed(self):
        # Completely disjoint field sets: every target defaulted.
        plan = build_plan(fmt(X86, schema(("a", "int"))), fmt(X86, schema(("b", "double"), name="rec")))
        assert [op.kind for op in plan.ops] == [OpKind.ZERO]

    def test_plan_histogram_and_describe(self):
        plan = build_plan(
            fmt(X86, schema(("a", "int"), ("d", "double"))),
            fmt(SPARC_V8, schema(("a", "int"), ("d", "double"))),
        )
        hist = plan.op_histogram()
        assert hist.get("swap", 0) >= 1
        assert "swap" in plan.describe()

    def test_is_identity_detects_exact_copy(self):
        sch = schema(("a", "int"), ("b", "int"))
        plan = build_plan(fmt(X86, sch), fmt(X86, sch))
        assert plan.is_identity
        plan2 = build_plan(fmt(X86, sch), fmt(SPARC_V8, sch))
        assert not plan2.is_identity

    def test_coalesce_does_not_merge_across_unequal_gaps(self):
        # sender: a@0, b@8 (gap 4); receiver: a@0, b@4 (no gap): two copies
        wire = IOFormat(
            "rec",
            fmt(X86, schema(("a", "int"), ("pad", "int"), ("b", "int"))).fields,
            "little",
            12,
        )
        native = fmt(X86, schema(("a", "int"), ("b", "int")))
        plan = build_plan(wire, native)
        copies = [op for op in plan.ops if op.kind is OpKind.COPY]
        assert len(copies) == 2


class TestConnectionEdges:
    def test_recv_view_and_buffer_identity(self):
        pipe = InMemoryPipe()
        tx = PbioConnection(IOContext(ALPHA), pipe.a)
        rx = PbioConnection(IOContext(ALPHA), pipe.b)
        sch = schema(("x", "double"))
        h = tx.ctx.register_format(sch)
        rx.ctx.expect(sch)
        tx.send(h, {"x": 1.25})
        view = rx.recv_view()
        assert view.x == 1.25

    def test_send_native_fast_path(self):
        pipe = InMemoryPipe()
        tx = PbioConnection(IOContext(X86), pipe.a)
        rx = PbioConnection(IOContext(SPARC_V8), pipe.b)
        sch = schema(("i", "int"))
        h = tx.ctx.register_format(sch)
        rx.ctx.expect(sch)
        tx.send_native(h, h.codec.encode({"i": 5}))
        assert rx.recv() == {"i": 5}

    def test_multiple_connections_share_context(self):
        ctx = IOContext(X86)
        sch = schema(("i", "int"))
        h = ctx.register_format(sch)
        for _ in range(2):
            pipe = InMemoryPipe()
            tx = PbioConnection(ctx, pipe.a)
            rx = PbioConnection(IOContext(X86), pipe.b)
            rx.ctx.expect(sch)
            tx.send(h, {"i": 1})
            assert rx.recv() == {"i": 1}


class TestContextEdges:
    def test_re_expecting_same_name_replaces_target(self):
        sender = IOContext(X86)
        receiver = IOContext(X86)
        h = sender.register_format(schema(("a", "int"), ("b", "int")))
        receiver.expect(schema(("a", "int")))
        receiver.receive(sender.announce(h))
        msg = sender.encode(h, {"a": 1, "b": 2})
        assert receiver.receive(msg) == {"a": 1}
        # The application upgrades its expectations at run time.
        receiver.expect(schema(("a", "int"), ("b", "int")))
        assert receiver.receive(msg) == {"a": 1, "b": 2}

    def test_decode_view_converted_path(self):
        sender = IOContext(SPARC_V8)
        receiver = IOContext(X86)
        sch = schema(("i", "int"), ("d", "double"))
        h = sender.register_format(sch)
        receiver.expect(sch)
        receiver.receive(sender.announce(h))
        view = receiver.decode_view(sender.encode(h, {"i": 4, "d": 0.5}))
        assert view.i == 4 and view.d == 0.5
        assert receiver.stats.converted_decodes == 1

    def test_interleaved_formats_from_one_sender(self):
        sender = IOContext(X86)
        receiver = IOContext(SPARC_V8)
        s1, s2 = schema(("a", "int"), name="r1"), schema(("b", "double"), name="r2")
        h1, h2 = sender.register_format(s1), sender.register_format(s2)
        receiver.expect(s1)
        receiver.expect(s2)
        receiver.receive(sender.announce(h1))
        receiver.receive(sender.announce(h2))
        assert receiver.receive(sender.encode(h1, {"a": 1})) == {"a": 1}
        assert receiver.receive(sender.encode(h2, {"b": 2.0})) == {"b": 2.0}
        assert receiver.stats.converters_generated == 2

    def test_two_senders_same_format_name_different_layouts(self):
        # Two writers of the same record type on different machines: the
        # receiver keeps a converter per wire format.
        receiver = IOContext(X86)
        sch = schema(("i", "int"), ("d", "double"))
        receiver.expect(sch)
        for machine in (SPARC_V8, ALPHA, VAX):
            sender = IOContext(machine)
            h = sender.register_format(sch)
            receiver.receive(sender.announce(h))
            out = receiver.receive(sender.encode(h, {"i": 3, "d": 1.5}))
            assert records_equal(out, {"i": 3, "d": 1.5})
        assert receiver.stats.converters_generated == 3


class TestTimingHelpers:
    def test_calibrated_inner_bounds(self):
        from repro.net import calibrated_inner

        inner = calibrated_inner(lambda: None, target_s=1e-4)
        assert 1 <= inner <= 10_000

    def test_leg_cost_total(self):
        from repro.net import LegCost

        leg = LegCost(1.0, 2.0, 3.0)
        assert leg.total_s == 6.0
