"""Lease lifecycle, pool-guard, and mmap lend-mode tests.

Lend-mode decodes return views that *borrow* the receive buffer under a
refcounted :class:`~repro.core.runtime.pool.Lease`.  The safety story
has three legs, each tested here: ``detach()`` (copy-on-escape) makes a
view immune to buffer recycling; dropping every view returns the buffer
to the pool (no growth, no leaks, across sustained ingest); and
``PBIO_POOL_GUARD=1`` turns any use-after-return into visible poison
instead of silent stale reads.  The mmap file reader shares the same
discipline with the page cache as the borrowed buffer.
"""

import gc

import pytest
from hypothesis import given, settings, strategies as st

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext, read_records, write_records
from repro.core.files import PbioFileReader
from repro.core.runtime.pool import POISON_BYTE, BufferPool
from repro.net import EventChannel, loopback_pair
from repro.net.sockets import _lease_pool

POINT = RecordSchema.from_pairs("point", [("x", "int"), ("y", "double")])


def lend_decode_fixture(records):
    """Encode ``records`` into one pooled buffer and lend-decode it.

    Returns ``(views, blob, lease)`` — the views borrow ``blob`` under
    ``lease``, exactly like a transport receive buffer.
    """
    sender = IOContext(X86)
    h = sender.register_format(POINT)
    messages = [bytes(sender.announce(h))]
    messages += [bytes(sender.encode(h, r)) for r in records]
    blob = bytearray(b"".join(messages))
    frames, off = [], 0
    for m in messages:
        frames.append(memoryview(blob)[off : off + len(m)])
        off += len(m)
    pool = BufferPool()
    lease = pool.lease(blob)
    rx = IOContext(X86)
    rx.expect(POINT)
    views = [v for v in rx.pipeline.decode_batch(frames, lend=True, lease=lease) if v is not None]
    return views, blob, lease


class TestCopyOnEscape:
    @settings(max_examples=25, deadline=None)
    @given(
        vals=st.lists(
            st.tuples(
                st.integers(min_value=-(2**31), max_value=2**31 - 1),
                st.floats(allow_nan=False, allow_infinity=False),
            ),
            min_size=1,
            max_size=16,
        )
    )
    def test_escaped_copy_immune_to_buffer_mutation(self, vals):
        records = [{"x": x, "y": y} for x, y in vals]
        views, blob, lease = lend_decode_fixture(records)
        expected = [v.to_dict() for v in views]
        escaped = [v.detach() for v in views]
        # The receive buffer is recycled under the views' feet.
        blob[:] = bytes([POISON_BYTE]) * len(blob)
        for copy, want in zip(escaped, expected):
            assert copy.to_dict() == want

    def test_live_view_actually_borrows(self):
        # Sanity for the property above: a *non*-detached view reads
        # through to the mutated buffer, proving no hidden copy exists.
        views, blob, _lease = lend_decode_fixture([{"x": 7, "y": 2.5}])
        assert views[0]["x"] == 7
        blob[:] = bytes(len(blob))  # zero everything, headers included
        assert views[0]["x"] == 0


class TestLeaseReturn:
    def test_gc_of_views_returns_buffer(self):
        pool = BufferPool()
        buf = pool.acquire(128, zero=False)
        lease = pool.lease(buf)
        assert pool.free_count(128) == 0
        del lease
        gc.collect()
        assert pool.free_count(128) == 1
        assert pool.leaked == 0

    def test_close_with_outstanding_holds_counts_leak(self):
        pool = BufferPool()
        lease = pool.lease(pool.acquire(64, zero=False))
        lease.retain()
        assert pool.leaked == 0
        lease.close()
        assert pool.leaked == 1

    def test_release_without_retain_rejected(self):
        pool = BufferPool()
        lease = pool.lease(pool.acquire(64, zero=False))
        with pytest.raises(RuntimeError):
            lease.release()

    def test_close_is_idempotent(self):
        pool = BufferPool()
        lease = pool.lease(pool.acquire(64, zero=False))
        assert lease.alive
        lease.close()
        lease.close()
        assert not lease.alive
        assert pool.free_count(64) == 1  # returned exactly once

    def test_subscriber_gc_returns_leases_no_pool_growth(self):
        # 10k lend-mode messages through socket ingest and a view-mode
        # subscriber that drops every view: the shared lease pool must
        # end bounded (recycling, not growth) with zero leaks.
        a, b = loopback_pair()
        pool = _lease_pool()
        leaked_before = pool.leaked
        sender = IOContext(X86)
        h = sender.register_format(POINT)
        channel = EventChannel()
        got = [0]
        sub_ctx = IOContext(X86)
        sub_ctx.expect(POINT)
        sub = channel.subscribe(sub_ctx, lambda v: got.__setitem__(0, got[0] + 1), deliver="view")
        try:
            a.send(sender.announce(h))
            total = 10_000
            sent = 0
            while sent < total:
                burst = [
                    sender.encode(h, {"x": sent + i, "y": (sent + i) * 0.5})
                    for i in range(100)
                ]
                a.send_many(burst)
                sent += len(burst)
                want = got[0] + len(burst)
                while got[0] < want:
                    frames, lease = b.recv_many_leased()
                    channel.ingest_many(frames, lease=lease)
                    del frames, lease
            assert got[0] == total
        finally:
            channel.unsubscribe(sub)
            a.close()
            b.close()
        gc.collect()
        assert pool.leaked == leaked_before
        # Bounded free list, not one buffer per burst retained.
        assert pool.free_count() <= 16
        assert int(pool.metrics.value("buffers_reused")) > 0


class TestPoolGuard:
    def test_guard_poisons_returned_buffers(self, monkeypatch):
        monkeypatch.setenv("PBIO_POOL_GUARD", "1")
        pool = BufferPool()
        buf = pool.acquire(32, zero=False)
        buf[:] = b"A" * 32
        survivor = memoryview(buf)  # a view that outlives the lease
        pool.lease(buf).close()
        # Use-after-return reads are garbage *loudly*, not stale data.
        assert bytes(survivor) == bytes([POISON_BYTE]) * 32

    def test_guard_off_by_default(self, monkeypatch):
        monkeypatch.delenv("PBIO_POOL_GUARD", raising=False)
        pool = BufferPool()
        buf = pool.acquire(32, zero=False)
        buf[:] = b"A" * 32
        survivor = memoryview(buf)
        pool.lease(buf).close()
        assert bytes(survivor) == b"A" * 32


SIMPLE = RecordSchema.from_pairs(
    "rec", [("i", "int"), ("d", "double"), ("name", "char[8]")]
)


class TestMmapLend:
    def write(self, tmp_path, machine=X86, n=50):
        path = str(tmp_path / "data.pbio")
        records = [
            {"i": k, "d": k * 0.25, "name": b"n%03d" % k} for k in range(n)
        ]
        write_records(IOContext(machine), path, SIMPLE, records)
        return path, records

    def test_mapped_read_batch_lends_views(self, tmp_path):
        path, records = self.write(tmp_path)
        ctx = IOContext(X86)
        ctx.expect(SIMPLE)
        with PbioFileReader.open(ctx, path) as reader:
            views = reader.read_batch(lend=True)
            assert len(views) == len(records)
            for v, want in zip(views, records):
                assert v["i"] == want["i"]
                assert v["d"] == want["d"]

    def test_detached_view_outlives_reader(self, tmp_path):
        path, records = self.write(tmp_path)
        ctx = IOContext(X86)
        ctx.expect(SIMPLE)
        with PbioFileReader.open(ctx, path) as reader:
            views = reader.read_batch(lend=True)
            snapshot = views[7].to_dict()
            escaped = views[7].detach()
        del views
        gc.collect()
        assert escaped.to_dict() == snapshot

    def test_cross_machine_mapped_lend(self, tmp_path):
        # A foreign-layout file cannot borrow the map; lend-mode must
        # still produce correct (converted, unleased) views.
        path, records = self.write(tmp_path, machine=SPARC_V8)
        ctx = IOContext(X86)
        ctx.expect(SIMPLE)
        with PbioFileReader.open(ctx, path) as reader:
            views = reader.read_batch(lend=True)
            assert [v["i"] for v in views] == [r["i"] for r in records]

    def test_mapped_matches_streamed(self, tmp_path):
        path, records = self.write(tmp_path)
        out = read_records(IOContext(X86), path, SIMPLE)
        assert [r["i"] for r in out] == [r["i"] for r in records]
