"""Property tests: compiled filters agree with reference evaluation.

A :func:`compile_predicate` filter reads raw wire bytes; the reference
implementation decodes the record to a dict and evaluates the same
expression with Python's own semantics.  For random expressions over
random scalar records, on random sender machines, the two must agree —
including across byte orders and ABI layout differences.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.abi import MACHINES, RecordSchema, layout_record
from repro.core import FilterError, IOContext, IOFormat, compile_predicate

FIELDS = [
    ("a", "int"),
    ("b", "double"),
    ("c", "short"),
    ("d", "unsigned int"),
    ("e", "float"),
]
SCHEMA = RecordSchema.from_pairs("probe", FIELDS)
NAMES = [name for name, _ in FIELDS]

#: IEEE machines only — filters refuse VAX float fields by design.
IEEE = sorted(m for m in MACHINES if MACHINES[m].float_format == "ieee754")


@st.composite
def expressions(draw, depth=0):
    """Random expressions in the filter language's grammar."""
    if depth >= 3 or draw(st.booleans()):
        # comparison leaf
        left = draw(st.sampled_from(NAMES))
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        if draw(st.booleans()):
            right = draw(st.sampled_from(NAMES))
        else:
            right = repr(draw(st.integers(min_value=-1000, max_value=1000)))
        if draw(st.booleans()):
            left = f"({left} + {draw(st.integers(0, 50))})"
        return f"{left} {op} {right}"
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return f"not ({draw(expressions(depth=depth + 1))})"
    return f"({draw(expressions(depth=depth + 1))}) {kind} ({draw(expressions(depth=depth + 1))})"


def random_probe_record(rng):
    return {
        "a": int(rng.integers(-1000, 1000)),
        "b": float(rng.integers(-1000, 1000)),  # integral doubles: exact compares
        "c": int(rng.integers(-500, 500)),
        "d": int(rng.integers(0, 1000)),
        "e": float(rng.integers(-100, 100)),
    }


@settings(max_examples=150, deadline=None)
@given(
    expr=expressions(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    machine=st.sampled_from(IEEE),
)
def test_compiled_filter_matches_reference_eval(expr, seed, machine):
    rng = np.random.default_rng(seed)
    record = random_probe_record(rng)
    ctx = IOContext(MACHINES[machine])
    handle = ctx.register_format(SCHEMA)
    payload = ctx.encode(handle, record)[16:]
    fmt = IOFormat.from_layout(layout_record(SCHEMA, MACHINES[machine]))
    predicate = compile_predicate(fmt, expr)
    reference = bool(eval(expr, {"__builtins__": {}}, dict(record)))  # noqa: S307
    assert predicate(payload) == reference, (expr, record)


@settings(max_examples=80, deadline=None)
@given(expr=expressions(), machine=st.sampled_from(IEEE))
def test_compiled_filters_never_touch_state(expr, machine):
    """Compiling and running a filter must not mutate the payload."""
    fmt = IOFormat.from_layout(layout_record(SCHEMA, MACHINES[machine]))
    predicate = compile_predicate(fmt, expr)
    ctx = IOContext(MACHINES[machine])
    handle = ctx.register_format(SCHEMA)
    payload = bytearray(ctx.encode(handle, random_probe_record(np.random.default_rng(1)))[16:])
    before = bytes(payload)
    predicate(payload)
    assert bytes(payload) == before


@settings(max_examples=60, deadline=None)
@given(junk=st.text(max_size=40))
def test_junk_expressions_rejected_or_compile(junk):
    """Arbitrary text either compiles under the whitelist or raises
    FilterError — never an uncontrolled exception at compile time."""
    fmt = IOFormat.from_layout(layout_record(SCHEMA, MACHINES["i86"]))
    try:
        compile_predicate(fmt, junk)
    except FilterError:
        pass
