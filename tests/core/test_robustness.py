"""Robustness property tests: corrupted and truncated input never decodes
silently wrong at the protocol layer — it raises a PbioError subclass.

(Payload *content* corruption below the protocol layer is undetectable by
design — PBIO carries no checksums, matching the original system and the
transports of its era — so these tests target the structures PBIO itself
interprets: message headers, meta-information, and framing.)
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext, PbioError
from repro.core import encoder as enc
from repro.core.files import PbioFileReader
from repro.wire.xml import SaxParser, XmlParseError

SCHEMA = RecordSchema.from_pairs(
    "rec", [("i", "int"), ("d", "double[4]"), ("name", "char[8]")]
)


def linked():
    sender = IOContext(X86)
    receiver = IOContext(SPARC_V8)
    handle = sender.register_format(SCHEMA)
    receiver.expect(SCHEMA)
    announce = sender.announce(handle)
    message = sender.encode(
        handle, {"i": 1, "d": (1.0, 2.0, 3.0, 4.0), "name": b"abc"}
    )
    return receiver, announce, message


@settings(max_examples=80, deadline=None)
@given(cut=st.integers(min_value=0, max_value=60))
def test_truncated_data_message_raises(cut):
    receiver, announce, message = linked()
    receiver.receive(announce)
    truncated = message[: min(cut, len(message) - 1)]
    with pytest.raises(PbioError):
        receiver.receive(truncated)


@settings(max_examples=80, deadline=None)
@given(
    pos=st.integers(min_value=0, max_value=15),
    value=st.integers(min_value=0, max_value=255),
)
def test_header_byte_corruption_never_silently_succeeds(pos, value):
    """Flipping any header byte either still decodes the right record
    (e.g. touching a padding byte with the same value) or raises — it
    must never return a *different* record without error."""
    receiver, announce, message = linked()
    receiver.receive(announce)
    expected = receiver.receive(message)
    corrupted = bytearray(message)
    corrupted[pos] = value
    try:
        out = receiver.receive(bytes(corrupted))
    except PbioError:
        return
    assert out == expected or out is None


@settings(max_examples=60, deadline=None)
@given(cut=st.integers(min_value=1, max_value=80))
def test_truncated_meta_message_raises(cut):
    receiver, announce, _ = linked()
    truncated = announce[: min(cut, len(announce) - 1)]
    with pytest.raises(PbioError):
        receiver.receive(truncated)


@settings(max_examples=60, deadline=None)
@given(junk=st.binary(min_size=0, max_size=64))
def test_arbitrary_bytes_never_crash_uncontrolled(junk):
    receiver, announce, _ = linked()
    receiver.receive(announce)
    try:
        receiver.receive(junk)
    except PbioError:
        pass  # the only acceptable failure mode


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    cut=st.integers(min_value=13, max_value=200),
)
def test_truncated_pbio_file_raises(seed, cut):
    import io

    from repro.core.files import file_to_buffer

    import struct

    rng = np.random.default_rng(seed)
    ctx = IOContext(X86)
    blob = file_to_buffer(
        ctx, SCHEMA, [{"i": int(rng.integers(100)), "d": (0.0,) * 4, "name": b"x"}] * 2
    )
    # Message boundaries: cuts exactly there leave a VALID shorter file.
    boundaries = {12}
    pos = 12
    while pos < len(blob):
        (n,) = struct.unpack_from(">I", blob, pos)
        pos += 4 + n
        boundaries.add(pos)
    cut = min(cut, len(blob) - 1)
    truncated = blob[:cut]
    rctx = IOContext(X86)
    rctx.expect(SCHEMA)
    reader = PbioFileReader(rctx, io.BytesIO(truncated))
    if cut in boundaries:
        assert len(list(reader)) <= 2  # clean EOF, fewer records
    else:
        with pytest.raises(PbioError):
            list(reader)


@settings(max_examples=60, deadline=None)
@given(data=st.binary(max_size=40))
def test_format_meta_parser_rejects_garbage(data):
    from repro.core import FormatError, IOFormat

    try:
        fmt = IOFormat.from_meta_bytes(data)
    except (FormatError, UnicodeDecodeError):
        return
    # If garbage happens to parse, it must at least be self-consistent.
    assert fmt.record_size >= 0


def test_cvt_f2f_instruction_executes():
    """The float-move opcode completes the ISA's coverage."""
    import struct

    from repro.vcode import VM, Emitter

    em = Emitter()
    em.ldf(0, "src", 0, 4, endian="big")
    em.cvt_f2f(1, 0)
    em.stf(1, "dst", 0, 8, endian="little")
    em.ret()
    dst = bytearray(8)
    VM().run(em.seal(), {"src": struct.pack(">f", 2.5), "dst": dst})
    assert struct.unpack("<d", dst)[0] == 2.5
