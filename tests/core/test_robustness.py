"""Robustness property tests: corrupted and truncated input never decodes
silently wrong at the protocol layer — it raises a PbioError subclass.

(Payload *content* corruption below the protocol layer is undetectable by
design — PBIO carries no checksums, matching the original system and the
transports of its era — so these tests target the structures PBIO itself
interprets: message headers, meta-information, and framing.)
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext, PbioError
from repro.core.files import PbioFileReader

SCHEMA = RecordSchema.from_pairs(
    "rec", [("i", "int"), ("d", "double[4]"), ("name", "char[8]")]
)


def linked():
    sender = IOContext(X86)
    receiver = IOContext(SPARC_V8)
    handle = sender.register_format(SCHEMA)
    receiver.expect(SCHEMA)
    announce = sender.announce(handle)
    message = sender.encode(
        handle, {"i": 1, "d": (1.0, 2.0, 3.0, 4.0), "name": b"abc"}
    )
    return receiver, announce, message


@settings(max_examples=80, deadline=None)
@given(cut=st.integers(min_value=0, max_value=60))
def test_truncated_data_message_raises(cut):
    receiver, announce, message = linked()
    receiver.receive(announce)
    truncated = message[: min(cut, len(message) - 1)]
    with pytest.raises(PbioError):
        receiver.receive(truncated)


@settings(max_examples=80, deadline=None)
@given(
    pos=st.integers(min_value=0, max_value=15),
    value=st.integers(min_value=0, max_value=255),
)
def test_header_byte_corruption_never_silently_succeeds(pos, value):
    """Flipping any header byte either still decodes the right record
    (e.g. touching a padding byte with the same value) or raises — it
    must never return a *different* record without error."""
    receiver, announce, message = linked()
    receiver.receive(announce)
    expected = receiver.receive(message)
    corrupted = bytearray(message)
    corrupted[pos] = value
    try:
        out = receiver.receive(bytes(corrupted))
    except PbioError:
        return
    assert out == expected or out is None


@settings(max_examples=60, deadline=None)
@given(cut=st.integers(min_value=1, max_value=80))
def test_truncated_meta_message_raises(cut):
    receiver, announce, _ = linked()
    truncated = announce[: min(cut, len(announce) - 1)]
    with pytest.raises(PbioError):
        receiver.receive(truncated)


@settings(max_examples=60, deadline=None)
@given(junk=st.binary(min_size=0, max_size=64))
def test_arbitrary_bytes_never_crash_uncontrolled(junk):
    receiver, announce, _ = linked()
    receiver.receive(announce)
    try:
        receiver.receive(junk)
    except PbioError:
        pass  # the only acceptable failure mode


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    cut=st.integers(min_value=13, max_value=200),
)
def test_truncated_pbio_file_raises(seed, cut):
    import io

    from repro.core.files import file_to_buffer

    import struct

    rng = np.random.default_rng(seed)
    ctx = IOContext(X86)
    blob = file_to_buffer(
        ctx, SCHEMA, [{"i": int(rng.integers(100)), "d": (0.0,) * 4, "name": b"x"}] * 2
    )
    # Message boundaries: cuts exactly there leave a VALID shorter file.
    # v2 frames are length-prefix + payload + 8-byte CRC/echo trailer.
    boundaries = {12}
    pos = 12
    while pos < len(blob):
        (n,) = struct.unpack_from(">I", blob, pos)
        pos += 4 + n + 8
        boundaries.add(pos)
    cut = min(cut, len(blob) - 1)
    truncated = blob[:cut]
    rctx = IOContext(X86)
    rctx.expect(SCHEMA)
    reader = PbioFileReader(rctx, io.BytesIO(truncated))
    if cut in boundaries:
        assert len(list(reader)) <= 2  # clean EOF, fewer records
    else:
        with pytest.raises(PbioError):
            list(reader)


@settings(max_examples=60, deadline=None)
@given(data=st.binary(max_size=40))
def test_format_meta_parser_rejects_garbage(data):
    """Garbage meta never leaks a stdlib exception — only the PBIO
    taxonomy (FormatError for structure, LimitError for resources)."""
    from repro.core import IOFormat

    try:
        fmt = IOFormat.from_meta_bytes(data)
    except PbioError:
        return
    # If garbage happens to parse, it must at least be self-consistent.
    assert fmt.record_size >= 0


def test_cvt_f2f_instruction_executes():
    """The float-move opcode completes the ISA's coverage."""
    import struct

    from repro.vcode import VM, Emitter

    em = Emitter()
    em.ldf(0, "src", 0, 4, endian="big")
    em.cvt_f2f(1, 0)
    em.stf(1, "dst", 0, 8, endian="little")
    em.ret()
    dst = bytearray(8)
    VM().run(em.seal(), {"src": struct.pack(">f", 2.5), "dst": dst})
    assert struct.unpack("<d", dst)[0] == 2.5


# -- seeded chaos: the stack above the protocol layer degrades gracefully ----
#
# The fault-injection harness (repro.net.faults) perturbs the *transport*;
# these properties assert that PBIO's protocol-level guarantees (above)
# compose into end-to-end guarantees: lossy links never yield fabricated
# records, one bad peer never starves its siblings, and RPC retries never
# re-execute a servant.

from repro.core import RpcClient, RpcInterface, RpcOperation, RpcServer  # noqa: E402
from repro.net import (  # noqa: E402
    EventChannel,
    FaultInjectingTransport,
    FaultPlan,
    InMemoryPipe,
    Relay,
    RetryPolicy,
    TransportError,
)

CHAOS_RECORDS = [
    {"i": i, "d": (float(i), 0.0, -1.0, 0.5), "name": b"rec"} for i in range(30)
]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_chaos_lossy_stream_never_fabricates_records(seed):
    """Under drop + duplicate + delay + truncate chaos, everything that
    decodes is a record that was actually sent; all damage surfaces as
    PbioError (payload *corruption* is excluded: undetectable by design)."""
    sender = IOContext(X86)
    handle = sender.register_format(SCHEMA)
    announce = sender.announce(handle)
    messages = [sender.encode(handle, r) for r in CHAOS_RECORDS]

    clean_rx = IOContext(SPARC_V8)
    clean_rx.expect(SCHEMA)
    clean_rx.receive(announce)
    expected = [clean_rx.receive(m) for m in messages]

    pipe = InMemoryPipe()
    chaotic = FaultInjectingTransport(
        pipe.a,
        FaultPlan(drop=0.15, duplicate=0.15, delay=0.15, truncate=0.1),
        seed=seed,
    )
    chaotic.send(announce)
    for message in messages:
        chaotic.send(message)
    chaotic.flush()

    receiver = IOContext(SPARC_V8)
    receiver.expect(SCHEMA)
    decoded = []
    while pipe.b.pending():
        try:
            out = receiver.receive(pipe.b.recv())
        except PbioError:
            continue  # the only acceptable failure mode
        if out is not None:
            decoded.append(out)
    for record in decoded:
        assert record in expected


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_chaos_relay_healthy_downstream_gets_every_record(seed):
    """One chaotic downstream (drop + corrupt + disconnect): the healthy
    sibling still receives every record, verbatim and in order."""
    sender = IOContext(X86)
    handle = sender.register_format(SCHEMA)
    messages = [sender.announce(handle)]
    messages += [sender.encode(handle, r) for r in CHAOS_RECORDS]

    relay = Relay(quarantine_after=3)
    faulty_pipe = InMemoryPipe()
    relay.attach(
        FaultInjectingTransport(
            faulty_pipe.a,
            FaultPlan(drop=0.3, corrupt=0.3, disconnect=0.1),
            seed=seed,
        )
    )
    healthy_pipe = InMemoryPipe()
    relay.attach(healthy_pipe.a)
    for message in messages:
        relay.forward(message)
    delivered = [healthy_pipe.b.recv() for _ in range(healthy_pipe.b.pending())]
    assert delivered == [bytes(m) for m in messages]


@settings(max_examples=15, deadline=None)
@given(bad_every=st.integers(min_value=1, max_value=5))
def test_chaos_event_channel_bad_handler_isolated(bad_every):
    """A handler that throws on every Nth record never costs the healthy
    subscriber a single delivery (suppress policy)."""
    channel = EventChannel()
    calls = {"n": 0}

    def sometimes_explodes(record):
        calls["n"] += 1
        if calls["n"] % bad_every == 0:
            raise RuntimeError("handler bug")

    bad_ctx = IOContext(SPARC_V8)
    bad_ctx.expect(SCHEMA)
    bad = channel.subscribe(bad_ctx, sometimes_explodes, on_error="suppress")
    received = []
    good_ctx = IOContext(SPARC_V8)
    good_ctx.expect(SCHEMA)
    channel.subscribe(good_ctx, received.append)

    sender = IOContext(X86)
    handle = sender.register_format(SCHEMA)
    publisher = channel.publisher(sender)
    for record in CHAOS_RECORDS:
        publisher.publish(handle, record)
    assert len(received) == len(CHAOS_RECORDS)
    assert bad.stats.handler_errors == len(CHAOS_RECORDS) // bad_every


_RPC_REQ = RecordSchema.from_pairs("chaos_req", [("x", "double")])
_RPC_REP = RecordSchema.from_pairs("chaos_rep", [("y", "double")])
_RPC_IFACE = RpcInterface("Chaos", [RpcOperation("twice", _RPC_REQ, _RPC_REP)])


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_chaos_rpc_retry_executes_servant_exactly_once(seed):
    """Reply loss + retransmission: the servant sees each request exactly
    once; the dedup window answers every retry from cache."""
    executed = []

    def twice(req):
        executed.append(req["x"])
        return {"y": req["x"] * 2.0}

    server = RpcServer(SPARC_V8, _RPC_IFACE)
    server.register(b"obj", {"twice": twice})
    client = RpcClient(X86, _RPC_IFACE)
    pipe = InMemoryPipe()
    rng = np.random.default_rng(seed)

    class FlakyLoop:
        def set_timeout(self, timeout_s):
            pass

        def send(self, data):
            pipe.a.send(data)

        def recv(self):
            while pipe.b.pending() and not pipe.a.pending():
                server.serve_one(pipe.b)
            if pipe.a.pending() and float(rng.random()) < 0.25:
                while pipe.a.pending():
                    pipe.a.recv()
                raise TransportError("injected reply loss")
            return pipe.a.recv()

        def close(self):
            pass

    loop = FlakyLoop()
    policy = RetryPolicy(max_attempts=16, base_delay_s=0.0)
    for i in range(10):
        result = client.invoke(
            loop, b"obj", "twice", {"x": float(i)},
            retry=policy, sleep=lambda _s: None,
        )
        assert result == {"y": float(i) * 2.0}
    assert executed == [float(i) for i in range(10)]
    assert server.metrics.value("dedup_hits") == client.metrics.value("retries")
