"""Tests for the conversion runtime layer: shared converter cache,
decode pipeline, buffer pool, and the unified metrics registry."""

import gc

import pytest

from repro.abi import ALPHA, SPARC_V8, X86, RecordSchema
from repro.core import (
    ConverterCache,
    IOContext,
    Metrics,
    reset_shared_cache,
    shared_cache,
)
from repro.core import encoder as enc
from repro.net import EventChannel

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)


def make_pair(src_machine, dst_machine, *, cache=None, conversion="dcg"):
    """A warmed (sender ctx, receiver ctx, data message) triple."""
    sender = IOContext(src_machine)
    receiver = IOContext(dst_machine, cache=cache, conversion=conversion)
    handle = sender.register_format(TELEMETRY)
    receiver.expect(TELEMETRY)
    receiver.receive(sender.announce(handle))
    message = sender.encode(handle, {"unit": 3, "temperature": 451.0})
    return sender, receiver, message


class TestSharedCache:
    def test_eight_same_machine_subscribers_one_converter(self):
        """The acceptance criterion: N same-machine subscribers sharing a
        cache generate exactly one converter between them."""
        cache = ConverterCache()
        channel = EventChannel(cache=cache)
        for _ in range(8):
            ctx = IOContext(SPARC_V8)
            ctx.expect(TELEMETRY)
            channel.subscribe(ctx, lambda r: None)
        pub = channel.publisher(IOContext(X86))
        h = pub.ctx.register_format(TELEMETRY)
        for unit in range(5):
            pub.publish(h, {"unit": unit, "temperature": 1.0})
        assert cache.metrics.value("converters_generated") == 1
        assert len(cache) == 1
        # 8 subscribers x 5 records = 40 lookups, 39 of them hits.
        assert cache.metrics.value("converter_cache_hits") == 39

    def test_per_context_counters_remain_meaningful_under_sharing(self):
        cache = ConverterCache()
        _, r1, m1 = make_pair(X86, SPARC_V8, cache=cache)
        _, r2, m2 = make_pair(X86, SPARC_V8, cache=cache)
        r1.decode(m1)
        r2.decode(m2)
        # The second context found the converter already built, so its
        # own counters show a hit, not a generation.
        assert r1.stats.converters_generated == 1
        assert r2.stats.converters_generated == 0
        assert r2.stats.converter_cache_hits == 1

    def test_cross_machine_pairs_do_not_contaminate(self):
        cache = ConverterCache()
        _, r_sparc, m1 = make_pair(X86, SPARC_V8, cache=cache)
        _, r_alpha, m2 = make_pair(X86, ALPHA, cache=cache)
        assert r_sparc.decode(m1) == {"unit": 3, "temperature": 451.0}
        assert r_alpha.decode(m2) == {"unit": 3, "temperature": 451.0}
        # One converter per receiver ABI — distinct keys, no sharing.
        assert cache.metrics.value("converters_generated") == 2
        assert len(cache) == 2

    def test_conversion_modes_get_distinct_entries(self):
        cache = ConverterCache()
        _, r_dcg, m1 = make_pair(X86, SPARC_V8, cache=cache, conversion="dcg")
        _, r_interp, m2 = make_pair(
            X86, SPARC_V8, cache=cache, conversion="interpreted"
        )
        assert r_dcg.decode(m1) == r_interp.decode(m2)
        assert len(cache) == 2

    def test_zero_copy_pairs_cached_without_generation(self):
        cache = ConverterCache()
        _, receiver, message = make_pair(X86, X86, cache=cache)
        assert receiver.decode(message) == {"unit": 3, "temperature": 451.0}
        assert cache.metrics.value("converters_generated") == 0
        assert receiver.stats.zero_copy_decodes == 1
        assert len(cache) == 1  # the zero-copy decision itself is cached

    def test_shared_cache_is_a_process_global(self):
        reset_shared_cache()
        try:
            assert shared_cache() is shared_cache()
            _, receiver, message = make_pair(X86, SPARC_V8, cache=shared_cache())
            receiver.decode(message)
            assert shared_cache().metrics.value("converters_generated") == 1
        finally:
            reset_shared_cache()

    def test_use_cache_repoints_an_existing_context(self):
        cache = ConverterCache()
        _, receiver, message = make_pair(X86, SPARC_V8)
        receiver.use_cache(cache)
        receiver.decode(message)
        assert cache.metrics.value("converters_generated") == 1
        assert receiver.cache is cache

    def test_converter_sources_via_reverse_map(self):
        cache = ConverterCache()
        _, receiver, message = make_pair(X86, SPARC_V8, cache=cache)
        receiver.decode(message)
        sources = receiver.converter_sources("telemetry")
        assert len(sources) == 1
        assert "def convert" in next(iter(sources.values()))


class TestBufferPool:
    def test_live_views_never_alias(self):
        """Two live RecordViews from the same pipeline hold distinct
        buffers even though both decodes went through the pool."""
        sender = IOContext(X86)
        receiver = IOContext(SPARC_V8)
        handle = sender.register_format(TELEMETRY)
        receiver.expect(TELEMETRY)
        receiver.receive(sender.announce(handle))
        m1 = sender.encode(handle, {"unit": 1, "temperature": 100.0})
        m2 = sender.encode(handle, {"unit": 2, "temperature": 200.0})
        v1 = receiver.decode_view(m1)
        v2 = receiver.decode_view(m2)
        assert v1["unit"] == 1 and v1["temperature"] == 100.0
        assert v2["unit"] == 2 and v2["temperature"] == 200.0

    def test_buffer_reused_after_view_collected(self):
        _, receiver, message = make_pair(X86, SPARC_V8)
        pool = receiver.pipeline.pool
        view = receiver.decode_view(message)
        assert pool.metrics.value("buffers_allocated") == 1
        assert pool.free_count() == 0  # buffer owned by the live view
        del view
        gc.collect()
        assert pool.free_count() == 1  # finalizer returned it
        again = receiver.decode_view(message)
        assert pool.metrics.value("buffers_reused") == 1
        assert again.to_dict() == {"unit": 3, "temperature": 451.0}

    def test_decode_native_bytes_unaffected_by_pooling(self):
        _, receiver, message = make_pair(X86, SPARC_V8)
        out1 = receiver.decode_native(message)
        out2 = receiver.decode_native(message)
        assert isinstance(out1, bytes)
        assert out1 == out2
        assert receiver.pipeline.pool.metrics.value("buffers_allocated") == 0


class TestMetrics:
    def test_stage_timings_recorded_only_when_enabled(self):
        _, receiver, message = make_pair(X86, SPARC_V8)
        receiver.decode(message)
        assert receiver.metrics.timings() == {}
        receiver.metrics.timing_enabled = True
        receiver.decode(message)
        timings = receiver.metrics.timings()
        assert set(timings) == {"decode.parse", "decode.resolve", "decode.convert"}
        assert all(t.count == 1 for t in timings.values())

    def test_snapshot_and_merge(self):
        a, b = Metrics(timing_enabled=True), Metrics(timing_enabled=True)
        a.inc("delivered")
        a.observe("stage", 0.5)
        b.inc("delivered", 2)
        b.observe("stage", 1.5)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["delivered"] == 3
        assert snap["timings"]["stage"]["count"] == 2
        assert snap["timings"]["stage"]["total_s"] == pytest.approx(2.0)

    def test_stats_views_are_read_only(self):
        _, receiver, message = make_pair(X86, SPARC_V8)
        receiver.decode(message)
        assert receiver.stats.converted_decodes == 1
        with pytest.raises(AttributeError):
            receiver.stats.converted_decodes = 5
        assert "converted_decodes" in receiver.stats.as_dict()


class TestEncoderHelpers:
    def test_try_message_type_rejects_foreign_frames(self):
        assert enc.try_message_type(b"") is None
        assert enc.try_message_type(b"\x00" * 4) is None
        assert enc.try_message_type(b"not a pbio message!!") is None
        # Right magic, absurd type byte: still rejected.
        bogus = bytearray(enc.HEADER_SIZE)
        bogus[0] = 0xB1
        bogus[2] = 0x7F
        assert enc.try_message_type(bytes(bogus)) is None

    def test_try_message_type_accepts_real_messages(self):
        sender, _, message = make_pair(X86, SPARC_V8)
        assert enc.try_message_type(message) == enc.MSG_DATA
        assert enc.is_pbio_message(message)
        handle = sender.register_format(
            RecordSchema.from_pairs("other", [("x", "int")])
        )
        announcement = sender.announce(handle)
        assert enc.try_message_type(announcement) == enc.MSG_FORMAT
