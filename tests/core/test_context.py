"""Tests for IOContext: the public PBIO encode/decode API."""

import pytest

from repro.abi import ALPHA, SPARC_V8, X86, FieldDecl, CType, RecordSchema, layout_record, records_equal
from repro.core import (
    FormatError,
    IOContext,
    MessageError,
    UnknownFormatError,
)
from repro.core import encoder as enc


def schema(*pairs, name="rec"):
    return RecordSchema.from_pairs(name, list(pairs))


def linked_pair(src_machine, dst_machine, sch, **kwargs):
    sender = IOContext(src_machine, **kwargs)
    receiver = IOContext(dst_machine, **kwargs)
    handle = sender.register_format(sch)
    receiver.expect(sch)
    receiver.receive(sender.announce(handle))
    return sender, receiver, handle


class TestHeaders:
    def test_header_round_trip(self):
        h = enc.pack_header(enc.MSG_DATA, 0xDEADBEEF, 42, 100)
        assert enc.unpack_header(h) == (enc.MSG_DATA, 0xDEADBEEF, 42, 100)

    def test_bad_magic(self):
        with pytest.raises(MessageError, match="magic"):
            enc.unpack_header(b"\x00" * enc.HEADER_SIZE)

    def test_short_message(self):
        with pytest.raises(MessageError, match="shorter"):
            enc.unpack_header(b"\xb1\x01")

    def test_bad_message_type(self):
        h = bytearray(enc.pack_header(enc.MSG_DATA, 1, 1, 0))
        h[2] = 99
        with pytest.raises(MessageError, match="message type"):
            enc.unpack_header(bytes(h))

    def test_segments_avoid_copying_payload(self):
        native = bytearray(b"\x01\x02\x03\x04")
        segments = enc.encode_data_segments(1, 2, native)
        assert segments[1] is native  # the caller's buffer, not a copy


class TestHomogeneousExchange:
    def test_round_trip_dict(self):
        s, r, h = linked_pair(X86, X86, schema(("i", "int"), ("d", "double")))
        out = r.receive(s.encode(h, {"i": 5, "d": 2.5}))
        assert out == {"i": 5, "d": 2.5}

    def test_zero_copy_stat_increments(self):
        s, r, h = linked_pair(X86, X86, schema(("i", "int")))
        r.receive(s.encode(h, {"i": 1}))
        r.receive(s.encode(h, {"i": 2}))
        assert r.stats.zero_copy_decodes == 2
        assert r.stats.converted_decodes == 0
        assert r.stats.converters_generated == 0

    def test_view_references_message_buffer(self):
        s, r, h = linked_pair(X86, X86, schema(("i", "int")))
        message = s.encode(h, {"i": 7})
        view = r.decode_view(message)
        raw = view.raw_bytes()
        # The view's bytes are a window into the message itself.
        assert bytes(raw) == message[enc.HEADER_SIZE :]


class TestHeterogeneousExchange:
    @pytest.mark.parametrize("mode", ["dcg", "interpreted", "vcode"])
    def test_x86_to_sparc(self, mode):
        sch = schema(("i", "int"), ("d", "double[10]"), ("name", "char[8]"))
        s, r, h = linked_pair(X86, SPARC_V8, sch, conversion=mode)
        rec = {"i": -3, "d": tuple(float(i) for i in range(10)), "name": b"abc"}
        out = r.receive(s.encode(h, rec))
        assert records_equal(rec, out)
        assert r.stats.converted_decodes == 1

    def test_converter_cached_across_messages(self):
        s, r, h = linked_pair(X86, SPARC_V8, schema(("i", "int")))
        for i in range(5):
            r.receive(s.encode(h, {"i": i}))
        assert r.stats.converters_generated == 1
        assert r.stats.converter_cache_hits == 4

    def test_three_way_heterogeneous(self):
        sch = schema(("i", "int"), ("d", "double"))
        sender = IOContext(ALPHA)
        h = sender.register_format(sch)
        announce = sender.announce(h)
        message = sender.encode(h, {"i": 1, "d": 2.0})
        for machine in (X86, SPARC_V8):
            r = IOContext(machine)
            r.expect(sch)
            r.receive(announce)
            assert r.receive(message) == {"i": 1, "d": 2.0}


class TestProtocolErrors:
    def test_data_before_announcement(self):
        sender = IOContext(X86)
        receiver = IOContext(X86)
        h = sender.register_format(schema(("i", "int")))
        receiver.expect(schema(("i", "int")))
        with pytest.raises(UnknownFormatError):
            receiver.receive(sender.encode(h, {"i": 1}))

    def test_no_expected_format(self):
        sender = IOContext(X86)
        receiver = IOContext(X86)
        h = sender.register_format(schema(("i", "int")))
        receiver.receive(sender.announce(h))
        with pytest.raises(FormatError, match="no expected format"):
            receiver.receive(sender.encode(h, {"i": 1}))

    def test_truncated_payload(self):
        s, r, h = linked_pair(X86, X86, schema(("i", "int")))
        message = s.encode(h, {"i": 1})
        with pytest.raises(MessageError, match="length mismatch"):
            r.receive(message[:-2])

    def test_bad_conversion_mode(self):
        with pytest.raises(ValueError):
            IOContext(X86, conversion="jit")


class TestTypeExtensionSemantics:
    def test_new_field_ignored_by_old_receiver(self):
        old = schema(("i", "int"), ("d", "double"))
        new = old.extended("rec", [FieldDecl("extra", CType.INT)])
        sender = IOContext(X86)
        receiver = IOContext(SPARC_V8)
        h = sender.register_format(new)
        receiver.expect(old)
        receiver.receive(sender.announce(h))
        out = receiver.receive(sender.encode(h, {"i": 1, "d": 2.0, "extra": 99}))
        assert out == {"i": 1, "d": 2.0}

    def test_appended_field_homogeneous_stays_zero_copy(self):
        old = schema(("i", "int"), ("d", "double"))
        new = old.extended("rec", [FieldDecl("extra", CType.INT)])
        sender = IOContext(X86)
        receiver = IOContext(X86)
        h = sender.register_format(new)
        receiver.expect(old)
        receiver.receive(sender.announce(h))
        receiver.receive(sender.encode(h, {"i": 1, "d": 2.0, "extra": 9}))
        assert receiver.stats.zero_copy_decodes == 1

    def test_prepended_field_homogeneous_forces_conversion(self):
        old = schema(("i", "int"), ("d", "double"))
        new = old.extended("rec", [FieldDecl("extra", CType.INT)], prepend=True)
        sender = IOContext(X86)
        receiver = IOContext(X86)
        h = sender.register_format(new)
        receiver.expect(old)
        receiver.receive(sender.announce(h))
        out = receiver.receive(sender.encode(h, {"i": 1, "d": 2.0, "extra": 9}))
        assert out == {"i": 1, "d": 2.0}
        assert receiver.stats.converted_decodes == 1

    def test_old_sender_new_receiver_missing_defaulted(self):
        old = schema(("i", "int"))
        new = old.extended("rec", [FieldDecl("extra", CType.DOUBLE)])
        sender = IOContext(X86)
        receiver = IOContext(X86)
        h = sender.register_format(old)
        receiver.expect(new)
        receiver.receive(sender.announce(h))
        out = receiver.receive(sender.encode(h, {"i": 1}))
        assert out == {"i": 1, "extra": 0.0}


class TestStringsEndToEnd:
    @pytest.mark.parametrize("mode", ["dcg", "interpreted"])
    def test_string_fields_heterogeneous(self, mode):
        sch = schema(("tag", "string"), ("n", "int"))
        s, r, h = linked_pair(X86, SPARC_V8, sch, conversion=mode)
        out = r.receive(s.encode(h, {"tag": "status update", "n": 3}))
        assert out == {"tag": "status update", "n": 3}

    def test_string_zero_copy_homogeneous(self):
        sch = schema(("tag", "string"), ("n", "int"))
        s, r, h = linked_pair(X86, X86, sch)
        view = r.decode_view(s.encode(h, {"tag": "zc", "n": 1}))
        assert view.tag == "zc"
        assert r.stats.zero_copy_decodes == 1


class TestRegistrationIdempotence:
    def test_register_same_schema_twice_same_id(self):
        ctx = IOContext(X86)
        sch = schema(("i", "int"))
        h1 = ctx.register_format(sch)
        h2 = ctx.register_format(sch)
        assert h1.format_id == h2.format_id

    def test_context_ids_differ(self):
        assert IOContext(X86).context_id != IOContext(X86).context_id
