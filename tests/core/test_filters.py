"""Tests for DCG-compiled record filters and projections."""

import pytest

from repro.abi import SPARC_V8, X86, CType, FieldDecl, RecordSchema, layout_record
from repro.core import (
    FilterError,
    IOContext,
    IOFormat,
    RecordFilter,
    RecordProjector,
    compile_predicate,
    compile_projection,
)

TELEMETRY = RecordSchema.from_pairs(
    "telemetry",
    [("unit", "int"), ("rpm", "double"), ("temperature", "double"), ("blob", "double[64]")],
)


def fmt(machine=SPARC_V8, schema=TELEMETRY):
    return IOFormat.from_layout(layout_record(schema, machine))


def payload(ctx, handle, record):
    return ctx.encode(handle, record)[16:]  # strip the PBIO header


class TestCompilePredicate:
    def setup_method(self):
        self.ctx = IOContext(SPARC_V8)
        self.handle = self.ctx.register_format(TELEMETRY)

    def rec(self, **kw):
        base = {"unit": 1, "rpm": 3600.0, "temperature": 650.0, "blob": tuple(range(64))}
        base.update(kw)
        return payload(self.ctx, self.handle, base)

    def test_simple_comparison(self):
        pred = compile_predicate(fmt(), "temperature > 700.0")
        assert not pred(self.rec(temperature=650.0))
        assert pred(self.rec(temperature=710.0))

    def test_boolean_combination(self):
        pred = compile_predicate(fmt(), "temperature > 600.0 and unit != 1")
        assert not pred(self.rec(unit=1, temperature=700.0))
        assert pred(self.rec(unit=2, temperature=700.0))

    def test_arithmetic(self):
        pred = compile_predicate(fmt(), "rpm / 60.0 >= 60.0")
        assert pred(self.rec(rpm=3600.0))
        assert not pred(self.rec(rpm=3599.0))

    def test_or_and_not(self):
        pred = compile_predicate(fmt(), "not (unit == 1 or unit == 2)")
        assert not pred(self.rec(unit=2))
        assert pred(self.rec(unit=3))

    def test_chained_comparison(self):
        pred = compile_predicate(fmt(), "600.0 < temperature < 700.0")
        assert pred(self.rec(temperature=650.0))
        assert not pred(self.rec(temperature=710.0))

    def test_unary_minus(self):
        pred = compile_predicate(fmt(), "temperature > -10.0")
        assert pred(self.rec(temperature=0.0))

    def test_unknown_field_rejected(self):
        with pytest.raises(FilterError, match="no field"):
            compile_predicate(fmt(), "pressure > 1.0")

    def test_array_field_rejected(self):
        with pytest.raises(FilterError, match="scalar"):
            compile_predicate(fmt(), "blob > 1.0")

    def test_function_calls_rejected(self):
        with pytest.raises(FilterError):
            compile_predicate(fmt(), "__import__('os').system('true')")

    def test_attribute_access_rejected(self):
        with pytest.raises(FilterError):
            compile_predicate(fmt(), "unit.__class__")

    def test_string_constants_rejected(self):
        with pytest.raises(FilterError):
            compile_predicate(fmt(), "unit == 'abc'")

    def test_syntax_error_rejected(self):
        with pytest.raises(FilterError, match="invalid"):
            compile_predicate(fmt(), "unit >")


class TestCompileProjection:
    def test_projects_only_named_fields(self):
        ctx = IOContext(X86)
        handle = ctx.register_format(TELEMETRY)
        data = payload(ctx, handle, {"unit": 3, "rpm": 100.0, "temperature": 400.0, "blob": tuple(range(64))})
        project = compile_projection(fmt(X86), ["unit", "temperature"])
        assert project(data) == {"unit": 3, "temperature": 400.0}

    def test_unknown_field_rejected(self):
        with pytest.raises(FilterError):
            compile_projection(fmt(), ["nope"])


class TestRecordFilter:
    def make_stream(self, machine, schema=TELEMETRY, temps=(650.0, 720.0, 800.0)):
        sender = IOContext(machine)
        receiver = IOContext(X86)
        handle = sender.register_format(schema)
        receiver.receive(sender.announce(handle))
        messages = [
            sender.encode(
                handle,
                {"unit": i, "rpm": 0.0, "temperature": t, "blob": tuple(range(64))},
            )
            for i, t in enumerate(temps)
        ]
        return receiver, messages

    def test_filters_messages_without_decode(self):
        receiver, messages = self.make_stream(SPARC_V8)
        flt = RecordFilter(receiver, "telemetry", "temperature > 700.0")
        assert [flt.matches(m) for m in messages] == [False, True, True]
        assert receiver.stats.converted_decodes == 0  # never fully decoded

    def test_predicate_compiled_once_per_wire_format(self):
        receiver, messages = self.make_stream(SPARC_V8)
        flt = RecordFilter(receiver, "telemetry", "temperature > 700.0")
        for m in messages:
            flt.matches(m)
        assert flt.compilations == 1

    def test_adapts_to_extended_format(self):
        # An upgraded sender prepends a field; the filter recompiles for
        # the new wire format and keeps working.
        receiver, messages = self.make_stream(SPARC_V8)
        flt = RecordFilter(receiver, "telemetry", "temperature > 700.0")
        assert flt.matches(messages[1])

        extended = TELEMETRY.extended(
            "telemetry", [FieldDecl("version", CType.INT)], prepend=True
        )
        sender2 = IOContext(X86)
        h2 = sender2.register_format(extended)
        receiver.receive(sender2.announce(h2))
        hot = sender2.encode(
            h2, {"version": 2, "unit": 9, "rpm": 0.0, "temperature": 900.0, "blob": tuple(range(64))}
        )
        assert flt.matches(hot)
        assert flt.compilations == 2

    def test_other_format_names_dont_match(self):
        receiver, messages = self.make_stream(SPARC_V8)
        other = RecordFilter(receiver, "some_other_type", "temperature > 0.0")
        assert not other.matches(messages[2])

    def test_invalid_expression_rejected_eagerly(self):
        receiver, _ = self.make_stream(SPARC_V8)
        with pytest.raises(FilterError):
            RecordFilter(receiver, "telemetry", "import os")


class TestRecordProjector:
    def test_projects_stream(self):
        sender = IOContext(SPARC_V8)
        receiver = IOContext(X86)
        handle = sender.register_format(TELEMETRY)
        receiver.receive(sender.announce(handle))
        msg = sender.encode(
            handle, {"unit": 5, "rpm": 1.0, "temperature": 300.0, "blob": tuple(range(64))}
        )
        projector = RecordProjector(receiver, "telemetry", ["unit", "rpm"])
        assert projector.project(msg) == {"unit": 5, "rpm": 1.0}

    def test_wrong_format_returns_none(self):
        sender = IOContext(X86)
        receiver = IOContext(X86)
        other = RecordSchema.from_pairs("other", [("x", "int")])
        handle = sender.register_format(other)
        receiver.receive(sender.announce(handle))
        projector = RecordProjector(receiver, "telemetry", ["unit"])
        assert projector.project(sender.encode(handle, {"x": 1})) is None
