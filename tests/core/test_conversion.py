"""Tests for conversion plans and all three converter backends."""

import struct

import pytest

from repro.abi import (
    ALPHA,
    SPARC_V8,
    SPARC_V9_64,
    X86,
    X86_64,
    RecordSchema,
    codec_for,
    layout_record,
    records_equal,
)
from repro.core import IOFormat, OpKind, build_plan
from repro.core.conversion import (
    InterpretedConverter,
    generate_converter,
    generate_python_converter,
    generate_vcode_converter,
)
from repro.core.errors import ConversionError


def make_pair(src_machine, dst_machine, src_pairs, dst_pairs=None, name="t"):
    src_schema = RecordSchema.from_pairs(name, list(src_pairs))
    dst_schema = RecordSchema.from_pairs(name, list(dst_pairs or src_pairs))
    src_layout = layout_record(src_schema, src_machine)
    dst_layout = layout_record(dst_schema, dst_machine)
    plan = build_plan(IOFormat.from_layout(src_layout), IOFormat.from_layout(dst_layout))
    return src_layout, dst_layout, plan


BACKENDS = ["interpreted", "python", "vcode"]


def converter_for(plan, backend):
    if backend == "interpreted":
        return InterpretedConverter(plan)
    return generate_converter(plan, backend=backend).convert


def round_trip(src_machine, dst_machine, pairs, record, backend, dst_pairs=None):
    src_layout, dst_layout, plan = make_pair(src_machine, dst_machine, pairs, dst_pairs)
    native = codec_for(src_layout).encode(record)
    out = converter_for(plan, backend)(native)
    return codec_for(dst_layout).decode(out)


class TestPlanShape:
    def test_identical_layout_coalesces_to_single_copy(self):
        _, _, plan = make_pair(X86, X86, [("a", "int"), ("b", "int"), ("c", "double")])
        assert plan.is_identity
        assert plan.op_histogram() == {"copy": 1}

    def test_coalesce_spans_padding_gaps(self):
        # char + pad + int on both sides: padding advances in lockstep.
        _, _, plan = make_pair(SPARC_V8, SPARC_V8, [("c", "char"), ("i", "int")])
        assert plan.is_identity

    def test_swap_op_for_byte_order(self):
        _, _, plan = make_pair(X86, SPARC_V8, [("d", "double[4]")])
        assert [op.kind for op in plan.ops] == [OpKind.SWAP]
        assert plan.ops[0].count == 4

    def test_single_byte_fields_copy_across_orders(self):
        _, _, plan = make_pair(X86, SPARC_V8, [("c", "char[8]"), ("b", "uint8[4]")])
        assert all(op.kind is OpKind.COPY for op in plan.ops)

    def test_cvt_int_for_size_change(self):
        _, _, plan = make_pair(SPARC_V8, SPARC_V9_64, [("l", "long")])
        assert [op.kind for op in plan.ops] == [OpKind.CVT_INT]

    def test_zero_op_for_missing_field(self):
        _, _, plan = make_pair(X86, X86, [("a", "int")], [("a", "int"), ("b", "double")])
        kinds = {op.kind for op in plan.ops}
        assert OpKind.ZERO in kinds

    def test_describe_renders(self):
        _, _, plan = make_pair(X86, SPARC_V8, [("a", "int"), ("d", "double")])
        assert "swap" in plan.describe()


@pytest.mark.parametrize("backend", BACKENDS)
class TestConverterCorrectness:
    def test_byte_order_only(self, backend):
        rec = {"i": -123456, "d": 3.25, "f": 1.5, "s": -7}
        out = round_trip(X86, SPARC_V8, [("i", "int"), ("d", "double"), ("f", "float"), ("s", "short")], rec, backend)
        assert records_equal(rec, out)

    def test_reverse_direction(self, backend):
        rec = {"i": 42, "d": -2.5}
        out = round_trip(SPARC_V8, X86, [("i", "int"), ("d", "double")], rec, backend)
        assert records_equal(rec, out)

    def test_same_order_different_offsets(self, backend):
        rec = {"i": 7, "d": 9.75}
        out = round_trip(X86, ALPHA, [("i", "int"), ("d", "double")], rec, backend)
        assert records_equal(rec, out)

    def test_long_widening_with_sign(self, backend):
        rec = {"l": -5, "u": 4000000000}
        out = round_trip(SPARC_V8, SPARC_V9_64, [("l", "long"), ("u", "unsigned long")], rec, backend)
        assert records_equal(rec, out)

    def test_long_narrowing(self, backend):
        rec = {"l": -123456}
        out = round_trip(SPARC_V9_64, SPARC_V8, [("l", "long")], rec, backend)
        assert records_equal(rec, out)

    def test_arrays_large_and_small(self, backend):
        rec = {"small": (1.5, -2.5, 3.5), "big": tuple(float(i) for i in range(100))}
        out = round_trip(X86, SPARC_V8, [("small", "double[3]"), ("big", "double[100]")], rec, backend)
        assert records_equal(rec, out)

    def test_int_array_swap(self, backend):
        rec = {"v": tuple(range(-50, 50))}
        out = round_trip(SPARC_V8, X86, [("v", "int[100]")], rec, backend)
        assert records_equal(rec, out)

    def test_char_arrays_copied(self, backend):
        rec = {"name": b"hello\x00\x00\x00", "x": 3}
        out = round_trip(X86, SPARC_V8, [("name", "char[8]"), ("x", "int")], rec, backend)
        assert records_equal(rec, out)

    def test_bool_conversion(self, backend):
        rec = {"flag": True, "n": 9}
        out = round_trip(X86, SPARC_V8, [("flag", "bool"), ("n", "int")], rec, backend)
        assert out["flag"] == 1 and out["n"] == 9

    def test_missing_field_zeroed(self, backend):
        out = round_trip(X86, SPARC_V8, [("a", "int")], {"a": 5}, backend, dst_pairs=[("a", "int"), ("b", "double")])
        assert out == {"a": 5, "b": 0.0}

    def test_extra_field_ignored(self, backend):
        out = round_trip(
            X86, SPARC_V8, [("z", "int"), ("a", "int")], {"z": 99, "a": 5}, backend, dst_pairs=[("a", "int")]
        )
        assert out == {"a": 5}

    def test_int_to_float_cross_kind(self, backend):
        out = round_trip(X86, SPARC_V8, [("x", "int")], {"x": -3}, backend, dst_pairs=[("x", "double")])
        assert out["x"] == -3.0

    def test_float_to_int_cross_kind(self, backend):
        out = round_trip(X86, SPARC_V8, [("x", "double")], {"x": 9.75}, backend, dst_pairs=[("x", "int")])
        assert out["x"] == 9

    def test_float_to_double_widening(self, backend):
        out = round_trip(X86, SPARC_V8, [("x", "float")], {"x": 1.5}, backend, dst_pairs=[("x", "double")])
        assert out["x"] == 1.5

    def test_mixed_record_all_op_kinds(self, backend):
        pairs = [
            ("c", "char"),
            ("i", "int"),
            ("l", "long"),
            ("d", "double[20]"),
            ("f", "float[3]"),
            ("u", "unsigned short"),
            ("name", "char[12]"),
        ]
        rec = {
            "c": b"q",
            "i": -1,
            "l": 123456,
            "d": tuple(float(i) * 0.5 for i in range(20)),
            "f": (0.25, 0.5, 0.75),
            "u": 65535,
            "name": b"converter",
        }
        out = round_trip(SPARC_V8, ALPHA, pairs, rec, backend)
        assert records_equal(rec, out)


class TestStrings:
    # The vcode backend models fixed-size records; strings are tested on
    # the interpreted and python backends.
    @pytest.mark.parametrize("backend", ["interpreted", "python"])
    def test_string_relocation(self, backend):
        rec = {"tag": "hello world", "n": 5}
        out = round_trip(X86, SPARC_V8, [("tag", "string"), ("n", "int")], rec, backend)
        assert out == {"tag": "hello world", "n": 5}

    @pytest.mark.parametrize("backend", ["interpreted", "python"])
    def test_null_string(self, backend):
        out = round_trip(X86, SPARC_V8, [("tag", "string")], {"tag": None}, backend)
        assert out == {"tag": None}

    @pytest.mark.parametrize("backend", ["interpreted", "python"])
    def test_pointer_width_change(self, backend):
        rec = {"tag": "x" * 40, "n": 1}
        out = round_trip(X86, X86_64, [("tag", "string"), ("n", "int")], rec, backend)
        assert out == rec

    def test_vcode_backend_rejects_strings(self):
        _, _, plan = make_pair(X86, SPARC_V8, [("tag", "string")])
        with pytest.raises(ConversionError):
            generate_vcode_converter(plan)


class TestGeneratedCode:
    def test_source_is_returned_and_specialized(self):
        _, _, plan = make_pair(X86, SPARC_V8, [("i", "int"), ("d", "double[50]")])
        gen = generate_python_converter(plan)
        assert "def convert" in gen.source
        assert gen.generation_time_s > 0
        assert gen.backend == "python"
        # offsets are baked in as literals, no loops over ops
        assert "for op" not in gen.source

    def test_identity_plan_single_statement(self):
        _, _, plan = make_pair(X86, X86, [("a", "int"), ("b", "double")])
        gen = generate_python_converter(plan)
        copies = [l for l in gen.source.splitlines() if "src[" in l]
        # adjacent same-representation fields coalesce into one copy
        assert len(copies) == 1

    def test_vcode_source_is_disassembly(self):
        _, _, plan = make_pair(X86, SPARC_V8, [("i", "int")])
        gen = generate_vcode_converter(plan)
        assert "ld" in gen.source

    def test_unknown_backend_rejected(self):
        _, _, plan = make_pair(X86, X86, [("a", "int")])
        with pytest.raises(ValueError):
            generate_converter(plan, backend="llvm")

    def test_converter_accepts_memoryview(self):
        src_layout, dst_layout, plan = make_pair(X86, SPARC_V8, [("i", "int")])
        native = codec_for(src_layout).encode({"i": 77})
        out = generate_python_converter(plan).convert(memoryview(native))
        assert codec_for(dst_layout).decode(out)["i"] == 77


class TestCSemantics:
    """Conversion edge semantics must match what C casts would do."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_narrowing_truncates_like_c(self, backend):
        # 0x1_0000_0001 narrowed to 32 bits -> 1
        src_layout, dst_layout, plan = make_pair(
            SPARC_V9_64, SPARC_V8, [("l", "long")]
        )
        native = codec_for(src_layout).encode({"l": 0x100000001})
        out = converter_for(plan, backend)(native)
        assert codec_for(dst_layout).decode(out)["l"] == 1

    @pytest.mark.parametrize("backend", ["interpreted", "python"])
    def test_double_to_float_overflow_is_inf(self, backend):
        src_layout, dst_layout, plan = make_pair(
            X86, X86, [("x", "double")], [("x", "float")]
        )
        native = codec_for(src_layout).encode({"x": 1e300})
        out = converter_for(plan, backend)(native)
        assert codec_for(dst_layout).decode(out)["x"] == float("inf")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_float_to_int_truncates(self, backend):
        src_layout, dst_layout, plan = make_pair(X86, X86, [("x", "double")], [("x", "int")])
        native = codec_for(src_layout).encode({"x": -2.9})
        out = converter_for(plan, backend)(native)
        assert codec_for(dst_layout).decode(out)["x"] == -2
