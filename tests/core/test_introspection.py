"""Tests for converter source introspection."""

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext


def schema(name="t"):
    # The double array must sit above conversion.NUMPY_THRESHOLD so the
    # DCG source test keeps seeing the numpy lowering.
    return RecordSchema.from_pairs(name, [("i", "int"), ("d", "double[40]")])


def exchange(receiver):
    sender = IOContext(X86)
    h = sender.register_format(schema())
    receiver.expect(schema())
    receiver.receive(sender.announce(h))
    receiver.receive(sender.encode(h, {"i": 1, "d": tuple(float(x) for x in range(40))}))


class TestConverterSources:
    def test_dcg_source_is_specialized_python(self):
        receiver = IOContext(SPARC_V8, conversion="dcg")
        exchange(receiver)
        sources = receiver.converter_sources()
        assert len(sources) == 1
        source = next(iter(sources.values()))
        assert "def convert" in source
        assert "np.frombuffer" in source  # numpy lowering of the array

    def test_vcode_source_is_disassembly(self):
        receiver = IOContext(SPARC_V8, conversion="vcode")
        exchange(receiver)
        source = next(iter(receiver.converter_sources().values()))
        assert "ldf" in source or "ld " in source

    def test_interpreted_source_is_plan_description(self):
        receiver = IOContext(SPARC_V8, conversion="interpreted")
        exchange(receiver)
        source = next(iter(receiver.converter_sources().values()))
        assert "plan" in source and "swap" in source

    def test_filter_by_format_name(self):
        receiver = IOContext(SPARC_V8)
        exchange(receiver)
        assert receiver.converter_sources("t")
        assert not receiver.converter_sources("nonexistent")

    def test_zero_copy_exchange_generates_nothing(self):
        receiver = IOContext(X86)
        exchange(receiver)
        assert receiver.converter_sources() == {}
