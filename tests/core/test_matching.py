"""Tests for name-based field matching and mismatch classification."""

import pytest

from repro.abi import ALPHA, SPARC_V8, SPARC_V9_64, X86, RecordSchema, layout_record
from repro.core import ConversionError, IOFormat, match_formats


def fmt(machine, *pairs, name="t"):
    return IOFormat.from_layout(layout_record(RecordSchema.from_pairs(name, list(pairs)), machine))


class TestIdenticalFormats:
    def test_same_machine_same_schema_is_zero_copy(self):
        a = fmt(X86, ("i", "int"), ("d", "double"))
        b = fmt(X86, ("i", "int"), ("d", "double"))
        m = match_formats(a, b)
        assert m.zero_copy
        assert m.mismatch_count == 0
        assert not m.ignored_wire_fields and not m.missing_names

    def test_same_order_machines_with_same_layout(self):
        # sparc and mips_o32 share byte order and layout rules for this schema
        from repro.abi import MIPS_O32

        a = fmt(SPARC_V8, ("i", "int"), ("d", "double"))
        b = fmt(MIPS_O32, ("i", "int"), ("d", "double"))
        assert match_formats(a, b).zero_copy


class TestByteOrderMismatch:
    def test_opposite_orders_not_zero_copy(self):
        a = fmt(X86, ("i", "int"))
        b = fmt(SPARC_V8, ("i", "int"))
        m = match_formats(a, b)
        assert not m.zero_copy
        assert m.mismatch_count == 1

    def test_char_fields_do_not_count_as_swap_mismatch(self):
        a = fmt(X86, ("c", "char[8]"))
        b = fmt(SPARC_V8, ("c", "char[8]"))
        m = match_formats(a, b)
        # The char field itself is placement-identical...
        assert m.matches[0].identical
        # ...but cross-order exchange still disables whole-record zero-copy.
        assert not m.zero_copy


class TestSizeMismatch:
    def test_long_4_to_8(self):
        a = fmt(SPARC_V8, ("l", "long"))  # 4-byte long
        b = fmt(SPARC_V9_64, ("l", "long"))  # 8-byte long
        m = match_formats(a, b)
        assert not m.zero_copy
        assert m.matches[0].source.size == 4
        assert m.matches[0].target.size == 8

    def test_offset_mismatch_from_abi_padding(self):
        a = fmt(X86, ("i", "int"), ("d", "double"))  # d @ 4
        b = fmt(ALPHA, ("i", "int"), ("d", "double"))  # d @ 8, same (little) order
        m = match_formats(a, b)
        assert not m.zero_copy
        assert not m.matches[1].identical


class TestTypeExtension:
    def test_unexpected_field_ignored(self):
        wire = fmt(X86, ("extra", "int"), ("i", "int"), ("d", "double"))
        native = fmt(X86, ("i", "int"), ("d", "double"))
        m = match_formats(wire, native)
        assert [f.name for f in m.ignored_wire_fields] == ["extra"]
        assert not m.missing_names

    def test_appended_field_keeps_zero_copy(self):
        # Section 4.4: adding fields at the END preserves existing offsets,
        # so un-upgraded receivers keep the zero-overhead path.
        wire = fmt(X86, ("i", "int"), ("d", "double"), ("extra", "int"))
        native = fmt(X86, ("i", "int"), ("d", "double"))
        m = match_formats(wire, native)
        assert m.zero_copy
        assert [f.name for f in m.ignored_wire_fields] == ["extra"]

    def test_prepended_field_breaks_zero_copy(self):
        # The paper's worst case: unexpected field before all expected ones.
        wire = fmt(X86, ("extra", "int"), ("i", "int"), ("d", "double"))
        native = fmt(X86, ("i", "int"), ("d", "double"))
        m = match_formats(wire, native)
        assert not m.zero_copy
        assert m.mismatch_count == 2  # every expected field relocated

    def test_missing_field_defaulted(self):
        wire = fmt(X86, ("i", "int"))
        native = fmt(X86, ("i", "int"), ("d", "double"))
        m = match_formats(wire, native)
        assert m.missing_names == ("d",)
        assert not m.zero_copy

    def test_field_reordering_matches_by_name(self):
        wire = fmt(X86, ("b", "int"), ("a", "int"))
        native = fmt(X86, ("a", "int"), ("b", "int"))
        m = match_formats(wire, native)
        assert m.matches[0].source is not None
        assert m.matches[0].source.offset == 4  # a is second on the wire
        assert not m.zero_copy


class TestKindCompatibility:
    def test_int_to_float_allowed(self):
        wire = fmt(X86, ("x", "int"))
        native = fmt(X86, ("x", "double"))
        m = match_formats(wire, native)
        assert m.matches[0].source is not None

    def test_char_to_int_rejected(self):
        wire = fmt(X86, ("x", "char[4]"))
        native = fmt(X86, ("x", "int"))
        with pytest.raises(ConversionError):
            match_formats(wire, native)

    def test_describe_mentions_ignored(self):
        wire = fmt(X86, ("i", "int"), ("new_field", "int"))
        native = fmt(X86, ("i", "int"))
        assert "new_field" in match_formats(wire, native).describe()


class TestMismatchExtent:
    def test_mismatch_count_proportional(self):
        # Section 4.4: overhead varies with the extent of the mismatch.
        native = fmt(X86, ("a", "int"), ("b", "int"), ("c", "int"), ("d", "int"))
        wire_end = fmt(X86, ("a", "int"), ("b", "int"), ("c", "int"), ("d", "int"), ("z", "int"))
        wire_front = fmt(X86, ("z", "int"), ("a", "int"), ("b", "int"), ("c", "int"), ("d", "int"))
        assert match_formats(wire_end, native).mismatch_count == 0
        assert match_formats(wire_front, native).mismatch_count == 4
