"""Unit tests for the decode resource limits (repro.core.safety)."""

import pytest

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import (
    DEFAULT_LIMITS,
    DecodeLimits,
    FormatError,
    IOContext,
    IOFormat,
    LimitError,
    MessageError,
    PbioError,
)
from repro.core.runtime import ConverterCache
from repro.core.safety import check_field_shape

SCHEMA = RecordSchema.from_pairs("s", [("a", "int"), ("b", "double")])


def linked(limits=DEFAULT_LIMITS):
    sender = IOContext(X86)
    receiver = IOContext(SPARC_V8, limits=limits)
    handle = sender.register_format(SCHEMA)
    receiver.expect(SCHEMA)
    return sender, receiver, handle


class TestDecodeLimits:
    def test_defaults_are_sane(self):
        assert DEFAULT_LIMITS.max_message_size == 64 * 1024 * 1024
        assert DEFAULT_LIMITS.max_fields == 4096

    def test_all_bounds_validated(self):
        for field in (
            "max_message_size",
            "max_meta_size",
            "max_record_size",
            "max_fields",
            "max_name_length",
            "max_count",
            "max_formats_per_peer",
            "max_cache_entries",
        ):
            with pytest.raises(ValueError):
                DecodeLimits(**{field: 0})

    def test_unlimited_never_trips(self):
        limits = DecodeLimits.unlimited()
        limits.check_message_size(1 << 40)
        limits.check_meta_size(1 << 40)

    def test_check_message_size(self):
        with pytest.raises(LimitError):
            DecodeLimits(max_message_size=10).check_message_size(11)

    def test_limit_error_is_message_error(self):
        assert issubclass(LimitError, MessageError)
        assert issubclass(LimitError, PbioError)


class TestFieldShape:
    def test_integer_sizes(self):
        from repro.abi import PrimKind

        for size in (1, 2, 4, 8):
            check_field_shape(PrimKind.INTEGER, size, "f")
        with pytest.raises(FormatError):
            check_field_shape(PrimKind.INTEGER, 3, "f")

    def test_float_sizes(self):
        from repro.abi import PrimKind

        for size in (4, 8):
            check_field_shape(PrimKind.FLOAT, size, "f")
        with pytest.raises(FormatError):
            check_field_shape(PrimKind.FLOAT, 2, "f")

    def test_meta_with_impossible_field_size_rejected(self):
        sender = IOContext(X86)
        meta = bytearray(sender.register_format(SCHEMA).iofmt.to_meta_bytes())
        # Field descriptors live between the names; smash every u8 that
        # follows a kind code and confirm the parser never accepts an
        # int of width 200 even when the fingerprint is stripped.
        blob = bytes(meta[:-20])  # v1 block: no fingerprint protection
        fmt = IOFormat.from_meta_bytes(blob)  # sanity: parses unmutated
        idx = blob.index(b"\x00\x04\x00\x00\x00")  # kind=int(0), size=4
        mutated = blob[:idx] + b"\x00\xc8" + blob[idx + 2 :]
        with pytest.raises(FormatError):
            IOFormat.from_meta_bytes(mutated)
        assert fmt.record_size >= 0


class TestIngressLimits:
    def test_oversized_data_message_rejected_and_counted(self):
        sender, receiver, handle = linked(DecodeLimits(max_message_size=80))
        receiver.receive(sender.announce(handle))  # 77 bytes: admitted
        big = sender.encode(handle, {"a": 1, "b": 2.0}) + b"\0" * 64
        with pytest.raises(LimitError):
            receiver.receive(big)
        assert receiver.metrics.value("decode.rejected") == 1

    def test_oversized_meta_rejected(self):
        receiver = IOContext(SPARC_V8, limits=DecodeLimits(max_meta_size=8))
        sender, _, handle = linked()
        with pytest.raises(LimitError):
            receiver.receive(sender.announce(handle))

    def test_per_peer_format_quota(self):
        sender = IOContext(X86)
        receiver = IOContext(SPARC_V8, limits=DecodeLimits(max_formats_per_peer=2))
        handles = [
            sender.register_format(RecordSchema.from_pairs(f"q{i}", [("x", "int")]))
            for i in range(3)
        ]
        receiver.receive(sender.announce(handles[0]))
        receiver.receive(sender.announce(handles[1]))
        with pytest.raises(LimitError):
            receiver.receive(sender.announce(handles[2]))
        assert receiver.registry.remote_count(sender.context_id) == 2

    def test_re_announcement_does_not_consume_quota(self):
        sender = IOContext(X86)
        receiver = IOContext(SPARC_V8, limits=DecodeLimits(max_formats_per_peer=1))
        handle = sender.register_format(SCHEMA)
        for _ in range(5):
            receiver.receive(sender.announce(handle))

    def test_limits_none_disables_checks(self):
        sender, receiver, handle = linked(limits=None)
        receiver.receive(sender.announce(handle))
        # A message far beyond DEFAULT_LIMITS still has to be *consistent*,
        # so grow the payload legally: a trailing-garbage message should
        # fail structurally, not on a resource bound.
        big = sender.encode(handle, {"a": 1, "b": 2.0}) + b"\0" * 64
        with pytest.raises(MessageError) as exc_info:
            receiver.receive(big)
        assert not isinstance(exc_info.value, LimitError)


class TestCacheQuota:
    def test_eviction_beyond_max_entries(self):
        cache = ConverterCache(max_entries=2)
        receivers = []
        for i in range(4):
            sender = IOContext(X86)
            schema = RecordSchema.from_pairs(f"c{i}", [("x", "double")])
            handle = sender.register_format(schema)
            receiver = IOContext(SPARC_V8, cache=cache)
            receiver.expect(schema)
            receiver.receive(sender.announce(handle))
            receiver.receive(sender.encode(handle, {"x": 1.0}))
            receivers.append(receiver)
        assert len(cache) == 2
        assert cache.metrics.value("cache.evictions") == 2

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ConverterCache(max_entries=0)

    def test_context_cache_bounded_by_limits(self):
        ctx = IOContext(SPARC_V8, limits=DecodeLimits(max_cache_entries=7))
        assert ctx.cache.max_entries == 7

    def test_context_cache_unbounded_without_limits(self):
        ctx = IOContext(SPARC_V8, limits=None)
        assert ctx.cache.max_entries is None
