"""Tests for RPC over PBIO."""

import pytest

from repro.abi import ALPHA, SPARC_V8, X86, CType, FieldDecl, RecordSchema
from repro.core import RpcClient, RpcFault, RpcInterface, RpcOperation, RpcServer
from repro.net import InMemoryPipe

ADD_REQ = RecordSchema.from_pairs("add_req", [("a", "double"), ("b", "double")])
ADD_REP = RecordSchema.from_pairs("add_rep", [("total", "double")])
NORM_REQ = RecordSchema.from_pairs("norm_req", [("v", "double[8]"), ("n", "int")])
NORM_REP = RecordSchema.from_pairs("norm_rep", [("norm", "double")])

CALC = RpcInterface(
    "Calculator",
    [
        RpcOperation("add", ADD_REQ, ADD_REP),
        RpcOperation("norm", NORM_REQ, NORM_REP),
    ],
)


def make_pair(client_machine=X86, server_machine=SPARC_V8, interface=CALC):
    pipe = InMemoryPipe()
    client = RpcClient(client_machine, interface)
    server = RpcServer(server_machine, interface)

    def add(req):
        return {"total": req["a"] + req["b"]}

    def norm(req):
        values = list(req["v"])[: req["n"]]
        return {"norm": sum(x * x for x in values) ** 0.5}

    server.register(b"calc", {"add": add, "norm": norm})

    class SyncTransport:
        """Client-side transport that runs the server synchronously."""

        def send(self, data):
            pipe.a.send(data)

        def recv(self):
            # Let the server consume everything queued and reply first.
            while pipe.b.pending() and not pipe.a.pending():
                server.serve_one(pipe.b)
            return pipe.a.recv()

        def close(self):
            pass

    return client, SyncTransport()


class TestRpc:
    def test_simple_call(self):
        client, transport = make_pair()
        assert client.invoke(transport, b"calc", "add", {"a": 2.0, "b": 3.0}) == {"total": 5.0}

    def test_heterogeneous_call_with_arrays(self):
        client, transport = make_pair(X86, ALPHA)
        result = client.invoke(
            transport, b"calc", "norm", {"v": (3.0, 4.0, 0, 0, 0, 0, 0, 0), "n": 2}
        )
        assert result == {"norm": 5.0}

    def test_repeated_calls_announce_once(self):
        client, transport = make_pair()
        for i in range(4):
            client.invoke(transport, b"calc", "add", {"a": float(i), "b": 1.0})
        # one request-format announcement total (per transport)
        assert len(client._announcer._sent) == 1
        # and the server generated exactly one converter for add_req
        # (cached across calls)

    def test_unknown_object_faults(self):
        client, transport = make_pair()
        with pytest.raises(RpcFault, match="no object"):
            client.invoke(transport, b"nope", "add", {"a": 1.0, "b": 1.0})

    def test_servant_missing_operation_faults(self):
        # 'norm' is in the interface but this servant doesn't implement it.
        pipe = InMemoryPipe()
        client = RpcClient(X86, CALC)
        server = RpcServer(SPARC_V8, CALC)
        server.register(b"calc", {"add": lambda r: {"total": r["a"] + r["b"]}})

        class SyncTransport:
            def send(self, data):
                pipe.a.send(data)

            def recv(self):
                while pipe.b.pending() and not pipe.a.pending():
                    server.serve_one(pipe.b)
                return pipe.a.recv()

        with pytest.raises(RpcFault, match="no operation"):
            client.invoke(SyncTransport(), b"calc", "norm", {"v": (0.0,) * 8, "n": 1})

    def test_operation_not_in_interface_rejected_client_side(self):
        from repro.core import PbioError

        client, transport = make_pair()
        with pytest.raises(PbioError, match="no operation"):
            client.invoke(transport, b"calc", "frobnicate", {})


class TestRpcEvolution:
    def test_upgraded_client_older_server(self):
        """An IDL-stub system would reject this outright: the client's
        request record gained a field the server has never heard of."""
        new_req = ADD_REQ.extended("add_req", [FieldDecl("precision", CType.INT)])
        new_iface = RpcInterface(
            "Calculator", [RpcOperation("add", new_req, ADD_REP)]
        )
        # Server still speaks the OLD interface.
        pipe = InMemoryPipe()
        client = RpcClient(X86, new_iface)
        server = RpcServer(SPARC_V8, CALC)
        server.register(b"calc", {"add": lambda r: {"total": r["a"] + r["b"]}})

        class SyncTransport:
            def send(self, data):
                pipe.a.send(data)

            def recv(self):
                while pipe.b.pending() and not pipe.a.pending():
                    server.serve_one(pipe.b)
                return pipe.a.recv()

        result = client.invoke(
            SyncTransport(), b"calc", "add", {"a": 1.0, "b": 2.0, "precision": 9}
        )
        assert result == {"total": 3.0}

    def test_duplicate_operations_rejected(self):
        from repro.core import PbioError

        with pytest.raises(PbioError, match="duplicate"):
            RpcInterface(
                "X",
                [RpcOperation("f", ADD_REQ, ADD_REP), RpcOperation("f", ADD_REQ, ADD_REP)],
            )
