"""Tests for nested record types ("complex subtypes", Section 3)."""

import pytest

from repro.abi import (
    ALPHA,
    SPARC_V8,
    X86,
    CType,
    FieldDecl,
    RecordSchema,
    codec_for,
    layout_record,
    records_equal,
)
from repro.core import IOContext, PbioWire
from repro.wire import IiopWire, MpiWire, XdrWire, XmlWire

VEC3 = RecordSchema.from_pairs("vec3", [("x", "double"), ("y", "double"), ("z", "double")])
HEADER = RecordSchema.from_pairs("hdr", [("step", "int"), ("flag", "char")])

BODY = RecordSchema(
    "body",
    [
        FieldDecl("id", CType.INT),
        FieldDecl.nested("hdr", HEADER),
        FieldDecl.nested("pos", VEC3),
        FieldDecl.nested("trail", VEC3, count=3),
        FieldDecl("mass", CType.DOUBLE),
    ],
)


def body_record():
    return {
        "id": 5,
        "hdr": {"step": 9, "flag": b"Q"},
        "pos": {"x": 1.0, "y": 2.0, "z": 3.0},
        "trail": [{"x": float(i), "y": i + 0.5, "z": float(-i)} for i in range(3)],
        "mass": 70.5,
    }


class TestDeclarations:
    def test_nested_decl_properties(self):
        f = FieldDecl.nested("pos", VEC3)
        assert f.is_nested and f.schema is VEC3 and f.ctype is None

    def test_nested_with_ctype_rejected(self):
        with pytest.raises(ValueError, match="no ctype"):
            FieldDecl("pos", CType.INT, schema=VEC3)

    def test_missing_ctype_rejected(self):
        with pytest.raises(ValueError, match="ctype required"):
            FieldDecl("pos", None)

    def test_flattening_explosion_guarded(self):
        with pytest.raises(ValueError, match="limit"):
            layout_record(
                RecordSchema("t", [FieldDecl.nested("a", VEC3, count=2000)]), X86
            )


class TestLayout:
    def test_substruct_alignment(self):
        # hdr is {int, char} (size 8, align 4); pos is 3 doubles.
        lay = layout_record(BODY, SPARC_V8)
        assert lay["hdr.step"].offset == 4
        assert lay["hdr.flag"].offset == 8
        assert lay["pos.x"].offset == 16  # sparc aligns doubles to 8
        assert layout_record(BODY, X86)["pos.x"].offset == 12  # i386: 4

    def test_array_of_structs_strides_by_padded_size(self):
        lay = layout_record(BODY, SPARC_V8)
        stride = lay["trail.1.x"].offset - lay["trail.0.x"].offset
        assert stride == layout_record(VEC3, SPARC_V8).size

    def test_deeply_nested(self):
        inner = RecordSchema("i", [FieldDecl("v", CType.INT)])
        mid = RecordSchema("m", [FieldDecl.nested("inner", inner), FieldDecl("w", CType.INT)])
        outer = RecordSchema("o", [FieldDecl.nested("mid", mid)])
        lay = layout_record(outer, X86)
        assert lay["mid.inner.v"].offset == 0
        assert lay["mid.w"].offset == 4


class TestCodecRoundTrip:
    @pytest.mark.parametrize("machine", [X86, SPARC_V8, ALPHA])
    def test_nested_encode_decode(self, machine):
        codec = codec_for(layout_record(BODY, machine))
        rec = body_record()
        assert records_equal(rec, codec.decode(codec.encode(rec)))

    def test_missing_nested_branch_zeroed(self):
        codec = codec_for(layout_record(BODY, X86))
        out = codec.decode(codec.encode({"id": 1, "mass": 2.0}))
        assert out["id"] == 1
        assert out["pos"] == {"x": 0.0, "y": 0.0, "z": 0.0}
        assert out["trail"][2]["z"] == 0.0


class TestExchanges:
    @pytest.mark.parametrize("mode", ["dcg", "interpreted", "vcode"])
    def test_pbio_heterogeneous_nested(self, mode):
        sender = IOContext(SPARC_V8, conversion=mode)
        receiver = IOContext(X86, conversion=mode)
        h = sender.register_format(BODY)
        receiver.expect(BODY)
        receiver.receive(sender.announce(h))
        out = receiver.receive(sender.encode(h, body_record()))
        assert records_equal(body_record(), out)

    def test_nested_rename_inner_field_is_a_mismatch(self):
        # Renaming pos.x breaks the match for that leaf only.
        other_vec = RecordSchema.from_pairs("vec3", [("x2", "double"), ("y", "double"), ("z", "double")])
        v2 = RecordSchema(
            "body",
            [FieldDecl("id", CType.INT), FieldDecl.nested("pos", other_vec)],
        )
        v1 = RecordSchema(
            "body",
            [FieldDecl("id", CType.INT), FieldDecl.nested("pos", VEC3)],
        )
        sender = IOContext(X86)
        receiver = IOContext(X86)
        h = sender.register_format(v2)
        receiver.expect(v1)
        receiver.receive(sender.announce(h))
        out = receiver.receive(
            sender.encode(h, {"id": 1, "pos": {"x2": 9.0, "y": 2.0, "z": 3.0}})
        )
        assert out["pos"]["x"] == 0.0  # defaulted: no pos.x on the wire
        assert out["pos"]["y"] == 2.0

    @pytest.mark.parametrize(
        "system_factory", [MpiWire, XmlWire, IiopWire, XdrWire, PbioWire]
    )
    def test_baselines_carry_nested_records(self, system_factory):
        src = layout_record(BODY, SPARC_V8)
        dst = layout_record(BODY, X86)
        bound = system_factory().bind(src, dst)
        native = codec_for(src).encode(body_record())
        out = codec_for(dst).decode(bound.decode(bound.encode(native)))
        assert records_equal(body_record(), out)

    def test_projection_of_nested_scalar(self):
        from repro.core import RecordProjector

        sender = IOContext(SPARC_V8)
        receiver = IOContext(X86)
        h = sender.register_format(BODY)
        receiver.receive(sender.announce(h))
        msg = sender.encode(h, body_record())
        projector = RecordProjector(receiver, "body", ["pos.x", "hdr.step"])
        assert projector.project(msg) == {"pos.x": 1.0, "hdr.step": 9}

    def test_reflection_sees_flattened_names(self):
        from repro.core import incoming_format

        sender = IOContext(X86)
        receiver = IOContext(X86)
        h = sender.register_format(BODY)
        fmt = incoming_format(receiver, sender.announce(h))
        assert "pos.x" in fmt.field_names()
        assert "trail.2.z" in fmt.field_names()
