"""Tests for reflection and application-evolution helpers."""

import pytest

from repro.abi import SPARC_V8, X86, CType, FieldDecl, RecordSchema, layout_record
from repro.core import (
    IOContext,
    IOFormat,
    check_evolution,
    generic_decode,
    incoming_format,
    peek_message,
)
from repro.core import encoder as enc


def schema(*pairs, name="rec"):
    return RecordSchema.from_pairs(name, list(pairs))


def fmt(machine, sch):
    return IOFormat.from_layout(layout_record(sch, machine))


class TestReflection:
    def test_peek_format_message(self):
        ctx = IOContext(X86)
        h = ctx.register_format(schema(("i", "int")))
        info = peek_message(ctx.announce(h))
        assert info.is_format and not info.is_data
        assert info.context_id == ctx.context_id

    def test_peek_data_message(self):
        ctx = IOContext(X86)
        h = ctx.register_format(schema(("i", "int")))
        info = peek_message(ctx.encode(h, {"i": 1}))
        assert info.is_data
        assert info.format_id == h.format_id

    def test_incoming_format_from_announcement(self):
        sender = IOContext(SPARC_V8)
        receiver = IOContext(X86)
        h = sender.register_format(schema(("i", "int"), ("d", "double")))
        wire_fmt = incoming_format(receiver, sender.announce(h))
        assert wire_fmt.name == "rec"
        assert wire_fmt.byte_order == "big"
        assert wire_fmt.field_names() == ["i", "d"]

    def test_incoming_format_from_data_after_announcement(self):
        sender = IOContext(SPARC_V8)
        receiver = IOContext(X86)
        h = sender.register_format(schema(("i", "int")))
        receiver.receive(sender.announce(h))
        wire_fmt = incoming_format(receiver, sender.encode(h, {"i": 1}))
        assert wire_fmt.name == "rec"

    def test_generic_decode_without_expectations(self):
        # A generic component decodes a record it has never heard of.
        sender = IOContext(SPARC_V8)
        receiver = IOContext(X86)  # never calls expect()
        sch = schema(("i", "int"), ("v", "float[3]"), ("name", "char[4]"), ("ok", "bool"))
        h = sender.register_format(sch)
        receiver.receive(sender.announce(h))
        message = sender.encode(h, {"i": -9, "v": (1.0, 2.0, 3.0), "name": b"ab", "ok": True})
        out = generic_decode(receiver, message)
        assert out["i"] == -9
        assert out["v"] == (1.0, 2.0, 3.0)
        assert out["name"].startswith(b"ab")
        assert out["ok"] is True

    def test_generic_decode_with_string(self):
        sender = IOContext(X86)
        receiver = IOContext(X86)
        sch = schema(("tag", "string"), ("n", "int"))
        h = sender.register_format(sch)
        receiver.receive(sender.announce(h))
        out = generic_decode(receiver, sender.encode(h, {"tag": "report", "n": 2}))
        assert out == {"tag": "report", "n": 2}

    def test_generic_decode_rejects_format_message(self):
        from repro.core import MessageError

        sender = IOContext(X86)
        receiver = IOContext(X86)
        h = sender.register_format(schema(("i", "int")))
        with pytest.raises(MessageError):
            generic_decode(receiver, sender.announce(h))


class TestEvolution:
    def test_appended_field_is_zero_cost(self):
        old_s = schema(("i", "int"), ("d", "double"))
        new_s = old_s.extended("rec", [FieldDecl("extra", CType.INT)])
        report = check_evolution(fmt(X86, old_s), fmt(X86, new_s))
        assert report.compatible
        assert report.added == ("extra",)
        assert not report.removed and not report.relocated
        assert report.zero_cost_for_old_readers

    def test_prepended_field_relocates_everything(self):
        old_s = schema(("i", "int"), ("d", "double"))
        new_s = old_s.extended("rec", [FieldDecl("extra", CType.INT)], prepend=True)
        report = check_evolution(fmt(X86, old_s), fmt(X86, new_s))
        assert report.compatible
        assert set(report.relocated) == {"i", "d"}
        assert not report.zero_cost_for_old_readers
        assert any("appending" in n for n in report.notes)

    def test_removed_field_noted(self):
        old_s = schema(("i", "int"), ("gone", "double"))
        new_s = schema(("i", "int"))
        report = check_evolution(fmt(X86, old_s), fmt(X86, new_s))
        assert report.removed == ("gone",)
        assert any("zero" in n for n in report.notes)

    def test_incompatible_kind_change(self):
        old_s = schema(("x", "int"))
        new_s = schema(("x", "char[4]"))
        report = check_evolution(fmt(X86, old_s), fmt(X86, new_s))
        assert not report.compatible

    def test_describe_readable(self):
        old_s = schema(("i", "int"))
        new_s = old_s.extended("rec", [FieldDecl("z", CType.INT)])
        text = check_evolution(fmt(X86, old_s), fmt(X86, new_s)).describe()
        assert "compatible" in text and "z" in text

    def test_cross_machine_evolution(self):
        # Upgraded x86 writers, old sparc readers: conversion anyway, but
        # the change must remain compatible.
        old_s = schema(("i", "int"), ("d", "double"))
        new_s = old_s.extended("rec", [FieldDecl("extra", CType.DOUBLE)])
        report = check_evolution(fmt(SPARC_V8, old_s), fmt(X86, new_s))
        assert report.compatible
        assert not report.zero_cost_for_old_readers  # byte order differs
