"""Tests for the CLI tools (pbio-layout, pbio-dump, pbio-wal)."""

import pytest

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext, write_records
from repro.tools import dump_main, layout_main, wal_main


class TestLayoutTool:
    def test_single_machine_layout(self, capsys):
        rc = layout_main(["--machines", "i86", "n:int", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "int n" in out and "double d" in out

    def test_cross_machine_analysis(self, capsys):
        rc = layout_main(["--machines", "i86,sparc", "n:int", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "i86 -> sparc" in out
        assert "conversion" in out

    def test_zero_copy_verdict_same_machine_pair(self, capsys):
        rc = layout_main(["--machines", "sparc,mips_o32", "n:int", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "zero-copy" in out

    def test_array_fields(self, capsys):
        rc = layout_main(["--machines", "i86", "v:double[4]"])
        assert rc == 0
        assert "v[4]" in capsys.readouterr().out

    def test_unknown_machine_errors(self, capsys):
        rc = layout_main(["--machines", "cray", "n:int"])
        assert rc == 2
        assert "unknown machines" in capsys.readouterr().err

    def test_bad_field_spec_errors(self):
        with pytest.raises(SystemExit):
            layout_main(["--machines", "i86", "notafield"])

    def test_bad_type_errors(self, capsys):
        rc = layout_main(["--machines", "i86", "x:quaternion"])
        assert rc == 2
        assert "bad schema" in capsys.readouterr().err

    def test_future_work_machines_available(self, capsys):
        rc = layout_main(["--machines", "i960,strongarm", "c:char", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        # i960 aligns doubles to 8, StrongARM (OABI) to 4: layouts differ.
        assert "conversion" in out


@pytest.fixture
def sample_file(tmp_path):
    path = str(tmp_path / "dump.pbio")
    schema = RecordSchema.from_pairs(
        "sensor", [("id", "int"), ("value", "double"), ("tag", "char[4]")]
    )
    write_records(
        IOContext(SPARC_V8),
        path,
        schema,
        [
            {"id": 1, "value": 2.5, "tag": b"aa"},
            {"id": 2, "value": -1.0, "tag": b"bb"},
        ],
    )
    return path


class TestDumpTool:
    def test_dump_decodes_without_schema(self, sample_file, capsys):
        rc = dump_main([sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "format 'sensor'" in out
        assert "id = 1" in out and "value = -1.0" in out
        assert "2 record(s), 1 format(s)" in out

    def test_formats_only(self, sample_file, capsys):
        rc = dump_main(["--formats", sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "format 'sensor'" in out
        assert "record #" not in out

    def test_hex_dump(self, sample_file, capsys):
        rc = dump_main(["--hex", sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "|" in out and "000000" in out

    def test_limit(self, sample_file, capsys):
        rc = dump_main(["--limit", "1", sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "record #1" in out and "record #2" not in out

    def test_missing_file(self, capsys):
        rc = dump_main(["/nonexistent/never.pbio"])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_corrupt_file(self, tmp_path, capsys):
        path = tmp_path / "bad.pbio"
        path.write_bytes(b"garbage data here")
        rc = dump_main([str(path)])
        assert rc == 1
        assert "corrupt" in capsys.readouterr().err

    def test_multi_format_file(self, tmp_path, capsys):
        path = str(tmp_path / "multi.pbio")
        ctx = IOContext(X86)
        from repro.core.files import PbioFileWriter

        s1 = RecordSchema.from_pairs("alpha", [("a", "int")])
        s2 = RecordSchema.from_pairs("beta", [("b", "double")])
        with PbioFileWriter.open(ctx, path) as writer:
            writer.write(ctx.register_format(s1), {"a": 1})
            writer.write(ctx.register_format(s2), {"b": 2.0})
        rc = dump_main([path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "format 'alpha'" in out and "format 'beta'" in out
        assert "2 record(s), 2 format(s)" in out


@pytest.fixture
def wal_dir(tmp_path):
    """A WAL directory with three segments of one sequenced stream."""
    from repro.net import DurablePublisher, EventChannel

    schema = RecordSchema.from_pairs("point", [("x", "int"), ("y", "double")])
    ctx = IOContext(X86, context_id=0x1234)
    handle = ctx.register_format(schema)
    directory = str(tmp_path / "wal")
    pub = DurablePublisher(EventChannel(), ctx, wal_dir=directory, segment_bytes=4096)
    for i in range(200):
        pub.publish(handle, {"x": i, "y": i * 0.5})
    pub.close()
    return directory


class TestWalTool:
    def test_ls_reports_streams_and_cursors(self, wal_dir, capsys):
        rc = wal_main(["ls", wal_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wal-00000001.seg" in out
        assert "ctx=0x1234 fmt=1" in out
        assert "200 journaled, acked through 0, ~200 unacked" in out

    def test_verify_clean(self, wal_dir, capsys):
        rc = wal_main(["verify", wal_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.strip().endswith("clean")

    def test_verify_detects_torn_tail(self, wal_dir, capsys):
        import os

        segs = sorted(n for n in os.listdir(wal_dir) if n.endswith(".seg"))
        with open(os.path.join(wal_dir, segs[-1]), "r+b") as stream:
            stream.seek(0, os.SEEK_END)
            stream.truncate(stream.tell() - 3)
        rc = wal_main(["verify", wal_dir])
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 torn" in out and "DAMAGED" in out

    def test_verify_detects_corruption(self, wal_dir, capsys):
        import os

        segs = sorted(n for n in os.listdir(wal_dir) if n.endswith(".seg"))
        path = os.path.join(wal_dir, segs[0])
        data = bytearray(open(path, "rb").read())
        data[40] ^= 0xFF  # flip a payload byte inside the first frame
        open(path, "wb").write(bytes(data))
        rc = wal_main(["verify", wal_dir, "--quiet"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 corrupt" in out

    def test_compact_heals_torn_tail(self, wal_dir, capsys):
        import os

        segs = sorted(n for n in os.listdir(wal_dir) if n.endswith(".seg"))
        with open(os.path.join(wal_dir, segs[-1]), "r+b") as stream:
            stream.seek(0, os.SEEK_END)
            stream.truncate(stream.tell() - 3)
        rc = wal_main(["compact", wal_dir])
        assert rc == 1  # damage was found (and healed)
        capsys.readouterr()
        rc = wal_main(["verify", wal_dir, "--quiet"])
        assert rc == 0  # the heal stuck

    def test_compact_drops_fully_acked_segments(self, wal_dir, capsys):
        import os

        from repro.net import PublisherWAL

        with PublisherWAL(wal_dir, segment_bytes=4096) as wal:
            wal.ack((0x1234, 1), 200)
        before = len([n for n in os.listdir(wal_dir) if n.endswith(".seg")])
        rc = wal_main(["compact", wal_dir])
        out = capsys.readouterr().out
        assert rc == 0
        after = len([n for n in os.listdir(wal_dir) if n.endswith(".seg")])
        assert after <= before
        assert "0 entries unacked" in out

    def test_not_a_directory(self, tmp_path, capsys):
        rc = wal_main(["ls", str(tmp_path / "nope")])
        assert rc == 2
        assert "not a directory" in capsys.readouterr().err

    def test_not_a_wal_file(self, tmp_path, capsys):
        directory = str(tmp_path)
        (tmp_path / "wal-00000001.seg").write_bytes(b"garbage bytes here")
        rc = wal_main(["verify", directory])
        assert rc == 2
        assert "not a WAL file" in capsys.readouterr().err


class TestFabricTool:
    def test_ring_prints_shares_and_sample_channels(self, capsys):
        from repro.tools import fabric_main

        rc = fabric_main(["ring", "--workers", "3", "--channels", "100", "--key", "7:1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "3 worker(s)" in out
        assert "w0" in out and "w2" in out
        assert "100 sample channel(s)" in out
        assert "channel (7, 1) -> w" in out

    def test_ring_balance_is_visibly_fair(self, capsys):
        from repro.tools import fabric_main

        assert fabric_main(["ring", "--workers", "4"]) == 0
        out = capsys.readouterr().out
        import re

        shares = [
            float(line.split()[1])
            for line in out.splitlines()
            if re.match(r"^w\d", line)
        ]
        assert len(shares) == 4
        for share in shares:
            assert abs(share - 0.25) <= 0.05  # within 20% of fair

    def test_usage_errors_exit_2(self, capsys):
        from repro.tools import fabric_main

        assert fabric_main(["ring", "--workers", "0"]) == 2
        assert fabric_main(["ring", "--workers", "2", "--key", "junk"]) == 2
        assert fabric_main(["serve", "--workers", "0"]) == 2
        capsys.readouterr()

    def test_status_against_dead_port_exits_1(self, capsys):
        import socket

        from repro.tools import fabric_main

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = fabric_main(
            ["status", "--server", f"127.0.0.1:{port}", "--timeout", "0.5"]
        )
        assert rc == 1
        assert "DOWN" in capsys.readouterr().err


@pytest.mark.integration
class TestFabricServeOverSockets:
    def test_serve_status_and_routing_round_trip(self, tmp_path, capsys):
        import os
        import re
        import socket
        import subprocess
        import sys

        from repro.abi import SPARC_V8
        from repro.net.sockets import SocketTransport
        from repro.tools import fabric_main

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.tools.fabric_tool import main; import sys;"
                "sys.exit(main(sys.argv[1:]))",
                "serve",
                "--port",
                "0",
                "--workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert "fabric: 2 worker(s)" in proc.stdout.readline()
            match = re.match(r"listening on (\S+):(\d+)", proc.stdout.readline())
            assert match, "no listen line"
            host, port = match.group(1), int(match.group(2))
            assert fabric_main(["status", "--server", f"{host}:{port}"]) == 0
            assert "alive" in capsys.readouterr().out

            # One peer publishes, another subscribes through its tap.
            schema = RecordSchema.from_pairs(
                "telemetry", [("unit", "int"), ("temperature", "double")]
            )
            rx_sock = socket.create_connection((host, port), timeout=10)
            rx_sock.settimeout(10)
            rx = SocketTransport(rx_sock)
            rx_ctx = IOContext(X86)
            rx_ctx.expect(schema)
            tx_sock = socket.create_connection((host, port), timeout=10)
            tx_sock.settimeout(10)
            tx = SocketTransport(tx_sock)
            sender = IOContext(SPARC_V8)
            handle = sender.register_format(schema)
            tx.send_many(
                [
                    sender.announce(handle),
                    sender.encode(handle, {"unit": 3, "temperature": 30.0}),
                ]
            )
            record = None
            while record is None:
                record = rx_ctx.receive(rx.recv())
            assert record == {"unit": 3, "temperature": 30.0}
            tx.close()
            rx.close()
        finally:
            proc.terminate()
            proc.wait(timeout=10)
