"""Tests for the CLI tools (pbio-layout, pbio-dump)."""

import pytest

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext, write_records
from repro.tools import dump_main, layout_main


class TestLayoutTool:
    def test_single_machine_layout(self, capsys):
        rc = layout_main(["--machines", "i86", "n:int", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "int n" in out and "double d" in out

    def test_cross_machine_analysis(self, capsys):
        rc = layout_main(["--machines", "i86,sparc", "n:int", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "i86 -> sparc" in out
        assert "conversion" in out

    def test_zero_copy_verdict_same_machine_pair(self, capsys):
        rc = layout_main(["--machines", "sparc,mips_o32", "n:int", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "zero-copy" in out

    def test_array_fields(self, capsys):
        rc = layout_main(["--machines", "i86", "v:double[4]"])
        assert rc == 0
        assert "v[4]" in capsys.readouterr().out

    def test_unknown_machine_errors(self, capsys):
        rc = layout_main(["--machines", "cray", "n:int"])
        assert rc == 2
        assert "unknown machines" in capsys.readouterr().err

    def test_bad_field_spec_errors(self):
        with pytest.raises(SystemExit):
            layout_main(["--machines", "i86", "notafield"])

    def test_bad_type_errors(self, capsys):
        rc = layout_main(["--machines", "i86", "x:quaternion"])
        assert rc == 2
        assert "bad schema" in capsys.readouterr().err

    def test_future_work_machines_available(self, capsys):
        rc = layout_main(["--machines", "i960,strongarm", "c:char", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        # i960 aligns doubles to 8, StrongARM (OABI) to 4: layouts differ.
        assert "conversion" in out


@pytest.fixture
def sample_file(tmp_path):
    path = str(tmp_path / "dump.pbio")
    schema = RecordSchema.from_pairs(
        "sensor", [("id", "int"), ("value", "double"), ("tag", "char[4]")]
    )
    write_records(
        IOContext(SPARC_V8),
        path,
        schema,
        [
            {"id": 1, "value": 2.5, "tag": b"aa"},
            {"id": 2, "value": -1.0, "tag": b"bb"},
        ],
    )
    return path


class TestDumpTool:
    def test_dump_decodes_without_schema(self, sample_file, capsys):
        rc = dump_main([sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "format 'sensor'" in out
        assert "id = 1" in out and "value = -1.0" in out
        assert "2 record(s), 1 format(s)" in out

    def test_formats_only(self, sample_file, capsys):
        rc = dump_main(["--formats", sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "format 'sensor'" in out
        assert "record #" not in out

    def test_hex_dump(self, sample_file, capsys):
        rc = dump_main(["--hex", sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "|" in out and "000000" in out

    def test_limit(self, sample_file, capsys):
        rc = dump_main(["--limit", "1", sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "record #1" in out and "record #2" not in out

    def test_missing_file(self, capsys):
        rc = dump_main(["/nonexistent/never.pbio"])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_corrupt_file(self, tmp_path, capsys):
        path = tmp_path / "bad.pbio"
        path.write_bytes(b"garbage data here")
        rc = dump_main([str(path)])
        assert rc == 1
        assert "corrupt" in capsys.readouterr().err

    def test_multi_format_file(self, tmp_path, capsys):
        path = str(tmp_path / "multi.pbio")
        ctx = IOContext(X86)
        from repro.core.files import PbioFileWriter

        s1 = RecordSchema.from_pairs("alpha", [("a", "int")])
        s2 = RecordSchema.from_pairs("beta", [("b", "double")])
        with PbioFileWriter.open(ctx, path) as writer:
            writer.write(ctx.register_format(s1), {"a": 1})
            writer.write(ctx.register_format(s2), {"b": 2.0})
        rc = dump_main([path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "format 'alpha'" in out and "format 'beta'" in out
        assert "2 record(s), 2 format(s)" in out
