"""Tests for the CLI tools (pbio-layout, pbio-dump, pbio-wal)."""

import pytest

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext, write_records
from repro.tools import dump_main, layout_main, wal_main


class TestLayoutTool:
    def test_single_machine_layout(self, capsys):
        rc = layout_main(["--machines", "i86", "n:int", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "int n" in out and "double d" in out

    def test_cross_machine_analysis(self, capsys):
        rc = layout_main(["--machines", "i86,sparc", "n:int", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "i86 -> sparc" in out
        assert "conversion" in out

    def test_zero_copy_verdict_same_machine_pair(self, capsys):
        rc = layout_main(["--machines", "sparc,mips_o32", "n:int", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "zero-copy" in out

    def test_array_fields(self, capsys):
        rc = layout_main(["--machines", "i86", "v:double[4]"])
        assert rc == 0
        assert "v[4]" in capsys.readouterr().out

    def test_unknown_machine_errors(self, capsys):
        rc = layout_main(["--machines", "cray", "n:int"])
        assert rc == 2
        assert "unknown machines" in capsys.readouterr().err

    def test_bad_field_spec_errors(self):
        with pytest.raises(SystemExit):
            layout_main(["--machines", "i86", "notafield"])

    def test_bad_type_errors(self, capsys):
        rc = layout_main(["--machines", "i86", "x:quaternion"])
        assert rc == 2
        assert "bad schema" in capsys.readouterr().err

    def test_future_work_machines_available(self, capsys):
        rc = layout_main(["--machines", "i960,strongarm", "c:char", "d:double"])
        out = capsys.readouterr().out
        assert rc == 0
        # i960 aligns doubles to 8, StrongARM (OABI) to 4: layouts differ.
        assert "conversion" in out


@pytest.fixture
def sample_file(tmp_path):
    path = str(tmp_path / "dump.pbio")
    schema = RecordSchema.from_pairs(
        "sensor", [("id", "int"), ("value", "double"), ("tag", "char[4]")]
    )
    write_records(
        IOContext(SPARC_V8),
        path,
        schema,
        [
            {"id": 1, "value": 2.5, "tag": b"aa"},
            {"id": 2, "value": -1.0, "tag": b"bb"},
        ],
    )
    return path


class TestDumpTool:
    def test_dump_decodes_without_schema(self, sample_file, capsys):
        rc = dump_main([sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "format 'sensor'" in out
        assert "id = 1" in out and "value = -1.0" in out
        assert "2 record(s), 1 format(s)" in out

    def test_formats_only(self, sample_file, capsys):
        rc = dump_main(["--formats", sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "format 'sensor'" in out
        assert "record #" not in out

    def test_hex_dump(self, sample_file, capsys):
        rc = dump_main(["--hex", sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "|" in out and "000000" in out

    def test_limit(self, sample_file, capsys):
        rc = dump_main(["--limit", "1", sample_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "record #1" in out and "record #2" not in out

    def test_missing_file(self, capsys):
        rc = dump_main(["/nonexistent/never.pbio"])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_corrupt_file(self, tmp_path, capsys):
        path = tmp_path / "bad.pbio"
        path.write_bytes(b"garbage data here")
        rc = dump_main([str(path)])
        assert rc == 1
        assert "corrupt" in capsys.readouterr().err

    def test_multi_format_file(self, tmp_path, capsys):
        path = str(tmp_path / "multi.pbio")
        ctx = IOContext(X86)
        from repro.core.files import PbioFileWriter

        s1 = RecordSchema.from_pairs("alpha", [("a", "int")])
        s2 = RecordSchema.from_pairs("beta", [("b", "double")])
        with PbioFileWriter.open(ctx, path) as writer:
            writer.write(ctx.register_format(s1), {"a": 1})
            writer.write(ctx.register_format(s2), {"b": 2.0})
        rc = dump_main([path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "format 'alpha'" in out and "format 'beta'" in out
        assert "2 record(s), 2 format(s)" in out


@pytest.fixture
def wal_dir(tmp_path):
    """A WAL directory with three segments of one sequenced stream."""
    from repro.net import DurablePublisher, EventChannel

    schema = RecordSchema.from_pairs("point", [("x", "int"), ("y", "double")])
    ctx = IOContext(X86, context_id=0x1234)
    handle = ctx.register_format(schema)
    directory = str(tmp_path / "wal")
    pub = DurablePublisher(EventChannel(), ctx, wal_dir=directory, segment_bytes=4096)
    for i in range(200):
        pub.publish(handle, {"x": i, "y": i * 0.5})
    pub.close()
    return directory


class TestWalTool:
    def test_ls_reports_streams_and_cursors(self, wal_dir, capsys):
        rc = wal_main(["ls", wal_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wal-00000001.seg" in out
        assert "ctx=0x1234 fmt=1" in out
        assert "200 journaled, acked through 0, ~200 unacked" in out

    def test_verify_clean(self, wal_dir, capsys):
        rc = wal_main(["verify", wal_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.strip().endswith("clean")

    def test_verify_detects_torn_tail(self, wal_dir, capsys):
        import os

        segs = sorted(n for n in os.listdir(wal_dir) if n.endswith(".seg"))
        with open(os.path.join(wal_dir, segs[-1]), "r+b") as stream:
            stream.seek(0, os.SEEK_END)
            stream.truncate(stream.tell() - 3)
        rc = wal_main(["verify", wal_dir])
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 torn" in out and "DAMAGED" in out

    def test_verify_detects_corruption(self, wal_dir, capsys):
        import os

        segs = sorted(n for n in os.listdir(wal_dir) if n.endswith(".seg"))
        path = os.path.join(wal_dir, segs[0])
        data = bytearray(open(path, "rb").read())
        data[40] ^= 0xFF  # flip a payload byte inside the first frame
        open(path, "wb").write(bytes(data))
        rc = wal_main(["verify", wal_dir, "--quiet"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "1 corrupt" in out

    def test_compact_heals_torn_tail(self, wal_dir, capsys):
        import os

        segs = sorted(n for n in os.listdir(wal_dir) if n.endswith(".seg"))
        with open(os.path.join(wal_dir, segs[-1]), "r+b") as stream:
            stream.seek(0, os.SEEK_END)
            stream.truncate(stream.tell() - 3)
        rc = wal_main(["compact", wal_dir])
        assert rc == 1  # damage was found (and healed)
        capsys.readouterr()
        rc = wal_main(["verify", wal_dir, "--quiet"])
        assert rc == 0  # the heal stuck

    def test_compact_drops_fully_acked_segments(self, wal_dir, capsys):
        import os

        from repro.net import PublisherWAL

        with PublisherWAL(wal_dir, segment_bytes=4096) as wal:
            wal.ack((0x1234, 1), 200)
        before = len([n for n in os.listdir(wal_dir) if n.endswith(".seg")])
        rc = wal_main(["compact", wal_dir])
        out = capsys.readouterr().out
        assert rc == 0
        after = len([n for n in os.listdir(wal_dir) if n.endswith(".seg")])
        assert after <= before
        assert "0 entries unacked" in out

    def test_not_a_directory(self, tmp_path, capsys):
        rc = wal_main(["ls", str(tmp_path / "nope")])
        assert rc == 2
        assert "not a directory" in capsys.readouterr().err

    def test_not_a_wal_file(self, tmp_path, capsys):
        directory = str(tmp_path)
        (tmp_path / "wal-00000001.seg").write_bytes(b"garbage bytes here")
        rc = wal_main(["verify", directory])
        assert rc == 2
        assert "not a WAL file" in capsys.readouterr().err
