"""Coverage for small helpers not exercised elsewhere."""

import pytest

from repro.abi import PrimKind, X86
from repro.abi.encoding import _get_path, _parse_path, _set_path


class TestPathHelpers:
    def test_parse_path_mixed_segments(self):
        assert _parse_path("a.3.b") == ("a", 3, "b")
        assert _parse_path("plain") == ("plain",)

    def test_get_path_missing_returns_none(self):
        assert _get_path({"a": {"b": 1}}, ("a", "b")) == 1
        assert _get_path({"a": {}}, ("a", "b")) is None
        assert _get_path({}, ("a", "b")) is None
        assert _get_path(None, ("a",)) is None

    def test_get_path_list_indexing(self):
        rec = {"pts": [{"x": 1}, {"x": 2}]}
        assert _get_path(rec, ("pts", 1, "x")) == 2
        assert _get_path(rec, ("pts", 5, "x")) is None

    def test_get_path_type_errors_are_none(self):
        assert _get_path({"a": 42}, ("a", "b")) is None
        assert _get_path({"a": 42}, ("a", 0)) is None

    def test_set_path_builds_nested_dicts(self):
        out = {}
        _set_path(out, ("a", "b", "c"), 7)
        assert out == {"a": {"b": {"c": 7}}}

    def test_set_path_grows_lists(self):
        out = {}
        _set_path(out, ("v", 2, "x"), 9)
        assert out == {"v": [None, None, {"x": 9}]}

    def test_set_path_terminal_list_index(self):
        out = {}
        _set_path(out, ("v", 1), 5)
        assert out == {"v": [None, 5]}


class TestXdrItemSize:
    def test_sizes(self):
        from repro.wire import xdr_item_size

        assert xdr_item_size(PrimKind.INTEGER, 2) == 4  # widened
        assert xdr_item_size(PrimKind.INTEGER, 8) == 8  # hyper
        assert xdr_item_size(PrimKind.UNSIGNED, 4) == 4
        assert xdr_item_size(PrimKind.FLOAT, 4) == 4
        assert xdr_item_size(PrimKind.FLOAT, 8) == 8
        assert xdr_item_size(PrimKind.CHAR, 1) == 4
        assert xdr_item_size(PrimKind.BOOLEAN, 1) == 4

    def test_string_rejected(self):
        from repro.wire import WireFormatError, xdr_item_size

        with pytest.raises(WireFormatError):
            xdr_item_size(PrimKind.STRING, 4)


class TestIsaValidation:
    def test_memcpy_arity_enforced(self):
        from repro.vcode.isa import Instr, Op, validate

        with pytest.raises(ValueError, match="memcpy"):
            validate(Instr(Op.MEMCPY, ("dst", 0, "src", 0)))

    def test_signed_flag_type_enforced(self):
        from repro.vcode.isa import Instr, Op, validate

        with pytest.raises(ValueError, match="signed"):
            validate(Instr(Op.LD, (1, "src", 0, 4, 1, "big")))


class TestEncodeExtras:
    def test_encode_ignores_unknown_keys(self):
        from repro.abi import RecordSchema, codec_for, layout_record

        schema = RecordSchema.from_pairs("t", [("a", "int")])
        codec = codec_for(layout_record(schema, X86))
        out = codec.decode(codec.encode({"a": 1, "stray": 99}))
        assert out == {"a": 1}

    def test_explicit_context_id(self):
        from repro.core import IOContext

        ctx = IOContext(X86, context_id=0xABCD1234)
        assert ctx.context_id == 0xABCD1234


class TestMachineFloatFormatValidation:
    def test_bad_float_format_rejected(self):
        from repro.abi import CType, MachineDescription, X86

        with pytest.raises(ValueError, match="float_format"):
            MachineDescription(
                name="bogus",
                byte_order="little",
                pointer_size=4,
                sizes=dict(X86.sizes),
                aligns=dict(X86.aligns),
                float_format="ibm370",
            )


class TestOptimizationStatsTotals:
    def test_total_removed_property(self):
        from repro.vcode import OptimizationStats

        stats = OptimizationStats(
            moves_coalesced=8, memcpys_created=1, addis_folded=2,
            dead_movis_removed=1, labels_pruned=1,
        )
        assert stats.total_removed == 11
