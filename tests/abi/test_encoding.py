"""Unit tests for native encode/decode per simulated ABI."""

import struct

import numpy as np
import pytest

from repro.abi import (
    SPARC_V8,
    X86,
    X86_64,
    RecordSchema,
    RecordView,
    codec_for,
    layout_record,
    records_equal,
)


def make(machine, *pairs):
    schema = RecordSchema.from_pairs("t", list(pairs))
    return codec_for(layout_record(schema, machine))


class TestScalarRoundTrip:
    @pytest.mark.parametrize("machine", [X86, SPARC_V8, X86_64])
    def test_mixed_scalars(self, machine):
        codec = make(machine, ("i", "int"), ("d", "double"), ("s", "short"), ("u", "unsigned int"))
        rec = {"i": -42, "d": 3.5, "s": 7, "u": 4000000000}
        assert codec.decode(codec.encode(rec)) == rec

    def test_byte_order_visible_in_bytes(self):
        rec = {"i": 1}
        little = make(X86, ("i", "int")).encode(rec)
        big = make(SPARC_V8, ("i", "int")).encode(rec)
        assert little == b"\x01\x00\x00\x00"
        assert big == b"\x00\x00\x00\x01"

    def test_padding_is_zeroed(self):
        codec = make(SPARC_V8, ("c", "char"), ("d", "double"))
        data = codec.encode({"c": b"x", "d": 1.0})
        assert data[1:8] == b"\x00" * 7

    def test_missing_fields_encode_as_zero(self):
        codec = make(X86, ("a", "int"), ("b", "double"))
        rec = codec.decode(codec.encode({"a": 5}))
        assert rec == {"a": 5, "b": 0.0}

    def test_boolean_round_trip(self):
        codec = make(X86, ("flag", "bool"))
        assert codec.decode(codec.encode({"flag": True}))["flag"] is True
        assert codec.decode(codec.encode({"flag": False}))["flag"] is False

    def test_char_scalar(self):
        codec = make(X86, ("c", "char"))
        assert codec.decode(codec.encode({"c": b"Z"}))["c"] == b"Z"


class TestArrays:
    def test_small_array_tuple(self):
        codec = make(X86, ("v", "int[4]"))
        out = codec.decode(codec.encode({"v": (1, 2, 3, 4)}))
        assert tuple(out["v"]) == (1, 2, 3, 4)

    def test_large_array_numpy_path(self):
        codec = make(SPARC_V8, ("v", "double[100]"))
        values = np.arange(100, dtype=float)
        out = codec.decode(codec.encode({"v": values}))
        assert isinstance(out["v"], np.ndarray)
        np.testing.assert_array_equal(np.asarray(out["v"], dtype=float), values)

    def test_large_array_is_big_endian_on_sparc(self):
        codec = make(SPARC_V8, ("v", "int[32]"))
        data = codec.encode({"v": np.arange(32)})
        assert struct.unpack_from(">i", data, 4)[0] == 1

    def test_char_array_nul_padded(self):
        codec = make(X86, ("name", "char[8]"))
        out = codec.decode(codec.encode({"name": b"abc"}))
        assert out["name"] == b"abc\x00\x00\x00\x00\x00"[:8]

    def test_char_array_accepts_str(self):
        codec = make(X86, ("name", "char[8]"))
        assert codec.decode(codec.encode({"name": "hi"}))["name"].startswith(b"hi")

    def test_wrong_array_length_rejected(self):
        codec = make(X86, ("v", "double[32]"))
        with pytest.raises(ValueError):
            codec.encode({"v": np.arange(31, dtype=float)})


class TestStrings:
    def test_string_round_trip(self):
        codec = make(X86, ("tag", "string"), ("n", "int"))
        out = codec.decode(codec.encode({"tag": "hello", "n": 3}))
        assert out == {"tag": "hello", "n": 3}

    def test_null_string(self):
        codec = make(X86, ("tag", "string"))
        assert codec.decode(codec.encode({"tag": None}))["tag"] is None

    def test_two_strings_out_of_line(self):
        codec = make(X86_64, ("a", "string"), ("b", "string"))
        out = codec.decode(codec.encode({"a": "xx", "b": "yyyy"}))
        assert out == {"a": "xx", "b": "yyyy"}

    def test_string_region_after_fixed_part(self):
        codec = make(X86, ("tag", "string"))
        data = codec.encode({"tag": "abc"})
        assert len(data) == codec.layout.size + 4  # "abc\0"


class TestCrossMachineBytes:
    def test_same_values_different_layout_bytes(self):
        # The same logical record must produce different native bytes on
        # machines with different layout rules; that mismatch is what the
        # wire-format systems under test must bridge.
        rec = {"i": 1, "d": 2.0}
        pairs = (("i", "int"), ("d", "double"))
        b_x86 = make(X86, *pairs).encode(rec)
        b_sparc = make(SPARC_V8, *pairs).encode(rec)
        assert len(b_x86) == 12 and len(b_sparc) == 16
        assert b_x86 != b_sparc

    def test_decode_field_matches_full_decode(self):
        codec = make(SPARC_V8, ("i", "int"), ("d", "double"), ("v", "float[3]"))
        rec = {"i": 9, "d": -1.25, "v": (1.0, 2.0, 3.0)}
        data = codec.encode(rec)
        full = codec.decode(data)
        for name in rec:
            got = codec.decode_field(data, name)
            want = full[name]
            if isinstance(want, tuple):
                assert tuple(got) == want
            else:
                assert got == want

    def test_decode_field_unknown_name(self):
        codec = make(X86, ("i", "int"))
        with pytest.raises(KeyError):
            codec.decode_field(b"\x00" * 4, "nope")


class TestRecordView:
    def test_view_reads_without_copy(self):
        codec = make(X86, ("i", "int"), ("d", "double"))
        data = bytearray(codec.encode({"i": 5, "d": 1.5}))
        view = RecordView(codec.layout, data)
        assert view.i == 5 and view.d == 1.5
        # Mutating the buffer is visible through the view: proof of zero-copy.
        struct.pack_into("<i", data, 0, 77)
        assert view.i == 77

    def test_view_getitem_and_iteration(self):
        codec = make(X86, ("a", "int"), ("b", "int"))
        view = RecordView(codec.layout, codec.encode({"a": 1, "b": 2}))
        assert view["a"] == 1
        assert list(view) == ["a", "b"]
        assert view.to_dict() == {"a": 1, "b": 2}

    def test_view_is_read_only(self):
        codec = make(X86, ("a", "int"))
        view = RecordView(codec.layout, codec.encode({"a": 1}))
        with pytest.raises(AttributeError):
            view.a = 2

    def test_view_missing_attribute(self):
        codec = make(X86, ("a", "int"))
        view = RecordView(codec.layout, codec.encode({"a": 1}))
        with pytest.raises(AttributeError):
            _ = view.nope

    def test_raw_bytes_window(self):
        codec = make(X86, ("a", "int"))
        buf = b"\xff" * 4 + codec.encode({"a": 3}) + b"\xff" * 4
        view = RecordView(codec.layout, buf, offset=4)
        assert bytes(view.raw_bytes()) == codec.encode({"a": 3})


class TestRecordsEqual:
    def test_equal_with_float32_loss(self):
        a = {"x": 0.1}
        codec = make(X86, ("x", "float"))
        b = codec.decode(codec.encode(a))
        assert records_equal(a, b)

    def test_not_equal_different_keys(self):
        assert not records_equal({"a": 1}, {"b": 1})

    def test_numpy_vs_tuple(self):
        assert records_equal({"v": (1.0, 2.0)}, {"v": np.array([1.0, 2.0])})
