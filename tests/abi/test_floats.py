"""Tests for VAX F/D floating codecs and the VAX machine model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.abi import VAX, X86, RecordSchema, codec_for, layout_record, records_equal
from repro.abi.floats import (
    VAX_F_MAX,
    VaxFloatError,
    convert_float_bytes,
    ieee_to_vax_d,
    ieee_to_vax_f,
    vax_d_to_ieee,
    vax_f_to_ieee,
)


class TestVaxF:
    def test_known_encoding_of_one(self):
        # The canonical check: VAX F 1.0 is bytes 80 40 00 00 in memory.
        assert ieee_to_vax_f([1.0]) == bytes.fromhex("80400000")

    def test_zero(self):
        assert ieee_to_vax_f([0.0]) == b"\x00\x00\x00\x00"
        assert vax_f_to_ieee(b"\x00\x00\x00\x00")[0] == 0.0

    @pytest.mark.parametrize("value", [1.0, -1.0, 0.5, 3.14159, 1e-10, 1e37, -2.5e-20])
    def test_round_trip(self, value):
        back = vax_f_to_ieee(ieee_to_vax_f([value]))[0]
        assert back == pytest.approx(np.float32(value), rel=1e-6)

    def test_array_round_trip(self):
        values = np.linspace(-100.0, 100.0, 64)
        back = vax_f_to_ieee(ieee_to_vax_f(values))
        np.testing.assert_allclose(back, values.astype(np.float32), rtol=1e-6)

    def test_inf_rejected(self):
        with pytest.raises(VaxFloatError):
            ieee_to_vax_f([float("inf")])

    def test_nan_rejected(self):
        with pytest.raises(VaxFloatError):
            ieee_to_vax_f([float("nan")])

    def test_overflow_rejected(self):
        with pytest.raises(VaxFloatError, match="overflow"):
            ieee_to_vax_f([VAX_F_MAX * 2])

    def test_reserved_operand_rejected(self):
        # sign=1, exponent=0: conceptual bits 0x80000000; the sign lives in
        # the first memory word (stored LE), so memory is 00 80 00 00.
        with pytest.raises(VaxFloatError, match="reserved"):
            vax_f_to_ieee(bytes.fromhex("00800000"))

    def test_denormal_flushes_to_zero(self):
        tiny = float(np.float32(1e-44))  # IEEE denormal
        assert vax_f_to_ieee(ieee_to_vax_f([tiny]))[0] == 0.0


class TestVaxD:
    def test_round_trip_exact(self):
        # D floating has 55 fraction bits >= IEEE's 52: exact round trip.
        values = np.array([0.0, 1.0, -3.141592653589793, 2.5e-30, 1.5e38, 1 / 3])
        np.testing.assert_array_equal(vax_d_to_ieee(ieee_to_vax_d(values)), values)

    def test_known_encoding_of_one(self):
        assert ieee_to_vax_d([1.0]).hex() == "8040000000000000"

    def test_range_narrower_than_ieee(self):
        with pytest.raises(VaxFloatError):
            ieee_to_vax_d([1e300])  # fits IEEE double, not VAX D

    def test_underflow_flushes(self):
        assert vax_d_to_ieee(ieee_to_vax_d([1e-300]))[0] == 0.0


class TestConvertFloatBytes:
    def test_ieee_to_vax_run(self):
        raw = np.array([1.5, -2.25], dtype=">f8").tobytes()
        out = convert_float_bytes(raw, 0, 2, 8, "ieee754", ">", 4, "vax", "")
        np.testing.assert_allclose(vax_f_to_ieee(out), [1.5, -2.25])

    def test_vax_to_ieee_run(self):
        vax = ieee_to_vax_d([7.75, -0.125])
        out = convert_float_bytes(vax, 0, 2, 8, "vax", "", 8, "ieee754", "<")
        np.testing.assert_array_equal(np.frombuffer(out, "<f8"), [7.75, -0.125])

    def test_ieee_to_ieee_is_plain_conversion(self):
        raw = np.array([1.0, 2.0], dtype=">f4").tobytes()
        out = convert_float_bytes(raw, 0, 2, 4, "ieee754", ">", 8, "ieee754", "<")
        np.testing.assert_array_equal(np.frombuffer(out, "<f8"), [1.0, 2.0])

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e30, max_value=1e30, allow_nan=False, allow_infinity=False
            # magnitudes below VAX D's smallest normal flush to zero by
            # design; keep the property on representable values
            ).filter(lambda v: v == 0.0 or abs(v) > 1e-35),
            min_size=1,
            max_size=16,
        )
    )
    def test_property_vax_d_round_trip(self, values):
        arr = np.array(values)
        np.testing.assert_array_equal(vax_d_to_ieee(ieee_to_vax_d(arr)), arr)


class TestVaxMachine:
    def test_structs_are_byte_packed(self):
        schema = RecordSchema.from_pairs("t", [("c", "char"), ("d", "double"), ("i", "int")])
        lay = layout_record(schema, VAX)
        assert lay["d"].offset == 1  # no padding on VAX C
        assert lay.size == 13
        assert lay.padding_bytes() == 0

    def test_native_codec_round_trip(self):
        schema = RecordSchema.from_pairs("t", [("f", "float"), ("d", "double[3]"), ("i", "int")])
        codec = codec_for(layout_record(schema, VAX))
        rec = {"f": 0.25, "d": (1.0, -2.0, 3.5), "i": 9}
        assert records_equal(rec, codec.decode(codec.encode(rec)))

    def test_baselines_reject_vax_hosts(self):
        from repro.wire import IiopWire, MpiWire, WireFormatError, XdrWire, XmlWire

        schema = RecordSchema.from_pairs("t", [("f", "float")])
        lv = layout_record(schema, VAX)
        for system in (MpiWire(), XmlWire(), IiopWire(), XdrWire()):
            with pytest.raises(WireFormatError, match="IEEE"):
                system.bind(lv, lv)

    def test_pbio_bridges_vax_and_ieee(self):
        # The point: PBIO carries the float format in its meta-information
        # and converts at the receiver; no canonical format needed.
        from repro.core import IOContext

        schema = RecordSchema.from_pairs("t", [("f", "float"), ("d", "double[4]")])
        rec = {"f": 0.5, "d": (1.0, 2.5, -3.25, 1e10)}
        for src, dst in ((VAX, X86), (X86, VAX)):
            sender = IOContext(src)
            receiver = IOContext(dst)
            h = sender.register_format(schema)
            receiver.expect(schema)
            receiver.receive(sender.announce(h))
            out = receiver.receive(sender.encode(h, rec))
            assert records_equal(rec, out, rel_tol=1e-6), (src.name, dst.name)

    def test_meta_carries_float_format(self):
        from repro.core import IOFormat

        schema = RecordSchema.from_pairs("t", [("f", "float")])
        fmt = IOFormat.from_layout(layout_record(schema, VAX))
        back = IOFormat.from_meta_bytes(fmt.to_meta_bytes())
        assert back.float_format == "vax"
        assert "vax" in back.describe()

    def test_same_layout_different_float_format_not_zero_copy(self):
        from repro.core import IOFormat, match_formats

        schema = RecordSchema.from_pairs("t", [("f", "float")])
        lv = layout_record(schema, VAX)
        fmt_vax = IOFormat.from_layout(lv)
        # Forge an IEEE format with the identical geometry.
        fmt_ieee = IOFormat(
            fmt_vax.name, fmt_vax.fields, fmt_vax.byte_order, fmt_vax.record_size
        )
        match = match_formats(fmt_vax, fmt_ieee)
        assert not match.zero_copy
        assert match.mismatch_count == 1

    def test_cross_kind_vax_conversion_rejected(self):
        from repro.core import ConversionError, IOContext

        sender = IOContext(X86)
        receiver = IOContext(VAX)
        src = RecordSchema.from_pairs("t", [("x", "int")])
        dst = RecordSchema.from_pairs("t", [("x", "double")])
        h = sender.register_format(src)
        receiver.expect(dst)
        receiver.receive(sender.announce(h))
        with pytest.raises(ConversionError, match="not supported"):
            receiver.receive(sender.encode(h, {"x": 1}))

    def test_generic_decode_vax_records(self):
        from repro.core import IOContext, generic_decode

        schema = RecordSchema.from_pairs("t", [("f", "float"), ("n", "int")])
        sender = IOContext(VAX)
        receiver = IOContext(X86)
        h = sender.register_format(schema)
        receiver.receive(sender.announce(h))
        out = generic_decode(receiver, sender.encode(h, {"f": 2.5, "n": 3}))
        assert out == {"f": 2.5, "n": 3}
