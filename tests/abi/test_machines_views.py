"""Tests for machine descriptions and array record views."""

import numpy as np
import pytest

from repro.abi import (
    ALPHA,
    I960,
    MACHINES,
    SPARC_V8,
    STRONGARM,
    X86,
    X86_64,
    CType,
    RecordArrayView,
    RecordSchema,
    codec_for,
    get_machine,
    layout_record,
)


class TestMachineDescriptions:
    def test_all_registered_machines_complete(self):
        for machine in MACHINES.values():
            for ctype in CType:
                assert machine.size_of(ctype) > 0
                assert machine.align_of(ctype) > 0

    def test_get_machine(self):
        assert get_machine("i86") is X86
        with pytest.raises(KeyError, match="unknown machine"):
            get_machine("pdp11")

    def test_string_slot_is_pointer_sized(self):
        assert X86.size_of(CType.STRING) == 4
        assert X86_64.size_of(CType.STRING) == 8

    def test_struct_endian_prefixes(self):
        assert X86.struct_endian == "<"
        assert SPARC_V8.struct_endian == ">"

    def test_lp64_vs_ilp32(self):
        assert ALPHA.size_of(CType.LONG) == 8
        assert X86.size_of(CType.LONG) == 4

    def test_i960_vs_strongarm_double_alignment(self):
        # The paper's future-work targets differ exactly in the property
        # PBIO has to bridge: in-struct double alignment.
        schema = RecordSchema.from_pairs("t", [("c", "char"), ("d", "double")])
        assert layout_record(schema, I960)["d"].offset == 8
        assert layout_record(schema, STRONGARM)["d"].offset == 4

    def test_machine_repr(self):
        assert "little" in repr(X86)

    def test_invalid_byte_order_rejected(self):
        from repro.abi import MachineDescription

        with pytest.raises(ValueError):
            MachineDescription(
                name="bogus",
                byte_order="pdp",
                pointer_size=4,
                sizes=dict(X86.sizes),
                aligns=dict(X86.aligns),
            )

    def test_exchange_between_future_work_machines(self):
        from repro.core import IOContext
        from repro.abi import records_equal

        schema = RecordSchema.from_pairs("t", [("c", "char"), ("d", "double"), ("l", "long")])
        rec = {"c": b"x", "d": 2.5, "l": -9}
        sender = IOContext(I960)
        receiver = IOContext(STRONGARM)
        h = sender.register_format(schema)
        receiver.expect(schema)
        receiver.receive(sender.announce(h))
        assert records_equal(rec, receiver.receive(sender.encode(h, rec)))


class TestRecordArrayView:
    def setup_method(self):
        self.schema = RecordSchema.from_pairs(
            "point", [("idx", "int"), ("x", "double"), ("y", "double")]
        )
        self.layout = layout_record(self.schema, X86_64)
        codec = codec_for(self.layout)
        self.n = 20
        self.buf = b"".join(
            codec.encode({"idx": i, "x": i * 1.0, "y": -i * 1.0}) for i in range(self.n)
        )

    def test_len_and_indexing(self):
        view = RecordArrayView(self.layout, self.buf, self.n)
        assert len(view) == self.n
        assert view[3].idx == 3
        assert view[19].x == 19.0

    def test_negative_and_out_of_range(self):
        view = RecordArrayView(self.layout, self.buf, self.n)
        with pytest.raises(IndexError):
            view[self.n]
        with pytest.raises(IndexError):
            view[-1]

    def test_iteration(self):
        view = RecordArrayView(self.layout, self.buf, self.n)
        assert [r.idx for r in view] == list(range(self.n))

    def test_column_gather(self):
        view = RecordArrayView(self.layout, self.buf, self.n)
        np.testing.assert_array_equal(
            np.asarray(view.column("x"), dtype=float), np.arange(self.n, dtype=float)
        )
        np.testing.assert_array_equal(
            np.asarray(view.column("idx"), dtype=int), np.arange(self.n)
        )

    def test_column_rejects_arrays(self):
        schema = RecordSchema.from_pairs("t", [("v", "double[2]")])
        layout = layout_record(schema, X86_64)
        buf = codec_for(layout).encode({"v": (1.0, 2.0)})
        view = RecordArrayView(layout, buf, 1)
        with pytest.raises(ValueError, match="scalar"):
            view.column("v")

    def test_base_offset(self):
        view = RecordArrayView(self.layout, b"\xff" * 8 + self.buf, self.n, base=8)
        assert view[0].idx == 0

    def test_strings_rejected(self):
        schema = RecordSchema.from_pairs("t", [("s", "string")])
        layout = layout_record(schema, X86_64)
        with pytest.raises(ValueError, match="fixed-size"):
            RecordArrayView(layout, b"", 0)


class TestGenerators:
    def test_random_schema_deterministic(self):
        from repro.workloads.generators import random_schema

        a = random_schema(np.random.default_rng(5))
        b = random_schema(np.random.default_rng(5))
        assert [f.name for f in a] == [f.name for f in b]
        assert [f.ctype for f in a] == [f.ctype for f in b]

    def test_random_record_covers_schema(self):
        from repro.workloads.generators import random_record, random_schema

        rng = np.random.default_rng(6)
        schema = random_schema(rng, allow_strings=True)
        record = random_record(schema, rng)
        assert set(record) == set(schema.field_names())

    def test_record_stream_count(self):
        from repro.workloads.generators import record_stream

        schema = RecordSchema.from_pairs("t", [("i", "int")])
        assert len(list(record_stream(schema, count=7, seed=1))) == 7

    def test_int_size_hint_narrows(self):
        from repro.workloads.generators import random_record

        schema = RecordSchema.from_pairs("t", [("l", "long long")])
        rng = np.random.default_rng(7)
        for _ in range(20):
            rec = random_record(schema, rng, int_size_hint={"l": 2})
            assert -(1 << 15) <= rec["l"] < (1 << 15)
