"""Unit tests for C struct layout computation."""

import pytest

from repro.abi import (
    ALPHA,
    SPARC_V8,
    SPARC_V9_64,
    X86,
    X86_64,
    CType,
    FieldDecl,
    RecordSchema,
    layout_record,
)


def schema(*pairs):
    return RecordSchema.from_pairs("t", list(pairs))


class TestBasicPlacement:
    def test_single_int(self):
        lay = layout_record(schema(("a", "int")), X86)
        assert lay.size == 4
        assert lay["a"].offset == 0

    def test_char_then_int_pads_to_alignment(self):
        lay = layout_record(schema(("c", "char"), ("i", "int")), X86)
        assert lay["c"].offset == 0
        assert lay["i"].offset == 4
        assert lay.size == 8
        assert lay.padding_bytes() == 3

    def test_tail_padding_for_array_stride(self):
        # struct { double d; char c; } must be 16 on sparc (12 on x86 ILP32)
        s = schema(("d", "double"), ("c", "char"))
        assert layout_record(s, SPARC_V8).size == 16
        assert layout_record(s, X86).size == 12

    def test_fields_in_declaration_order(self):
        lay = layout_record(schema(("a", "int"), ("b", "short"), ("c", "double")), SPARC_V8)
        offs = [f.offset for f in lay.fields]
        assert offs == sorted(offs)


class TestAbiDifferences:
    def test_double_alignment_differs_x86_vs_sparc(self):
        # struct { int i; double d; }: x86 i386 ABI packs double at 4,
        # sparc at 8 — the classic layout mismatch the paper targets.
        s = schema(("i", "int"), ("d", "double"))
        assert layout_record(s, X86)["d"].offset == 4
        assert layout_record(s, SPARC_V8)["d"].offset == 8
        assert layout_record(s, X86).size == 12
        assert layout_record(s, SPARC_V8).size == 16

    def test_long_size_differs_ilp32_vs_lp64(self):
        s = schema(("l", "long"))
        assert layout_record(s, SPARC_V8).size == 4
        assert layout_record(s, SPARC_V9_64).size == 8
        assert layout_record(s, ALPHA).size == 8

    def test_same_schema_same_machine_is_cached(self):
        s = schema(("i", "int"))
        assert layout_record(s, X86) is layout_record(s, X86)

    def test_x86_64_natural_alignment(self):
        s = schema(("c", "char"), ("d", "double"))
        lay = layout_record(s, X86_64)
        assert lay["d"].offset == 8
        assert lay.size == 16


class TestArraysAndGaps:
    def test_array_total_size(self):
        lay = layout_record(schema(("v", "double[10]")), X86)
        f = lay["v"]
        assert f.count == 10 and f.elem_size == 8 and f.total_size == 80

    def test_array_aligns_like_element(self):
        lay = layout_record(schema(("c", "char"), ("v", "int[4]")), SPARC_V8)
        assert lay["v"].offset == 4

    def test_gaps_reported(self):
        lay = layout_record(schema(("c", "char"), ("i", "int"), ("c2", "char")), X86)
        gaps = lay.gaps()
        assert (1, 3) in gaps  # pad between c and i
        assert sum(g[1] for g in gaps) == lay.padding_bytes()

    def test_contiguous_runs_split_on_padding(self):
        lay = layout_record(schema(("a", "int"), ("b", "int"), ("c", "char"), ("d", "double")), SPARC_V8)
        runs = lay.contiguous_runs()
        names = [[f.name for f in run] for run in runs]
        assert names == [["a", "b", "c"], ["d"]]

    def test_packed_struct_has_no_gaps(self):
        lay = layout_record(schema(("a", "int"), ("b", "int")), X86)
        assert lay.gaps() == []
        assert lay.padding_bytes() == 0


class TestSchemaValidation:
    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            schema(("a", "int"), ("a", "double"))

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            RecordSchema("t", [])

    def test_bad_identifier_rejected(self):
        with pytest.raises(ValueError):
            FieldDecl("not an ident", CType.INT)

    def test_parse_array_spec(self):
        f = FieldDecl.parse("v", "unsigned int[7]")
        assert f.ctype is CType.UNSIGNED_INT and f.count == 7

    def test_parse_aliases(self):
        assert FieldDecl.parse("v", "uint32").ctype is CType.UNSIGNED_INT
        assert FieldDecl.parse("v", "int64").ctype is CType.LONG_LONG

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            FieldDecl.parse("v", "quaternion")

    def test_string_array_rejected(self):
        with pytest.raises(ValueError):
            FieldDecl("s", CType.STRING, count=3)

    def test_extension_append_and_prepend(self):
        s = schema(("a", "int"))
        s2 = s.extended("t2", [FieldDecl("z", CType.DOUBLE)])
        assert s2.field_names() == ["a", "z"]
        s3 = s.extended("t3", [FieldDecl("z", CType.DOUBLE)], prepend=True)
        assert s3.field_names() == ["z", "a"]


class TestDescribe:
    def test_describe_mentions_padding(self):
        lay = layout_record(schema(("c", "char"), ("i", "int")), X86)
        text = lay.describe()
        assert "pad" in text and "int i" in text
