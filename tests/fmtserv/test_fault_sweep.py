"""Seeded fault sweep: a faulted format server never costs data.

The control plane (client ↔ format server) runs through a
:class:`~repro.net.FaultInjectingTransport` under a spread of fault
plans, from mild loss to total blackout.  The data plane is a clean
pipe.  The invariant under EVERY plan and seed: all records arrive, in
order, decoding to exactly what a fault-free baseline decodes — the
format service may only ever cost wire bytes (inline announcements),
never correctness.

``PBIO_CHAOS_SEED`` (set by the CI chaos matrix, default 0) shifts the
seeds so different runs explore different schedules while any single
run stays exactly reproducible.
"""

import os

import pytest

from repro.abi import SPARC_V8, X86_64, RecordSchema
from repro.core import IOContext, PbioConnection
from repro.fmtserv import FormatCache, FormatServer, FormatService
from repro.net import (
    FaultInjectingTransport,
    FaultPlan,
    RetryPolicy,
    TransportError,
)

from .helpers import FakeClock, SyncServerLink, no_sleep

CHAOS_SEED = int(os.environ.get("PBIO_CHAOS_SEED", "0"))

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)

RECORDS = [{"unit": i, "temperature": 100.0 + i * 7.5} for i in range(8)]

PLANS = [
    ("clean", FaultPlan()),
    ("lossy", FaultPlan.lossy(0.4)),
    ("corrupting", FaultPlan(corrupt=0.4)),
    ("lossy+corrupting", FaultPlan(drop=0.25, corrupt=0.25)),
    ("disconnecting", FaultPlan(disconnect=0.2)),
    ("blackout", FaultPlan(drop=1.0)),
]


def faulted_service(server, plan, seed, clock, cache=None):
    """A FormatService whose only server link runs through chaos."""
    return FormatService(
        lambda: FaultInjectingTransport(SyncServerLink(server), plan, seed=seed),
        cache=cache if cache is not None else FormatCache(clock=clock),
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter_seed=seed),
        clock=clock,
        sleep=no_sleep,
    )


def run_stream(sender_svc, receiver_svc):
    """Push RECORDS over a clean data plane; return what decodes."""
    from repro.net import InMemoryPipe

    pipe = InMemoryPipe()
    sctx = IOContext(X86_64, format_service=sender_svc)
    rctx = IOContext(SPARC_V8, format_service=receiver_svc)
    rctx.expect(TELEMETRY)
    sender = PbioConnection(sctx, pipe.a)
    receiver = PbioConnection(rctx, pipe.b)
    handle = sctx.register_format(TELEMETRY)
    for record in RECORDS:
        sender.send(handle, record)
    got = []
    stalls = 0
    while len(got) < len(RECORDS):
        try:
            got.append(receiver.recv())
        except TransportError:
            # Data plane drained with records still held: the receiver
            # has a meta request on the back-channel — let the sender
            # answer it.  Convergence must be fast; 50 pumps is already
            # absurdly generous for 8 records.
            sender.poll()
            stalls += 1
            if stalls > 50:
                raise AssertionError(
                    f"recovery did not converge: {len(got)}/{len(RECORDS)} "
                    f"records after {stalls} pump rounds"
                )
    return got, sctx, rctx


BASELINE = [pytest.approx(r) for r in RECORDS]


@pytest.mark.parametrize("plan_name,plan", PLANS, ids=[n for n, _ in PLANS])
@pytest.mark.parametrize("round_", range(3))
def test_faulted_control_plane_converges_without_loss(plan_name, plan, round_):
    seed = CHAOS_SEED * 7919 + round_ * 101
    server = FormatServer()
    clock = FakeClock()
    sender_svc = faulted_service(server, plan, seed, clock)
    receiver_svc = faulted_service(server, plan, seed + 1, clock)
    got, sctx, rctx = run_stream(sender_svc, receiver_svc)
    assert got == BASELINE  # every record, in order, bit-equivalent
    # nothing the receiver held was ever dropped
    assert rctx.metrics.value("fmtserv.messages_held") == rctx.metrics.value(
        "fmtserv.messages_released"
    )
    # and the decode path never mistook control-plane damage for
    # protocol damage on the data plane
    assert rctx.metrics.value("decode.rejected") == 0


@pytest.mark.parametrize("round_", range(3))
def test_blackout_degrades_to_pure_inline(round_):
    # With the server unreachable from the start, the system must behave
    # exactly like the pre-service protocol: inline announcement, zero
    # recovery traffic, zero held messages.
    seed = CHAOS_SEED * 7919 + round_ * 101
    server = FormatServer()
    clock = FakeClock()
    blackout = FaultPlan(drop=1.0)
    sender_svc = faulted_service(server, blackout, seed, clock)
    receiver_svc = faulted_service(server, blackout, seed + 1, clock)
    got, sctx, rctx = run_stream(sender_svc, receiver_svc)
    assert got == BASELINE
    assert sender_svc.metrics.value("fmtserv.inline_fallbacks") == 1
    assert rctx.metrics.value("fmtserv.meta_requests_sent") == 0
    assert rctx.metrics.value("fmtserv.messages_held") == 0
    assert len(server) == 0  # nothing ever reached it


def test_server_recovery_mid_stream():
    # The server comes back after the holdoff: later formats go compact
    # again without any reconfiguration.
    server = FormatServer()
    clock = FakeClock()
    # dies after a few operations, then the service re-dials a clean link
    flaky_first = {"used": False}

    def connect():
        if not flaky_first["used"]:
            flaky_first["used"] = True
            return FaultInjectingTransport(
                SyncServerLink(server), FaultPlan(drop=1.0), seed=CHAOS_SEED
            )
        return SyncServerLink(server)

    svc = FormatService(
        connect,
        cache=FormatCache(clock=clock),
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter_seed=3),
        server_retry_s=5.0,
        clock=clock,
        sleep=no_sleep,
    )
    fmt = IOContext(X86_64).register_format(TELEMETRY).iofmt
    assert svc.publish(fmt) is None  # blackout: inline territory
    assert not svc.online
    clock.advance(6.0)  # holdoff over; next attempt re-dials clean
    assert svc.publish(fmt) == 1
    assert svc.token_for(fmt.fingerprint) == 1


def test_context_ids_come_from_urandom():
    # Satellite regression: context ids must not be reproducible by
    # seeding the global PRNG (they collide across processes that all
    # seed for determinism — exactly what chaos CI does).
    import random

    from repro.core.registry import fresh_context_id

    random.seed(CHAOS_SEED)
    first = [fresh_context_id() for _ in range(3)]
    random.seed(CHAOS_SEED)
    second = [fresh_context_id() for _ in range(3)]
    assert first != second
