"""FormatCache: memory, disk persistence, damage healing, TTLs."""

import pytest

from repro.abi import X86_64, RecordSchema, layout_record
from repro.core import IOFormat, FormatError, MessageError
from repro.fmtserv import FormatCache

from .helpers import FakeClock

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)
PARTICLE = RecordSchema.from_pairs(
    "particle", [("x", "double"), ("y", "double"), ("id", "int")]
)


def make_format(schema=TELEMETRY) -> IOFormat:
    return IOFormat.from_layout(layout_record(schema, X86_64))


class TestMemoryLayer:
    def test_round_trip(self):
        cache = FormatCache()
        fmt = make_format()
        entry = cache.put(fmt.to_meta_bytes(), token=7)
        assert entry.fingerprint == fmt.fingerprint
        assert cache.get(fmt.fingerprint).token == 7
        assert cache.token_for(fmt.fingerprint) == 7
        resolved = cache.format_for(fmt.fingerprint)
        assert resolved.name == "telemetry"
        assert resolved.fingerprint == fmt.fingerprint
        assert len(cache) == 1 and fmt.fingerprint in cache

    def test_put_is_idempotent_and_token_refresh_wins(self):
        cache = FormatCache()
        meta = make_format().to_meta_bytes()
        first = cache.put(meta)
        assert first.token is None
        again = cache.put(meta)
        assert again is first  # identical re-put: no new entry
        refreshed = cache.put(meta, token=3)
        assert refreshed.token == 3
        # a token-less re-put keeps the known binding
        assert cache.put(meta).token == 3

    def test_put_rejects_garbage_meta(self):
        with pytest.raises((FormatError, MessageError)):
            FormatCache().put(b"\x00" * 40)

    def test_unknown_fingerprint(self):
        cache = FormatCache()
        assert cache.get(b"\x00" * 20) is None
        assert cache.format_for(b"\x00" * 20) is None
        assert cache.token_for(b"\x00" * 20) is None


class TestDiskLayer:
    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "formats.pbfc")
        fmt_a, fmt_b = make_format(TELEMETRY), make_format(PARTICLE)
        with FormatCache(path) as cache:
            cache.put(fmt_a.to_meta_bytes(), token=1)
            cache.put(fmt_b.to_meta_bytes(), token=2)
        with FormatCache(path) as reopened:
            assert len(reopened) == 2
            assert reopened.token_for(fmt_a.fingerprint) == 1
            assert reopened.format_for(fmt_b.fingerprint).name == "particle"
            assert reopened.metrics.value("fmtserv.cache_loaded") == 2

    def test_append_wins_across_restart(self, tmp_path):
        path = str(tmp_path / "formats.pbfc")
        meta = make_format().to_meta_bytes()
        with FormatCache(path) as cache:
            cache.put(meta)
            cache.put(meta, token=9)  # refresh appends a second frame
        with FormatCache(path) as reopened:
            assert len(reopened) == 1
            assert reopened.token_for(make_format().fingerprint) == 9

    def test_torn_tail_truncated_and_healed(self, tmp_path):
        path = str(tmp_path / "formats.pbfc")
        fmt = make_format()
        with FormatCache(path) as cache:
            cache.put(fmt.to_meta_bytes(), token=5)
        clean_size = tmp_path.joinpath("formats.pbfc").stat().st_size
        with open(path, "ab") as f:  # crash mid-append: half a frame
            f.write(b"\x00\x00\x01\x00partial")
        with FormatCache(path) as healed:
            # the torn tail was truncated away at load...
            assert tmp_path.joinpath("formats.pbfc").stat().st_size == clean_size
            assert healed.token_for(fmt.fingerprint) == 5
            assert healed.metrics.value("fmtserv.cache_torn") == 1
            # ...so the next append lands on a clean frame boundary and
            # survives another restart
            healed.put(make_format(PARTICLE).to_meta_bytes(), token=6)
        with FormatCache(path) as again:
            assert len(again) == 2

    def test_not_a_cache_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.pbfc"
        path.write_bytes(b"NOTCACHE\x00\x01\x00\x00")
        with pytest.raises(MessageError, match="bad magic"):
            FormatCache(str(path))
        path.write_bytes(b"PB")  # shorter than the header
        with pytest.raises(MessageError, match="truncated"):
            FormatCache(str(path))

    def test_purge_compacts_file(self, tmp_path):
        path = str(tmp_path / "formats.pbfc")
        fmt_a, fmt_b = make_format(TELEMETRY), make_format(PARTICLE)
        with FormatCache(path) as cache:
            cache.put(fmt_a.to_meta_bytes(), token=1)
            cache.put(fmt_b.to_meta_bytes(), token=2)
            assert cache.purge(fmt_a.fingerprint) == 1
            assert cache.purge(fmt_a.fingerprint) == 0  # already gone
        with FormatCache(path) as reopened:
            assert len(reopened) == 1
            assert reopened.get(fmt_a.fingerprint) is None
            assert reopened.token_for(fmt_b.fingerprint) == 2
            assert reopened.purge() == 1  # purge-all
        with FormatCache(path) as empty:
            assert len(empty) == 0


class TestTtls:
    def test_token_ttl_expires_entries(self):
        clock = FakeClock()
        cache = FormatCache(ttl_s=60.0, clock=clock)
        fmt = make_format()
        cache.put(fmt.to_meta_bytes(), token=4)
        clock.advance(59.0)
        assert cache.token_for(fmt.fingerprint) == 4
        clock.advance(2.0)
        assert cache.get(fmt.fingerprint) is None
        assert cache.metrics.value("fmtserv.cache_expired") >= 1

    def test_negative_entries_expire_and_clear_on_put(self):
        clock = FakeClock()
        cache = FormatCache(negative_ttl_s=30.0, clock=clock)
        fmt = make_format()
        cache.note_miss(fmt.fingerprint)
        assert cache.is_negative(fmt.fingerprint)
        clock.advance(31.0)
        assert not cache.is_negative(fmt.fingerprint)
        cache.note_miss(fmt.fingerprint)
        cache.put(fmt.to_meta_bytes())  # a positive answer clears the negative
        assert not cache.is_negative(fmt.fingerprint)
