"""Token announcements end-to-end: connections, channels, relays, RPC."""

import pytest

from repro.abi import SPARC_V8, X86, X86_64, RecordSchema
from repro.core import (
    IOContext,
    LimitError,
    PbioConnection,
    RpcClient,
    RpcInterface,
    RpcOperation,
    RpcServer,
)
from repro.core import encoder as enc
from repro.core.negotiation import Announcer, InboundNegotiator
from repro.fmtserv import FormatCache, FormatServer, FormatService
from repro.net import EventChannel, InMemoryPipe, Relay, TransportError

from .helpers import FakeClock, SyncServerLink, no_sleep

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)

RECORDS = [
    {"unit": 1, "temperature": 451.0},
    {"unit": 2, "temperature": 20.5},
    {"unit": 3, "temperature": -40.0},
]


def make_service(server=None, **kw):
    kw.setdefault("clock", FakeClock())
    kw.setdefault("sleep", no_sleep)
    kw.setdefault("cache", FormatCache(clock=kw["clock"]))
    connect = (lambda: SyncServerLink(server)) if server is not None else None
    return FormatService(connect, **kw)


class CountingPipeEnd:
    """Transport wrapper that tallies wire frames by message type."""

    def __init__(self, inner):
        self.inner = inner
        self.kinds: list[int] = []
        self.meta_bytes = 0

    def send(self, payload):
        data = bytes(payload)
        kind = enc.try_message_type(data)
        self.kinds.append(kind)
        if kind == enc.MSG_FORMAT:
            self.meta_bytes += len(data) - enc.HEADER_SIZE
        self.inner.send(data)

    def send_segments(self, segments):
        self.send(b"".join(bytes(s) for s in segments))

    def recv(self):
        return self.inner.recv()

    def pending(self):
        return self.inner.pending()

    def close(self):
        self.inner.close()


def make_link(sender_svc=None, receiver_svc=None):
    pipe = InMemoryPipe()
    outbound = CountingPipeEnd(pipe.a)
    sctx = IOContext(X86_64, format_service=sender_svc)
    rctx = IOContext(SPARC_V8, format_service=receiver_svc)
    rctx.expect(TELEMETRY)
    sender = PbioConnection(sctx, outbound)
    receiver = PbioConnection(rctx, pipe.b)
    handle = sctx.register_format(TELEMETRY)
    return sender, receiver, handle, outbound


def pumped_recv(receiver, sender):
    """Receive one record, letting the sender answer meta requests."""
    for _ in range(10):
        try:
            return receiver.recv()
        except TransportError:
            sender.poll()  # answer any queued MSG_FORMAT_REQUEST
    raise AssertionError("recovery dance did not converge")


class TestConnectionTokens:
    def test_no_service_announces_inline(self):
        sender, receiver, handle, wire = make_link()
        sender.send(handle, RECORDS[0])
        assert receiver.recv() == pytest.approx(RECORDS[0])
        assert wire.kinds[0] == enc.MSG_FORMAT  # classic protocol untouched

    def test_token_announcement_with_shared_server(self):
        server = FormatServer()
        sender, receiver, handle, wire = make_link(
            make_service(server), make_service(server)
        )
        for record in RECORDS:
            sender.send(handle, record)
        assert [receiver.recv() for _ in RECORDS] == [
            pytest.approx(r) for r in RECORDS
        ]
        # the announcement crossed as a 28-byte token, never as meta
        assert wire.kinds[0] == enc.MSG_FORMAT_TOKEN
        assert enc.MSG_FORMAT not in wire.kinds
        assert wire.meta_bytes == 0

    def test_second_connection_exchanges_zero_meta_bytes(self):
        # The headline acceptance test: once a format is known cluster-
        # wide, a brand-new connection carries tokens only.
        server = FormatServer()
        writer_svc, reader_svc = make_service(server), make_service(server)
        sender1, receiver1, handle1, _ = make_link(writer_svc, reader_svc)
        sender1.send(handle1, RECORDS[0])
        receiver1.recv()
        lookups_before = server.metrics.value("fmtserv.lookups")

        pipe2 = InMemoryPipe()
        wire2 = CountingPipeEnd(pipe2.a)
        sender2 = PbioConnection(sender1.ctx, wire2)
        receiver2 = PbioConnection(receiver1.ctx, pipe2.b)
        sender2.send(handle1, RECORDS[1])
        assert receiver2.recv() == pytest.approx(RECORDS[1])
        assert wire2.meta_bytes == 0
        assert enc.MSG_FORMAT not in wire2.kinds
        # and the receiver resolved from its own cache: zero round-trips
        assert server.metrics.value("fmtserv.lookups") == lookups_before

    def test_cold_receiver_recovers_via_meta_request(self):
        # Sender has a server; receiver is fully offline with a cold
        # cache — the worst case.  The link itself must recover.
        server = FormatServer()
        sender, receiver, handle, wire = make_link(
            make_service(server), make_service()  # offline receiver
        )
        for record in RECORDS:
            sender.send(handle, record)  # token + 3 held-to-be data frames
        got = [pumped_recv(receiver, sender) for _ in RECORDS]
        assert got == [pytest.approx(r) for r in RECORDS]  # in order, no loss
        rmetrics = receiver.ctx.metrics
        assert rmetrics.value("fmtserv.meta_requests_sent") == 1
        assert rmetrics.value("fmtserv.messages_held") == len(RECORDS)
        assert rmetrics.value("fmtserv.messages_released") == len(RECORDS)
        assert sender.ctx.metrics.value("fmtserv.meta_requests_served") == 1
        # the recovery meta went over the wire exactly once
        assert wire.kinds.count(enc.MSG_FORMAT) == 1

    def test_restarted_receiver_decodes_from_disk_cache(self, tmp_path):
        # Acceptance: a receiver restarted with a primed cache file
        # resolves tokens without any server round-trip.
        path = str(tmp_path / "primed.pbfc")
        server = FormatServer()
        writer_svc = make_service(server)
        reader_svc = make_service(server, cache=FormatCache(path))
        sender, receiver, handle, _ = make_link(writer_svc, reader_svc)
        sender.send(handle, RECORDS[0])
        receiver.recv()
        reader_svc.cache.close()

        # "restart": a fresh context + an OFFLINE service on the same file
        reborn_svc = make_service(cache=FormatCache(path))
        pipe = InMemoryPipe()
        rctx = IOContext(SPARC_V8, format_service=reborn_svc)
        rctx.expect(TELEMETRY)
        reborn = PbioConnection(rctx, pipe.b)
        sender2 = PbioConnection(sender.ctx, pipe.a)
        sender2.send(handle, RECORDS[1])
        assert reborn.recv() == pytest.approx(RECORDS[1])
        assert reborn_svc.metrics.value("fmtserv.hits") == 1
        assert rctx.metrics.value("fmtserv.meta_requests_sent") == 0

    def test_warm_start_primes_converter_cache(self, tmp_path):
        path = str(tmp_path / "primed.pbfc")
        server = FormatServer()
        make_service(server).publish(
            IOContext(X86_64).register_format(TELEMETRY).iofmt
        )
        svc = make_service(server, cache=FormatCache(path))
        svc.pull_all()
        ctx = IOContext(SPARC_V8, format_service=svc)
        ctx.expect(TELEMETRY)
        assert svc.warm_start(ctx) == 1
        before = ctx.metrics.value("converters_generated")
        # the first real message hits a warm converter cache
        pipe = InMemoryPipe()
        sender = PbioConnection(IOContext(X86_64, format_service=make_service(server)), pipe.a)
        handle = sender.ctx.register_format(TELEMETRY)
        receiver = PbioConnection(ctx, pipe.b)
        sender.send(handle, RECORDS[0])
        assert receiver.recv() == pytest.approx(RECORDS[0])
        assert ctx.metrics.value("converters_generated") == before


class TestNegotiatorUnits:
    def test_hold_queue_is_bounded(self):
        ctx = IOContext(SPARC_V8)
        sent = []
        negotiator = InboundNegotiator(ctx, sent.append, max_held=2)
        token = enc.encode_token_message(0xABC, 7, b"\x13" * 20, 99)
        negotiator.offer(token)
        assert len(sent) == 1  # a meta request went out
        data = enc.encode_data_message(0xABC, 7, b"\x00" * 12)
        negotiator.offer(data)
        negotiator.offer(data)
        with pytest.raises(LimitError, match="held"):
            negotiator.offer(data)

    def test_duplicate_token_sends_one_request(self):
        ctx = IOContext(SPARC_V8)
        sent = []
        negotiator = InboundNegotiator(ctx, sent.append)
        token = enc.encode_token_message(0xABC, 7, b"\x13" * 20, 99)
        negotiator.offer(token)
        negotiator.offer(token)  # sender re-announced: still one request
        assert len(sent) == 1
        assert negotiator.unresolved == 1

    def test_unknown_meta_request_ignored(self):
        ctx = IOContext(X86_64)
        sent = []
        negotiator = InboundNegotiator(ctx, sent.append)
        negotiator.offer(enc.encode_format_request(0x1, b"\x77" * 20))
        assert sent == []  # not ours: requester keeps holding elsewhere
        assert ctx.metrics.value("fmtserv.meta_requests_unknown") == 1

    def test_announcer_rekeys_on_generation_bump(self):
        # Satellite regression: a re-dialled (new-generation) transport
        # must be re-announced to, even though it is the same object.
        class FakeTransport:
            def __init__(self):
                self.generation = 0
                self.sent = []

            def send(self, data):
                self.sent.append(bytes(data))

        ctx = IOContext(X86_64)
        handle = ctx.register_format(TELEMETRY)
        transport = FakeTransport()
        announcer = Announcer(ctx)
        announcer.ensure_announced(transport, handle)
        announcer.ensure_announced(transport, handle)
        assert len(transport.sent) == 1  # deduped within one incarnation
        transport.generation += 1  # the link died and was re-dialled
        announcer.ensure_announced(transport, handle)
        assert len(transport.sent) == 2


class TestChannelTokens:
    def test_channel_service_publishes_tokens(self):
        server = FormatServer()
        svc = make_service(server)
        channel = EventChannel(format_service=svc)
        got = []
        sub_ctx = IOContext(SPARC_V8)
        sub_ctx.expect(TELEMETRY)
        channel.subscribe(sub_ctx, got.append, format_name="telemetry")
        publisher = channel.publisher(IOContext(X86_64))
        handle = publisher.ctx.register_format(TELEMETRY)
        publisher.publish(handle, RECORDS[0])
        assert got == [pytest.approx(RECORDS[0])]
        # the replayed announcement is the token, and late joiners resolve
        # it from the shared channel service
        assert enc.message_kind(channel._announcements[0]) == enc.MSG_FORMAT_TOKEN
        late = []
        late_ctx = IOContext(X86)
        late_ctx.expect(TELEMETRY)
        channel.subscribe(late_ctx, late.append, format_name="telemetry")
        publisher.publish(handle, RECORDS[1])
        assert late == [pytest.approx(RECORDS[1])]

    def test_unresolvable_token_falls_back_inline_channel_wide(self):
        server = FormatServer()
        channel = EventChannel(format_service=make_service(server))
        got = []
        # This subscriber brings its OWN offline, cold service — the
        # channel respects it, so the token cannot resolve there.
        stubborn = IOContext(SPARC_V8, format_service=make_service())
        stubborn.expect(TELEMETRY)
        channel.subscribe(stubborn, got.append, format_name="telemetry")
        publisher = channel.publisher(IOContext(X86_64))
        handle = publisher.ctx.register_format(TELEMETRY)
        publisher.publish(handle, RECORDS[0])
        assert got == [pytest.approx(RECORDS[0])]
        # the token was withdrawn; replay now carries inline meta only
        kinds = [enc.message_kind(a) for a in channel._announcements]
        assert kinds == [enc.MSG_FORMAT]
        assert channel.format_service.metrics.value("fmtserv.inline_fallbacks") == 1


class TestRelayTokens:
    def test_tokens_forward_verbatim_and_replay(self):
        relay = Relay()
        down1, down2 = InMemoryPipe(), InMemoryPipe()
        relay.attach(down1.a)
        token = enc.encode_token_message(0xCAFE, 3, b"\x21" * 20, 12)
        relay.forward(token)
        assert down1.b.recv() == token  # byte-identical: never re-expanded
        assert relay.metrics.value("relay.unresolved_tokens") == 1
        relay.attach(down2.a)  # late joiner gets the replay
        assert down2.b.recv() == token

    def test_meta_requests_are_dropped(self):
        relay = Relay()
        pipe = InMemoryPipe()
        relay.attach(pipe.a)
        relay.forward(enc.encode_format_request(0x1, b"\x44" * 20))
        assert pipe.b.pending() == 0
        assert relay.metrics.value("relay.requests_dropped") == 1


ADD_REQ = RecordSchema.from_pairs("add_req", [("a", "double"), ("b", "double")])
ADD_REP = RecordSchema.from_pairs("add_rep", [("total", "double")])
CALC = RpcInterface("Calculator", [RpcOperation("add", ADD_REQ, ADD_REP)])


class TestRpcTokens:
    def test_rpc_with_shared_format_service(self):
        # Both endpoints talk to the same format server, so request and
        # reply formats announce as tokens and resolve without the
        # back-channel dance.
        server = FormatServer()
        pipe = InMemoryPipe()
        client = RpcClient(X86, CALC, format_service=make_service(server))
        rpc_server = RpcServer(SPARC_V8, CALC, format_service=make_service(server))
        rpc_server.register(b"calc", {"add": lambda r: {"total": r["a"] + r["b"]}})

        class SyncTransport:
            def send(self, data):
                pipe.a.send(data)

            def recv(self):
                while pipe.b.pending() and not pipe.a.pending():
                    rpc_server.serve_one(pipe.b)
                return pipe.a.recv()

            def close(self):
                pass

        transport = SyncTransport()
        for i in range(3):
            result = client.invoke(transport, b"calc", "add", {"a": float(i), "b": 1.0})
            assert result == {"total": float(i) + 1.0}
        assert client.ctx.metrics.value("fmtserv.tokens_absorbed") >= 1
        assert rpc_server.ctx.metrics.value("fmtserv.tokens_absorbed") >= 1
