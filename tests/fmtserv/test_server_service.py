"""FormatServer and FormatService: registration, resolution, degradation."""

from repro.abi import SPARC_V8, X86_64, RecordSchema, layout_record
from repro.core import DecodeLimits, IOContext, IOFormat
from repro.fmtserv import (
    STATUS_INVALID,
    STATUS_OK,
    FormatCache,
    FormatServer,
    FormatService,
)
from repro.net import RetryPolicy

from .helpers import FakeClock, SyncServerLink, no_sleep

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)
PARTICLE = RecordSchema.from_pairs(
    "particle", [("x", "double"), ("y", "double"), ("id", "int")]
)


def make_format(schema=TELEMETRY, machine=X86_64) -> IOFormat:
    return IOFormat.from_layout(layout_record(schema, machine))


def make_service(server, *, cache=None, clock=None, client_id=None):
    clock = clock if clock is not None else FakeClock()
    return FormatService(
        lambda: SyncServerLink(server),
        cache=cache if cache is not None else FormatCache(clock=clock),
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter_seed=1),
        clock=clock,
        sleep=no_sleep,
        client_id=client_id,
    )


class TestServer:
    def test_register_mints_monotonic_tokens(self):
        server = FormatServer()
        svc = make_service(server)
        t1 = svc.publish(make_format(TELEMETRY))
        t2 = svc.publish(make_format(PARTICLE))
        assert t1 == 1 and t2 == 2
        assert server.fingerprint_for(1) == make_format(TELEMETRY).fingerprint
        assert len(server) == 2

    def test_reregistration_is_idempotent(self):
        server = FormatServer()
        fmt = make_format()
        first = make_service(server).publish(fmt)
        # A different client re-registering the same content gets the
        # same token — content addressing, no duplicate mint.
        second = make_service(server).publish(fmt)
        assert first == second == 1
        assert server.metrics.value("fmtserv.reregistered") == 1

    def test_fingerprint_mismatch_rejected(self):
        server = FormatServer()
        meta = make_format().to_meta_bytes()
        reply = server._register(
            {"client_id": 1, "fingerprint": (b"\xAA" * 20).hex(), "meta": meta.hex()}
        )
        assert reply["status"] == STATUS_INVALID
        assert server.metrics.value("fmtserv.rejected") == 1
        assert len(server) == 0

    def test_garbage_meta_rejected(self):
        server = FormatServer()
        reply = server._register(
            {"client_id": 1, "fingerprint": (b"\x01" * 20).hex(), "meta": "00" * 64}
        )
        assert reply["status"] == STATUS_INVALID
        not_hex = server._register(
            {"client_id": 1, "fingerprint": "zz", "meta": "also not hex"}
        )
        assert not_hex["status"] == STATUS_INVALID

    def test_per_client_quota(self):
        server = FormatServer(max_formats_per_client=1)
        svc = make_service(server, client_id=77)
        assert svc.publish(make_format(TELEMETRY)) == 1
        assert svc.publish(make_format(PARTICLE)) is None  # over quota
        assert server.metrics.value("fmtserv.quota_rejections") == 1
        # same format again is not a new registration, so it still works
        assert svc.publish(make_format(TELEMETRY)) == 1

    def test_lookup_by_fingerprint_and_token(self):
        server = FormatServer()
        fmt = make_format()
        make_service(server).publish(fmt)
        by_fp = server._lookup({"fingerprint": fmt.fingerprint.hex(), "token": 0})
        assert by_fp["status"] == STATUS_OK and by_fp["token"] == 1
        by_token = server._lookup({"fingerprint": "", "token": 1})
        assert bytes.fromhex(by_token["meta"]) == fmt.to_meta_bytes()
        miss = server._lookup({"fingerprint": (b"\x09" * 20).hex(), "token": 0})
        assert miss["status"] != STATUS_OK

    def test_store_survives_restart_with_monotonic_tokens(self, tmp_path):
        path = str(tmp_path / "server.pbfc")
        fmt = make_format()
        server = FormatServer(store=FormatCache(path))
        assert make_service(server).publish(fmt) == 1
        server.store.close()
        # restart: same store file, token bindings intact, next mint above
        reborn = FormatServer(store=FormatCache(path))
        assert reborn.token_for(fmt.fingerprint) == 1
        assert make_service(reborn).publish(make_format(PARTICLE)) == 2

    def test_purge_resets_population(self):
        server = FormatServer()
        svc = make_service(server)
        svc.publish(make_format(TELEMETRY))
        svc.publish(make_format(PARTICLE))
        assert server._purge({"fingerprint": ""})["removed"] == 2
        assert len(server) == 0
        assert server.fingerprint_for(1) is None


class TestService:
    def test_offline_mode_is_inert(self):
        svc = FormatService(None)
        fmt = make_format()
        assert not svc.online
        assert svc.publish(fmt) is None
        assert svc.resolve(fmt.fingerprint) is None
        assert svc.token_for(fmt.fingerprint) is None

    def test_resolve_fills_cache_once(self):
        server = FormatServer()
        fmt = make_format()
        make_service(server).publish(fmt)
        reader = make_service(server)
        resolved = reader.resolve(fmt.fingerprint)
        assert resolved.fingerprint == fmt.fingerprint
        lookups_after_first = server.metrics.value("fmtserv.lookups")
        assert reader.resolve(fmt.fingerprint).name == "telemetry"
        # second resolve is a pure cache hit: the server saw nothing new
        assert server.metrics.value("fmtserv.lookups") == lookups_after_first
        assert reader.metrics.value("fmtserv.hits") == 1

    def test_miss_is_negative_cached(self):
        server = FormatServer()
        clock = FakeClock()
        svc = make_service(server, clock=clock)
        unknown = b"\x42" * 20
        assert svc.resolve(unknown) is None
        lookups = server.metrics.value("fmtserv.lookups")
        assert svc.resolve(unknown) is None  # within negative TTL: no RPC
        assert server.metrics.value("fmtserv.lookups") == lookups
        assert svc.metrics.value("fmtserv.negative_hits") == 1
        clock.advance(60.0)  # negative TTL over: the server is asked again
        assert svc.resolve(unknown) is None
        assert server.metrics.value("fmtserv.lookups") == lookups + 1

    def test_down_server_holdoff(self):
        clock = FakeClock()
        from repro.net import TransportError

        class DeadTransport:
            def send(self, data):
                raise TransportError("link down")

            def recv(self):
                raise TransportError("link down")

            def set_timeout(self, timeout_s):
                pass

            def close(self):
                pass

        svc = FormatService(
            DeadTransport(),
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter_seed=1),
            server_retry_s=5.0,
            clock=clock,
            sleep=no_sleep,
        )
        fmt = make_format()
        assert svc.publish(fmt) is None
        assert svc.metrics.value("fmtserv.server_unreachable") == 1
        assert not svc.online  # holdoff window
        assert svc.resolve(fmt.fingerprint) is None  # no new attempt
        assert svc.metrics.value("fmtserv.server_unreachable") == 1
        clock.advance(6.0)
        assert svc.online  # holdoff over: the next call tries again

    def test_pull_all_primes_local_cache(self, tmp_path):
        server = FormatServer()
        writer = make_service(server)
        writer.publish(make_format(TELEMETRY))
        writer.publish(make_format(PARTICLE))
        path = str(tmp_path / "primed.pbfc")
        svc = make_service(server, cache=FormatCache(path))
        assert svc.pull_all() == 2
        assert svc.pull_all() == 0  # already primed
        svc.close()
        with FormatCache(path) as reopened:
            assert len(reopened) == 2

    def test_warm_start_primes_converters(self):
        server = FormatServer()
        make_service(server).publish(make_format(TELEMETRY, machine=X86_64))
        svc = make_service(server)
        assert svc.pull_all() == 1
        ctx = IOContext(SPARC_V8)
        ctx.expect(TELEMETRY)
        assert svc.warm_start(ctx) == 1
        assert svc.metrics.value("fmtserv.warm_started") == 1
        # an unrelated context (expects nothing) primes nothing
        assert svc.warm_start(IOContext(SPARC_V8)) == 0

    def test_oversized_meta_rejected_under_limits(self):
        tight = DecodeLimits(max_meta_size=8)
        server = FormatServer(limits=tight)
        reply = server._register(
            {
                "client_id": 1,
                "fingerprint": make_format().fingerprint.hex(),
                "meta": make_format().to_meta_bytes().hex(),
            }
        )
        assert reply["status"] == STATUS_INVALID


class TestFailover:
    def _dead_dialer(self):
        from repro.net import TransportError

        def dial():
            raise TransportError("replica down")

        return dial

    def test_failover_to_second_replica(self):
        clock = FakeClock()
        server = FormatServer()
        svc = FormatService(
            [self._dead_dialer(), lambda: SyncServerLink(server)],
            cache=FormatCache(clock=clock),
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter_seed=1),
            clock=clock,
            sleep=no_sleep,
        )
        fmt = make_format()
        assert svc.publish(fmt) == 1  # answered by the second replica
        assert svc.metrics.value("fmtserv.failovers") == 1
        assert svc.metrics.value("fmtserv.replica_failures") == 1
        assert svc.metrics.value("fmtserv.server_unreachable") == 0
        assert svc.replica_states == ["open", "closed"]
        assert svc.online

    def test_all_replicas_down_degrades_to_inline(self):
        clock = FakeClock()
        svc = FormatService(
            [self._dead_dialer(), self._dead_dialer()],
            cache=FormatCache(clock=clock),
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter_seed=1),
            server_retry_s=5.0,
            clock=clock,
            sleep=no_sleep,
        )
        assert svc.publish(make_format()) is None  # inline fallback, no raise
        assert svc.metrics.value("fmtserv.server_unreachable") == 1
        assert svc.replica_states == ["open", "open"]
        assert not svc.online  # every breaker open: straight to fallback
        assert svc.publish(make_format(PARTICLE)) is None
        assert svc.metrics.value("fmtserv.server_unreachable") == 1  # no new dials

    def test_primary_recovers_after_holdoff(self):
        clock = FakeClock()
        server = FormatServer()
        calls = {"n": 0}

        def flaky_primary():
            calls["n"] += 1
            if calls["n"] == 1:
                from repro.net import TransportError

                raise TransportError("primary rebooting")
            return SyncServerLink(server)

        svc = FormatService(
            [flaky_primary, lambda: SyncServerLink(server)],
            cache=FormatCache(clock=clock),
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter_seed=1),
            server_retry_s=5.0,
            clock=clock,
            sleep=no_sleep,
        )
        assert svc.publish(make_format(TELEMETRY)) == 1  # via the secondary
        assert svc.replica_states[0] == "open"
        clock.advance(6.0)
        assert svc.replica_states[0] == "half_open"  # trial call allowed
        assert svc.publish(make_format(PARTICLE)) == 2  # primary answers it
        assert svc.replica_states[0] == "closed"
        # And the success did not count as a failover: replica 0 answered.
        assert svc.metrics.value("fmtserv.failovers") == 1

    def test_single_connect_still_works_unlisted(self):
        # Back-compat: a bare Transport / dialer is a one-replica list.
        server = FormatServer()
        svc = make_service(server)
        assert svc.publish(make_format()) == 1
        assert svc.replica_states == ["closed"]


class TestDrain:
    def test_drain_and_stop_sends_goodbye(self):
        from repro.core import encoder as enc

        server = FormatServer()
        link = SyncServerLink(server)
        clock = FakeClock()
        svc = FormatService(
            link,
            cache=FormatCache(clock=clock),
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter_seed=1),
            clock=clock,
            sleep=no_sleep,
        )
        assert svc.publish(make_format()) == 1  # establishes the link state
        server.drain_and_stop()
        assert server.stopped
        assert server._rpc.metrics.value("rpc.goodbyes_sent") == 1
        # The goodbye ping is sitting in the client's inbound pipe.
        goodbye = link._pipe.a.recv()
        kind = enc.unpack_header(goodbye)[0]
        assert kind == enc.MSG_PING
        nonce, _depth = enc.parse_ping(goodbye)
        assert nonce == enc.GOODBYE_NONCE

    def test_restart_clears_drain(self):
        server = FormatServer()
        server.drain_and_stop()
        assert server.stopped
        server.restart()
        assert not server.stopped
        svc = make_service(server)
        assert svc.publish(make_format()) == 1


class TestServeLoop:
    def test_protocol_garbage_counted_then_connection_dropped(self):
        from repro.net import InMemoryPipe

        server = FormatServer()
        pipe = InMemoryPipe()
        for _ in range(70):  # past _MAX_CONSECUTIVE_PROTOCOL_ERRORS
            pipe.a.send(b"\xde\xad\xbe\xef")
        server.serve(pipe.b)  # returns: dropped, not wedged
        assert server.metrics.value("fmtserv.protocol_errors") >= 64
        assert server.metrics.value("fmtserv.connections_dropped") == 1

    def test_peer_disconnect_ends_quietly(self):
        from repro.net import InMemoryPipe

        server = FormatServer()
        pipe = InMemoryPipe()
        pipe.a.close()
        server.serve(pipe.b)  # TransportError/PeerClosedError → clean return
