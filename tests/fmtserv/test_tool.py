"""The pbio-fmtserv command-line tool."""

import os
import re
import socket
import subprocess
import sys

import pytest

from repro.abi import X86_64, RecordSchema, layout_record
from repro.core import IOFormat
from repro.fmtserv import FormatCache
from repro.tools.fmtserv_tool import main

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)


def make_cache_file(path: str) -> IOFormat:
    fmt = IOFormat.from_layout(layout_record(TELEMETRY, X86_64))
    with FormatCache(path) as cache:
        cache.put(fmt.to_meta_bytes(), token=5)
    return fmt


class TestCacheCommands:
    def test_ls_cache_file(self, tmp_path, capsys):
        path = str(tmp_path / "local.pbfc")
        fmt = make_cache_file(path)
        assert main(["ls", "--cache", path]) == 0
        out = capsys.readouterr().out
        assert fmt.fingerprint.hex() in out
        assert "telemetry" in out and "1 format(s)" in out

    def test_purge_cache_file(self, tmp_path, capsys):
        path = str(tmp_path / "local.pbfc")
        fmt = make_cache_file(path)
        assert main(["purge", "--cache", path, "--fingerprint", fmt.fingerprint.hex()]) == 0
        assert "purged 1" in capsys.readouterr().out
        assert main(["ls", "--cache", path]) == 0
        assert "0 format(s)" in capsys.readouterr().out
        # purging a named fingerprint that is absent fails loudly
        assert main(["purge", "--cache", path, "--fingerprint", "ab" * 20]) == 1
        assert main(["purge", "--cache", path, "--fingerprint", "not-hex"]) == 2

    def test_unreachable_server_fails_cleanly(self, capsys):
        # a port nothing listens on: bind-then-close guarantees it is dead
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["ls", "--server", f"127.0.0.1:{port}"]) in (1, 2)


@pytest.mark.integration
class TestServeOverSockets:
    def test_serve_prime_ls_round_trip(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        store = str(tmp_path / "server.pbfc")
        make_cache_file(store)  # pre-populate the server's store
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.tools.fmtserv_tool import main; import sys;"
                "sys.exit(main(sys.argv[1:]))",
                "serve",
                "--port",
                "0",
                "--store",
                store,
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            match = re.match(r"listening on (\S+):(\d+)", line)
            assert match, f"no listen line: {line!r}"
            endpoint = f"{match.group(1)}:{match.group(2)}"
            primed = str(tmp_path / "primed.pbfc")
            assert main(["prime", "--server", endpoint, "--cache", primed]) == 0
            with FormatCache(primed) as cache:
                assert len(cache) == 1
                assert cache.entries()[0].token == 5  # binding preserved
            assert main(["ls", "--server", endpoint, "--max", "10"]) == 0
        finally:
            proc.terminate()
            proc.wait(timeout=10)
