"""Shared fixtures for the format-service suite.

The server runs *synchronously* under the client: a
:class:`SyncServerLink` is a client-side transport whose ``recv`` lets
the in-process :class:`~repro.fmtserv.FormatServer` drain the request
pipe and reply first — the same single-threaded idiom the RPC tests
use.  Fault tests wrap this link in a
:class:`~repro.net.FaultInjectingTransport`; a request the faults eat
leaves the reply pipe empty, so ``recv`` raises
:class:`~repro.net.TransportError` exactly like a timed-out socket.
"""

from repro.core import PbioError
from repro.net import InMemoryPipe


class SyncServerLink:
    """Client transport that serves a FormatServer synchronously."""

    def __init__(self, server):
        self._pipe = InMemoryPipe()
        self._server = server
        self.closed = False

    def send(self, data):
        self._pipe.a.send(data)

    def recv(self):
        while self._pipe.b.pending() and not self._pipe.a.pending():
            try:
                self._server.serve_one(self._pipe.b)
            except PbioError:
                # What FormatServer.serve does on a real socket: count
                # the damage, keep the connection.
                self._server.metrics.inc("fmtserv.protocol_errors")
        return self._pipe.a.recv()

    def set_timeout(self, timeout_s):
        pass  # synchronous: nothing ever blocks

    def close(self):
        self.closed = True


class FakeClock:
    """Injectable monotonic/epoch clock for deterministic sweeps."""

    def __init__(self, t: float = 1_000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def no_sleep(_s: float) -> None:
    pass
