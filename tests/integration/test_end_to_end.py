"""Integration tests: full stacks over in-memory pipes and real sockets."""

import threading

import pytest

from repro.abi import ALPHA, SPARC_V8, X86, CType, FieldDecl, RecordSchema, codec_for, layout_record, records_equal
from repro.core import IOContext, PbioConnection, PbioWire
from repro.net import InMemoryPipe, SimulatedLink, loopback_pair
from repro.wire import IiopWire, MpiWire, XdrWire, XmlWire
from repro.workloads import mechanical as m
from repro.workloads.generators import record_stream


def schema(*pairs, name="rec"):
    return RecordSchema.from_pairs(name, list(pairs))


class TestPbioConnectionOverPipe:
    def test_announcement_is_automatic_and_once(self):
        pipe = InMemoryPipe()
        tx = PbioConnection(IOContext(X86), pipe.a)
        rx = PbioConnection(IOContext(SPARC_V8), pipe.b)
        sch = schema(("i", "int"), ("d", "double"))
        h = tx.ctx.register_format(sch)
        rx.ctx.expect(sch)
        for i in range(3):
            tx.send(h, {"i": i, "d": i * 0.5})
        # 1 announcement + 3 data messages on the wire
        assert pipe.a.messages_sent == 4
        for i in range(3):
            assert rx.recv() == {"i": i, "d": i * 0.5}
        assert rx.ctx.registry.announcements_received == 1

    def test_multiple_formats_interleaved(self):
        pipe = InMemoryPipe()
        tx = PbioConnection(IOContext(X86), pipe.a)
        rx = PbioConnection(IOContext(X86), pipe.b)
        s1, s2 = schema(("a", "int"), name="r1"), schema(("b", "double"), name="r2")
        h1, h2 = tx.ctx.register_format(s1), tx.ctx.register_format(s2)
        rx.ctx.expect(s1)
        rx.ctx.expect(s2)
        tx.send(h1, {"a": 1})
        tx.send(h2, {"b": 2.0})
        tx.send(h1, {"a": 3})
        assert rx.recv() == {"a": 1}
        assert rx.recv() == {"b": 2.0}
        assert rx.recv() == {"a": 3}

    def test_zero_copy_view_over_pipe_homogeneous(self):
        pipe = InMemoryPipe()
        tx = PbioConnection(IOContext(ALPHA), pipe.a)
        rx = PbioConnection(IOContext(ALPHA), pipe.b)
        sch = schema(("x", "double"))
        h = tx.ctx.register_format(sch)
        rx.ctx.expect(sch)
        tx.send(h, {"x": 4.5})
        view = rx.recv_view()
        assert view.x == 4.5
        assert rx.ctx.stats.zero_copy_decodes == 1


class TestPbioOverRealSockets:
    def test_heterogeneous_stream_over_tcp(self):
        client_t, server_t = loopback_pair()
        sch = m.schema_for_size("1kb")
        records = list(record_stream(sch, count=5, seed=7))
        received = []

        def serve():
            rx = PbioConnection(IOContext(SPARC_V8), server_t)
            rx.ctx.expect(sch)
            for _ in records:
                received.append(rx.recv())

        thread = threading.Thread(target=serve)
        thread.start()
        tx = PbioConnection(IOContext(X86), client_t)
        h = tx.ctx.register_format(sch)
        for rec in records:
            tx.send(h, rec)
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert len(received) == 5
        for want, got in zip(records, received):
            assert records_equal(want, got, rel_tol=1e-5)
        client_t.close()
        server_t.close()

    def test_type_extension_over_tcp(self):
        client_t, server_t = loopback_pair()
        old = schema(("i", "int"), ("d", "double"))
        new = old.extended("rec", [FieldDecl("extra", CType.DOUBLE)])
        result = {}

        def serve():
            rx = PbioConnection(IOContext(X86), server_t)
            rx.ctx.expect(old)  # un-upgraded receiver
            result["rec"] = rx.recv()

        thread = threading.Thread(target=serve)
        thread.start()
        tx = PbioConnection(IOContext(SPARC_V8), client_t)
        h = tx.ctx.register_format(new)  # upgraded sender
        tx.send(h, {"i": 1, "d": 2.0, "extra": 3.0})
        thread.join(timeout=10)
        assert result["rec"] == {"i": 1, "d": 2.0}
        client_t.close()
        server_t.close()


class TestAllSystemsOverSockets:
    @pytest.mark.parametrize(
        "system_factory",
        [MpiWire, XmlWire, IiopWire, XdrWire, PbioWire, lambda: PbioWire("interpreted")],
    )
    def test_wire_messages_survive_tcp(self, system_factory):
        system = system_factory()
        sch = m.schema_for_size("100b")
        src, dst = layout_record(sch, X86), layout_record(sch, SPARC_V8)
        bound = system.bind(src, dst)
        rec = m.sample_record("100b", seed=11)
        native = codec_for(src).encode(rec)
        client_t, server_t = loopback_pair()
        try:
            client_t.send(bound.encode(native))
            out = codec_for(dst).decode(bound.decode(server_t.recv()))
            assert records_equal(rec, out, rel_tol=1e-5)
        finally:
            client_t.close()
            server_t.close()


class TestSimulatedLinkRoundTrip:
    def test_pbio_roundtrip_accumulates_modelled_time(self):
        link = SimulatedLink()
        tx = PbioConnection(IOContext(X86), link.a)
        rx = PbioConnection(IOContext(SPARC_V8), link.b)
        sch = schema(("x", "double[100]"))
        h = tx.ctx.register_format(sch)
        rx.ctx.expect(sch)
        tx.send(h, {"x": tuple(float(i) for i in range(100))})
        rec = rx.recv()
        assert rec["x"][99] == 99.0
        assert link.a.wire_time_s > 0
        # Announcement + data message both crossed the link.
        assert link.a.bytes_sent > 800

    def test_wire_sizes_rank_as_expected(self):
        # XML >> XDR/MPI packed ~= CDR < PBIO (native incl. padding).
        sch = m.schema_for_size("1kb")
        src = layout_record(sch, X86)
        native = m.native_bytes("1kb", X86)
        sizes = {}
        for system in (MpiWire(), XmlWire(), IiopWire(), PbioWire()):
            bound = system.bind(src, src)
            sizes[system.name] = len(bound.encode(native))
        assert sizes["XML"] > 2 * sizes["MPICH"]
        assert abs(sizes["PBIO"] - (len(native) + 16)) <= 16
