"""The full interoperability matrix: every machine pair, PBIO exchange.

One test per (sender, receiver) ordered pair over all twelve simulated
architectures — byte orders, type sizes, alignment rules, struct packing
and float formats all in play.  This is the claim "the reader program can
read the binary information produced by the writer program" (Section 3)
made exhaustive.
"""

import pytest

from repro.abi import MACHINES, RecordSchema, records_equal
from repro.core import IOContext

SCHEMA = RecordSchema.from_pairs(
    "interop",
    [
        ("seq", "int"),
        ("flags", "unsigned short"),
        ("mark", "char"),
        ("ratio", "double"),
        ("samples", "float[6]"),
        ("counts", "long[4]"),
        ("label", "char[10]"),
        ("big", "long long"),
        ("ok", "bool"),
    ],
)

RECORD = {
    "seq": -123456,
    "flags": 65535,
    "mark": b"Z",
    "ratio": 2.718281828,
    "samples": (0.5, -1.25, 3.75, 1e6, -1e-6, 0.0),
    "counts": (1, -2, 2_000_000_000, -2_000_000_000),
    "label": b"matrix",
    "big": -(1 << 60),
    "ok": True,
}

PAIRS = [(src, dst) for src in sorted(MACHINES) for dst in sorted(MACHINES)]


@pytest.mark.parametrize("src,dst", PAIRS, ids=[f"{s}->{d}" for s, d in PAIRS])
def test_exchange(src, dst):
    sender = IOContext(MACHINES[src])
    receiver = IOContext(MACHINES[dst])
    handle = sender.register_format(SCHEMA)
    receiver.expect(SCHEMA)
    receiver.receive(sender.announce(handle))
    out = receiver.receive(sender.encode(handle, RECORD))
    assert records_equal(RECORD, out, rel_tol=1e-6), (src, dst)


def test_matrix_zero_copy_diagonal():
    """Same-machine exchanges are always zero-copy."""
    for name, machine in MACHINES.items():
        sender = IOContext(machine)
        receiver = IOContext(machine)
        handle = sender.register_format(SCHEMA)
        receiver.expect(SCHEMA)
        receiver.receive(sender.announce(handle))
        receiver.receive(sender.encode(handle, RECORD))
        assert receiver.stats.zero_copy_decodes == 1, name
