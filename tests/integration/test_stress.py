"""Stress tests: wide schemas, long streams, many formats."""

import numpy as np
import pytest

from repro.abi import ALPHA, SPARC_V8, X86, RecordSchema, records_equal
from repro.core import IOContext, PbioConnection
from repro.net import InMemoryPipe


class TestWideSchemas:
    def test_500_field_record_converts_correctly(self):
        # Wide records exercise generated-code size and plan coalescing.
        pairs = []
        rng = np.random.default_rng(0)
        for i in range(500):
            kind = ("int", "double", "float", "short", "unsigned int")[i % 5]
            pairs.append((f"f{i}", kind))
        schema = RecordSchema.from_pairs("wide", pairs)
        record = {}
        for i in range(500):
            if i % 5 in (1, 2):
                record[f"f{i}"] = float(np.float32(rng.uniform(-100, 100)))
            elif i % 5 == 3:
                record[f"f{i}"] = int(rng.integers(-30000, 30000))
            elif i % 5 == 4:
                record[f"f{i}"] = int(rng.integers(0, 2**31))
            else:
                record[f"f{i}"] = int(rng.integers(-(2**31), 2**31))
        sender = IOContext(X86)
        receiver = IOContext(SPARC_V8)
        h = sender.register_format(schema)
        receiver.expect(schema)
        receiver.receive(sender.announce(h))
        out = receiver.receive(sender.encode(h, record))
        assert records_equal(record, out, rel_tol=1e-5)

    def test_wide_record_meta_round_trips(self):
        from repro.abi import layout_record
        from repro.core import IOFormat

        pairs = [(f"g{i}", "int") for i in range(800)]
        schema = RecordSchema.from_pairs("huge_meta", pairs)
        fmt = IOFormat.from_layout(layout_record(schema, X86))
        assert IOFormat.from_meta_bytes(fmt.to_meta_bytes()) == fmt


class TestLongStreams:
    def test_ten_thousand_messages(self):
        schema = RecordSchema.from_pairs("tick", [("seq", "int"), ("value", "double")])
        pipe = InMemoryPipe()
        tx = PbioConnection(IOContext(X86), pipe.a)
        rx = PbioConnection(IOContext(SPARC_V8), pipe.b)
        h = tx.ctx.register_format(schema)
        rx.ctx.expect(schema)
        n = 10_000
        for i in range(n):
            tx.send(h, {"seq": i, "value": i * 0.5})
        for i in range(n):
            rec = rx.recv()
            assert rec["seq"] == i
        assert rx.ctx.stats.converters_generated == 1
        assert rx.ctx.stats.converter_cache_hits == n - 1


class TestManyFormats:
    def test_hundred_distinct_formats_on_one_connection(self):
        pipe = InMemoryPipe()
        tx = PbioConnection(IOContext(ALPHA), pipe.a)
        rx = PbioConnection(IOContext(X86), pipe.b)
        schemas = [
            RecordSchema.from_pairs(f"type{i}", [("a", "int"), (f"v{i}", "double")])
            for i in range(100)
        ]
        handles = [tx.ctx.register_format(s) for s in schemas]
        for s in schemas:
            rx.ctx.expect(s)
        for i, h in enumerate(handles):
            tx.send(h, {"a": i, f"v{i}": float(i)})
        for i in range(100):
            rec = rx.recv()
            assert rec["a"] == i and rec[f"v{i}"] == float(i)
        assert rx.ctx.registry.announcements_received == 100
        assert rx.ctx.stats.converters_generated == 100

    def test_format_ids_stay_distinct(self):
        ctx = IOContext(X86)
        ids = set()
        for i in range(200):
            schema = RecordSchema.from_pairs(f"t{i}", [("x", "int")])
            ids.add(ctx.register_format(schema).format_id)
        assert len(ids) == 200


class TestLargePayloads:
    def test_four_megabyte_record(self):
        schema = RecordSchema.from_pairs(
            "bulk", [("header", "int"), ("data", "double[524288]")]
        )
        data = np.arange(524288, dtype=float)
        sender = IOContext(X86)
        receiver = IOContext(SPARC_V8)
        h = sender.register_format(schema)
        receiver.expect(schema)
        receiver.receive(sender.announce(h))
        out = receiver.receive(sender.encode(h, {"header": 1, "data": data}))
        assert out["header"] == 1
        np.testing.assert_array_equal(np.asarray(out["data"], dtype=float), data)
