"""Soak: the self-healing service plane under sustained seeded chaos.

A relay fans one telemetry stream out to eight subscribers while a
chaos schedule breaks and heals their links; a format service publishes
fresh formats over two paths (primary/backup) to a format server while
the primary path flaps.  The run lasts ``PBIO_SOAK_SECONDS`` (a couple
of seconds by default so the tier-1 suite stays fast; CI's soak job
sets 60) and asserts the plane's contract:

* zero acknowledged loss — every record forwarded while a subscriber's
  link was healthy and its downstream ACTIVE is delivered and decodes;
* quarantines always resolve — by the end every downstream is ACTIVE
  again and nothing was evicted;
* announcement replay works — reactivated subscribers keep decoding
  (a lost announcement would poison every later record);
* fmtserv failover — every publish lands a token while at least one
  path is up, and every published format survives a cold lookup.

``PBIO_CHAOS_SEED`` selects the chaos schedule (CI sweeps a matrix).
"""

import os
import random
import time

from repro.abi import SPARC_V8, X86, RecordSchema, layout_record
from repro.core import IOContext, IOFormat
from repro.core import encoder as enc
from repro.fmtserv import FormatCache, FormatServer, FormatService
from repro.net import InMemoryPipe, ProbePolicy, Relay, TransportError
from repro.net.relay import ACTIVE

from ..fmtserv.helpers import SyncServerLink

CHAOS_SEED = int(os.environ.get("PBIO_CHAOS_SEED", "0"))
SOAK_SECONDS = float(os.environ.get("PBIO_SOAK_SECONDS", "1.5"))
N_SUBSCRIBERS = 8

TELEMETRY = RecordSchema.from_pairs("telemetry", [("seq", "int"), ("value", "double")])


class FlakyLink:
    """A pipe end whose send path can be broken and healed at will.

    The receive path stays up even while broken — probes that cannot be
    *sent* are the relay's problem; pongs the subscriber queued earlier
    must still be harvestable once the link heals.
    """

    def __init__(self, inner):
        self.inner = inner
        self.broken = False

    def send(self, data):
        if self.broken:
            raise TransportError("soak chaos: link down")
        self.inner.send(data)

    def recv(self):
        return self.inner.recv()

    def poll_recv(self):
        return self.inner.poll_recv()

    def close(self):
        self.inner.close()


class Subscriber:
    """One relay downstream: decodes telemetry, answers probe pings."""

    def __init__(self, relay):
        self.pipe = InMemoryPipe()
        self.link = FlakyLink(self.pipe.a)
        self.down = relay.attach(self.link)
        self.ctx = IOContext(X86)
        self.ctx.expect(TELEMETRY)
        self.received = []  # seqs, in delivery order
        self.expected = set()  # seqs acknowledged as sent on a healthy link

    def pump(self):
        while True:
            frame = self.pipe.b.poll_recv()
            if frame is None:
                return
            kind = enc.unpack_header(frame)[0]
            if kind == enc.MSG_PING:
                nonce, _depth = enc.parse_ping(frame)
                if nonce != enc.GOODBYE_NONCE:
                    self.pipe.b.send(enc.encode_pong(nonce))
            elif kind == enc.MSG_PONG:
                continue
            else:
                record = self.ctx.receive(frame)
                if record is not None:
                    assert record["value"] == record["seq"] * 0.5
                    self.received.append(record["seq"])


def test_soak_self_healing_plane():
    rng = random.Random(CHAOS_SEED)
    relay = Relay(
        quarantine_after=1,
        probe_policy=ProbePolicy(
            base_delay_s=0.01,
            multiplier=2.0,
            max_delay_s=0.05,
            eviction_deadline_s=3600.0,  # a soak must heal, never evict
        ),
    )
    subs = [Subscriber(relay) for _ in range(N_SUBSCRIBERS)]

    # One format server reachable over two paths — failover without a
    # replication story (an HA pair behind two network routes).
    fserver = FormatServer()
    primary_up = [True]

    def primary_connect():
        if not primary_up[0]:
            raise TransportError("soak chaos: primary path down")
        return SyncServerLink(fserver)

    service = FormatService(
        [primary_connect, lambda: SyncServerLink(fserver)],
        cache=FormatCache(None),
        server_retry_s=0.05,
    )

    sender = IOContext(SPARC_V8)
    handle = sender.register_format(TELEMETRY)
    relay.forward(sender.announce(handle))

    published = []
    deadline = time.monotonic() + SOAK_SECONDS
    seq = 0
    while time.monotonic() < deadline:
        # -- chaos: flap subscriber links and the primary fmtserv path
        for sub in subs:
            if not sub.link.broken:
                if rng.random() < 0.03:
                    sub.link.broken = True
            elif rng.random() < 0.25:
                sub.link.broken = False
        if rng.random() < 0.05:
            primary_up[0] = not primary_up[0]

        # -- forward one record; a healthy link at send time is the ack
        message = sender.encode(handle, {"seq": seq, "value": seq * 0.5})
        for sub in subs:
            if sub.down.state == ACTIVE and not sub.link.broken:
                sub.expected.add(seq)
        relay.forward(message)
        seq += 1

        # -- every fifth round, exercise the format service: publish
        #    fresh formats up to half the server's per-client quota,
        #    then keep the wire busy with cache-evicted re-lookups
        if seq % 5 == 0:
            if len(published) < 512:
                schema = RecordSchema.from_pairs(f"soak{seq}", [("x", "int")])
                fmt = IOFormat.from_layout(layout_record(schema, SPARC_V8))
                token = service.publish(fmt)
                assert token is not None, "publish failed with a live replica"
                published.append(fmt.fingerprint)
            else:
                fingerprint = published[rng.randrange(len(published))]
                service.cache.purge(fingerprint)
                fmt = service.resolve(fingerprint)
                assert fmt is not None, "lookup failed with a live replica"

        # -- let the plane heal and the subscribers drain
        relay.heal()
        for sub in subs:
            sub.pump()
        time.sleep(0.001)

    # -- quiesce: heal every link, drive probes until everyone recovers
    for sub in subs:
        sub.link.broken = False
    recovery_deadline = time.monotonic() + 10.0
    while any(s.down.state != ACTIVE for s in subs):
        assert time.monotonic() < recovery_deadline, "a downstream never recovered"
        relay.heal()
        for sub in subs:
            sub.pump()
        time.sleep(0.002)

    # -- one final record must reach all eight (the replayed
    #    announcements prove reactivated subscribers still decode)
    final = sender.encode(handle, {"seq": seq, "value": seq * 0.5})
    for sub in subs:
        sub.expected.add(seq)
    relay.forward(final)
    for sub in subs:
        sub.pump()

    for sub in subs:
        got = set(sub.received)
        lost = sorted(sub.expected - got)
        assert not lost, f"acknowledged records lost: {lost[:10]}"
        assert sub.received == sorted(sub.received), "out-of-order delivery"
        assert sub.down.state == ACTIVE
    assert relay.metrics.value("relay.evicted") == 0

    # -- every format published during the soak survives a cold lookup
    cold = FormatService(lambda: SyncServerLink(fserver), cache=FormatCache(None))
    try:
        for fingerprint in published:
            assert cold.resolve(fingerprint) is not None, "published format lost"
    finally:
        cold.close()
        service.close()


# ---------------------------------------------------------------------------
# Durable delivery under crash-restart churn
# ---------------------------------------------------------------------------

DURABLE_PUB_ID = 0xBEEF
N_DURABLE_SUBS = 4


class DurableSub:
    """One durable subscriber process behind a relay downstream.

    ``crash()`` discards every in-memory object — channel, subscription,
    sequence window — and reboots purely from the cursor file, exactly
    what a kill -9 leaves behind.  The pipe (the network) survives; any
    frames queued in it are redelivered into the new incarnation and
    absorbed by its dedup window.
    """

    def __init__(self, relay, cursor_path):
        self.cursor_path = cursor_path
        self.received = []  # seqs, in delivery order, across incarnations
        self._connect(relay)
        self._boot()

    def _connect(self, relay):
        self.pipe = InMemoryPipe()
        self.down = relay.attach(self.pipe.a)  # attach replays announcements

    def _boot(self):
        from repro.net import DurableSubscription, EventChannel

        self.chan = EventChannel()
        ctx = IOContext(X86)
        ctx.expect(TELEMETRY)
        self.sub = DurableSubscription(
            self.chan,
            ctx,
            lambda record: self.received.append(record["seq"]),
            cursor_path=self.cursor_path,
            ack_sink=self.pipe.b.send,
            window=8192,
        )

    def crash(self, relay):
        # kill -9 also drops the connection: the relay notices the
        # hangup (detach) and the reborn process dials back in, which
        # replays the announcements its empty registry needs.
        relay.detach(self.down)
        self._connect(relay)
        self._boot()

    def reattach(self, relay):
        """After a *relay* crash: the new relay adopts the old pipe."""
        self.down = relay.attach(self.pipe.a)

    def pump(self):
        while True:
            frame = self.pipe.b.poll_recv()
            if frame is None:
                return
            kind = enc.unpack_header(frame)[0]
            if kind == enc.MSG_PING:
                nonce, _depth = enc.parse_ping(frame)
                if nonce != enc.GOODBYE_NONCE:
                    self.pipe.b.send(enc.encode_pong(nonce))
            elif kind == enc.MSG_PONG:
                continue
            else:
                self.chan.ingest(frame)


def test_soak_durable_crash_restart(tmp_path):
    """Publisher, relay and subscribers all crash-restart mid-stream;
    every published record is observed exactly once, in order, at every
    subscriber — the durable plane's whole contract."""
    from repro.net import DurablePublisher, EventChannel, Relay as DurableRelay

    rng = random.Random(CHAOS_SEED + 0xD0)
    wal_dir = str(tmp_path / "wal")
    chan_box = [None]  # current publisher-side channel (relay acks route here)

    def boot_relay():
        return DurableRelay(
            quarantine_after=1,
            probe_policy=ProbePolicy(
                base_delay_s=0.01,
                multiplier=2.0,
                max_delay_s=0.05,
                eviction_deadline_s=3600.0,
            ),
            ack_upstream=lambda message: chan_box[0].route_ack(message),
            replay_window=8192,
        )

    relay_box = [boot_relay()]

    def boot_publisher():
        """Rebuild the publisher process from its WAL alone."""
        chan = EventChannel()
        chan.attach_wire(lambda message: relay_box[0].forward(message))
        chan_box[0] = chan
        ctx = IOContext(SPARC_V8, context_id=DURABLE_PUB_ID)
        handle = ctx.register_format(TELEMETRY)
        return DurablePublisher(chan, ctx, wal_dir=wal_dir), handle

    pub, handle = boot_publisher()
    subs = [
        DurableSub(relay_box[0], str(tmp_path / f"sub{i}.cursors"))
        for i in range(N_DURABLE_SUBS)
    ]

    published = 0
    deadline = time.monotonic() + SOAK_SECONDS
    while time.monotonic() < deadline:
        # -- chaos: kill -9 one of the three process kinds now and then
        roll = rng.random()
        if roll < 0.02:
            pub, handle = boot_publisher()  # no close(), no goodbye
            pub.resend_unacked()
        elif roll < 0.04:
            relay_box[0] = boot_relay()  # replay window + cursors lost
            for sub in subs:
                sub.reattach(relay_box[0])
            pub.resend_unacked()  # the WAL refills what the relay forgot
        elif roll < 0.08:
            rng.choice(subs).crash(relay_box[0])

        pub.publish(handle, {"seq": published, "value": published * 0.5})
        published += 1
        relay_box[0].heal()
        for sub in subs:
            sub.pump()

    # -- quiesce: retransmit and heal until everyone has everything
    expected = list(range(published))
    recovery_deadline = time.monotonic() + 10.0
    while any(len(sub.received) < published for sub in subs):
        assert time.monotonic() < recovery_deadline, (
            "durable soak never converged: "
            + str([len(sub.received) for sub in subs])
        )
        pub.resend_unacked()
        relay_box[0].heal()
        for sub in subs:
            sub.pump()
        time.sleep(0.001)

    for sub in subs:
        assert sub.received == expected, (
            f"exactly-once violated: got {len(sub.received)} records, "
            f"first divergence at "
            f"{next((i for i, (a, b) in enumerate(zip(sub.received, expected)) if a != b), 'tail')}"
        )

    # -- and the acks must drain the WAL completely
    ack_deadline = time.monotonic() + 10.0
    while pub.unacked_count:
        assert time.monotonic() < ack_deadline, "acks never drained the WAL"
        relay_box[0].heal()
        for sub in subs:
            sub.pump()
        time.sleep(0.001)
    assert pub.stats.acked > 0


# -- the sharded fabric under worker kill -9 -----------------------------------

FABRIC_PUB_ID = 0xFAB1
N_FABRIC_WORKERS = 3
N_FABRIC_SUBS = 4


class FabricDurableSub:
    """One durable subscriber placed on the fabric: the dispatcher owns
    the leaf placement (and migrates it across rebalances); this side
    only pumps its pipe into a durable channel and acks."""

    def __init__(self, dispatcher, key, cursor_path):
        from repro.net import DurableSubscription, EventChannel

        self.pipe = InMemoryPipe()
        self.handle = dispatcher.subscribe(key, self.pipe.a, format_name="telemetry")
        self.chan = EventChannel()
        ctx = IOContext(X86)
        ctx.expect(TELEMETRY)
        self.received = []
        self.sub = DurableSubscription(
            self.chan,
            ctx,
            lambda record: self.received.append(record["seq"]),
            cursor_path=cursor_path,
            ack_sink=self.pipe.b.send,
            window=65536,
        )

    def pump(self):
        while True:
            frame = self.pipe.b.poll_recv()
            if frame is None:
                return
            kind = enc.unpack_header(frame)[0]
            if kind == enc.MSG_PING:
                nonce, _depth = enc.parse_ping(frame)
                if nonce != enc.GOODBYE_NONCE:
                    self.pipe.b.send(enc.encode_pong(nonce))
            elif kind == enc.MSG_PONG:
                continue
            else:
                self.chan.ingest(frame)


def test_soak_fabric_worker_kill(tmp_path):
    """kill -9 fabric workers mid-stream under the durable plane: the
    dispatcher quarantines the dead worker, rebalances its channels to
    the survivors (announcement replay included), probes revive it, and
    the publisher WAL refills whatever died in its queues — zero
    acknowledged loss, no duplicate delivery, at every subscriber."""
    from repro.net import DurablePublisher, EventChannel, FabricDispatcher

    rng = random.Random(CHAOS_SEED + 0xFA)
    chan = EventChannel()
    dispatcher = FabricDispatcher(
        N_FABRIC_WORKERS,
        quarantine_after=1,
        probe_policy=ProbePolicy(
            base_delay_s=0.001,
            multiplier=2.0,
            max_delay_s=0.01,
            eviction_deadline_s=3600.0,  # a soak must heal, never evict
        ),
        replay_window=65536,
        ack_upstream=chan.route_ack,
    )
    chan.attach_wire(dispatcher.forward)
    ctx = IOContext(SPARC_V8, context_id=FABRIC_PUB_ID)
    handle = ctx.register_format(TELEMETRY)
    pub = DurablePublisher(chan, ctx, wal_dir=str(tmp_path / "wal"))
    key = (FABRIC_PUB_ID, handle.format_id)
    subs = [
        FabricDurableSub(dispatcher, key, str(tmp_path / f"fsub{i}.cursors"))
        for i in range(N_FABRIC_SUBS)
    ]

    published = 0
    kills = 0
    deadline = time.monotonic() + SOAK_SECONDS
    while time.monotonic() < deadline:
        roll = rng.random()
        live = [w for w in dispatcher.workers if w.alive]
        dead = [w for w in dispatcher.workers if not w.alive]
        if roll < 0.04 and len(live) > 1:
            rng.choice(live).kill()  # state and all — the in-process kill -9
            kills += 1
        elif roll < 0.12 and dead:
            rng.choice(dead).revive()  # restarted empty; probes re-admit it
        pub.publish(handle, {"seq": published, "value": published * 0.5})
        published += 1
        if rng.random() < 0.2:
            pub.resend_unacked()  # the WAL refills what dead shards dropped
        dispatcher.heal()
        for sub in subs:
            sub.pump()

    # -- quiesce: revive everyone, retransmit and heal until converged
    for worker in dispatcher.workers:
        worker.revive()
    expected = list(range(published))
    recovery_deadline = time.monotonic() + 10.0
    while any(len(sub.received) < published for sub in subs) or pub.unacked_count:
        assert time.monotonic() < recovery_deadline, (
            f"fabric soak never converged after {kills} kills: "
            + str([len(sub.received) for sub in subs])
            + f" of {published}, unacked={pub.unacked_count}"
        )
        pub.resend_unacked()
        dispatcher.heal()
        for sub in subs:
            sub.pump()
        time.sleep(0.001)

    for sub in subs:
        assert sub.received == expected, (
            f"exactly-once violated after {kills} kills: "
            f"got {len(sub.received)} records "
            f"({len(sub.received) - len(set(sub.received))} duplicates)"
        )
    # Delivery can converge before the last revived worker's probe timer
    # fires; keep healing until the probe machinery re-admits everyone.
    reactivation_deadline = time.monotonic() + 10.0
    while not all(s == ACTIVE for s in dispatcher.worker_states().values()):
        assert time.monotonic() < reactivation_deadline, (
            f"quarantine never resolved: {dispatcher.worker_states()}"
        )
        dispatcher.heal()
        time.sleep(0.001)
    assert pub.stats.acked == published
