"""Tests for the sharded relay fabric (:mod:`repro.net.fabric`).

The hash ring's contract is property-tested (seeded hypothesis, like the
rest of the chaos suite): arc-mass balance within 20% of fair and the
minimal-movement law — membership changes move only the channels that
the joined/left worker's points own.  The fabric tests then cover
header-only routing, announcement broadcast/replay, fan-out tree
construction, edge filter push-down with fabric-wide compile sharing,
worker kill -> quarantine -> rebalance -> reactivation, durable ack
aggregation, and the async ``fabric_handler`` surface.
"""

import math
import os
import socket
import threading
import time

import pytest
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext, PbioConnection
from repro.core import encoder as enc
from repro.net import (
    AsyncServer,
    DurablePublisher,
    DurableSubscription,
    EventChannel,
    FabricDispatcher,
    FabricError,
    HashRing,
    InMemoryPipe,
    ProbePolicy,
    RelayWorker,
    SocketTransport,
    fabric_handler,
)
from repro.net.relay import ACTIVE, EVICTED, QUARANTINED

CHAOS_SEED = int(os.environ.get("PBIO_CHAOS_SEED", "0"))

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)


def upstream(records, *, context_id=None, machine=SPARC_V8):
    """Sender context + announcement + encoded records (wire order)."""
    sender = (
        IOContext(machine, context_id=context_id)
        if context_id is not None
        else IOContext(machine)
    )
    handle = sender.register_format(TELEMETRY)
    frames = [sender.announce(handle)] + [sender.encode(handle, r) for r in records]
    return sender, handle, frames


def receiver(pipe_end):
    ctx = IOContext(X86)
    ctx.expect(TELEMETRY)
    out = []
    def pump():
        while True:
            frame = pipe_end.poll_recv()
            if frame is None:
                return out
            kind = enc.unpack_header(frame)[0]
            if kind in (enc.MSG_PING, enc.MSG_PONG):
                continue
            record = ctx.receive(frame)
            if record is not None:
                out.append(record)
    return pump


# -- the hash ring -------------------------------------------------------------

WORKER_NAMES = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12),
    min_size=2,
    max_size=8,
    unique=True,
)

CHANNEL_KEYS = st.lists(
    st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1)),
    min_size=1,
    max_size=64,
    unique=True,
)


class TestHashRingProperties:
    @seed(CHAOS_SEED)
    @settings(max_examples=40, deadline=None)
    @given(WORKER_NAMES)
    def test_arc_mass_balance_within_20_percent(self, names):
        """Each worker's owned share of the hash space is within 20% of
        fair — the ring's deterministic balance, no key sample needed."""
        ring = HashRing(names)
        shares = ring.arc_shares()
        fair = 1.0 / len(names)
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        for name, share in shares.items():
            assert abs(share - fair) <= 0.20 * fair, (
                f"{name!r} owns {share:.4f} of the space, fair is {fair:.4f}"
            )

    @seed(CHAOS_SEED)
    @settings(max_examples=10, deadline=None)
    @given(WORKER_NAMES)
    def test_empirical_balance_over_1000_channels(self, names):
        """1000 concrete channels land within 20% of fair plus a 4-sigma
        binomial sampling allowance (1000 keys *sample* the arc shares;
        the allowance covers exactly that sampling noise)."""
        ring = HashRing(names)
        n, fair = 1000, 1.0 / len(names)
        keys = [(k, k >> 16 ^ 0x9E37) for k in range(n)]
        counts = {name: 0 for name in names}
        for key in keys:
            counts[ring.owner(key)] += 1
        sigma = math.sqrt(n * fair * (1.0 - fair))
        for name, count in counts.items():
            assert abs(count - n * fair) <= 0.20 * n * fair + 4 * sigma, (
                f"{name!r} owns {count}/{n} channels, fair is {n * fair:.0f}"
            )

    @seed(CHAOS_SEED)
    @settings(max_examples=40, deadline=None)
    @given(WORKER_NAMES, CHANNEL_KEYS)
    def test_join_moves_keys_only_to_the_new_worker(self, names, keys):
        ring = HashRing(names[:-1])
        before = {key: ring.owner(key) for key in keys}
        ring.add(names[-1])
        for key in keys:
            after = ring.owner(key)
            if after != before[key]:
                assert after == names[-1], (
                    f"{key} moved {before[key]!r} -> {after!r} when "
                    f"{names[-1]!r} joined: not minimal movement"
                )

    @seed(CHAOS_SEED)
    @settings(max_examples=40, deadline=None)
    @given(WORKER_NAMES, CHANNEL_KEYS)
    def test_leave_moves_only_the_left_workers_keys(self, names, keys):
        ring = HashRing(names)
        before = {key: ring.owner(key) for key in keys}
        ring.remove(names[0])
        for key in keys:
            after = ring.owner(key)
            if before[key] != names[0]:
                assert after == before[key], (
                    f"{key} moved {before[key]!r} -> {after!r} when "
                    f"{names[0]!r} (not its owner) left"
                )
            else:
                assert after != names[0]


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing(["alpha", "beta", "gamma"])
        b = HashRing(["gamma", "alpha", "beta"])  # insertion order irrelevant
        for key in [(i, i * 7) for i in range(200)]:
            assert a.owner(key) == b.owner(key)

    def test_empty_ring_owns_nothing(self):
        assert HashRing().owner((1, 2)) is None

    def test_duplicate_worker_rejected(self):
        ring = HashRing(["w0"])
        with pytest.raises(ValueError):
            ring.add("w0")

    def test_assignment_partitions_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [(i, 1) for i in range(100)]
        assignment = ring.assignment(keys)
        assert sorted(k for ks in assignment.values() for k in ks) == sorted(keys)


# -- routing and fan-out trees -------------------------------------------------


class TestFabricRouting:
    def test_data_routes_to_ring_owner_verbatim(self):
        disp = FabricDispatcher(3)
        _, handle, frames = upstream([{"unit": 1, "temperature": 400.0}], context_id=5)
        key = (5, handle.format_id)
        pipe = InMemoryPipe()
        disp.subscribe(key, pipe.a, format_name="telemetry")
        for frame in frames:
            disp.forward(frame)
        got = [pipe.b.poll_recv() for _ in range(2)]
        assert got == [bytes(f) for f in frames]  # bit-identical, never re-encoded
        owner = disp.ring.owner(key)
        assert disp.worker(owner).metrics.value("worker.routed") == 1
        for other in disp.workers:
            if other.name != owner:
                assert other.metrics.value("worker.routed") == 0

    def test_announcements_broadcast_to_every_worker(self):
        disp = FabricDispatcher(3)
        _, _, frames = upstream([])
        disp.forward(frames[0])
        for worker in disp.workers:
            assert worker.metrics.value("worker.announcements") == 1
        disp.forward(frames[0])  # replays dedup
        assert disp.metrics.value("fabric.announcements") == 1

    def test_forward_batch_groups_per_owner(self):
        disp = FabricDispatcher(4)
        _, handle, frames = upstream(
            [{"unit": i, "temperature": float(i)} for i in range(16)], context_id=9
        )
        sinks = {}
        key = (9, handle.format_id)
        pipe = InMemoryPipe()
        disp.subscribe(key, pipe.a, format_name="telemetry")
        sinks[key] = pipe
        disp.forward_batch(frames)
        pump = receiver(pipe.b)
        assert [r["unit"] for r in pump()] == list(range(16))

    def test_heartbeats_and_acks_are_dropped_with_counters(self):
        disp = FabricDispatcher(2)
        disp.forward(enc.encode_ping(7))
        disp.forward(enc.encode_pong(7))
        disp.forward(enc.encode_ack(1, 2, 3))
        assert disp.metrics.value("fabric.heartbeats_dropped") == 2
        assert disp.metrics.value("fabric.acks_dropped") == 1
        assert disp.metrics.value("fabric.routed") == 0

    def test_garbage_is_rejected_not_raised(self):
        disp = FabricDispatcher(2)
        disp.forward(b"not a pbio frame at all")
        assert disp.metrics.value("fabric.rejected") == 1

    def test_oversized_data_rejected_at_the_front(self):
        from repro.core.safety import DecodeLimits

        disp = FabricDispatcher(2, limits=DecodeLimits(max_message_size=64))
        _, _, frames = upstream([{"unit": 1, "temperature": 1.0}])
        disp.forward(frames[0])
        big = frames[1] + b"x" * 128
        disp.forward(big[: enc.HEADER_SIZE] + b"y" * 200)
        assert disp.metrics.value("fabric.rejected") == 1

    def test_subscribe_with_no_workers_raises(self):
        disp = FabricDispatcher(1)
        disp.remove_worker("w0")
        with pytest.raises(FabricError):
            disp.subscribe((1, 2), InMemoryPipe().a)


class TestFanoutTree:
    def test_flat_below_branching_factor(self):
        disp = FabricDispatcher(1, branching_factor=8)
        _, handle, frames = upstream([{"unit": 1, "temperature": 2.0}], context_id=3)
        key = (3, handle.format_id)
        pipes = [InMemoryPipe() for _ in range(6)]
        for pipe in pipes:
            disp.subscribe(key, pipe.a, format_name="telemetry")
        for frame in frames:
            disp.forward(frame)
        worker = disp.worker(disp.ring.owner(key))
        assert worker.channels()[key]["depth"] == 1
        for pipe in pipes:
            assert [r["unit"] for r in receiver(pipe.b)()] == [1]

    def test_interior_levels_above_branching_factor(self):
        disp = FabricDispatcher(1, branching_factor=4)
        _, handle, frames = upstream(
            [{"unit": 7, "temperature": 1.5}], context_id=3
        )
        key = (3, handle.format_id)
        pipes = [InMemoryPipe() for _ in range(22)]
        for pipe in pipes:
            disp.subscribe(key, pipe.a, format_name="telemetry")
        for frame in frames:
            disp.forward(frame)
        worker = disp.worker(disp.ring.owner(key))
        info = worker.channels()[key]
        assert info["subscribers"] == 22
        assert info["depth"] == 3  # 22 leaves -> 6 interiors -> 2 under the root
        for pipe in pipes:
            assert [r["unit"] for r in receiver(pipe.b)()] == [7]

    def test_late_subscriber_gets_announcement_replay(self):
        disp = FabricDispatcher(2, branching_factor=4)
        _, handle, frames = upstream(
            [{"unit": 1, "temperature": 8.0}] * 2, context_id=4
        )
        key = (4, handle.format_id)
        for frame in frames:
            disp.forward(frame)
        pipe = InMemoryPipe()  # joins after the announcement went by
        disp.subscribe(key, pipe.a, format_name="telemetry")
        disp.forward(frames[1])
        assert [r["unit"] for r in receiver(pipe.b)()] == [1]


class TestFilterPushdown:
    def test_filter_runs_at_the_leaf(self):
        disp = FabricDispatcher(2)
        _, handle, _ = upstream([], context_id=6)
        key = (6, handle.format_id)
        sender, handle, frames = upstream(
            [{"unit": i, "temperature": 100.0 * i} for i in range(8)], context_id=6
        )
        hot = InMemoryPipe()
        every = InMemoryPipe()
        disp.subscribe(
            key, hot.a, format_name="telemetry", filter_expr="temperature > 500.0"
        )
        disp.subscribe(key, every.a, format_name="telemetry")
        disp.forward_batch(frames)
        assert [r["unit"] for r in receiver(hot.b)()] == [6, 7]
        assert [r["unit"] for r in receiver(every.b)()] == list(range(8))

    def test_same_predicate_compiles_once_across_the_fabric(self):
        disp = FabricDispatcher(3)
        sender, handle, frames = upstream(
            [{"unit": i, "temperature": 50.0 * i} for i in range(4)], context_id=8
        )
        key = (8, handle.format_id)
        pipes = [InMemoryPipe() for _ in range(6)]
        for pipe in pipes:
            disp.subscribe(
                key, pipe.a, format_name="telemetry", filter_expr="temperature > 75.0"
            )
        disp.forward_batch(frames)
        for pipe in pipes:
            assert [r["unit"] for r in receiver(pipe.b)()] == [2, 3]
        # One fabric-wide cache: six subscriber leaves, one compilation.
        assert disp.cache.metrics.value("filters_compiled") == 1
        assert disp.cache.metrics.value("filter_cache_hits") >= 5


# -- failure, rebalance, reactivation ------------------------------------------


def chaos_dispatcher(n=3, *, clock, ack_upstream=None, replay_window=256):
    return FabricDispatcher(
        n,
        quarantine_after=1,
        probe_policy=ProbePolicy(
            base_delay_s=0.01,
            multiplier=2.0,
            max_delay_s=0.05,
            eviction_deadline_s=3600.0,
        ),
        clock=clock,
        replay_window=replay_window,
        ack_upstream=ack_upstream,
    )


class TestWorkerFailure:
    def test_kill_quarantines_and_rebalances(self):
        now = [0.0]
        disp = chaos_dispatcher(3, clock=lambda: now[0])
        _, handle, frames = upstream(
            [{"unit": i, "temperature": float(i)} for i in range(4)], context_id=11
        )
        key = (11, handle.format_id)
        pipe = InMemoryPipe()
        sub = disp.subscribe(key, pipe.a, format_name="telemetry")
        disp.forward(frames[0])
        disp.forward(frames[1])
        owner = disp.ring.owner(key)
        disp.worker(owner).kill()
        now[0] += 0.1
        disp.heal()  # liveness sweep: quarantine + rebalance
        assert disp.worker_states()[owner] == QUARANTINED
        new_owner = disp.ring.owner(key)
        assert new_owner != owner
        assert sub.worker_name == new_owner  # the same handle migrated
        for frame in frames[2:]:
            disp.forward(frame)
        # Delivered through the new owner: announcement replay means the
        # post-migration frames still decode (the in-memory pipe delivers
        # synchronously, so frame 1 was already across before the kill;
        # frames stuck in a real worker's queues are the durable WAL's job).
        assert [r["unit"] for r in receiver(pipe.b)()] == [0, 1, 2, 3]

    def test_ingest_failures_quarantine_without_heal(self):
        now = [0.0]
        disp = chaos_dispatcher(2, clock=lambda: now[0])
        _, handle, frames = upstream([{"unit": 1, "temperature": 2.0}], context_id=12)
        key = (12, handle.format_id)
        disp.forward(frames[0])
        owner = disp.ring.owner(key)
        disp.worker(owner).kill()
        disp.forward(frames[1])  # the failed ingest itself trips quarantine
        assert disp.worker_states()[owner] == QUARANTINED
        assert disp.metrics.value("fabric.dropped_worker_error") == 1

    def test_probe_reactivates_revived_worker(self):
        now = [0.0]
        disp = chaos_dispatcher(3, clock=lambda: now[0])
        _, handle, frames = upstream([{"unit": 5, "temperature": 1.0}], context_id=13)
        key = (13, handle.format_id)
        pipe = InMemoryPipe()
        disp.subscribe(key, pipe.a, format_name="telemetry")
        disp.forward(frames[0])
        owner = disp.ring.owner(key)
        disp.worker(owner).kill()
        now[0] += 0.1
        disp.heal()
        assert disp.worker_states()[owner] == QUARANTINED
        disp.worker(owner).revive()  # restarted process: empty state
        now[0] += 0.1
        disp.heal()  # probe fires -> reactivate -> rebalance back
        assert disp.worker_states()[owner] == ACTIVE
        assert owner in disp.ring
        assert disp.ring.owner(key) == owner
        disp.forward(frames[1])
        # The reactivated worker got the announcement backlog replayed.
        assert [r["unit"] for r in receiver(pipe.b)()] == [5]

    def test_eviction_past_deadline(self):
        now = [0.0]
        disp = FabricDispatcher(
            2,
            quarantine_after=1,
            probe_policy=ProbePolicy(
                base_delay_s=0.01,
                multiplier=2.0,
                max_delay_s=0.05,
                eviction_deadline_s=1.0,
            ),
            clock=lambda: now[0],
        )
        disp.worker("w0").kill()
        disp.heal()
        assert disp.worker_states()["w0"] == QUARANTINED
        now[0] += 2.0
        disp.heal()
        assert disp.worker_states()["w0"] == EVICTED

    def test_scale_out_migrates_minimally(self):
        disp = FabricDispatcher(2)
        _, handle, frames = upstream([{"unit": 1, "temperature": 2.0}], context_id=14)
        keys = [(14 + i, handle.format_id) for i in range(20)]
        subs = {}
        for key in keys:
            pipe = InMemoryPipe()
            subs[key] = (pipe, disp.subscribe(key, pipe.a, format_name="telemetry"))
        before = {key: disp.ring.owner(key) for key in keys}
        disp.add_worker(RelayWorker("w2", cache=disp.cache))
        for key in keys:
            after = disp.ring.owner(key)
            _, sub = subs[key]
            assert sub.worker_name == after
            if after != before[key]:
                assert after == "w2"  # minimal movement, end to end

    def test_remove_worker_drains_and_rehomes(self):
        disp = FabricDispatcher(3)
        _, handle, frames = upstream([{"unit": 3, "temperature": 9.0}], context_id=15)
        key = (15, handle.format_id)
        pipe = InMemoryPipe()
        sub = disp.subscribe(key, pipe.a, format_name="telemetry")
        disp.forward(frames[0])
        victim = disp.ring.owner(key)
        disp.remove_worker(victim)
        assert victim not in disp.ring
        assert sub.worker_name == disp.ring.owner(key)
        disp.forward(frames[1])
        assert [r["unit"] for r in receiver(pipe.b)()] == [3]


# -- durable integration -------------------------------------------------------


class TestDurableAggregation:
    def test_min_cursor_acks_reach_the_publisher(self, tmp_path):
        chan = EventChannel()
        now = [0.0]
        disp = chaos_dispatcher(
            3, clock=lambda: now[0], ack_upstream=chan.route_ack, replay_window=1024
        )
        chan.attach_wire(disp.forward)
        ctx = IOContext(SPARC_V8, context_id=21)
        handle = ctx.register_format(TELEMETRY)
        pub = DurablePublisher(chan, ctx, wal_dir=str(tmp_path / "wal"))
        key = (21, handle.format_id)

        pipes = [InMemoryPipe() for _ in range(2)]
        chans = []
        for pipe in pipes:
            disp.subscribe(key, pipe.a, format_name="telemetry")
            sub_chan = EventChannel()
            sub_ctx = IOContext(X86)
            sub_ctx.expect(TELEMETRY)
            DurableSubscription(
                sub_chan, sub_ctx, lambda record: None, ack_sink=pipe.b.send
            )
            chans.append(sub_chan)
        for i in range(5):
            pub.publish(handle, {"unit": i, "temperature": float(i)})
        for pipe, sub_chan in zip(pipes, chans):
            while (frame := pipe.b.poll_recv()) is not None:
                if enc.unpack_header(frame)[0] not in (enc.MSG_PING, enc.MSG_PONG):
                    sub_chan.ingest(frame)
        now[0] += 0.1
        disp.heal()  # harvest subscriber acks -> root min-cursor -> dispatcher
        assert pub.unacked_count == 0
        assert disp.metrics.value("fabric.acks_up") >= 1

    def test_shard_cursor_never_regresses(self):
        acks = []
        disp = FabricDispatcher(2, ack_upstream=acks.append)
        disp._on_shard_ack(enc.encode_ack(1, 2, cursor=7))
        disp._on_shard_ack(enc.encode_ack(1, 2, cursor=3))  # replaced shard restarts
        disp._on_shard_ack(enc.encode_ack(1, 2, cursor=9))
        cursors = [enc.parse_ack(frame)[2] for frame in acks]
        assert cursors == [7, 9]


# -- the async serving surface -------------------------------------------------


class TestFabricHandler:
    def test_wire_ingress_routes_and_taps_fan_back(self):
        disp = FabricDispatcher(2)
        server = AsyncServer(fabric_handler(disp))
        host, port = server.bind()
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        try:
            sender, handle, frames = upstream(
                [{"unit": 4, "temperature": 40.0}], context_id=31
            )
            with socket.create_connection((host, port), timeout=10) as raw:
                raw.settimeout(10)
                t = SocketTransport(raw)
                rx = PbioConnection(IOContext(X86), t)
                rx.ctx.expect(TELEMETRY)
                deadline = time.monotonic() + 5
                while not disp._taps and time.monotonic() < deadline:
                    time.sleep(0.005)
                t.send_many(frames)
                assert rx.recv() == {"unit": 4, "temperature": 40.0}
                # Pings answer with the fabric's queue depth, not routing.
                t.send(enc.encode_ping(99))
                while True:
                    frame = t.recv()
                    kind = enc.unpack_header(frame)[0]
                    if kind == enc.MSG_PONG:
                        nonce, _depth = enc.parse_pong(frame)
                        assert nonce == 99
                        break
        finally:
            server.stop()
            thread.join(timeout=10)
        assert disp.metrics.value("fabric.routed") >= 1
        assert not disp._taps  # untapped on disconnect
