"""Tests for transports, the network model, and loopback sockets."""

import pytest

from repro.net import (
    EchoServer,
    InMemoryPipe,
    NetworkModel,
    SimulatedLink,
    TransportError,
    frame,
    loopback_pair,
    paper_network_times_ms,
    read_frame,
)


class TestFraming:
    def test_frame_round_trip(self):
        data = frame(b"hello")
        pos = [0]

        def read_exact(n):
            chunk = data[pos[0] : pos[0] + n]
            pos[0] += n
            return chunk

        assert read_frame(read_exact) == b"hello"

    def test_empty_frame(self):
        data = frame(b"")
        assert len(data) == 4

    def test_oversized_frame_rejected(self):
        with pytest.raises(TransportError):
            frame(bytearray(1) * 0)  # zero fine
            raise TransportError("sentinel")  # pragma: no cover


class TestInMemoryPipe:
    def test_bidirectional_delivery(self):
        a, b = InMemoryPipe().endpoints()
        a.send(b"ping")
        assert b.recv() == b"ping"
        b.send(b"pong")
        assert a.recv() == b"pong"

    def test_fifo_order(self):
        a, b = InMemoryPipe().endpoints()
        for i in range(5):
            a.send(bytes([i]))
        assert [b.recv()[0] for i in range(5)] == [0, 1, 2, 3, 4]

    def test_byte_accounting(self):
        a, b = InMemoryPipe().endpoints()
        a.send(b"12345")
        b.recv()
        assert a.bytes_sent == 5 and b.bytes_received == 5

    def test_recv_empty_raises(self):
        a, _ = InMemoryPipe().endpoints()
        with pytest.raises(TransportError):
            a.recv()

    def test_send_after_close_raises(self):
        a, _ = InMemoryPipe().endpoints()
        a.close()
        with pytest.raises(TransportError):
            a.send(b"x")

    def test_send_segments_concatenates(self):
        a, b = InMemoryPipe().endpoints()
        a.send_segments([b"head", memoryview(b"body")])
        assert b.recv() == b"headbody"


class TestNetworkModel:
    def test_matches_paper_endpoints_of_fit(self):
        model = NetworkModel.ethernet_100mbps()
        paper = paper_network_times_ms()
        # The model was fitted on the 100 B and 100 KB points.
        assert model.one_way_s(100) * 1e3 == pytest.approx(paper["100b"], rel=0.02)
        assert model.one_way_s(102400) * 1e3 == pytest.approx(paper["100kb"], rel=0.02)

    def test_intermediate_sizes_within_15_percent(self):
        model = NetworkModel.ethernet_100mbps()
        paper = paper_network_times_ms()
        assert model.one_way_s(1024) * 1e3 == pytest.approx(paper["1kb"], rel=0.15)
        assert model.one_way_s(10240) * 1e3 == pytest.approx(paper["10kb"], rel=0.15)

    def test_monotone_in_size(self):
        model = NetworkModel()
        assert model.one_way_s(10) < model.one_way_s(100) < model.one_way_s(10_000)

    def test_ideal_network_is_free(self):
        model = NetworkModel.ideal()
        assert model.one_way_s(1 << 20) == 0.0


class TestSimulatedLink:
    def test_clock_accumulates_per_message(self):
        link = SimulatedLink()
        link.a.send(b"x" * 1000)
        link.b.recv()
        expected = link.model.one_way_s(1000)
        assert link.a.wire_time_s == pytest.approx(expected)
        assert link.b.recv_overhead_s == pytest.approx(link.model.select_overhead_s)

    def test_payload_integrity(self):
        link = SimulatedLink()
        payload = bytes(range(256)) * 10
        link.a.send(payload)
        assert link.b.recv() == payload


class TestSockets:
    def test_loopback_round_trip(self):
        c, s = loopback_pair()
        try:
            c.send(b"over tcp")
            assert s.recv() == b"over tcp"
            s.send(b"back")
            assert c.recv() == b"back"
        finally:
            c.close()
            s.close()

    def test_zero_length_frames_round_trip(self):
        # Regression: a zero-length iovec never advances sendmsg's resume
        # cursor, so an empty frame (or empty segment) used to spin the
        # vectored send loop forever.
        c, s = loopback_pair(timeout_s=5.0)
        try:
            c.send(b"")
            assert s.recv() == b""
            c.send_many([b"", b"x", b""])
            assert s.recv_many(3) == [b"", b"x", b""]
            c.send_segments([b"", b"mid", b""])
            assert s.recv() == b"mid"
        finally:
            c.close()
            s.close()

    def test_large_message_survives_partial_reads(self):
        c, s = loopback_pair()
        try:
            payload = bytes(range(256)) * 4096  # 1 MiB
            c.send(payload)
            assert s.recv() == payload
        finally:
            c.close()
            s.close()

    def test_echo_server(self):
        with EchoServer() as server:
            server.client.send(b"echo me")
            assert server.client.recv() == b"echo me"

    def test_echo_server_with_handler(self):
        with EchoServer(handler=lambda d: d[::-1]) as server:
            server.client.send(b"abc")
            assert server.client.recv() == b"cba"


class TestTiming:
    def test_best_of_returns_positive(self):
        from repro.net import best_of

        t = best_of(lambda: sum(range(100)), repeats=3, inner=10)
        assert t > 0

    def test_roundtrip_cost_accounting(self):
        from repro.net import LegCost, RoundTripCost

        rt = RoundTripCost(
            label="100b",
            payload_bytes=100,
            forward=LegCost(0.001, 0.002, 0.003),
            back=LegCost(0.001, 0.002, 0.003),
        )
        assert rt.total_s == pytest.approx(0.012)
        assert rt.encode_decode_fraction == pytest.approx(8 / 12)
        assert "100b" in rt.row()

    def test_timing_table_renders(self):
        from repro.net import TimingTable

        table = TimingTable("t", ["100b", "1kb"])
        table.add("PBIO", [0.1, 0.2])
        text = table.render()
        assert "PBIO" in text and "100b" in text

    def test_timing_table_arity_check(self):
        from repro.net import TimingTable

        table = TimingTable("t", ["a"])
        with pytest.raises(ValueError):
            table.add("x", [1.0, 2.0])


class TestPipeCloseSemantics:
    """Closing one end must be distinguishable from a merely idle pipe."""

    def test_recv_after_peer_close_raises_peer_closed(self):
        from repro.net import PeerClosedError

        a, b = InMemoryPipe().endpoints()
        a.close()
        with pytest.raises(PeerClosedError):
            b.recv()

    def test_queued_messages_drain_before_peer_closed(self):
        from repro.net import PeerClosedError

        a, b = InMemoryPipe().endpoints()
        a.send(b"last words")
        a.close()
        assert b.recv() == b"last words"
        with pytest.raises(PeerClosedError):
            b.recv()

    def test_send_to_closed_peer_raises_peer_closed(self):
        from repro.net import PeerClosedError

        a, b = InMemoryPipe().endpoints()
        b.close()
        with pytest.raises(PeerClosedError):
            a.send(b"into the void")

    def test_peer_closed_is_a_transport_error(self):
        from repro.net import PeerClosedError

        assert issubclass(PeerClosedError, TransportError)

    def test_empty_pipe_still_plain_transport_error(self):
        from repro.net import PeerClosedError

        a, _ = InMemoryPipe().endpoints()
        with pytest.raises(TransportError) as excinfo:
            a.recv()
        assert not isinstance(excinfo.value, PeerClosedError)


def _small_buffer_pair(sndbuf=4096, rcvbuf=4096, timeout_s=10.0):
    """A loopback TCP pair with deliberately tiny kernel buffers, so
    vectored sends go partial and the framer sees fragmented reads."""
    import socket

    from repro.net import SocketTransport

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    client.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, sndbuf)
    client.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
    client.settimeout(timeout_s)
    client.connect(listener.getsockname())
    server, _ = listener.accept()
    server.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, sndbuf)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
    server.settimeout(timeout_s)
    listener.close()
    return SocketTransport(client), SocketTransport(server)


class TestSmallKernelBuffers:
    """send_segments partial-send resume and the buffered framer under
    real nonblocking-kernel conditions, not just InMemoryPipe."""

    def test_send_segments_partial_send_resume(self):
        import threading

        c, s = _small_buffer_pair()
        try:
            # 64 segments x 8 KiB = 512 KiB, far beyond both kernel
            # buffers: sendmsg must go partial and resume mid-iovec.
            segments = [bytes([i]) * 8192 for i in range(64)]
            sender = threading.Thread(target=c.send_segments, args=(segments,))
            sender.start()
            received = s.recv()
            sender.join(timeout=10)
            assert not sender.is_alive()
            assert received == b"".join(segments)
        finally:
            c.close()
            s.close()

    def test_send_many_burst_survives_fragmentation(self):
        import threading

        c, s = _small_buffer_pair()
        try:
            frames = [bytes([i % 256]) * (1 + 977 * i % 4096) for i in range(128)]
            sender = threading.Thread(target=c.send_many, args=(frames,))
            sender.start()
            received = []
            while len(received) < len(frames):
                received.extend(s.recv_many())
            sender.join(timeout=10)
            assert not sender.is_alive()
            assert received == frames
        finally:
            c.close()
            s.close()

    def test_echo_server_timeout_parameter(self):
        from repro.net import TransportTimeout

        with EchoServer(timeout_s=0.1) as server:
            with pytest.raises(TransportTimeout):
                server.client.recv()  # nothing inbound: bounded wait

    def test_loopback_pair_timeout_parameter(self):
        from repro.net import TransportTimeout

        c, s = loopback_pair(timeout_s=0.1)
        try:
            with pytest.raises(TransportTimeout):
                c.recv()
        finally:
            c.close()
            s.close()
