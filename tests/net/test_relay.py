"""Tests for the PBIO message relay."""

import pytest

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext, PbioConnection
from repro.net import InMemoryPipe
from repro.net.relay import Relay

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)


def upstream_with(records):
    """A sender context + the framed messages it would put on the wire."""
    sender = IOContext(SPARC_V8)
    h = sender.register_format(TELEMETRY)
    messages = [sender.announce(h)]
    messages += [sender.encode(h, r) for r in records]
    return messages


class TestForwarding:
    def test_verbatim_forwarding(self):
        messages = upstream_with([{"unit": 1, "temperature": 500.0}])
        relay = Relay()
        pipe = InMemoryPipe()
        relay.attach(pipe.a)
        for m in messages:
            relay.forward(m)
        assert pipe.b.recv() == bytes(messages[0])
        assert pipe.b.recv() == bytes(messages[1])  # bit-identical, no re-encode

    def test_downstream_decodes_on_its_own_machine(self):
        messages = upstream_with([{"unit": 2, "temperature": 450.5}])
        relay = Relay()
        pipe = InMemoryPipe()
        relay.attach(pipe.a)
        for m in messages:
            relay.forward(m)
        rx = PbioConnection(IOContext(X86), pipe.b)
        rx.ctx.expect(TELEMETRY)
        assert rx.recv() == {"unit": 2, "temperature": 450.5}

    def test_fan_out_to_multiple_downstreams(self):
        messages = upstream_with([{"unit": 1, "temperature": 1.0}] * 3)
        relay = Relay()
        pipes = [InMemoryPipe() for _ in range(3)]
        for pipe in pipes:
            relay.attach(pipe.a)
        for m in messages:
            relay.forward(m)
        for pipe in pipes:
            assert pipe.b.pending() == 4  # announcement + 3 records

    def test_relay_never_decodes(self):
        messages = upstream_with([{"unit": 1, "temperature": 1.0}])
        relay = Relay()
        relay.attach(InMemoryPipe().a)
        for m in messages:
            relay.forward(m)
        assert relay.ctx.stats.converted_decodes == 0
        assert relay.ctx.stats.zero_copy_decodes == 0


class TestFilteredDownstreams:
    def test_filter_splits_stream(self):
        records = [{"unit": i, "temperature": t} for i, t in enumerate((100.0, 800.0, 900.0))]
        messages = upstream_with(records)
        relay = Relay()
        all_pipe, hot_pipe = InMemoryPipe(), InMemoryPipe()
        relay.attach(all_pipe.a)
        hot = relay.attach(
            hot_pipe.a, format_name="telemetry", filter_expr="temperature > 700.0"
        )
        for m in messages:
            relay.forward(m)
        assert all_pipe.b.pending() == 4
        assert hot_pipe.b.pending() == 3  # announcement + 2 hot records
        assert hot.stats.forwarded == 2 and hot.stats.filtered_out == 1
        rx = PbioConnection(IOContext(X86), hot_pipe.b)
        rx.ctx.expect(TELEMETRY)
        assert rx.recv()["temperature"] == 800.0

    def test_filter_requires_format_name(self):
        relay = Relay()
        with pytest.raises(ValueError):
            relay.attach(InMemoryPipe().a, filter_expr="x > 1")


class TestLateAttach:
    def test_announcements_replayed(self):
        messages = upstream_with([{"unit": 1, "temperature": 2.0}])
        relay = Relay()
        for m in messages:
            relay.forward(m)  # nobody attached yet
        pipe = InMemoryPipe()
        downstream = relay.attach(pipe.a)
        assert downstream.stats.announcements == 1
        # The late downstream can decode subsequent records.
        sender = IOContext(SPARC_V8)
        h = sender.register_format(TELEMETRY)
        relay.forward(sender.announce(h))
        relay.forward(sender.encode(h, {"unit": 9, "temperature": 3.0}))
        rx = PbioConnection(IOContext(X86), pipe.b)
        rx.ctx.expect(TELEMETRY)
        assert rx.recv() == {"unit": 9, "temperature": 3.0}

    def test_pump_from_transport(self):
        messages = upstream_with([{"unit": 5, "temperature": 7.0}])
        up = InMemoryPipe()
        for m in messages:
            up.a.send(m)
        relay = Relay()
        down = InMemoryPipe()
        relay.attach(down.a)
        relay.pump(up.b, count=2)
        assert relay.messages_seen == 1
        assert down.b.pending() == 2
