"""The durable delivery plane: sequenced frames, WAL, ack-cursor resume.

The headline property (seeded hypothesis) is the crash contract: kill
-9 any process at any frame boundary — publisher, subscriber, or the
frames in flight between them — and after recovery the subscriber has
observed every acknowledged record exactly once, in order.  "Crash" is
simulated the honest way: the in-memory objects are discarded without
any goodbye and rebuilt purely from their durable files.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.abi import X86, CType, FieldDecl, RecordSchema
from repro.core import IOContext, PbioError
from repro.core import encoder as enc
from repro.net import (
    AckCursorStore,
    DurablePublisher,
    DurableSubscription,
    EventChannel,
    PublisherWAL,
    SequenceWindow,
)

POINT = RecordSchema("point", [FieldDecl("x", CType.INT), FieldDecl("y", CType.DOUBLE)])
PUB_CONTEXT_ID = 0xD00D


def make_publisher(channel, wal_dir, **kw):
    """A publisher with a *stable* context id — the restart contract."""
    ctx = IOContext(X86, context_id=PUB_CONTEXT_ID)
    handle = ctx.register_format(POINT)
    return DurablePublisher(channel, ctx, wal_dir=wal_dir, **kw), handle


def sub_context():
    ctx = IOContext(X86)
    ctx.expect(POINT)
    return ctx


class TestWireTypes:
    def test_data_seq_round_trip(self):
        msg = enc.encode_data_seq(7, 3, 42, b"payload")
        cid, fid, seq, record = enc.parse_data_seq(msg)
        assert (cid, fid, seq, bytes(record)) == (7, 3, 42, b"payload")

    def test_seq_zero_rejected(self):
        with pytest.raises(PbioError):
            enc.encode_data_seq(1, 1, 0, b"x")

    def test_parse_rejects_short_payload(self):
        msg = bytearray(enc.encode_data_seq(1, 1, 5, b"abc"))
        with pytest.raises(PbioError):
            enc.parse_data_seq(bytes(msg[: enc.HEADER_SIZE + 4]))

    def test_seq_to_data_strips_prefix(self):
        msg = enc.encode_data_seq(7, 3, 42, b"payload")
        seq, data = enc.seq_to_data(msg)
        assert seq == 42
        header = enc.unpack_header(data)
        assert header[0] == enc.MSG_DATA
        assert (header[1], header[2]) == (7, 3)
        assert data[enc.HEADER_SIZE :] == b"payload"

    def test_ack_round_trip(self):
        msg = enc.encode_ack(7, 3, 100, nack_base=101, nack_bits=0b101)
        assert len(msg) == enc.HEADER_SIZE + enc.ACK_PAYLOAD_SIZE
        assert enc.parse_ack(msg) == (7, 3, 100, 101, 0b101)

    def test_ack_strict_size(self):
        msg = enc.encode_ack(1, 1, 5)
        with pytest.raises(PbioError):
            enc.parse_ack(msg[:-1] )


class TestAckCursorStore:
    def test_memory_only(self):
        store = AckCursorStore(None)
        assert store.cursor((1, 1)) == 0
        assert store.advance((1, 1), 5)
        assert not store.advance((1, 1), 5)  # not ahead
        assert not store.advance((1, 1), 3)  # never regress
        assert store.cursor((1, 1)) == 5

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "cursors")
        with AckCursorStore(path) as store:
            store.advance((1, 1), 5)
            store.advance((2, 9), 7)
            store.advance((1, 1), 6)
        with AckCursorStore(path) as store:
            assert store.cursor((1, 1)) == 6
            assert store.cursor((2, 9)) == 7

    def test_torn_tail_truncated(self, tmp_path):
        path = str(tmp_path / "cursors")
        with AckCursorStore(path) as store:
            store.advance((1, 1), 5)
            store.advance((1, 1), 6)
        with open(path, "r+b") as stream:
            stream.seek(0, os.SEEK_END)
            stream.truncate(stream.tell() - 3)
        with AckCursorStore(path) as store:
            assert store.cursor((1, 1)) == 5  # the torn entry is gone
            assert store.metrics.value("durable.wal_torn") == 1
            store.advance((1, 1), 9)  # and appending again works
        with AckCursorStore(path) as store:
            assert store.cursor((1, 1)) == 9

    def test_compaction_rewrite_preserves_cursors(self, tmp_path):
        path = str(tmp_path / "cursors")
        with AckCursorStore(path) as store:
            for cursor in range(1, 200):
                store.advance((1, 1), cursor)
            size = os.path.getsize(path)
        # One live stream, ~199 appends: the periodic rewrite must have
        # fired, keeping the file well under the full append history
        # (28 bytes per framed entry).
        assert size < 199 * 28 // 2
        with AckCursorStore(path) as store:
            assert store.cursor((1, 1)) == 199


class TestPublisherWAL:
    def _msg(self, seq, payload=b"data"):
        return enc.encode_data_seq(1, 1, seq, payload)

    def test_sequencing_enforced(self, tmp_path):
        with PublisherWAL(str(tmp_path / "wal")) as wal:
            assert wal.next_seq((1, 1)) == 1
            assert wal.append(self._msg(1)) == 1
            with pytest.raises(PbioError):
                wal.append(self._msg(3))  # gap
            with pytest.raises(PbioError):
                wal.append(self._msg(1))  # replay
            assert wal.append(self._msg(2)) == 2

    def test_recovery_restores_backlog_and_next_seq(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        with PublisherWAL(wal_dir) as wal:
            for seq in range(1, 6):
                wal.append(self._msg(seq))
            wal.ack((1, 1), 3)
        with PublisherWAL(wal_dir) as wal:
            assert wal.next_seq((1, 1)) == 6
            assert [enc.parse_data_seq(m)[2] for m in wal.unacked()] == [4, 5]

    def test_ack_releases_and_is_cumulative(self, tmp_path):
        with PublisherWAL(str(tmp_path / "wal")) as wal:
            for seq in range(1, 6):
                wal.append(self._msg(seq))
            assert wal.ack((1, 1), 3) == 3
            assert wal.ack((1, 1), 2) == 0  # regression ignored
            assert wal.unacked_count == 2

    def test_rotation_and_compaction(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        with PublisherWAL(wal_dir, segment_bytes=4096) as wal:
            for seq in range(1, 301):
                wal.append(self._msg(seq, b"x" * 64))
            assert wal.segment_count > 1
            before = wal.segment_count
            wal.ack((1, 1), 300)
            assert wal.segment_count < before
            assert wal.metrics.value("durable.segments_compacted") > 0
            assert sorted(os.listdir(wal_dir)) == sorted(
                [os.path.basename(p) for p, _ in wal._segments] + ["acked.cursors"]
            )

    def test_announcements_survive_rotation_and_recovery(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        announcement = enc.pack_header(enc.MSG_FORMAT, 1, 1, 4) + b"meta"
        with PublisherWAL(wal_dir, segment_bytes=4096) as wal:
            wal.announce(announcement)
            wal.announce(announcement)  # idempotent
            for seq in range(1, 301):
                wal.append(self._msg(seq, b"x" * 64))
            wal.ack((1, 1), 250)  # compacts the early segments away
        with PublisherWAL(wal_dir, segment_bytes=4096) as wal:
            backlog = wal.unacked()
            # The announcement leads the retransmission set even though
            # its original segment was compacted (it was re-journaled).
            assert backlog[0] == announcement
            assert [enc.parse_data_seq(m)[2] for m in backlog[1:]] == list(range(251, 301))

    def test_torn_tail_on_recovery(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        with PublisherWAL(wal_dir) as wal:
            for seq in range(1, 4):
                wal.append(self._msg(seq))
        seg = os.path.join(wal_dir, "wal-00000001.seg")
        with open(seg, "r+b") as stream:
            stream.seek(0, os.SEEK_END)
            stream.truncate(stream.tell() - 5)
        with PublisherWAL(wal_dir) as wal:
            assert wal.metrics.value("durable.wal_torn") == 1
            assert wal.next_seq((1, 1)) == 3  # the torn record never happened
            assert wal.append(self._msg(3)) == 3

    def test_memory_only_mode(self):
        with PublisherWAL(None) as wal:
            wal.append(self._msg(1))
            assert wal.unacked_count == 1
            wal.ack((1, 1), 1)
            assert wal.unacked_count == 0


class TestSequenceWindow:
    def test_in_order_flow(self):
        win = SequenceWindow()
        key = (1, 1)
        assert win.offer(key, 1, "a") == "ready"
        assert win.next_ready(key) == (1, "a")
        win.commit(key, 1)
        assert win.cursor(key) == 1
        assert win.next_ready(key) is None

    def test_duplicate_and_reorder(self):
        win = SequenceWindow()
        key = (1, 1)
        assert win.offer(key, 2, "b") == "buffered"
        assert win.offer(key, 2, "b") == "duplicate"
        assert win.offer(key, 1, "a") == "ready"
        win.commit(key, 1)
        win.commit(key, 2)
        assert win.offer(key, 1, "a") == "duplicate"
        assert win.metrics.value("durable.duplicates_dropped") == 2
        assert win.metrics.value("durable.reordered") == 1

    def test_window_refusal(self):
        win = SequenceWindow(window=4)
        key = (1, 1)
        assert win.offer(key, 5, "e") == "refused"  # 5 - 0 > 4
        assert win.offer(key, 4, "d") == "buffered"

    def test_missing_bitmap(self):
        win = SequenceWindow()
        key = (1, 1)
        win.offer(key, 2, "b")
        win.offer(key, 4, "d")
        base, bits = win.missing(key)
        assert base == 1
        assert bits == 0b101  # 1 and 3 absent, 2 and 4 held

    def test_commit_must_be_contiguous(self):
        win = SequenceWindow()
        win.offer((1, 1), 2, "b")
        with pytest.raises(PbioError):
            win.commit((1, 1), 2)

    def test_seed_resume(self):
        win = SequenceWindow()
        win.seed((1, 1), 10)
        assert win.offer((1, 1), 10, "old") == "duplicate"
        assert win.offer((1, 1), 11, "new") == "ready"


class TestDurableRoundTrip:
    def test_exactly_once_in_order(self, tmp_path):
        channel = EventChannel()
        pub, handle = make_publisher(channel, str(tmp_path / "wal"))
        got = []
        sub_ctx = sub_context()
        sub = channel.subscribe_durable(
            sub_ctx, lambda r: got.append(r["x"]), cursor_path=str(tmp_path / "cursors")
        )
        for i in range(5):
            pub.publish(handle, {"x": i, "y": i * 0.5})
        assert got == list(range(5))
        assert pub.unacked_count == 0  # acks flowed back in-process
        assert pub.stats.acked == 5
        # A full backlog resend is absorbed by the dedup window.
        pub.resend_unacked()
        assert got == list(range(5))
        pub.close()
        sub.close()

    def test_plain_subscriber_sees_sequenced_stream(self, tmp_path):
        channel = EventChannel()
        pub, handle = make_publisher(channel, str(tmp_path / "wal"))
        got = []
        channel.subscribe(sub_context(), lambda r: got.append(r["x"]))
        pub.publish(handle, {"x": 7, "y": 0.0})
        assert got == [7]  # sequencing stripped, no durability semantics
        pub.close()

    def test_subscriber_restart_resumes_from_cursor(self, tmp_path):
        channel = EventChannel()
        pub, handle = make_publisher(channel, str(tmp_path / "wal"))
        cursor_path = str(tmp_path / "cursors")
        got = []
        sub = channel.subscribe_durable(
            sub_context(), lambda r: got.append(r["x"]), cursor_path=cursor_path
        )
        for i in range(3):
            pub.publish(handle, {"x": i, "y": 0.0})
        # Crash: discard without goodbye, rebuild from the cursor file.
        channel.unsubscribe(sub)
        got2 = []
        sub2 = channel.subscribe_durable(
            sub_context(), lambda r: got2.append(r["x"]), cursor_path=cursor_path
        )
        pub.resend_unacked()  # nothing unacked — but belt and braces
        pub.publish(handle, {"x": 3, "y": 0.0})
        assert got2 == [3]  # records 0..2 were acked before the crash
        pub.close()
        sub2.close()

    def test_publisher_crash_restart_retransmits(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        channel = EventChannel()
        pub, handle = make_publisher(channel, wal_dir)
        # No subscriber attached: these frames are lost in flight.
        for i in range(3):
            pub.publish(handle, {"x": i, "y": 0.0})
        assert pub.unacked_count == 3
        # Crash the publisher (no close), rebuild from the WAL alone.
        channel.remove_ack_listener(pub._on_ack)
        pub2, handle2 = make_publisher(channel, wal_dir)
        got = []
        sub = channel.subscribe_durable(
            sub_context(), lambda r: got.append(r["x"]), cursor_path=str(tmp_path / "c")
        )
        assert pub2.resend_unacked() == 3
        assert got == [0, 1, 2]
        assert pub2.unacked_count == 0
        # Sequencing continues where the dead incarnation stopped.
        pub2.publish(handle2, {"x": 3, "y": 0.0})
        assert got == [0, 1, 2, 3]
        pub2.close()
        sub.close()

    def test_handler_failure_redelivers_under_raise(self, tmp_path):
        channel = EventChannel()
        pub, handle = make_publisher(channel, str(tmp_path / "wal"))
        got = []
        fail = [True]

        def handler(record):
            if fail[0]:
                raise RuntimeError("transient")
            got.append(record["x"])

        sub = channel.subscribe_durable(
            sub_context(), handler, cursor_path=str(tmp_path / "c")
        )
        with pytest.raises(RuntimeError):
            pub.publish(handle, {"x": 0, "y": 0.0})
        assert got == []
        assert pub.unacked_count == 1  # not committed, not acked
        fail[0] = False
        pub.resend_unacked()  # retransmission delivers it — exactly once
        assert got == [0]
        assert pub.unacked_count == 0
        pub.close()
        sub.close()

    def test_gap_nack_triggers_selective_retransmit(self, tmp_path):
        channel = EventChannel()
        pub, handle = make_publisher(channel, str(tmp_path / "wal"))
        got = []
        sub = channel.subscribe_durable(sub_context(), lambda r: got.append(r["x"]))
        pub.publish(handle, {"x": 0, "y": 0.0})
        # Drop the next frame in flight by detaching the subscriber.
        channel.unsubscribe(sub)
        pub.publish(handle, {"x": 1, "y": 0.0})
        channel._attach(sub)
        pub.publish(handle, {"x": 2, "y": 0.0})
        # Frame 3 (seq) arrived out of order; the ack it provoked carried
        # a nack for seq 2, and the publisher re-sent it synchronously.
        assert got == [0, 1, 2]
        assert pub.stats.retransmitted >= 1
        assert sub.stats_durable.nacks_sent >= 1
        pub.close()
        sub.close()


class TestBatchPath:
    """The burst APIs: one journal write, one batch decode, one ack."""

    def test_publish_batch_round_trip(self, tmp_path):
        channel = EventChannel()
        pub, handle = make_publisher(channel, str(tmp_path / "wal"))
        got = []
        sub = channel.subscribe_durable(
            sub_context(),
            lambda r: got.append(r["x"]),
            cursor_path=str(tmp_path / "cursors"),
            on_error="suppress",  # the batched drain path
        )
        seqs = pub.publish_batch(handle, [{"x": i, "y": 0.0} for i in range(8)])
        assert seqs == list(range(1, 9))
        assert got == list(range(8))
        assert pub.unacked_count == 0
        assert pub.stats.journaled == 8
        # One ack per burst, not per record.
        assert sub.stats_durable.acks_sent == 1
        pub.close()
        sub.close()

    def test_batch_journal_recovers_after_crash(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        channel = EventChannel()
        pub, handle = make_publisher(channel, wal_dir)
        # No subscriber: the whole burst is lost in flight, and the
        # journal holds it as one container frame (split_wal_frame).
        pub.publish_batch(handle, [{"x": i, "y": 0.0} for i in range(6)])
        assert pub.unacked_count == 6
        channel.remove_ack_listener(pub._on_ack)
        pub2, handle2 = make_publisher(channel, wal_dir)
        assert pub2.unacked_count == 6  # recovered from the batch frame
        got = []
        sub = channel.subscribe_durable(
            sub_context(), lambda r: got.append(r["x"]), on_error="suppress"
        )
        assert pub2.resend_unacked() == 6
        assert got == list(range(6))
        # Sequencing continues across the batch boundary.
        assert pub2.publish_batch(handle2, [{"x": 6, "y": 0.0}]) == [7]
        assert got == list(range(7))
        pub2.close()
        sub.close()

    def test_batch_to_plain_subscriber_strips_sequencing(self, tmp_path):
        channel = EventChannel()
        pub, handle = make_publisher(channel, str(tmp_path / "wal"))
        got = []
        channel.subscribe(sub_context(), lambda r: got.append(r["x"]))
        pub.publish_batch(handle, [{"x": i, "y": 0.0} for i in range(4)])
        assert got == list(range(4))
        pub.close()

    def test_batch_drain_redelivers_across_gap(self, tmp_path):
        channel = EventChannel()
        pub, handle = make_publisher(channel, str(tmp_path / "wal"))
        got = []
        sub = channel.subscribe_durable(
            sub_context(), lambda r: got.append(r["x"]), on_error="suppress"
        )
        pub.publish_batch(handle, [{"x": 0, "y": 0.0}])
        channel.unsubscribe(sub)
        pub.publish_batch(handle, [{"x": 1, "y": 0.0}])  # lost in flight
        channel._attach(sub)
        # The next burst arrives out of order; its ack nacks the gap and
        # the publisher's selective retransmit closes it synchronously.
        pub.publish_batch(handle, [{"x": 2, "y": 0.0}, {"x": 3, "y": 0.0}])
        assert got == [0, 1, 2, 3]
        assert pub.unacked_count == 0
        pub.close()
        sub.close()

    def test_append_batch_rejects_gap(self, tmp_path):
        with PublisherWAL(str(tmp_path / "wal")) as wal:
            good = enc.encode_data_seq(1, 1, 1, b"a")
            skipped = enc.encode_data_seq(1, 1, 3, b"b")
            with pytest.raises(PbioError):
                wal.append_batch([good, skipped])


OPS = st.lists(
    st.sampled_from(["publish", "lose", "crash_pub", "crash_sub"]),
    min_size=1,
    max_size=40,
)


class TestCrashProperty:
    _example = 0  # tmp_path is reused across hypothesis examples

    # tmp_path reuse across examples is handled by the per-example
    # subdirectory below, so the function-scoped-fixture check is moot.
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(ops=OPS)
    def test_kill_minus_nine_anywhere_is_exactly_once_in_order(self, ops, tmp_path):
        """Crash any process at any frame boundary; acked records are
        observed exactly once, in order, after recovery."""
        TestCrashProperty._example += 1
        wal_dir = str(tmp_path / f"wal-{TestCrashProperty._example}")
        cursor_path = wal_dir + ".cursors"
        channel = EventChannel()
        pub, handle = make_publisher(channel, wal_dir)
        got = []

        def attach_subscriber():
            return channel.subscribe_durable(
                sub_context(), lambda r: got.append(r["x"]), cursor_path=cursor_path
            )

        sub = attach_subscriber()
        published = 0
        for op in ops:
            if op == "publish":
                pub.publish(handle, {"x": published, "y": 0.0})
                published += 1
            elif op == "lose":
                # In-flight loss: the frame leaves the WAL but no one
                # hears it (subscriber detached at send time).
                channel.unsubscribe(sub)
                pub.publish(handle, {"x": published, "y": 0.0})
                published += 1
                channel._attach(sub)
            elif op == "crash_pub":
                # kill -9: no close, no goodbye; recover from disk.
                channel.remove_ack_listener(pub._on_ack)
                pub, handle = make_publisher(channel, wal_dir)
                pub.resend_unacked()
            elif op == "crash_sub":
                channel.unsubscribe(sub)
                got_before_crash = len(got)
                sub = attach_subscriber()
                assert len(got) == got_before_crash
                pub.resend_unacked()
        # Quiesce: one final recovery pass flushes every gap.
        pub.resend_unacked()
        assert got == list(range(published)), (
            f"published {published}, observed {got}"
        )
        pub.close()
        sub.close()
