"""Tests for the async event-loop serving core (:mod:`repro.net.aio`).

Covers the readiness-driven transport (bounded write queue, explicit
backpressure, framing parity with the blocking transport), the
single-process :class:`AsyncServer` acceptor (concurrency, ``once``,
``max_clients`` shedding, prompt stop), every handler adapter against
the *synchronous* client stack — the thin-wrapper guarantee cuts both
ways — and seeded fault injection over an async transport, which must
draw the exact same per-message plans as over a blocking one
(``PBIO_CHAOS_SEED`` shifts the seed in the CI chaos matrix, default 0).
"""

import asyncio
import contextlib
import os
import socket
import threading
import time

import pytest

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext, PbioConnection, RpcClient, RpcInterface, RpcOperation, RpcServer
from repro.core import encoder as enc
from repro.fmtserv import FormatServer, FormatService
from repro.net import (
    AsyncServer,
    AsyncSocketTransport,
    EventChannel,
    FaultInjectingTransport,
    FaultPlan,
    InMemoryPipe,
    PeerClosedError,
    Relay,
    SocketTransport,
    TransportError,
    TransportTimeout,
    WriteQueueFull,
    channel_handler,
    echo_handler,
    fmtserv_handler,
    relay_handler,
    rpc_handler,
)

CHAOS_SEED = int(os.environ.get("PBIO_CHAOS_SEED", "0"))

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)
#: A bulky schema (~4 KiB encoded) for filling kernel socket buffers fast.
BLOB = RecordSchema.from_pairs("blob", [("v", "double[512]")])

ADD_REQ = RecordSchema.from_pairs("add_req", [("a", "double"), ("b", "double")])
ADD_REP = RecordSchema.from_pairs("add_rep", [("total", "double")])
CALC = RpcInterface("Calculator", [RpcOperation("add", ADD_REQ, ADD_REP)])


# -- harness -------------------------------------------------------------------


@contextlib.contextmanager
def serving(server: AsyncServer):
    """Run an AsyncServer's loop on a background thread — the sync-wrapper
    path every test client then talks to with plain blocking sockets."""
    host, port = server.bind()
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    try:
        yield host, port
    finally:
        server.stop()
        thread.join(timeout=10)
        assert not thread.is_alive(), "server loop failed to stop"


def connect(host: str, port: int, timeout_s: float = 10.0) -> SocketTransport:
    sock = socket.create_connection((host, port), timeout=timeout_s)
    sock.settimeout(timeout_s)
    return SocketTransport(sock)


def tcp_pair() -> tuple[socket.socket, socket.socket]:
    """A connected raw TCP pair (unlike ``socketpair``, real TCP, so both
    ends accept ``TCP_NODELAY`` and behave like production links)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    client.connect(listener.getsockname())
    server, _ = listener.accept()
    listener.close()
    return client, server


def wait_until(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.005)


# -- echo serving --------------------------------------------------------------


class TestAsyncEcho:
    def test_round_trip(self):
        server = AsyncServer(echo_handler())
        with serving(server) as (host, port):
            with connect(host, port) as t:
                t.send(b"hello async")
                assert t.recv() == b"hello async"

    def test_transform_handler(self):
        server = AsyncServer(echo_handler(lambda data: data.upper()))
        with serving(server) as (host, port):
            with connect(host, port) as t:
                t.send(b"ndr")
                assert t.recv() == b"NDR"

    def test_many_concurrent_connections_one_process(self):
        server = AsyncServer(echo_handler())
        with serving(server) as (host, port):
            clients = [connect(host, port) for _ in range(64)]
            try:
                # All 64 links open at once; interleave traffic across them.
                for rounds in range(2):
                    for i, t in enumerate(clients):
                        t.send(f"c{i}r{rounds}".encode())
                    for i, t in enumerate(clients):
                        assert t.recv() == f"c{i}r{rounds}".encode()
            finally:
                for t in clients:
                    t.close()
            assert server.metrics.value("aio.accepted") == 64

    def test_batch_echo_uses_recv_many(self):
        server = AsyncServer(echo_handler())
        with serving(server) as (host, port):
            with connect(host, port) as t:
                frames = [f"m{i}".encode() for i in range(32)]
                t.send_many(frames)
                got = []
                while len(got) < len(frames):
                    got.extend(t.recv_many())
                assert got == frames

    def test_once_serves_one_connection_then_exits(self):
        server = AsyncServer(echo_handler(), once=True)
        host, port = server.bind()
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        with connect(host, port) as t:
            t.send(b"only")
            assert t.recv() == b"only"
        thread.join(timeout=10)  # exits by itself: no stop() needed
        assert not thread.is_alive()

    def test_max_clients_sheds_excess_cleanly(self):
        server = AsyncServer(echo_handler(), max_clients=1)
        with serving(server) as (host, port):
            with connect(host, port) as first:
                first.send(b"hold")  # ensure the handler owns the slot
                assert first.recv() == b"hold"
                shed = connect(host, port)
                # The excess client gets an orderly FIN, not a hang.
                with pytest.raises(TransportError):
                    shed.recv()
                shed.close()
            wait_until(lambda: server.metrics.value("aio.shed") >= 1)

    def test_stop_cancels_open_connections(self):
        server = AsyncServer(echo_handler())
        with serving(server) as (host, port):
            idle = connect(host, port)  # never sends: handler parked in recv
            wait_until(lambda: server.active_connections == 1)
            server.stop()
            with pytest.raises(TransportError):
                idle.recv()  # connection torn down by the stopping server
            idle.close()


# -- transport-level: bounded queue, backpressure, framing parity --------------


class TestAsyncTransportQueue:
    def test_write_queue_bound_backpressure_and_drain(self):
        # A writable socket flushes inline and never queues, so real
        # backpressure needs a jammed kernel buffer: small SO_SNDBUF,
        # peer not reading.  Once the kernel stops accepting, the
        # bounded queue fills and WriteQueueFull surfaces synchronously.
        chunk = b"y" * 4096
        received = bytearray()
        stop = threading.Event()

        async def scenario():
            client, srv = tcp_pair()
            srv.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
            transport = AsyncSocketTransport(srv, max_write_queue=8192)
            sent = 0
            with pytest.raises(WriteQueueFull):
                for _ in range(2048):  # no awaits: the writer can't run
                    transport.send(chunk)
                    sent += 1
            assert transport.metrics.value("aio.queue_full") == 1
            assert transport.write_queue_depth > 0

            def drain_peer():
                client.settimeout(0.2)
                while not stop.is_set():
                    try:
                        data = client.recv(65536)
                    except socket.timeout:
                        continue
                    except OSError:
                        return
                    if not data:
                        return
                    received.extend(data)

            reader = threading.Thread(target=drain_peer, daemon=True)
            reader.start()
            await transport.drain()  # reader relieves the jam
            assert transport.write_queue_depth == 0
            transport.send(b"after")  # queue usable again once drained
            await transport.drain()
            transport.close()
            return sent

        sent = asyncio.run(scenario())
        expect = sent * (4 + len(chunk)) + (4 + 5)
        wait_until(lambda: len(received) >= expect)
        stop.set()
        assert len(received) == expect  # nothing lost, nothing duplicated
        assert received.endswith(b"\x00\x00\x00\x05after")

    def test_framing_parity_with_blocking_transport(self):
        async def scenario():
            client, srv = tcp_pair()
            transport = AsyncSocketTransport(srv)
            transport.send(b"")  # empty frame survives
            transport.send_many([b"a", b"bb", b"ccc"])
            transport.send_segments([b"head", b"-", b"tail"])
            await transport.drain()
            transport.close()
            return client

        client = asyncio.run(scenario())
        peer = SocketTransport(client)
        peer.set_timeout(10.0)
        assert peer.recv() == b""
        assert peer.recv() == b"a"
        assert peer.recv() == b"bb"
        assert peer.recv() == b"ccc"
        assert peer.recv() == b"head-tail"
        peer.close()

    def test_recv_timeout(self):
        async def scenario():
            client, srv = tcp_pair()
            transport = AsyncSocketTransport(srv)
            transport.set_timeout(0.05)
            with pytest.raises(TransportTimeout):
                await transport.recv()
            transport.close()
            client.close()

        asyncio.run(scenario())

    def test_clean_eof_is_peer_closed_mid_frame_is_error(self):
        async def scenario():
            client, srv = tcp_pair()
            transport = AsyncSocketTransport(srv)
            client.sendall(b"\x00\x00\x00\x05hello")
            assert await transport.recv() == b"hello"
            client.close()  # clean frame boundary
            with pytest.raises(PeerClosedError):
                await transport.recv()
            transport.close()

            client2, srv2 = tcp_pair()
            transport2 = AsyncSocketTransport(srv2)
            client2.sendall(b"\x00\x00\x00\x09par")  # torn mid-frame
            client2.close()
            with pytest.raises(TransportError) as excinfo:
                await transport2.recv()
            assert not isinstance(excinfo.value, PeerClosedError)
            transport2.close()

        asyncio.run(scenario())

    def test_send_on_closed_transport_raises(self):
        async def scenario():
            client, srv = tcp_pair()
            transport = AsyncSocketTransport(srv)
            transport.close()
            with pytest.raises(TransportError):
                transport.send(b"late")
            client.close()

        asyncio.run(scenario())


# -- RPC over the async core ---------------------------------------------------


class TestAsyncRpc:
    def test_sync_rpc_client_against_async_server(self):
        rpc = RpcServer(SPARC_V8, CALC)
        rpc.register(b"calc", {"add": lambda req: {"total": req["a"] + req["b"]}})
        server = AsyncServer(rpc_handler(rpc))
        with serving(server) as (host, port):
            client = RpcClient(X86, CALC)
            with connect(host, port) as t:
                for i in range(5):
                    reply = client.invoke(t, b"calc", "add", {"a": float(i), "b": 1.0})
                    assert reply == {"total": float(i) + 1.0}
            # The reply can reach the client a beat before the server
            # task returns to its accounting, so poll rather than assert.
            wait_until(lambda: rpc.metrics.value("requests_served") == 5)

    def test_two_clients_interleaved(self):
        rpc = RpcServer(SPARC_V8, CALC)
        rpc.register(b"calc", {"add": lambda req: {"total": req["a"] + req["b"]}})
        server = AsyncServer(rpc_handler(rpc))
        with serving(server) as (host, port):
            c1, c2 = RpcClient(X86, CALC), RpcClient(X86, CALC)
            with connect(host, port) as t1, connect(host, port) as t2:
                for i in range(3):
                    assert c1.invoke(t1, b"calc", "add", {"a": 1.0, "b": float(i)})
                    assert c2.invoke(t2, b"calc", "add", {"a": 2.0, "b": float(i)})


# -- format server over the async core -----------------------------------------


class TestAsyncFmtserv:
    def test_register_and_resolve_over_tcp(self):
        from repro.abi import X86_64, layout_record
        from repro.core import IOFormat

        fserver = FormatServer()
        server = AsyncServer(fmtserv_handler(fserver))
        with serving(server) as (host, port):
            fmt = IOFormat.from_layout(layout_record(TELEMETRY, X86_64))
            publisher = FormatService(lambda: connect(host, port))
            try:
                token = publisher.publish(fmt)
                assert token == 1
            finally:
                publisher.close()
            resolver = FormatService(lambda: connect(host, port))
            try:
                resolved = resolver.resolve(fmt.fingerprint)
                assert resolved is not None
                assert resolved.fingerprint == fmt.fingerprint
            finally:
                resolver.close()
        assert fserver.metrics.value("fmtserv.registered") == 1


# -- relay over the async core -------------------------------------------------


class TestAsyncRelay:
    def test_wire_ingress_fans_to_downstreams(self):
        relay = Relay()
        pipe = InMemoryPipe()
        relay.attach(pipe.a)
        server = AsyncServer(relay_handler(relay))
        with serving(server) as (host, port):
            sender = IOContext(SPARC_V8)
            handle = sender.register_format(TELEMETRY)
            announcement = sender.announce(handle)
            record = sender.encode(handle, {"unit": 7, "temperature": 451.0})
            with connect(host, port) as t:
                t.send_many([announcement, record])
                wait_until(lambda: pipe.b.pending() == 2)
        assert pipe.b.recv() == bytes(announcement)
        assert pipe.b.recv() == bytes(record)  # verbatim: no re-encode
        assert relay.messages_seen == 1

    def test_slow_async_downstream_hits_queue_bound_and_quarantines(self):
        async def scenario():
            reader, writer = tcp_pair()
            for sock in (reader, writer):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            down = AsyncSocketTransport(writer, max_write_queue=8192)
            relay = Relay()
            downstream = relay.attach(down)
            sender = IOContext(SPARC_V8)
            handle = sender.register_format(BLOB)
            relay.forward(sender.announce(handle))
            message = sender.encode(
                handle, {"v": tuple(float(i) for i in range(512))}
            )
            # The peer never reads: the kernel buffer fills, then the
            # bounded queue, then WriteQueueFull trips the same
            # consecutive-failure quarantine a broken link would.
            for _ in range(64):
                relay.forward(message)
                await asyncio.sleep(0)  # let the writer task try the kernel
                if downstream.quarantined:
                    break
            assert downstream.quarantined
            assert downstream.metrics.value("send_errors") >= relay.quarantine_after
            assert downstream.write_queue_depth > 0  # the gauge shows the jam
            down.close()
            reader.close()

        asyncio.run(scenario())


# -- event channel over the wire -----------------------------------------------


class TestAsyncChannel:
    def test_wire_subscriber_gets_backlog_and_live_traffic(self):
        channel = EventChannel()
        publisher = channel.publisher(IOContext(SPARC_V8))
        handle = publisher.ctx.register_format(TELEMETRY)
        publisher.publish(handle, {"unit": 1, "temperature": 100.0})
        server = AsyncServer(channel_handler(channel))
        with serving(server) as (host, port):
            with connect(host, port) as t:
                rx = PbioConnection(IOContext(X86), t)
                rx.ctx.expect(TELEMETRY)
                wait_until(lambda: channel.tap_count == 1)
                publisher.publish(handle, {"unit": 2, "temperature": 200.0})
                # The announcement backlog was replayed on join, so the
                # live record decodes; pre-join *data* is not replayed.
                assert rx.recv() == {"unit": 2, "temperature": 200.0}

    def test_wire_ingress_reaches_in_process_subscribers(self):
        channel = EventChannel()
        received = []
        sub_ctx = IOContext(X86)
        sub_ctx.expect(TELEMETRY)
        channel.subscribe(sub_ctx, received.append, format_name="telemetry")
        server = AsyncServer(channel_handler(channel))
        with serving(server) as (host, port):
            with connect(host, port) as t:
                sender = IOContext(SPARC_V8)
                handle = sender.register_format(TELEMETRY)
                t.send_many(
                    [
                        sender.announce(handle),
                        sender.encode(handle, {"unit": 9, "temperature": 9.5}),
                    ]
                )
                wait_until(lambda: len(received) == 1)
        assert received == [{"unit": 9, "temperature": 9.5}]

    def test_wire_ingress_rejects_garbage(self):
        channel = EventChannel()
        server = AsyncServer(channel_handler(channel))
        with serving(server) as (host, port):
            with connect(host, port) as t:
                t.send(b"not a pbio frame")
                wait_until(
                    lambda: channel.metrics.value("channel.frames_rejected") == 1
                )


# -- seeded chaos over async ---------------------------------------------------


class TestChaosOverAsync:
    def test_same_seeded_plans_sync_and_async(self):
        """The fault injector must draw identical per-message fault plans
        whether it wraps a blocking pipe or an async socket transport —
        same counters, byte-identical delivered stream."""
        plan = FaultPlan(drop=0.2, truncate=0.1, corrupt=0.1, duplicate=0.2, delay=0.2)
        seed = CHAOS_SEED + 99
        messages = [f"record-{i:04d}".encode() * 4 for i in range(200)]

        # Reference: the blocking in-memory pipe.
        pipe = InMemoryPipe()
        sync_chaos = FaultInjectingTransport(pipe.a, plan, seed=seed)
        for message in messages:
            sync_chaos.send(message)
        sync_chaos.flush()
        expected_counters = dict(sync_chaos.metrics.counters())
        expected_stream = []
        while pipe.b.pending():
            expected_stream.append(pipe.b.recv())

        async def scenario():
            client, srv = tcp_pair()
            inner = AsyncSocketTransport(srv)
            chaos = FaultInjectingTransport(inner, plan, seed=seed)
            for message in messages:
                chaos.send(message)
            chaos.flush()
            await chaos.drain()  # delegated through the wrapper
            assert chaos.write_queue_depth == 0
            inner.close()
            return dict(chaos.metrics.counters()), client

        got_counters, client = asyncio.run(scenario())
        assert got_counters == expected_counters
        peer = SocketTransport(client)
        peer.set_timeout(10.0)
        got_stream = [peer.recv() for _ in range(len(expected_stream))]
        assert got_stream == expected_stream
        peer.close()


# -- prompt shutdown of the blocking serve loops (satellite) -------------------


class TestPromptShutdown:
    def test_rpc_serve_exits_on_stop(self):
        from repro.net import loopback_pair

        rpc = RpcServer(SPARC_V8, CALC)
        rpc.register(b"calc", {"add": lambda req: {"total": req["a"] + req["b"]}})
        client_end, server_end = loopback_pair()
        thread = threading.Thread(
            target=rpc.serve, args=(server_end,), kwargs={"poll_s": 0.05}, daemon=True
        )
        thread.start()
        client = RpcClient(X86, CALC)
        assert client.invoke(client_end, b"calc", "add", {"a": 1.0, "b": 2.0})
        rpc.stop()
        thread.join(timeout=5)
        assert not thread.is_alive(), "serve loop ignored stop()"
        client_end.close()
        server_end.close()
        rpc.restart()
        assert not rpc.stopped

    def test_format_server_serve_exits_on_stop(self):
        from repro.net import loopback_pair

        fserver = FormatServer()
        client_end, server_end = loopback_pair()
        thread = threading.Thread(
            target=fserver.serve,
            args=(server_end,),
            kwargs={"poll_s": 0.05},
            daemon=True,
        )
        thread.start()
        assert thread.is_alive()
        fserver.stop()
        thread.join(timeout=5)
        assert not thread.is_alive(), "serve loop ignored stop()"
        client_end.close()
        server_end.close()


# -- graceful drain (tentpole: self-healing service plane) ---------------------


class TestGracefulDrain:
    def test_drain_and_stop_sends_goodbye_then_stops(self):
        server = AsyncServer(echo_handler())
        with serving(server) as (host, port):
            with connect(host, port) as t:
                t.send(b"warmup")
                assert t.recv() == b"warmup"
                wait_until(lambda: len(server._conn_transports) == 1)
                fut = asyncio.run_coroutine_threadsafe(
                    server.drain_and_stop(1.0), server._loop
                )
                fut.result(timeout=5)
                goodbye = t.recv()
                kind, _cid, _fid, _plen = enc.unpack_header(goodbye)
                assert kind == enc.MSG_PING
                nonce, _depth = enc.parse_ping(goodbye)
                assert nonce == enc.GOODBYE_NONCE
        assert server.metrics.value("aio.drained") == 1
        assert server.metrics.value("aio.drain_timeouts") == 0

    def test_drain_with_no_connections_just_stops(self):
        server = AsyncServer(echo_handler())
        with serving(server) as (host, port):
            wait_until(lambda: server._loop is not None)
            fut = asyncio.run_coroutine_threadsafe(
                server.drain_and_stop(1.0), server._loop
            )
            fut.result(timeout=5)
        assert server.metrics.value("aio.drained") == 1

    def test_overflow_policy_spills_and_promotes(self):
        async def scenario():
            reader, writer = tcp_pair()
            for sock in (reader, writer):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            t = AsyncSocketTransport(writer, max_write_queue=8192, overflow="drop_old")
            message = enc.pack_header(enc.MSG_DATA, 1, 1, 1024) + b"\0" * 1024
            # The peer is not reading yet: the kernel buffer jams, and the
            # overflow policy spills data frames instead of raising
            # WriteQueueFull the way overflow="block" would.
            for _ in range(64):
                t.send(message)
                await asyncio.sleep(0)  # let the writer task try the kernel
            assert t.metrics.value("aio.overflow_queued") > 0
            assert t._wover.dropped_old > 0  # drop_old evicted stale frames
            stop = threading.Event()

            def pump():
                reader.settimeout(0.2)
                while not stop.is_set():
                    try:
                        if not reader.recv(65536):
                            return
                    except socket.timeout:
                        continue
                    except OSError:
                        return

            thread = threading.Thread(target=pump, daemon=True)
            thread.start()
            try:
                # Once the peer drains the kernel buffer, spilled frames are
                # promoted back into the live queue and everything flushes.
                await asyncio.wait_for(t.drain(), timeout=10)
            finally:
                stop.set()
            assert t.metrics.value("aio.overflow_promoted") > 0
            assert t.write_queue_depth == 0
            t.close()
            thread.join(timeout=5)
            reader.close()

        asyncio.run(scenario())
