"""Fault-injection harness and graceful-degradation tests.

Every test is deterministic: all randomness comes from seeded numpy
generators.  ``PBIO_CHAOS_SEED`` (set by the CI chaos job, default 0)
shifts the seeds so the same suite explores different fault schedules
run to run while any single run stays exactly reproducible.
"""

import os

import numpy as np
import pytest

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import (
    IOContext,
    PbioConnection,
    PbioError,
    RpcClient,
    RpcFault,
    RpcInterface,
    RpcOperation,
    RpcServer,
    RpcTimeout,
)
from repro.net import (
    EchoServer,
    EventChannel,
    FaultInjectingTransport,
    FaultPlan,
    InMemoryPipe,
    PeerClosedError,
    ReconnectingTransport,
    Relay,
    RetryPolicy,
    TransportError,
    TransportTimeout,
    transport_token,
)

CHAOS_SEED = int(os.environ.get("PBIO_CHAOS_SEED", "0"))

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)

ADD_REQ = RecordSchema.from_pairs("add_req", [("a", "double"), ("b", "double")])
ADD_REP = RecordSchema.from_pairs("add_rep", [("total", "double")])
CALC = RpcInterface("Calculator", [RpcOperation("add", ADD_REQ, ADD_REP)])


def no_sleep(_s: float) -> None:
    pass


class TestFaultPlan:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(max_delay_messages=0)

    def test_activity_flag(self):
        assert not FaultPlan().active
        assert FaultPlan.lossy(0.1).active
        assert FaultPlan(disconnect=0.01).active


class TestFaultInjectingTransport:
    def test_zero_plan_is_pure_passthrough(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(pipe.a, FaultPlan(), seed=CHAOS_SEED)
        payloads = [bytes([i]) * (i + 1) for i in range(10)]
        for p in payloads:
            chaotic.send(p)
        assert [pipe.b.recv() for _ in payloads] == payloads
        # An inactive plan aliases the inner methods: zero bookkeeping.
        assert chaotic.send == pipe.a.send
        assert chaotic.recv == pipe.a.recv
        assert chaotic.metrics.value("messages") == 0
        assert all(
            chaotic.metrics.value(f"faults.{name}") == 0
            for name in ("dropped", "truncated", "corrupted", "duplicated", "delayed", "disconnects")
        )

    def test_drop_loses_messages(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(pipe.a, FaultPlan(drop=1.0), seed=CHAOS_SEED)
        for i in range(5):
            chaotic.send(b"x%d" % i)
        assert pipe.b.pending() == 0
        assert chaotic.metrics.value("faults.dropped") == 5

    def test_truncate_shortens_messages(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(pipe.a, FaultPlan(truncate=1.0), seed=CHAOS_SEED)
        original = bytes(range(64))
        chaotic.send(original)
        delivered = pipe.b.recv()
        assert len(delivered) < len(original)
        assert delivered == original[: len(delivered)]
        assert chaotic.metrics.value("faults.truncated") == 1

    def test_corrupt_flips_bytes_same_length(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(pipe.a, FaultPlan(corrupt=1.0), seed=CHAOS_SEED)
        original = bytes(range(64))
        chaotic.send(original)
        delivered = pipe.b.recv()
        assert len(delivered) == len(original) and delivered != original
        assert chaotic.metrics.value("faults.corrupted") == 1

    def test_duplicate_delivers_twice(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(pipe.a, FaultPlan(duplicate=1.0), seed=CHAOS_SEED)
        chaotic.send(b"once")
        assert pipe.b.pending() == 2
        assert pipe.b.recv() == pipe.b.recv() == b"once"

    def test_delay_holds_then_releases_in_virtual_time(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(
            pipe.a, FaultPlan(delay=1.0, max_delay_messages=1), seed=CHAOS_SEED
        )
        chaotic.send(b"m1")  # held, due at the next send
        assert pipe.b.pending() == 0
        chaotic.send(b"m2")  # releases m1, holds m2
        assert pipe.b.recv() == b"m1"
        chaotic.close()  # flush releases what is still held
        assert pipe.b.recv() == b"m2"
        assert chaotic.metrics.value("faults.delayed") == 2

    def test_disconnect_severs_both_directions(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(pipe.a, FaultPlan(disconnect=1.0), seed=CHAOS_SEED)
        with pytest.raises(TransportError):
            chaotic.send(b"doomed")
        assert chaotic.broken
        with pytest.raises(TransportError):
            chaotic.send(b"still doomed")
        with pytest.raises(PeerClosedError):
            pipe.b.recv()  # the peer observes a real hangup
        assert chaotic.metrics.value("faults.disconnects") == 1

    def test_same_seed_same_chaos(self):
        plan = FaultPlan(drop=0.2, truncate=0.1, corrupt=0.1, duplicate=0.2, delay=0.2)
        rng = np.random.default_rng(CHAOS_SEED)
        payloads = [rng.integers(0, 256, size=32, dtype=np.uint8).tobytes() for _ in range(50)]

        def run(seed):
            pipe = InMemoryPipe()
            chaotic = FaultInjectingTransport(pipe.a, plan, seed=seed)
            for p in payloads:
                chaotic.send(p)
            chaotic.close()
            return (
                [pipe.b.recv() for _ in range(pipe.b.pending())],
                chaotic.metrics.counters(),
            )

        stream_a, counters_a = run(CHAOS_SEED + 7)
        stream_b, counters_b = run(CHAOS_SEED + 7)
        stream_c, _ = run(CHAOS_SEED + 8)
        assert stream_a == stream_b and counters_a == counters_b
        assert stream_a != stream_c  # a different seed takes a different path


class TestCrashPlan:
    def test_crash_probability_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(crash=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(crash=2.0)
        assert FaultPlan(crash=0.5).active

    def test_crash_drops_held_frames_and_raises(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(
            pipe.a, FaultPlan(delay=1.0, max_delay_messages=10), seed=CHAOS_SEED
        )
        chaotic.send(b"held")  # parked in the delay buffer
        assert pipe.b.pending() == 0
        with pytest.raises(PeerClosedError):
            chaotic.crash()
        # The held frame died inside the process: a close() flush after
        # the crash must NOT resurrect it.
        chaotic.close()
        assert pipe.b.pending() == 0
        assert chaotic.metrics.value("faults.crashes") == 1
        # The peer sees a real hangup, not a silent stall.
        with pytest.raises(PeerClosedError):
            pipe.b.recv()

    def test_crash_breaks_transport_for_later_sends(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(pipe.a, FaultPlan(crash=1.0), seed=CHAOS_SEED)
        with pytest.raises(PeerClosedError):
            chaotic.send(b"never arrives")
        assert pipe.b.pending() == 0
        with pytest.raises(TransportError):
            chaotic.send(b"post mortem")

    def test_crash_draw_is_seeded_and_deterministic(self):
        def crashes_at(seed):
            pipe = InMemoryPipe()
            chaotic = FaultInjectingTransport(
                pipe.a, FaultPlan(crash=0.2), seed=seed
            )
            for i in range(200):
                try:
                    chaotic.send(b"x%d" % i)
                except PeerClosedError:
                    return i
            return None

        first = crashes_at(CHAOS_SEED + 3)
        assert first is not None
        assert crashes_at(CHAOS_SEED + 3) == first

    def test_crash_draw_does_not_shift_main_fault_vector(self):
        # The crash draw comes after the fixed six-fault vector, so a
        # schedule replayed with crash disabled keeps its exact shape.
        def delivered(plan, seed):
            pipe = InMemoryPipe()
            chaotic = FaultInjectingTransport(pipe.a, plan, seed=seed)
            for i in range(50):
                try:
                    chaotic.send(b"m%d" % i)
                except PeerClosedError:
                    break
            out = []
            while pipe.b.pending():
                out.append(pipe.b.recv())
            return out

        with_crash = delivered(FaultPlan(drop=0.2, crash=0.0), CHAOS_SEED + 11)
        without = delivered(FaultPlan(drop=0.2), CHAOS_SEED + 11)
        assert with_crash == without


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=6, base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05)
        first = list(policy.backoffs())
        assert first == list(policy.backoffs())
        assert len(first) == 5
        expected_caps = [0.01, 0.02, 0.04, 0.05, 0.05]
        for backoff, cap in zip(first, expected_caps):
            assert cap * 0.5 <= backoff <= cap

    def test_run_retries_until_success(self):
        calls = {"n": 0}
        sleeps = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransportError("flap")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_delay_s=0.01)
        assert policy.run(flaky, sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert sleeps == list(policy.backoffs())[:2]

    def test_run_exhausts_attempts_and_reraises(self):
        def always_down():
            raise TransportError("down")

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        with pytest.raises(TransportError, match="down"):
            policy.run(always_down, sleep=no_sleep)

    def test_deadline_budget_stops_retrying(self):
        clock = {"now": 0.0}

        def sleep(s):
            clock["now"] += s

        def always_down():
            clock["now"] += 0.3  # each attempt costs virtual time
            raise TransportError("down")

        policy = RetryPolicy(max_attempts=50, base_delay_s=0.2, deadline_s=1.0)
        with pytest.raises(TransportTimeout, match="deadline"):
            policy.run(always_down, sleep=sleep, clock=lambda: clock["now"])
        assert clock["now"] <= 1.0 + 0.3  # never oversleeps the budget

    def test_non_retryable_errors_propagate_immediately(self):
        def broken():
            raise ValueError("not a link problem")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).run(broken, sleep=no_sleep)


class _DialFactory:
    """dial() callback yielding fresh pipes; keeps every peer end."""

    def __init__(self, plan: FaultPlan | None = None, seed: int = 0):
        self.plan = plan
        self.seed = seed
        self.peers = []

    def __call__(self):
        pipe = InMemoryPipe()
        self.peers.append(pipe.b)
        if self.plan is None:
            return pipe.a
        return FaultInjectingTransport(
            pipe.a, self.plan, seed=self.seed + len(self.peers)
        )

    def drain(self):
        out = []
        for peer in self.peers:
            while peer.pending():
                out.append(peer.recv())
        return out


class TestReconnectingTransport:
    def test_redials_and_retries_after_peer_hangup(self):
        factory = _DialFactory()
        link = ReconnectingTransport(
            factory, policy=RetryPolicy(max_attempts=3, base_delay_s=0.0), sleep=no_sleep
        )
        link.send(b"before")
        factory.peers[0].close()  # peer hangs up
        link.send(b"after")  # PeerClosedError -> redial -> delivered
        assert len(factory.peers) == 2
        assert factory.peers[1].recv() == b"after"
        assert link.metrics.value("reconnects") == 1

    def test_announcements_replayed_after_reconnect(self):
        ctx = IOContext(SPARC_V8)
        handle = ctx.register_format(TELEMETRY)
        announcement = ctx.announce(handle)
        data = ctx.encode(handle, {"unit": 1, "temperature": 2.0})
        factory = _DialFactory()
        link = ReconnectingTransport(
            factory, policy=RetryPolicy(max_attempts=3, base_delay_s=0.0), sleep=no_sleep
        )
        link.send(announcement)
        factory.peers[0].close()
        link.send(data)
        # the new link saw the replayed announcement *before* the data
        assert factory.peers[1].recv() == bytes(announcement)
        assert factory.peers[1].recv() == bytes(data)
        assert link.metrics.value("announcements_replayed") == 1

    def test_dial_failures_counted_and_raised(self):
        def dial():
            raise OSError("network unreachable")

        with pytest.raises(TransportError, match="dial failed"):
            ReconnectingTransport(dial, policy=RetryPolicy(max_attempts=2, base_delay_s=0.0))

    def test_pbio_stream_survives_mid_stream_disconnects(self):
        """Acceptance: the meta-information protocol survives reconnects —
        every record sent over a disconnecting link decodes downstream."""
        factory = _DialFactory(
            plan=FaultPlan(disconnect=0.15), seed=CHAOS_SEED
        )
        link = ReconnectingTransport(
            factory,
            policy=RetryPolicy(max_attempts=6, base_delay_s=0.0),
            sleep=no_sleep,
        )
        conn = PbioConnection(IOContext(SPARC_V8), link)
        handle = conn.ctx.register_format(TELEMETRY)
        records = [{"unit": i, "temperature": float(i)} for i in range(40)]
        for record in records:
            conn.send(handle, record)
        receiver = IOContext(X86)
        receiver.expect(TELEMETRY)
        received = []
        for message in factory.drain():
            decoded = receiver.receive(message)
            if decoded is not None:
                received.append(decoded)
        assert received == records
        assert link.metrics.value("reconnects") > 0  # the chaos actually bit


class TestRelayGracefulDegradation:
    def _stream(self, n):
        sender = IOContext(SPARC_V8)
        handle = sender.register_format(TELEMETRY)
        messages = [sender.announce(handle)]
        messages += [
            sender.encode(handle, {"unit": i, "temperature": float(i)}) for i in range(n)
        ]
        return messages

    def test_faulty_downstream_never_starves_healthy_ones(self):
        """Acceptance: drop + corrupt + disconnect on one downstream; the
        two healthy downstreams still receive 100% of the records."""
        errors = []
        relay = Relay(quarantine_after=3, on_error=lambda d, exc: errors.append(exc))
        faulty_pipe = InMemoryPipe()
        faulty = FaultInjectingTransport(
            faulty_pipe.a,
            FaultPlan(drop=0.2, corrupt=0.2, disconnect=0.05),
            seed=CHAOS_SEED,
        )
        bad = relay.attach(faulty)
        healthy_pipes = [InMemoryPipe(), InMemoryPipe()]
        for pipe in healthy_pipes:
            relay.attach(pipe.a)
        n = 200
        for message in self._stream(n):
            relay.forward(message)
        for pipe in healthy_pipes:
            assert pipe.b.pending() == n + 1  # announcement + every record
            rx = PbioConnection(IOContext(X86), pipe.b)
            rx.ctx.expect(TELEMETRY)
            got = [rx.recv() for _ in range(n)]
            assert got == [{"unit": i, "temperature": float(i)} for i in range(n)]
        assert bad.quarantined
        assert bad.stats.detached == 1
        assert bad.stats.send_errors >= relay.quarantine_after
        assert errors  # the hook saw every failure
        assert bad not in relay.active_downstreams

    def test_success_resets_consecutive_error_count(self):
        class FlickeringTransport:
            """Fails every other send: never quarantined at threshold 2."""

            def __init__(self):
                self.n = 0
                self.delivered = []

            def send(self, data):
                self.n += 1
                if self.n % 2:
                    raise TransportError("flicker")
                self.delivered.append(bytes(data))

            def recv(self):
                raise TransportError("write-only")

            def close(self):
                pass

        relay = Relay(quarantine_after=2)
        flicker = FlickeringTransport()
        downstream = relay.attach(flicker)
        for message in self._stream(10):
            relay.forward(message)
        assert not downstream.quarantined
        assert downstream.stats.send_errors > 0
        assert len(flicker.delivered) > 0

    def test_reactivate_replays_announcements(self):
        relay = Relay(quarantine_after=1)
        pipe = InMemoryPipe()
        pipe.b.close()  # downstream dead on arrival
        downstream = relay.attach(pipe.a)
        messages = self._stream(2)
        relay.forward(messages[0])  # announcement: send fails, quarantines
        assert downstream.quarantined
        relay.forward(messages[1])  # skipped while quarantined
        fresh = InMemoryPipe()
        downstream.transport = fresh.a
        relay.reactivate(downstream)
        assert not downstream.quarantined
        relay.forward(messages[2])
        assert fresh.b.recv() == bytes(messages[0])  # replayed announcement
        assert fresh.b.recv() == bytes(messages[2])


class TestEventChannelErrorPolicies:
    def _publish(self, channel, n):
        sender = IOContext(SPARC_V8)
        handle = sender.register_format(TELEMETRY)
        publisher = channel.publisher(sender)
        for i in range(n):
            publisher.publish(handle, {"unit": i, "temperature": float(i)})

    def _subscriber(self, channel, policy, handler=None):
        received = []
        ctx = IOContext(X86)
        ctx.expect(TELEMETRY)
        sub = channel.subscribe(ctx, handler or received.append, on_error=policy)
        return sub, received

    def test_raise_policy_keeps_historical_behaviour(self):
        channel = EventChannel()
        def explode(_record):
            raise RuntimeError("bad handler")
        self._subscriber(channel, "raise", handler=explode)
        with pytest.raises(RuntimeError, match="bad handler"):
            self._publish(channel, 1)

    def test_suppress_policy_isolates_bad_handler(self):
        channel = EventChannel()
        def explode(_record):
            raise RuntimeError("bad handler")
        bad, _ = self._subscriber(channel, "suppress", handler=explode)
        good, received = self._subscriber(channel, "raise")
        self._publish(channel, 20)
        assert len(received) == 20  # the healthy subscriber saw everything
        assert bad.stats.handler_errors == 20
        assert channel.subscriber_count == 2  # suppressed, not removed

    def test_detach_policy_unsubscribes_offender(self):
        channel = EventChannel()
        def explode(_record):
            raise RuntimeError("bad handler")
        bad, _ = self._subscriber(channel, "detach", handler=explode)
        good, received = self._subscriber(channel, "raise")
        self._publish(channel, 20)
        assert len(received) == 20
        assert bad.stats.handler_errors == 1  # detached on first failure
        assert bad.stats.detached == 1
        assert channel.subscriber_count == 1

    def test_undecodable_stream_does_not_break_siblings(self):
        channel = EventChannel()
        bad, bad_received = self._subscriber(channel, "suppress")
        good, received = self._subscriber(channel, "suppress")
        sender = IOContext(SPARC_V8)
        handle = sender.register_format(TELEMETRY)
        publisher = channel.publisher(sender)
        publisher.publish(handle, {"unit": 0, "temperature": 0.0})
        # A damaged data message reaches every subscriber: each absorbs it.
        message = bytearray(sender.encode(handle, {"unit": 1, "temperature": 1.0}))
        channel._publish_message(bytes(message[:18]))  # truncated mid-payload
        publisher.publish(handle, {"unit": 2, "temperature": 2.0})
        assert [r["unit"] for r in received] == [0, 2]
        assert [r["unit"] for r in bad_received] == [0, 2]
        assert bad.stats.decode_errors == 1 and good.stats.decode_errors == 1
        assert channel.subscriber_count == 2

    def test_invalid_policy_rejected(self):
        channel = EventChannel()
        ctx = IOContext(X86)
        with pytest.raises(ValueError, match="on_error"):
            channel.subscribe(ctx, lambda r: None, on_error="explode")


class _FlakyLoop:
    """Synchronous client↔server transport that loses replies.

    ``serve_one`` runs inline (like the test loops in test_rpc.py); with
    probability ``loss_rate`` a recv observes the reply being "lost on
    the wire" — the inbox is cleared and a TransportError raised, which
    is exactly the situation client-side retransmission exists for.
    """

    def __init__(self, server, *, seed: int, loss_rate: float = 0.4):
        self.pipe = InMemoryPipe()
        self.server = server
        self.rng = np.random.default_rng(seed)
        self.loss_rate = loss_rate
        self.lost_replies = 0

    def set_timeout(self, timeout_s):
        pass

    def send(self, data):
        self.pipe.a.send(data)

    def recv(self):
        while self.pipe.b.pending() and not self.pipe.a.pending():
            self.server.serve_one(self.pipe.b)
        if self.pipe.a.pending() and float(self.rng.random()) < self.loss_rate:
            while self.pipe.a.pending():
                self.pipe.a.recv()
            self.lost_replies += 1
            raise TransportError("injected reply loss")
        return self.pipe.a.recv()

    def close(self):
        pass


class TestRpcRetryAndDedup:
    def _stack(self, servant=None, **loop_kwargs):
        executed = []

        def add(req):
            executed.append(req["a"])
            return {"total": req["a"] + req["b"]}

        server = RpcServer(SPARC_V8, CALC)
        server.register(b"calc", {"add": servant or add})
        client = RpcClient(X86, CALC)
        loop = _FlakyLoop(server, **loop_kwargs)
        return client, server, loop, executed

    def test_retransmission_executes_servant_exactly_once(self):
        """Acceptance: over a lossy transport, retried calls complete and
        the servant observes each request id exactly once."""
        # NB: the loss draw happens per recv (2-3 per attempt), so the
        # per-attempt failure probability is ~1-(1-loss_rate)^3; keep
        # max_attempts generous so exhaustion is vanishingly unlikely.
        client, server, loop, executed = self._stack(seed=CHAOS_SEED, loss_rate=0.25)
        policy = RetryPolicy(max_attempts=16, base_delay_s=0.0)
        for i in range(20):
            result = client.invoke(
                loop, b"calc", "add", {"a": float(i), "b": 1.0},
                retry=policy, sleep=no_sleep,
            )
            assert result == {"total": float(i) + 1.0}
        assert executed == [float(i) for i in range(20)]  # exactly once each
        assert loop.lost_replies > 0  # the chaos actually bit
        assert server.metrics.value("dedup_hits") == client.metrics.value("retries")

    def test_stale_duplicate_reply_is_absorbed(self):
        client, server, loop, executed = self._stack(seed=CHAOS_SEED, loss_rate=0.0)

        lose_next = {"armed": True}
        original_recv = loop.recv

        def recv_with_one_phantom_loss():
            # Simulate a reply that arrives *after* the client gave up:
            # raise once without clearing the inbox, so the retransmitted
            # call leaves a duplicate reply queued for the next call.
            while loop.pipe.b.pending() and not loop.pipe.a.pending():
                loop.server.serve_one(loop.pipe.b)
            if lose_next["armed"] and loop.pipe.a.pending():
                lose_next["armed"] = False
                raise TransportError("phantom loss")
            return loop.pipe.a.recv()

        loop.recv = recv_with_one_phantom_loss
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0)
        assert client.invoke(loop, b"calc", "add", {"a": 1.0, "b": 1.0},
                             retry=policy, sleep=no_sleep) == {"total": 2.0}
        loop.recv = original_recv
        assert client.invoke(loop, b"calc", "add", {"a": 2.0, "b": 1.0},
                             retry=policy, sleep=no_sleep) == {"total": 3.0}
        assert executed == [1.0, 2.0]
        assert client.metrics.value("stale_replies") > 0

    def test_faults_are_not_retried(self):
        client, server, loop, executed = self._stack(seed=CHAOS_SEED, loss_rate=0.0)
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        with pytest.raises(RpcFault, match="no object"):
            client.invoke(loop, b"ghost", "add", {"a": 1.0, "b": 1.0},
                          retry=policy, sleep=no_sleep)
        assert client.metrics.value("retries") == 0

    def test_broken_servant_returns_fault_not_dead_server(self):
        def broken(_req):
            raise ZeroDivisionError("servant bug")

        client, server, loop, _ = self._stack(servant=broken, seed=CHAOS_SEED, loss_rate=0.0)
        with pytest.raises(RpcFault, match="internal error"):
            client.invoke(loop, b"calc", "add", {"a": 1.0, "b": 1.0})
        assert server.metrics.value("servant_errors") == 1
        # the server is still alive for the next (well-formed) servant fault
        with pytest.raises(RpcFault, match="no object"):
            client.invoke(loop, b"ghost", "add", {"a": 1.0, "b": 1.0})

    def test_malformed_reply_header_is_protocol_error(self):
        """A frame that is not a call header (e.g. a stray record body
        after mid-reply frame loss) raises PbioError, not struct.error."""

        class Garbage:
            def set_timeout(self, timeout_s):
                pass

            def send(self, data):
                pass

            def recv(self):
                return b"\x00\x01"  # far too short for a call header

        client = RpcClient(X86, CALC)
        with pytest.raises(PbioError, match="malformed call header"):
            client.invoke(Garbage(), b"calc", "add", {"a": 1.0, "b": 1.0})

    def test_deadline_expired_raises_rpc_timeout(self):
        client, server, loop, executed = self._stack(seed=CHAOS_SEED, loss_rate=0.0)
        with pytest.raises(RpcTimeout, match="deadline"):
            client.invoke(loop, b"calc", "add", {"a": 1.0, "b": 1.0}, deadline_s=0.0)
        assert executed == []

    def test_deadline_bounds_retry_budget(self):
        class BlackHole:
            def set_timeout(self, timeout_s):
                pass

            def send(self, data):
                pass

            def recv(self):
                raise TransportError("link down")

            def close(self):
                pass

        clock = {"now": 0.0}

        def sleep(s):
            clock["now"] += s

        client = RpcClient(X86, CALC)
        policy = RetryPolicy(max_attempts=1000, base_delay_s=0.1, multiplier=1.0)
        with pytest.raises((RpcTimeout, TransportTimeout)):
            client.invoke(
                BlackHole(), b"calc", "add", {"a": 1.0, "b": 1.0},
                retry=policy, deadline_s=2.0,
                sleep=sleep, clock=lambda: clock["now"],
            )
        assert clock["now"] <= 2.1  # gave up close to the budget

    def test_announcements_keyed_by_token_not_id(self):
        """A brand-new transport must always be re-announced, even if it
        happens to reuse a dead transport's memory address."""
        client, server, loop, _ = self._stack(seed=CHAOS_SEED, loss_rate=0.0)
        client.invoke(loop, b"calc", "add", {"a": 1.0, "b": 1.0})
        loop2 = _FlakyLoop(server, seed=CHAOS_SEED, loss_rate=0.0)
        client.invoke(loop2, b"calc", "add", {"a": 2.0, "b": 1.0})
        assert len(client._announcer._sent) == 2  # one announcement per transport
        tokens = {transport_token(loop), transport_token(loop2)}
        assert len(tokens) == 2


class TestTransportToken:
    def test_stable_and_unique(self):
        a, b = InMemoryPipe().endpoints()
        assert transport_token(a) == transport_token(a)
        assert transport_token(a) != transport_token(b)

    def test_monotonic_across_generations(self):
        seen = set()
        for _ in range(50):
            t = InMemoryPipe().a  # old pipes are garbage, ids may recycle
            token = transport_token(t)
            assert token not in seen
            seen.add(token)


class TestEchoServerHardening:
    def test_handler_exception_fails_fast_and_surfaces(self):
        server = EchoServer(handler=lambda data: data[1_000_000])  # IndexError
        server.client.set_timeout(5.0)
        server.client.send(b"boom")
        with pytest.raises(TransportError):  # deliberate close, no hang
            server.client.recv()
        with pytest.raises(TransportError, match="echo handler failed"):
            server.close()
        assert isinstance(server.handler_error, IndexError)

    def test_healthy_close_raises_nothing(self):
        with EchoServer() as server:
            server.client.send(b"ping")
            assert server.client.recv() == b"ping"
