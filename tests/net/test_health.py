"""Tests for the self-healing service plane (:mod:`repro.net.health`).

Heartbeat wire records, the tick-driven :class:`HeartbeatMonitor`, probe
backoff schedules, all four bounded-queue overflow policies, the
circuit breaker, the relay's quarantine-recovery state machine, and
graceful drain on every server surface.  Everything runs in virtual
time (:class:`~repro.net.timing.VirtualClock`); the hypothesis property
test is seeded from ``PBIO_CHAOS_SEED`` like the rest of the chaos
suite (default 0).
"""

import os

import pytest
from hypothesis import given, seed, settings, strategies as st

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext
from repro.core import encoder as enc
from repro.core.errors import MessageError
from repro.net import (
    BoundedSendQueue,
    CircuitBreaker,
    FaultInjectingTransport,
    FaultPlan,
    HeartbeatMonitor,
    InMemoryPipe,
    PeerUnresponsive,
    ProbePolicy,
    Relay,
    TransportError,
    VirtualClock,
    WriteQueueFull,
    send_goodbye,
)
from repro.net.relay import ACTIVE, EVICTED, PROBING, QUARANTINED

CHAOS_SEED = int(os.environ.get("PBIO_CHAOS_SEED", "0"))

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)


def telemetry_stream(records):
    """Announcement + encoded records, as an upstream would frame them."""
    sender = IOContext(SPARC_V8)
    handle = sender.register_format(TELEMETRY)
    return [sender.announce(handle)] + [sender.encode(handle, r) for r in records]


def data_frame(cid: int, fid: int, payload: bytes) -> bytes:
    return enc.pack_header(enc.MSG_DATA, cid, fid, len(payload)) + payload


def drain_frames(pipe_end) -> list[bytes]:
    frames = []
    while pipe_end.pending():
        frames.append(pipe_end.recv())
    return frames


class FlakyLink:
    """A pipe end whose send path can be switched dead and alive."""

    def __init__(self, inner):
        self.inner = inner
        self.broken = False

    def send(self, data):
        if self.broken:
            raise TransportError("link down (test)")
        self.inner.send(data)

    def recv(self):
        return self.inner.recv()

    def poll_recv(self):
        return self.inner.poll_recv()

    def close(self):
        self.inner.close()


class ChokedLink:
    """A pipe end that signals a full write queue while ``full`` is set."""

    def __init__(self, inner):
        self.inner = inner
        self.full = False

    def send(self, data):
        if self.full:
            raise WriteQueueFull("write queue full (test)")
        self.inner.send(data)

    def recv(self):
        return self.inner.recv()

    def poll_recv(self):
        return self.inner.poll_recv()

    def close(self):
        self.inner.close()


# -- wire records --------------------------------------------------------------


class TestHeartbeatWire:
    def test_ping_pong_round_trip(self):
        ping = enc.encode_ping(7, queue_depth=42)
        assert len(ping) == enc.HEADER_SIZE + enc.HEARTBEAT_PAYLOAD_SIZE
        assert enc.unpack_header(ping)[0] == enc.MSG_PING
        assert enc.parse_ping(ping) == (7, 42)
        pong = enc.encode_pong(7, queue_depth=3)
        assert enc.unpack_header(pong)[0] == enc.MSG_PONG
        assert enc.parse_pong(pong) == (7, 3)

    def test_strict_size_enforced(self):
        ping = enc.encode_ping(1)
        with pytest.raises(MessageError):
            enc.parse_ping(ping + b"\x00")  # oversize
        with pytest.raises(MessageError):
            enc.parse_ping(ping[:-1])  # truncated
        with pytest.raises(MessageError):
            enc.parse_pong(ping)  # wrong type

    def test_goodbye_nonce_is_reserved(self):
        assert enc.GOODBYE_NONCE == 0
        nonce, _depth = enc.parse_ping(enc.encode_ping(enc.GOODBYE_NONCE))
        assert nonce == enc.GOODBYE_NONCE


# -- heartbeat monitor ---------------------------------------------------------


class TestHeartbeatMonitor:
    def make(self, **kwargs):
        clock = VirtualClock()
        pipe = InMemoryPipe()
        kwargs.setdefault("interval_s", 1.0)
        kwargs.setdefault("miss_threshold", 3)
        monitor = HeartbeatMonitor(pipe.a, clock=clock, **kwargs)
        return monitor, pipe, clock

    def test_answered_pings_stay_responsive(self):
        monitor, pipe, clock = self.make()
        for _ in range(10):
            assert monitor.tick()
            ping = pipe.b.recv()
            nonce, _depth = enc.parse_ping(ping)
            pipe.b.send(enc.encode_pong(nonce, queue_depth=5))
            clock.advance(1.0)
        assert monitor.responsive
        assert monitor.misses == 0
        assert monitor.pongs_received >= 9  # the last pong is still in flight
        assert monitor.peer_queue_depth == 5

    def test_silent_peer_raises_at_threshold(self):
        monitor, pipe, clock = self.make()
        transitions = []
        monitor._on_state_change = transitions.append
        monitor.tick()  # ping 1, nothing back
        clock.advance(1.0)
        monitor.tick()  # miss 1, ping 2
        clock.advance(1.0)
        monitor.tick()  # miss 2, ping 3
        clock.advance(1.0)
        with pytest.raises(PeerUnresponsive):
            monitor.tick()  # miss 3 == threshold
        assert not monitor.responsive
        assert monitor.misses == 3
        assert transitions == [False]

    def test_any_frame_is_proof_of_life(self):
        monitor, pipe, clock = self.make()
        monitor.tick()
        pipe.b.recv()  # the ping; peer streams data instead of answering
        for tick in range(1, 10):
            pipe.b.send(data_frame(1, 1, b"busy"))
            clock.advance(1.0)
            monitor.tick()
        assert monitor.responsive and monitor.misses == 0
        assert len(monitor.inbox) == 9  # data frames kept for the caller

    def test_recovery_resets_misses_and_notifies(self):
        monitor, pipe, clock = self.make(miss_threshold=2)
        transitions = []
        monitor._on_state_change = transitions.append
        for _ in range(3):
            with pytest.raises(PeerUnresponsive) if monitor.misses >= 1 else no_raise():
                monitor.tick()
            clock.advance(1.0)
        assert not monitor.responsive
        pipe.b.send(enc.encode_pong(1))
        monitor.tick()
        assert monitor.responsive and monitor.misses == 0
        assert transitions == [False, True]

    def test_inbound_ping_answered_automatically(self):
        monitor, pipe, clock = self.make()
        pipe.b.send(enc.encode_ping(99, queue_depth=7))
        monitor.tick()
        frames = drain_frames(pipe.b)
        pongs = [f for f in frames if enc.unpack_header(f)[0] == enc.MSG_PONG]
        assert len(pongs) == 1
        assert enc.parse_pong(pongs[0])[0] == 99
        assert monitor.peer_queue_depth == 7

    def test_goodbye_sets_flag_without_pong(self):
        monitor, pipe, clock = self.make()
        pipe.b.send(enc.encode_ping(enc.GOODBYE_NONCE))
        monitor.tick()
        assert monitor.peer_goodbye
        frames = drain_frames(pipe.b)
        assert all(enc.unpack_header(f)[0] != enc.MSG_PONG for f in frames)

    def test_goodbye_helper_best_effort(self):
        pipe = InMemoryPipe()
        assert send_goodbye(pipe.a)
        nonce, _depth = enc.parse_ping(pipe.b.recv())
        assert nonce == enc.GOODBYE_NONCE
        pipe.b.close()
        pipe.a.close()
        assert not send_goodbye(pipe.a)  # dead link: False, never raises

    def test_validation(self):
        pipe = InMemoryPipe()
        with pytest.raises(ValueError):
            HeartbeatMonitor(pipe.a, interval_s=0.0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(pipe.a, miss_threshold=0)


def no_raise():
    import contextlib

    return contextlib.nullcontext()


# -- probe policy --------------------------------------------------------------


class TestProbePolicy:
    def test_backoff_schedule(self):
        policy = ProbePolicy(base_delay_s=0.5, multiplier=2.0, max_delay_s=4.0)
        assert [policy.delay(n) for n in range(5)] == [0.5, 1.0, 2.0, 4.0, 4.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbePolicy(base_delay_s=0.0)
        with pytest.raises(ValueError):
            ProbePolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            ProbePolicy(base_delay_s=2.0, max_delay_s=1.0)
        with pytest.raises(ValueError):
            ProbePolicy(eviction_deadline_s=0.0)


# -- bounded send queue --------------------------------------------------------


class TestBoundedSendQueue:
    def frames(self, n, cid=1, fid=1, size=16):
        return [data_frame(cid, fid, bytes([i]) * size) for i in range(n)]

    def test_block_rejects_over_budget(self):
        a, b = self.frames(2)
        queue = BoundedSendQueue(len(a), "block")
        assert queue.push(a)
        assert not queue.push(b)  # over budget: caller applies backpressure
        assert queue.dropped_new == 0  # block never *counts* drops: it rejects
        assert len(queue) == 1 and queue.pop() == a

    def test_drop_new_keeps_queue(self):
        a, b = self.frames(2)
        queue = BoundedSendQueue(len(a), "drop_new")
        assert queue.push(a)
        assert not queue.push(b)
        assert queue.dropped_new == 1
        assert queue.pop() == a and queue.pop() is None

    def test_drop_old_keeps_newest(self):
        a, b, c = self.frames(3)
        queue = BoundedSendQueue(2 * len(a), "drop_old")
        assert queue.push(a) and queue.push(b)
        assert queue.push(c)  # evicts a
        assert queue.dropped_old == 1
        assert [queue.pop(), queue.pop()] == [b, c]

    def test_coalesce_keeps_newest_per_stream(self):
        old = data_frame(1, 7, b"old-value-several-bytes")
        new = data_frame(1, 7, b"new-value-several-byteZ")
        other = data_frame(2, 7, b"other-stream-untouched!")
        queue = BoundedSendQueue(len(old) + len(other), "coalesce")
        assert queue.push(old) and queue.push(other)
        assert queue.push(new)  # replaces `old` in place: same (cid, fid)
        assert queue.coalesced == 1 and queue.dropped_old == 0
        assert [queue.pop(), queue.pop()] == [new, other]

    def test_coalesce_falls_back_to_drop_old(self):
        a = data_frame(1, 1, b"a" * 16)
        b = data_frame(2, 2, b"b" * 16)
        c = data_frame(3, 3, b"c" * 16)
        queue = BoundedSendQueue(2 * len(a), "coalesce")
        assert queue.push(a) and queue.push(b)
        assert queue.push(c)  # no same-stream frame: evicts oldest instead
        assert queue.coalesced == 0 and queue.dropped_old == 1
        assert [queue.pop(), queue.pop()] == [b, c]

    def test_control_frames_never_dropped(self):
        announcement = enc.pack_header(enc.MSG_FORMAT, 1, 1, 4) + b"meta"
        queue = BoundedSendQueue(70, "drop_old")
        big = data_frame(1, 1, b"x" * 30)
        assert queue.push(announcement)
        assert queue.push(big)
        newer = data_frame(1, 1, b"y" * 30)
        assert queue.push(newer)  # evicts `big`, not the announcement
        assert queue.pop() == announcement
        assert queue.pop() == newer
        # and control frames are admitted even over budget
        full = BoundedSendQueue(8, "drop_new")
        assert full.push(announcement)
        assert full.queued_bytes > full.max_bytes

    def test_flush_stops_at_first_failure(self):
        pipe = InMemoryPipe()
        link = FlakyLink(pipe.a)
        queue = BoundedSendQueue(1 << 16, "drop_new")
        frames = self.frames(3)
        for f in frames:
            queue.push(f)
        link.broken = True
        with pytest.raises(TransportError):
            queue.flush(link)
        assert len(queue) == 3  # nothing lost
        link.broken = False
        assert queue.flush(link) == 3
        assert drain_frames(pipe.b) == frames  # order preserved

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedSendQueue(0, "block")
        with pytest.raises(ValueError):
            BoundedSendQueue(100, "bogus")


# -- circuit breaker -----------------------------------------------------------


class TestCircuitBreaker:
    def test_lifecycle(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(5.0, clock=clock)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # one trial call
        breaker.record_success()
        assert breaker.state == "closed"

    def test_holdoff_doubles_and_caps(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(1.0, multiplier=2.0, max_holdoff_s=4.0, clock=clock)
        for expected in (1.0, 2.0, 4.0, 4.0):  # doubling, then the cap
            breaker.record_failure()
            clock.advance(expected - 0.01)
            assert not breaker.allow()
            clock.advance(0.01)
            assert breaker.allow()
        breaker.record_success()
        breaker.record_failure()
        clock.advance(1.0)  # success reset the consecutive-open count
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(1.0, multiplier=0.9)


# -- relay self-healing --------------------------------------------------------


def healing_relay(clock, **kwargs):
    kwargs.setdefault(
        "probe_policy",
        ProbePolicy(base_delay_s=1.0, multiplier=2.0, max_delay_s=4.0, eviction_deadline_s=20.0),
    )
    return Relay(quarantine_after=1, clock=clock, **kwargs)


class TestRelayHealing:
    def test_pong_reactivates_with_announcement_replay(self):
        clock = VirtualClock()
        relay = healing_relay(clock)
        pipe = InMemoryPipe()
        link = FlakyLink(pipe.a)
        down = relay.attach(link)
        announcement, lost, after = telemetry_stream(
            [{"unit": 1, "temperature": 1.0}, {"unit": 2, "temperature": 2.0}]
        )
        relay.forward(announcement)
        link.broken = True
        relay.forward(lost)  # send fails: quarantined at threshold 1
        assert down.state == QUARANTINED
        link.broken = False
        clock.advance(1.0)
        relay.heal()  # probe goes out
        assert down.state == PROBING
        assert down.stats.probes_sent == 1
        pings = [f for f in drain_frames(pipe.b) if enc.unpack_header(f)[0] == enc.MSG_PING]
        assert len(pings) == 1
        pipe.b.send(enc.encode_pong(enc.parse_ping(pings[0])[0]))
        relay.heal()
        assert down.state == ACTIVE
        assert down.stats.reactivated == 1
        assert relay.metrics.value("relay.reactivated") == 1
        relay.forward(after)
        # The reactivated peer missed nothing it needs: replayed
        # announcement first, then the fresh record — decodable.
        receiver = IOContext(X86)
        receiver.expect(TELEMETRY)
        decoded = [receiver.receive(f) for f in drain_frames(pipe.b)]
        assert {"unit": 2, "temperature": 2.0} in decoded

    def test_probe_backoff_schedule(self):
        clock = VirtualClock()
        relay = healing_relay(clock)
        pipe = InMemoryPipe()
        link = FlakyLink(pipe.a)
        down = relay.attach(link)
        announcement, record = telemetry_stream([{"unit": 1, "temperature": 1.0}])
        relay.forward(announcement)
        link.broken = True
        relay.forward(record)
        link.broken = False
        probe_times = []
        while down.state != EVICTED:
            before = down.stats.probes_sent
            relay.heal()
            if down.stats.probes_sent > before:
                probe_times.append(clock.now())
            clock.advance(0.5)
        # quarantined at t=0: probes at 1, then +2, +4, +4 (capped)…
        assert probe_times[:4] == [1.0, 3.0, 7.0, 11.0]
        assert clock.now() >= 20.0  # evicted no earlier than the deadline

    def test_silent_peer_evicted_at_deadline(self):
        clock = VirtualClock()
        relay = healing_relay(clock)
        pipe = InMemoryPipe()
        link = FlakyLink(pipe.a)
        down = relay.attach(link)
        announcement, record = telemetry_stream([{"unit": 1, "temperature": 1.0}])
        relay.forward(announcement)
        link.broken = True
        relay.forward(record)
        for _ in range(50):
            clock.advance(0.5)
            relay.heal()
        assert down.state == EVICTED
        assert down.stats.evicted == 1
        assert relay.metrics.value("relay.evicted") == 1
        assert down not in relay.active_downstreams
        relay.forward(record)  # eviction is final: nothing reaches the pipe
        assert not [
            f for f in drain_frames(pipe.b) if enc.unpack_header(f)[0] == enc.MSG_DATA
        ]

    def test_garbage_on_backchannel_is_not_proof_of_life(self):
        clock = VirtualClock()
        relay = healing_relay(clock)
        pipe = InMemoryPipe()
        link = FlakyLink(pipe.a)
        down = relay.attach(link)
        announcement, record = telemetry_stream([{"unit": 1, "temperature": 1.0}])
        relay.forward(announcement)
        link.broken = True
        relay.forward(record)
        link.broken = False
        clock.advance(1.0)
        relay.heal()
        pipe.b.send(b"not a pong")  # the peer babbles but can't receive
        relay.heal()
        assert down.state == PROBING

    def test_without_policy_recovery_stays_manual(self):
        clock = VirtualClock()
        relay = Relay(quarantine_after=1, clock=clock, probe_policy=None)
        pipe = InMemoryPipe()
        link = FlakyLink(pipe.a)
        down = relay.attach(link)
        announcement, record = telemetry_stream([{"unit": 1, "temperature": 1.0}])
        relay.forward(announcement)
        link.broken = True
        relay.forward(record)
        assert down.quarantined
        link.broken = False
        for _ in range(10):
            clock.advance(10.0)
            relay.heal()
        assert down.quarantined  # heal never probes without a policy
        relay.reactivate(down)  # the operator override still works
        assert down.state == ACTIVE


class TestRelayOverflow:
    def setup_choked(self, policy, max_queue_bytes=1 << 20):
        clock = VirtualClock()
        relay = Relay(
            quarantine_after=2,
            overflow=policy,
            max_queue_bytes=max_queue_bytes,
            clock=clock,
        )
        pipe = InMemoryPipe()
        link = ChokedLink(pipe.a)
        down = relay.attach(link)
        return relay, pipe, link, down

    def test_writequeuefull_spills_instead_of_quarantining(self):
        relay, pipe, link, down = self.setup_choked("drop_new")
        frames = telemetry_stream(
            [{"unit": i, "temperature": float(i)} for i in range(5)]
        )
        relay.forward(frames[0])
        link.full = True
        for frame in frames[1:]:
            relay.forward(frame)
        assert down.state == ACTIVE  # a slow peer is not a broken link
        assert down.stats.overflow_queued == 5
        link.full = False
        relay.heal()
        assert down.stats.overflow_flushed == 5
        receiver = IOContext(X86)
        receiver.expect(TELEMETRY)
        decoded = [receiver.receive(f) for f in drain_frames(pipe.b)]
        records = [d for d in decoded if d is not None]
        assert records == [{"unit": i, "temperature": float(i)} for i in range(5)]

    def test_coalesce_keeps_newest_record_per_stream(self):
        frames = telemetry_stream(
            [{"unit": i, "temperature": float(i)} for i in range(6)]
        )
        record_size = len(frames[1])
        # Budget for one queued record: every newer same-stream record
        # must *replace* it, so the peer sees exactly the newest.
        relay, pipe, link, down = self.setup_choked(
            "coalesce", max_queue_bytes=record_size
        )
        relay.forward(frames[0])
        link.full = True
        for frame in frames[1:]:
            relay.forward(frame)
        queue = down.send_queue
        assert len(queue) == 1
        assert queue.coalesced == 5  # each newer record replaced the queued one
        link.full = False
        relay.heal()
        receiver = IOContext(X86)
        receiver.expect(TELEMETRY)
        decoded = [receiver.receive(f) for f in drain_frames(pipe.b)]
        records = [d for d in decoded if d is not None]
        assert records == [{"unit": 5, "temperature": 5.0}]  # newest only

    def test_drop_old_prefers_fresh_records(self):
        frames = telemetry_stream(
            [{"unit": i, "temperature": float(i)} for i in range(6)]
        )
        record_size = len(frames[1])
        relay, pipe, link, down = self.setup_choked(
            "drop_old", max_queue_bytes=2 * record_size
        )
        relay.forward(frames[0])
        link.full = True
        for frame in frames[1:]:
            relay.forward(frame)
        link.full = False
        relay.heal()
        receiver = IOContext(X86)
        receiver.expect(TELEMETRY)
        decoded = [receiver.receive(f) for f in drain_frames(pipe.b)]
        records = [d for d in decoded if d is not None]
        assert records == [
            {"unit": 4, "temperature": 4.0},
            {"unit": 5, "temperature": 5.0},
        ]
        assert down.send_queue.dropped_old == 4

    def test_announcements_survive_any_overflow(self):
        # An announcement must reach the peer even through a choked queue
        # sized below the announcement itself: format state is forever.
        frames = telemetry_stream([{"unit": 1, "temperature": 1.0}])
        relay, pipe, link, down = self.setup_choked("drop_new", max_queue_bytes=8)
        link.full = True
        relay.forward(frames[0])  # announcement: admitted over budget
        relay.forward(frames[1])  # data: rejected by the tiny budget
        assert down.stats.overflow_dropped == 1
        link.full = False
        relay.heal()
        received = drain_frames(pipe.b)
        assert [enc.unpack_header(f)[0] for f in received] == [enc.MSG_FORMAT]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Relay(overflow="bogus")


class TestRelayDrain:
    def test_drain_flushes_and_says_goodbye(self):
        relay, pipe, link, down = TestRelayOverflow().setup_choked("drop_new")
        frames = telemetry_stream([{"unit": 1, "temperature": 1.0}])
        relay.forward(frames[0])
        link.full = True
        relay.forward(frames[1])  # spilled
        link.full = False
        assert relay.drain_and_stop(deadline_s=5.0)
        relay.forward(frames[1])  # after stop: dropped
        assert relay.metrics.value("relay.dropped_after_stop") == 1
        received = drain_frames(pipe.b)
        kinds = [enc.unpack_header(f)[0] for f in received]
        assert kinds == [enc.MSG_FORMAT, enc.MSG_DATA, enc.MSG_PING]
        nonce, _depth = enc.parse_ping(received[-1])
        assert nonce == enc.GOODBYE_NONCE
        assert down.stats.goodbyes_sent == 1

    def test_drain_reports_stuck_queues(self):
        relay, pipe, link, down = TestRelayOverflow().setup_choked("drop_new")
        frames = telemetry_stream([{"unit": 1, "temperature": 1.0}])
        relay.forward(frames[0])
        link.full = True
        relay.forward(frames[1])
        assert not relay.drain_and_stop(deadline_s=1.0)  # peer never drained


# -- heartbeat-aware fault plans ----------------------------------------------


class TestClassifiedFaultPlans:
    def test_mute_heartbeats_swallows_pings_not_data(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(
            pipe.a, FaultPlan.mute_heartbeats(), seed=CHAOS_SEED
        )
        record = data_frame(1, 1, b"payload")
        chaotic.send(enc.encode_ping(1))
        chaotic.send(record)
        chaotic.send(enc.encode_pong(1))
        assert drain_frames(pipe.b) == [record]
        assert chaotic.metrics.value("faults.heartbeats_dropped") == 2

    def test_mute_payload_delivers_heartbeats_only(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(
            pipe.a, FaultPlan.mute_payload(), seed=CHAOS_SEED
        )
        ping = enc.encode_ping(1)
        chaotic.send(data_frame(1, 1, b"gone"))
        chaotic.send(ping)
        assert drain_frames(pipe.b) == [ping]
        assert chaotic.metrics.value("faults.payload_dropped") == 1

    def test_classified_plans_draw_nothing_when_disabled(self):
        # The 6-vector decision stream must be bit-stable for plans that
        # predate the classified drops — replayability of old schedules.
        def stream(plan):
            pipe = InMemoryPipe()
            chaotic = FaultInjectingTransport(pipe.a, plan, seed=CHAOS_SEED + 3)
            for i in range(64):
                try:
                    chaotic.send(data_frame(1, 1, bytes([i]) * 8))
                except TransportError:
                    break
            return drain_frames(pipe.b)

        assert stream(FaultPlan(drop=0.3, delay=0.2)) == stream(
            FaultPlan(drop=0.3, delay=0.2, drop_heartbeats=0.0, drop_payload=0.0)
        )

    def test_monitor_detects_muted_heartbeats_through_wrapper(self):
        # A link that eats pings looks dead to the monitor even though
        # data still flows the other way — exactly what quarantine wants.
        clock = VirtualClock()
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(
            pipe.a, FaultPlan.mute_heartbeats(), seed=CHAOS_SEED
        )
        monitor = HeartbeatMonitor(
            chaotic, interval_s=1.0, miss_threshold=2, clock=clock
        )
        with pytest.raises(PeerUnresponsive):
            for _ in range(4):
                monitor.tick()
                clock.advance(1.0)
        assert pipe.b.pending() == 0  # no ping ever reached the peer

    def test_poll_recv_forwards_through_wrapper(self):
        pipe = InMemoryPipe()
        chaotic = FaultInjectingTransport(pipe.a, FaultPlan.lossy(0.5), seed=CHAOS_SEED)
        pipe.b.send(b"inbound")
        assert chaotic.poll_recv() == b"inbound"
        assert chaotic.poll_recv() is None
        inert = FaultInjectingTransport(pipe.a, FaultPlan(), seed=CHAOS_SEED)
        pipe.b.send(b"again")
        assert inert.poll_recv() == b"again"  # zero-plan alias path

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_heartbeats=1.5)
        with pytest.raises(ValueError):
            FaultPlan(drop_payload=-0.1)
        assert FaultPlan(drop_heartbeats=0.1).active


# -- the healing property ------------------------------------------------------


@seed(CHAOS_SEED)
@settings(max_examples=60, deadline=None)
@given(
    answer_after=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    step=st.floats(min_value=0.25, max_value=2.0),
)
def test_quarantine_always_resolves(answer_after, step):
    """A quarantined downstream either reactivates (with zero lost
    announcements — the replayed stream decodes) or is evicted promptly
    at the deadline.  It is never left probing forever."""
    clock = VirtualClock()
    policy = ProbePolicy(
        base_delay_s=0.5, multiplier=2.0, max_delay_s=4.0, eviction_deadline_s=10.0
    )
    relay = Relay(quarantine_after=1, probe_policy=policy, clock=clock)
    pipe = InMemoryPipe()
    link = FlakyLink(pipe.a)
    down = relay.attach(link)
    announcement, lost, fresh = telemetry_stream(
        [{"unit": 1, "temperature": 1.0}, {"unit": 2, "temperature": 2.0}]
    )
    relay.forward(announcement)
    link.broken = True
    relay.forward(lost)
    assert down.state == QUARANTINED
    quarantined_at = clock.now()
    link.broken = False
    drain_frames(pipe.b)  # discard the pre-quarantine traffic

    pings_seen = 0
    answered = False
    resolved_at = None
    delivered = []  # non-heartbeat frames the peer received, in order
    # Safety bound: well past the deadline plus one max backoff.
    while clock.now() < quarantined_at + policy.eviction_deadline_s + policy.max_delay_s + 2 * step:
        clock.advance(step)
        relay.heal()
        for frame in drain_frames(pipe.b):
            if enc.unpack_header(frame)[0] != enc.MSG_PING:
                delivered.append(frame)
                continue
            pings_seen += 1
            if answer_after is not None and pings_seen >= answer_after and not answered:
                pipe.b.send(enc.encode_pong(enc.parse_ping(frame)[0]))
                answered = True
        if down.state in (ACTIVE, EVICTED):
            resolved_at = clock.now()
            break

    assert down.state in (ACTIVE, EVICTED), "stuck probing"
    assert resolved_at is not None
    if down.state == EVICTED:
        # Evicted no earlier than the deadline, and within one heal step
        # plus the step that crossed it — never lingering.
        assert resolved_at - quarantined_at >= policy.eviction_deadline_s
        assert resolved_at - quarantined_at <= policy.eviction_deadline_s + 2 * step
    else:
        # Reactivated: the replay means a fresh record still decodes.
        relay.forward(fresh)
        delivered += [
            f
            for f in drain_frames(pipe.b)
            if enc.unpack_header(f)[0] not in (enc.MSG_PING, enc.MSG_PONG)
        ]
        receiver = IOContext(X86)
        receiver.expect(TELEMETRY)
        decoded = [receiver.receive(f) for f in delivered]
        assert {"unit": 2, "temperature": 2.0} in decoded
