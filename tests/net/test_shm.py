"""Tests for the shared-memory ring transport.

The ring pair is the same-host fast path: length-prefixed frames in a
mapped SPSC ring, doorbell FIFOs for the park/wake discipline, and a
nonce handshake proving the attacher mapped the *right* files.  The
suite covers the transport contract (framing, wrap, bursts, timeouts,
close semantics), cross-process delivery over ``fork``, the
``auto_connect`` upgrade-and-fallback negotiation, and substitution into
the higher planes (chaos wrapper, relay fan-out, event channel ingest).
"""

import multiprocessing as mp
import os
import threading

import pytest

from repro.abi import SPARC_V8, X86, RecordSchema
from repro.core import IOContext, PbioConnection
from repro.net import (
    EventChannel,
    FaultInjectingTransport,
    FaultPlan,
    PeerClosedError,
    Relay,
    ShmRingTransport,
    TransportError,
    TransportTimeout,
    attach_endpoint,
    auto_connect,
    create_endpoint,
    loopback_pair,
    shm_pair,
)

CHAOS_SEED = int(os.environ.get("PBIO_CHAOS_SEED", "0"))

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)


def closing_pair(**kw):
    a, b = shm_pair(**kw)
    return a, b


class TestFraming:
    def test_round_trip(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        try:
            a.send(b"ping")
            assert b.recv() == b"ping"
            b.send(b"pong")
            assert a.recv() == b"pong"
        finally:
            a.close()
            b.close()

    def test_empty_frame(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        try:
            a.send(b"")
            assert b.recv() == b""
        finally:
            a.close()
            b.close()

    def test_send_segments_joins_buffers(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        try:
            a.send_segments([b"he", bytearray(b"l"), memoryview(b"lo")])
            assert b.recv() == b"hello"
        finally:
            a.close()
            b.close()

    def test_fifo_order_and_recv_many(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        try:
            a.send_many([bytes([i]) * 8 for i in range(5)])
            frames = b.recv_many()
            assert frames == [bytes([i]) * 8 for i in range(5)]
        finally:
            a.close()
            b.close()

    def test_wrap_around(self, tmp_path):
        # A 4 KiB ring carrying 1 KiB frames wraps every few sends; the
        # payload pattern proves split write/read reassembly is exact.
        a, b = shm_pair(capacity=4096, directory=str(tmp_path))
        try:
            for i in range(64):
                payload = bytes([i % 251]) * (1000 + i)
                a.send(payload)
                assert b.recv() == payload
        finally:
            a.close()
            b.close()

    def test_burst_larger_than_ring(self, tmp_path):
        # send_many publishes runs and waits for ring space; a reader
        # thread drains, so a burst bigger than the ring still lands.
        a, b = shm_pair(capacity=4096, directory=str(tmp_path))
        frames = [bytes([i % 256]) * 512 for i in range(64)]  # 32 KiB total
        got = []

        def reader():
            for _ in range(len(frames)):
                got.append(b.recv())

        t = threading.Thread(target=reader)
        t.start()
        try:
            a.send_many(frames)
            t.join(timeout=10)
            assert not t.is_alive()
            assert got == frames
        finally:
            a.close()
            b.close()

    def test_poll_recv(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        try:
            assert b.poll_recv() is None
            a.send(b"now")
            assert b.poll_recv() == b"now"
            assert b.poll_recv() is None
        finally:
            a.close()
            b.close()

    def test_frame_too_large_for_ring(self, tmp_path):
        a, b = shm_pair(capacity=4096, directory=str(tmp_path))
        try:
            with pytest.raises(TransportError):
                a.send(b"x" * 8192)
        finally:
            a.close()
            b.close()


class TestLifecycle:
    def test_recv_timeout(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        try:
            b.set_timeout(0.05)
            with pytest.raises(TransportTimeout):
                b.recv()
        finally:
            a.close()
            b.close()

    def test_close_drains_then_raises(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        a.send(b"last words")
        a.close()
        try:
            # In-flight frames survive the close; after the drain the
            # reader gets a crisp peer-closed error, not a hang.
            assert b.recv() == b"last words"
            with pytest.raises(PeerClosedError):
                b.recv()
            with pytest.raises(PeerClosedError):
                b.send(b"into the void")
        finally:
            b.close()

    def test_send_after_own_close(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        b.close()
        a.close()
        with pytest.raises(TransportError):
            a.send(b"x")

    def test_write_queue_depth_and_drain(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        try:
            a.send(b"one")
            a.send(b"two")
            assert a.write_queue_depth == 2
            assert b.recv() == b"one"
            assert b.recv() == b"two"
            a.drain()  # peer already consumed: returns immediately
            assert a.write_queue_depth == 0
        finally:
            a.close()
            b.close()

    def test_drain_raises_when_peer_closes(self, tmp_path):
        a, b = shm_pair(capacity=4096, directory=str(tmp_path))
        a.send(b"x" * 1024)
        b.close()
        try:
            with pytest.raises(PeerClosedError):
                a.drain()
        finally:
            a.close()

    def test_no_files_left_behind(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        # shm_pair unlinks eagerly: nothing on disk even while open.
        assert os.listdir(tmp_path) == []
        a.close()
        b.close()
        assert os.listdir(tmp_path) == []

    def test_endpoint_close_unlinks(self, tmp_path):
        server, offer = create_endpoint(directory=str(tmp_path))
        client = attach_endpoint(offer)
        assert len(os.listdir(tmp_path)) == 6  # 2 rings + 4 bell fifos
        client.send(b"hi")
        assert server.recv() == b"hi"
        client.close()
        server.close()  # owner: unlinks every file
        assert os.listdir(tmp_path) == []


class TestHandshake:
    def test_malformed_offer(self):
        with pytest.raises(TransportError):
            attach_endpoint({"s2c": "/nope"})  # missing keys

    def test_missing_files(self, tmp_path):
        with pytest.raises(TransportError):
            attach_endpoint(
                {
                    "s2c": str(tmp_path / "gone.s2c"),
                    "c2s": str(tmp_path / "gone.c2s"),
                    "nonce": "00" * 16,
                }
            )

    def test_nonce_mismatch(self, tmp_path):
        server, offer = create_endpoint(directory=str(tmp_path))
        try:
            bad = dict(offer, nonce="ff" * 16)
            with pytest.raises(TransportError):
                attach_endpoint(bad)
        finally:
            server.close()


class TestCrossProcess:
    def test_fork_echo(self, tmp_path):
        ctx = mp.get_context("fork")
        a, b = shm_pair(directory=str(tmp_path))

        def echo():
            while True:
                f = b.recv()
                if f == b"stop":
                    return
                b.send(f)

        child = ctx.Process(target=echo)
        child.start()
        try:
            for i in range(200):
                payload = bytes([i % 256]) * (1 + i % 900)
                a.send(payload)
                assert a.recv() == payload
            a.send(b"stop")
            child.join(timeout=10)
            assert child.exitcode == 0
        finally:
            if child.is_alive():
                child.terminate()
                child.join(timeout=5)
            a.close()
            b.close()


class TestAutoConnect:
    def test_upgrade_over_loopback(self, tmp_path):
        sock_a, sock_b = loopback_pair()
        result = {}

        def server():
            result["server"] = auto_connect(
                sock_a, "server", directory=str(tmp_path)
            )

        t = threading.Thread(target=server)
        t.start()
        shm_client = auto_connect(sock_b, "client")
        t.join(timeout=10)
        shm_server = result["server"]
        try:
            assert isinstance(shm_server, ShmRingTransport)
            assert isinstance(shm_client, ShmRingTransport)
            shm_client.send(b"upgraded")
            assert shm_server.recv() == b"upgraded"
            # Negotiation consumed its own frames: the original socket
            # pair is still clean for control traffic.
            sock_a.send(b"control")
            assert sock_b.recv() == b"control"
            assert os.listdir(tmp_path) == []  # unlinked after attach
        finally:
            shm_server.close()
            shm_client.close()
            sock_a.close()
            sock_b.close()

    def test_fallback_when_server_cannot_create(self, tmp_path):
        sock_a, sock_b = loopback_pair()
        result = {}

        def server():
            result["server"] = auto_connect(
                sock_a, "server", directory=str(tmp_path / "missing" / "dir")
            )

        t = threading.Thread(target=server)
        t.start()
        client_side = auto_connect(sock_b, "client")
        t.join(timeout=10)
        try:
            # Both ends fall back to the transport they already had.
            assert result["server"] is sock_a
            assert client_side is sock_b
            sock_a.send(b"still works")
            assert sock_b.recv() == b"still works"
        finally:
            sock_a.close()
            sock_b.close()

    def test_fallback_when_attach_fails(self, tmp_path):
        # Simulated different host: the client cannot map the offered
        # paths.  It must refuse, and both sides keep the socket.
        sock_a, sock_b = loopback_pair()
        result = {}

        def server():
            result["server"] = auto_connect(sock_a, "server", directory=str(tmp_path))

        def hostile_client():
            import json

            from repro.net.shm import _OFFER_TAG, _REPLY_NO

            frame = sock_b.recv()
            assert frame.startswith(_OFFER_TAG)
            # A peer on another machine sees paths that do not exist.
            offer = json.loads(frame[len(_OFFER_TAG):].decode())
            offer["s2c"] += ".elsewhere"
            with pytest.raises(TransportError):
                attach_endpoint(offer)
            sock_b.send(_REPLY_NO)

        t = threading.Thread(target=server)
        t.start()
        hostile_client()
        t.join(timeout=10)
        try:
            assert result["server"] is sock_a
        finally:
            sock_a.close()
            sock_b.close()

    def test_bad_role_rejected(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        try:
            with pytest.raises(ValueError):
                auto_connect(a, "sideways")
        finally:
            a.close()
            b.close()


class TestPlaneSubstitution:
    """The higher planes run unchanged over a same-host ring."""

    def test_chaos_wrapper_composes(self, tmp_path):
        a, b = shm_pair(directory=str(tmp_path))
        try:
            clean = FaultInjectingTransport(a, FaultPlan(), seed=CHAOS_SEED)
            clean.send(b"through")
            assert b.recv() == b"through"
            dropper = FaultInjectingTransport(
                a, FaultPlan(drop=1.0), seed=CHAOS_SEED
            )
            dropper.send(b"lost")
            assert b.poll_recv() is None
        finally:
            a.close()
            b.close()

    def test_relay_fan_out_over_rings(self, tmp_path):
        sender = IOContext(SPARC_V8)
        h = sender.register_format(TELEMETRY)
        messages = [sender.announce(h), sender.encode(h, {"unit": 3, "temperature": 9.5})]
        relay = Relay()
        pairs = [shm_pair(directory=str(tmp_path)) for _ in range(3)]
        try:
            for up, _ in pairs:
                relay.attach(up)
            for m in messages:
                relay.forward(m)
            for _, down in pairs:
                rx = PbioConnection(IOContext(X86), down)
                rx.ctx.expect(TELEMETRY)
                assert rx.recv() == {"unit": 3, "temperature": 9.5}
        finally:
            for up, down in pairs:
                up.close()
                down.close()

    def test_channel_ingest_from_ring(self, tmp_path):
        # Wire frames produced on one "host side" of the ring feed an
        # event channel on the other — the same-host subscriber path.
        sender = IOContext(SPARC_V8)
        h = sender.register_format(TELEMETRY)
        a, b = shm_pair(directory=str(tmp_path))
        try:
            a.send(sender.announce(h))
            a.send_many(
                [sender.encode(h, {"unit": i, "temperature": i * 0.5}) for i in range(8)]
            )
            channel = EventChannel()
            got = []
            sub_ctx = IOContext(X86)
            sub_ctx.expect(TELEMETRY)
            channel.subscribe(sub_ctx, lambda r: got.append(r["unit"]))
            channel.ingest_many(b.recv_many())
            assert got == list(range(8))
        finally:
            a.close()
            b.close()
