"""Tests for the event channel (publish/subscribe over PBIO)."""

import pytest

from repro.abi import ALPHA, SPARC_V8, X86, CType, FieldDecl, RecordSchema
from repro.core import IOContext
from repro.net import EventChannel

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)
STATUS = RecordSchema.from_pairs("status", [("job", "int"), ("done", "bool")])


def collector():
    records = []
    return records, records.append


class TestBasicPubSub:
    def test_single_publisher_single_subscriber(self):
        channel = EventChannel()
        got, handler = collector()
        sub_ctx = IOContext(SPARC_V8)
        sub_ctx.expect(TELEMETRY)
        channel.subscribe(sub_ctx, handler)
        pub = channel.publisher(IOContext(X86))
        h = pub.ctx.register_format(TELEMETRY)
        pub.publish(h, {"unit": 1, "temperature": 300.0})
        assert got == [{"unit": 1, "temperature": 300.0}]

    def test_heterogeneous_subscribers_each_decode_natively(self):
        channel = EventChannel()
        results = {}
        for machine in (X86, SPARC_V8, ALPHA):
            ctx = IOContext(machine)
            ctx.expect(TELEMETRY)
            records, handler = collector()
            results[machine.name] = (ctx, records)
            channel.subscribe(ctx, handler)
        pub = channel.publisher(IOContext(X86))
        h = pub.ctx.register_format(TELEMETRY)
        pub.publish(h, {"unit": 2, "temperature": 450.0})
        for name, (ctx, records) in results.items():
            assert records == [{"unit": 2, "temperature": 450.0}], name
        # The x86 subscriber shares the publisher's representation: zero-copy.
        assert results["i86"][0].stats.zero_copy_decodes == 1
        assert results["sparc"][0].stats.converted_decodes == 1

    def test_multiple_publishers(self):
        channel = EventChannel()
        got, handler = collector()
        sub = IOContext(X86)
        sub.expect(TELEMETRY)
        channel.subscribe(sub, handler)
        for machine in (X86, SPARC_V8):
            pub = channel.publisher(IOContext(machine))
            h = pub.ctx.register_format(TELEMETRY)
            pub.publish(h, {"unit": 9, "temperature": 1.0})
        assert len(got) == 2

    def test_unsubscribe_stops_delivery(self):
        channel = EventChannel()
        got, handler = collector()
        ctx = IOContext(X86)
        ctx.expect(TELEMETRY)
        sub = channel.subscribe(ctx, handler)
        pub = channel.publisher(IOContext(X86))
        h = pub.ctx.register_format(TELEMETRY)
        pub.publish(h, {"unit": 1, "temperature": 0.0})
        channel.unsubscribe(sub)
        pub.publish(h, {"unit": 2, "temperature": 0.0})
        assert len(got) == 1
        assert channel.subscriber_count == 0


class TestLateJoin:
    def test_late_subscriber_gets_replayed_announcements(self):
        channel = EventChannel()
        pub = channel.publisher(IOContext(SPARC_V8))
        h = pub.ctx.register_format(TELEMETRY)
        pub.publish(h, {"unit": 1, "temperature": 100.0})  # before anyone joins

        got, handler = collector()
        ctx = IOContext(X86)
        ctx.expect(TELEMETRY)
        channel.subscribe(ctx, handler)  # joins the ongoing stream
        pub.publish(h, {"unit": 2, "temperature": 200.0})
        # The late joiner missed the first record but decodes the second —
        # the announcement was replayed, no a priori knowledge needed.
        assert got == [{"unit": 2, "temperature": 200.0}]


class TestTypedSubscriptions:
    def test_format_name_scoping(self):
        channel = EventChannel()
        telemetry_got, telemetry_handler = collector()
        status_got, status_handler = collector()
        ctx1 = IOContext(X86)
        ctx1.expect(TELEMETRY)
        ctx2 = IOContext(X86)
        ctx2.expect(STATUS)
        sub1 = channel.subscribe(ctx1, telemetry_handler, format_name="telemetry")
        channel.subscribe(ctx2, status_handler, format_name="status")
        pub = channel.publisher(IOContext(SPARC_V8))
        ht = pub.ctx.register_format(TELEMETRY)
        hs = pub.ctx.register_format(STATUS)
        pub.publish(ht, {"unit": 1, "temperature": 1.0})
        pub.publish(hs, {"job": 7, "done": True})
        assert len(telemetry_got) == 1 and len(status_got) == 1
        assert sub1.stats.wrong_type == 1

    def test_filtered_subscription(self):
        channel = EventChannel()
        got, handler = collector()
        ctx = IOContext(X86)
        ctx.expect(TELEMETRY)
        sub = channel.subscribe(
            ctx, handler, format_name="telemetry", filter_expr="temperature > 500.0"
        )
        pub = channel.publisher(IOContext(SPARC_V8))
        h = pub.ctx.register_format(TELEMETRY)
        for temp in (100.0, 600.0, 300.0, 900.0):
            pub.publish(h, {"unit": 1, "temperature": temp})
        assert [r["temperature"] for r in got] == [600.0, 900.0]
        assert sub.stats.delivered == 2
        assert sub.stats.filtered_out == 2

    def test_filter_requires_format_name(self):
        channel = EventChannel()
        ctx = IOContext(X86)
        with pytest.raises(ValueError):
            channel.subscribe(ctx, lambda r: None, filter_expr="x > 1")

    def test_evolution_on_channel(self):
        # Upgraded publisher joins; old subscribers keep working.
        channel = EventChannel()
        got, handler = collector()
        ctx = IOContext(X86)
        ctx.expect(TELEMETRY)
        channel.subscribe(ctx, handler, format_name="telemetry")
        v2 = TELEMETRY.extended("telemetry", [FieldDecl("humidity", CType.DOUBLE)])
        pub = channel.publisher(IOContext(SPARC_V8))
        h = pub.ctx.register_format(v2)
        pub.publish(h, {"unit": 4, "temperature": 321.0, "humidity": 0.4})
        assert got == [{"unit": 4, "temperature": 321.0}]

    def test_messages_published_counter(self):
        channel = EventChannel()
        pub = channel.publisher(IOContext(X86))
        h = pub.ctx.register_format(TELEMETRY)
        pub.publish(h, {"unit": 1, "temperature": 0.0})
        pub.publish(h, {"unit": 2, "temperature": 0.0})
        assert channel.messages_published == 2  # announcements not counted
