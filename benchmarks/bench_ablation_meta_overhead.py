"""Ablation — cost of PBIO's self-description: meta-information once +
format ids thereafter.

PBIO messages carry only a 16-byte header in steady state; the full
format description crosses the wire once per (writer, format).  This
ablation quantifies the first-message penalty (announce + absorb +
converter generation) against the steady-state per-message cost, and the
wire overhead of the meta message itself.
"""

import pytest

import support
from repro.abi import codec_for, layout_record
from repro.core import IOContext
from repro.net import best_of
from repro.workloads import mechanical


def fresh_pair(size):
    schema = mechanical.schema_for_size(size)
    sender = IOContext(support.I86)
    receiver = IOContext(support.SPARC)
    handle = sender.register_format(schema)
    receiver.expect(schema)
    return sender, receiver, handle


@pytest.mark.parametrize("size", ["100b", "10kb"])
def test_first_message_cost(benchmark, size):
    """announce + absorb + first decode (includes converter generation)."""
    schema = mechanical.schema_for_size(size)
    native = mechanical.native_bytes(size, support.I86)

    def first_exchange():
        sender = IOContext(support.I86)
        receiver = IOContext(support.SPARC)
        handle = sender.register_format(schema)
        receiver.expect(schema)
        receiver.receive(sender.announce(handle))
        receiver.receive(sender.encode_native(handle, native))

    benchmark.group = "ablation: meta first message"
    benchmark(first_exchange)


@pytest.mark.parametrize("size", ["100b", "10kb"])
def test_steady_state_message_cost(benchmark, size):
    sender, receiver, handle = fresh_pair(size)
    native = mechanical.native_bytes(size, support.I86)
    receiver.receive(sender.announce(handle))
    message = sender.encode_native(handle, native)
    receiver.decode_native(message)  # warm
    benchmark.group = "ablation: meta steady state"
    benchmark(receiver.decode_native, message)


def test_shape_meta_amortizes(capsys):
    size = "1kb"
    sender, receiver, handle = fresh_pair(size)
    native = mechanical.native_bytes(size, support.I86)
    announce = sender.announce(handle)
    message = sender.encode_native(handle, native)

    import time

    t0 = time.perf_counter()
    receiver.receive(announce)
    receiver.decode_native(message)
    first = time.perf_counter() - t0
    steady = best_of(lambda: receiver.decode_native(message), repeats=7, inner=20)
    with capsys.disabled():
        print(
            f"  meta overhead {size}: first message {first * 1e3:.3f} ms, "
            f"steady state {steady * 1e3:.4f} ms, announce {len(announce)} B, "
            f"per-message header 16 B"
        )
    # The one-time cost is bounded (well under 100 steady messages)...
    assert first < 100 * steady + 0.05
    # ...and per-message wire overhead is a constant 16-byte header.
    assert len(message) - layout_record(mechanical.schema_for_size(size), support.I86).size == 16
    # The meta message is small relative to even one 1 KB record.
    assert len(announce) < 1024


def test_shape_announcement_count_is_one_per_format():
    sender, receiver, handle = fresh_pair("100b")
    native = mechanical.native_bytes("100b", support.I86)
    receiver.receive(sender.announce(handle))
    for _ in range(50):
        receiver.decode_native(sender.encode_native(handle, native))
    assert receiver.registry.announcements_received == 1
    assert receiver.stats.converters_generated == 1
    assert receiver.stats.converter_cache_hits >= 49
