"""Steady-state journal+ack overhead of the durable delivery plane.

Durability must be cheap enough to leave on for any stream that matters.
This bench times one full burst (32 records of ~1 KiB published →
delivered → acked) on an in-process
:class:`~repro.net.channel.EventChannel`, in three configurations:

* ``bare``     — a plain :class:`ChannelPublisher` feeding a plain
  :class:`Subscription` over the batch fast path (fire-and-forget; no
  sequencing, no acks — printed for context, not gated);
* ``volatile`` — the full sequencing plane (:class:`DurablePublisher` →
  :class:`DurableSubscription`, seq frames, dedup window, acks flowing
  back every burst) but held in memory: ``wal_dir=None``,
  ``cursor_path=None``.  Functionally identical delivery, zero
  crash-safety;
* ``durable``  — the same plane with the journal+ack persistence on: a
  real on-disk WAL (segment rotation and compaction live) and real
  on-disk cursor stores on both ends.

The gate is ``durable`` vs ``volatile``: the *journal+ack overhead* —
what you pay for crash-safety on top of the delivery machinery — must be
<= ``PBIO_BENCH_OVERHEAD_MAX`` percent (default 10) per burst.  Both
sides use the burst APIs, where the journal amortises to one coalesced
write and the cursors to one append per burst; that amortisation is the
whole design argument, so it is what the gate certifies.

As in bench_health_overhead, the loops are timed in interleaved rounds
and the gate is the lower of the median per-round ratio and the ratio of
per-side minima, so neither scheduler noise nor clock drift produces a
false regression.  The gate also proves the machinery ran: every record
journaled, sequenced and acked, real segment rotations and compactions,
and the WAL fully drained after every burst.
"""

import os
import shutil
import statistics
import tempfile

import support
from repro.abi import RecordSchema
from repro.core import IOContext
from repro.net import DurablePublisher, EventChannel, best_of

#: 32 records of ~1 KiB: the stream burst the acceptance gate names.
BURST = 32
SCHEMA = RecordSchema.from_pairs(
    "block1k", [("seq", "int"), ("values", "double[124]")]
)
RECORD = {"seq": 7, "values": tuple(float(i) for i in range(124))}
RECORDS = [RECORD] * BURST


def _inner() -> int:
    override = os.environ.get("PBIO_BENCH_INNER")
    return max(1, int(override)) if override else 50


def _overhead_budget_pct() -> float:
    override = os.environ.get("PBIO_BENCH_OVERHEAD_MAX")
    return float(override) if override else 10.0


def _build_bare_loop():
    channel = EventChannel()
    ctx_tx = IOContext(support.SPARC)
    handle = ctx_tx.register_format(SCHEMA)
    pub = channel.publisher(ctx_tx)
    ctx_rx = IOContext(support.SPARC)
    ctx_rx.expect(SCHEMA)
    delivered = []
    channel.subscribe(ctx_rx, delivered.append)

    def burst():
        delivered.clear()
        pub.publish_batch(handle, RECORDS)
        assert len(delivered) == BURST

    burst()  # warm converters/caches outside the timed region
    return burst


def _segment_bytes() -> int:
    # Sized so the measured run crosses a handful of real segment
    # rotations (the machinery asserts demand at least one) without
    # rotation churn dominating: ~6 rotations across however many
    # bursts this configuration will time.
    bursts = 1 + 3 * support.default_repeats() * _inner()
    return max(4096, bursts * BURST * 1050 // 6)


def _build_plane_loop(wal_root: str | None):
    """One sequenced publisher → durable subscriber loop.

    ``wal_root=None`` builds the volatile plane (memory WAL + memory
    cursors); a directory builds the fully persistent one.
    """
    channel = EventChannel()
    ctx_tx = IOContext(support.SPARC, context_id=0xBE0C)
    handle = ctx_tx.register_format(SCHEMA)
    pub = DurablePublisher(
        channel,
        ctx_tx,
        wal_dir=None if wal_root is None else os.path.join(wal_root, "wal"),
        segment_bytes=_segment_bytes(),
    )
    ctx_rx = IOContext(support.SPARC)
    ctx_rx.expect(SCHEMA)
    delivered = []
    channel.subscribe_durable(
        ctx_rx,
        delivered.append,
        cursor_path=None if wal_root is None else os.path.join(wal_root, "sub.cursors"),
        on_error="suppress",  # enables the batched drain path
    )

    def burst():
        delivered.clear()
        pub.publish_batch(handle, RECORDS)
        assert len(delivered) == BURST
        # The in-process ack loop must have drained the journal: every
        # burst leaves the WAL empty or durability was optimised away.
        assert pub.unacked_count == 0

    burst()
    return burst, pub


def _compare(wal_root: str):
    bare_fn = _build_bare_loop()
    volatile_fn, _ = _build_plane_loop(None)
    durable_fn, pub = _build_plane_loop(wal_root)
    inner = _inner()
    bare = best_of(bare_fn, repeats=3, inner=inner)
    volatile = durable = float("inf")
    ratios = []
    for i in range(3 * support.default_repeats()):
        if i % 2 == 0:
            v = best_of(volatile_fn, repeats=1, inner=inner)
            d = best_of(durable_fn, repeats=1, inner=inner)
        else:
            d = best_of(durable_fn, repeats=1, inner=inner)
            v = best_of(volatile_fn, repeats=1, inner=inner)
        volatile = min(volatile, v)
        durable = min(durable, d)
        ratios.append(d / v)
    overhead = min(statistics.median(ratios), durable / volatile)
    return bare, volatile, durable, (overhead - 1.0) * 100.0, pub


def test_durability_overhead_within_budget():
    budget = _overhead_budget_pct()
    worst = -float("inf")
    for _ in range(5):
        wal_root = tempfile.mkdtemp(prefix="pbio-bench-wal-")
        try:
            bare, volatile, durable, overhead_pct, pub = _compare(wal_root)
            stats = pub.stats
            print(
                f"\nbare {bare * 1e6:.2f} us | volatile {volatile * 1e6:.2f} us "
                f"| durable {durable * 1e6:.2f} us -> journal+ack overhead "
                f"{overhead_pct:+.2f}% (budget {budget:.0f}%, "
                f"journaled {stats.journaled}, acked {stats.acked}, "
                f"rotations {stats.segments_rotated})"
            )
            # The full machinery must have run, not been optimised away:
            # every record journaled and acked, and the WAL churned
            # through real segment rotations and compactions.
            assert stats.journaled == stats.sent >= BURST
            assert stats.acked == stats.journaled
            assert stats.segments_rotated > 0
            assert stats.segments_compacted > 0
            assert stats.duplicates_dropped == 0
        finally:
            shutil.rmtree(wal_root, ignore_errors=True)
        if overhead_pct <= budget:
            return
        worst = max(worst, overhead_pct)
    raise AssertionError(
        f"durability cost {worst:.2f}% in 5/5 measurements (> {budget}% budget)"
    )


if __name__ == "__main__":
    test_durability_overhead_within_budget()
