"""Throughput benchmark: sustained record streams per wire system.

The paper's applications stream records continuously (monitoring,
visualization feeds).  This bench measures steady-state records/second
over a batch of pre-encoded application records, full path (encode ->
in-memory transport -> decode), per wire system, plus the event-channel
fan-out cost per subscriber.
"""

import pytest

import support
from repro.abi import codec_for, layout_record
from repro.core import IOContext, PbioWire
from repro.net import EventChannel, InMemoryPipe
from repro.wire import IiopWire, MpiWire, XmlWire
from repro.workloads import mechanical
from repro.workloads.generators import record_stream

N_RECORDS = 32
SIZE = "1kb"

SYSTEMS = {
    "PBIO": lambda: PbioWire("dcg"),
    "MPICH": MpiWire,
    "CORBA": IiopWire,
    "XML": XmlWire,
}


@pytest.fixture(scope="module")
def stream_setup():
    schema = mechanical.schema_for_size(SIZE)
    src = layout_record(schema, support.SPARC)
    dst = layout_record(schema, support.I86)
    codec = codec_for(src)
    natives = [codec.encode(r) for r in record_stream(schema, count=N_RECORDS, seed=3)]
    return src, dst, natives


@pytest.mark.parametrize("system_name", list(SYSTEMS))
def test_stream_full_path(benchmark, stream_setup, system_name):
    src, dst, natives = stream_setup
    bound = SYSTEMS[system_name]().bind(src, dst)
    bound.decode(bound.encode(natives[0]))  # warm converters

    def pump():
        pipe = InMemoryPipe()
        for native in natives:
            pipe.a.send(bound.encode(native))
        for _ in natives:
            bound.decode(pipe.b.recv())

    benchmark.group = f"stream throughput ({N_RECORDS} x {SIZE})"
    benchmark(pump)


@pytest.mark.parametrize("n_subscribers", [1, 4, 16])
def test_channel_fanout(benchmark, n_subscribers):
    schema = mechanical.schema_for_size("100b")
    channel = EventChannel()
    sink = []
    for _ in range(n_subscribers):
        ctx = IOContext(support.I86)
        ctx.expect(schema)
        channel.subscribe(ctx, sink.append)
    pub = channel.publisher(IOContext(support.SPARC))
    handle = pub.ctx.register_format(schema)
    native = mechanical.native_bytes("100b", support.SPARC)
    pub.publish_native(handle, native)  # warm announcements + converters

    benchmark.group = "channel fan-out (100b record)"
    benchmark(pub.publish_native, handle, native)


def test_shape_throughput_ordering(stream_setup):
    from repro.net import best_of

    src, dst, natives = stream_setup
    times = {}
    for name, factory in SYSTEMS.items():
        bound = factory().bind(src, dst)
        bound.decode(bound.encode(natives[0]))

        def pump(bound=bound):
            pipe = InMemoryPipe()
            for native in natives:
                pipe.a.send(bound.encode(native))
            for _ in natives:
                bound.decode(pipe.b.recv())

        times[name] = best_of(pump, repeats=5)
    assert times["PBIO"] < times["MPICH"] < times["XML"]
    assert times["PBIO"] < times["CORBA"]
