"""Ablation — runtime binary code optimization (Section 5 future work).

PBIO's plan builder already coalesces relocated runs before code
generation, so its vcode programs arrive near-optimal.  The peephole
passes therefore earn their keep on *naively generated* code — one
load/store pair per field, the straightforward thing a first-cut code
generator emits.  This ablation measures exactly that: a 64-field
homogeneous relocation generated naively, with and without the passes,
by static size, dynamic instruction count, and VM wall time.  It also
verifies the passes are safe no-ops on swap-heavy heterogeneous programs
(nothing to coalesce) and that plan-level coalescing indeed leaves no
headroom (the two optimization layers are redundant, not conflicting).
"""

import struct

import pytest

import support
from repro.abi import RecordSchema, codec_for, layout_record
from repro.core import IOFormat, build_plan
from repro.core.conversion import generate_vcode_converter
from repro.net import best_of
from repro.vcode import VM, ConversionEmitter, optimize
from repro.workloads import mechanical

N_FIELDS = 64


def naive_relocation_program():
    """One ld/st pair per int field, every field shifted by 4 bytes —
    what a generator without run coalescing emits for the Figure 7
    mismatch case."""
    ce = ConversionEmitter("big", "big")
    for i in range(N_FIELDS):
        ce.convert_int(i * 4, 4, 4 + i * 4, 4, signed=True)
    return ce.finish()


def payload_for_relocation():
    return struct.pack(f">{N_FIELDS + 1}i", *range(N_FIELDS + 1))


def run(program, payload, *, stats=False):
    vm = VM(collect_stats=stats)
    dst = bytearray(N_FIELDS * 4)
    vm.run(program, {"src": payload, "dst": dst})
    return bytes(dst), vm


@pytest.mark.parametrize("optimized", [False, True], ids=["naive", "optimized"])
def test_vm_naive_relocation(benchmark, optimized):
    program = naive_relocation_program()
    if optimized:
        program, _ = optimize(program)
    payload = payload_for_relocation()
    benchmark.group = "vcode optimizer (naive relocation)"
    benchmark(run, program, payload)


def test_shape_optimizer_collapses_naive_code(capsys):
    program = naive_relocation_program()
    opt, stats = optimize(program)
    payload = payload_for_relocation()
    out_u, vm_u = run(program, payload, stats=True)
    out_o, vm_o = run(opt, payload, stats=True)
    assert out_u == out_o  # behaviour preserved
    with capsys.disabled():
        print(
            f"  naive relocation: static {len(program)} -> {len(opt)} instrs, "
            f"dynamic {vm_u.steps} -> {vm_o.steps} executed, "
            f"{stats.memcpys_created} memcpy(s) created"
        )
    # 64 ld/st pairs + ret collapse to one memcpy + ret.
    assert stats.memcpys_created == 1
    assert len(opt) <= 3
    assert vm_o.steps < vm_u.steps / 10


def test_shape_wall_time_improves():
    program = naive_relocation_program()
    opt, _ = optimize(program)
    payload = payload_for_relocation()
    t_naive = best_of(lambda: run(program, payload), repeats=5, inner=5)
    t_opt = best_of(lambda: run(opt, payload), repeats=5, inner=5)
    assert t_opt < t_naive / 3


def test_shape_swap_programs_unchanged():
    """Byte-swapping loads/stores cannot coalesce; the passes must leave
    behaviour (and essentially the program) alone."""
    ce = ConversionEmitter("little", "big")
    ce.convert_int(0, 4, 0, 4, signed=True, count=32)
    program = ce.finish()
    opt, stats = optimize(program)
    assert stats.memcpys_created == 0
    payload = struct.pack("<32i", *range(32))
    dst_a = bytearray(128)
    dst_b = bytearray(128)
    VM().run(program, {"src": payload, "dst": dst_a})
    VM().run(opt, {"src": payload, "dst": dst_b})
    assert dst_a == dst_b


def test_shape_plan_coalescing_leaves_no_headroom():
    """PBIO's plan-level coalescing makes the vcode passes redundant on
    its own relocation programs — the two layers agree."""
    expected = mechanical.schema_for_size("1kb")
    from repro.abi import CType, FieldDecl

    sent = expected.extended(expected.name, [FieldDecl("v", CType.INT)], prepend=True)
    plan = build_plan(
        IOFormat.from_layout(layout_record(sent, support.SPARC)),
        IOFormat.from_layout(layout_record(expected, support.SPARC)),
    )
    gen = generate_vcode_converter(plan, optimize=True)
    assert gen.vcode_stats.memcpys_created == 0  # already bulk moves
    record = dict(mechanical.sample_record("1kb"), v=1)
    payload = codec_for(layout_record(sent, support.SPARC)).encode(record)
    unopt = generate_vcode_converter(plan, optimize=False)
    assert gen.convert(payload) == unopt.convert(payload)
