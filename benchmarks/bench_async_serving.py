"""Async serving core: one event-loop process vs thread-per-connection.

ISSUE 6's tentpole claim: a single :class:`repro.net.aio.AsyncServer`
process multiplexes hundreds of connections with no per-connection
threads, and loses nothing to the thread-per-connection design it
replaces.  The workload echoes bursts of the paper's 1 KB records: every
frame crosses the kernel twice in each direction, through the buffered
framer one way and the bounded-queue vectored writer the other.

The baseline is the *replaced* design, faithfully: one thread per
connection running the same per-frame ``recv``/``send`` serve loop as
:class:`repro.net.sockets.EchoServer` (and every pre-async serve loop in
the repo — ``RpcServer.serve_one``, ``FormatServer.serve``).  The async
side serves bursts with ``recv_many``/``send_many`` because batched
serving *is* part of the new design.  Both sides are driven by the same
client pump, which keeps a bounded window of connections in flight so
neither server is measured against an artificially jammed kernel buffer.

Gate (run in CI bench-smoke):

* one async echo process must sustain ``PBIO_BENCH_ASYNC_CLIENTS``
  (default 512) concurrent clients with aggregate records/sec at least
  ``PBIO_BENCH_ASYNC_MIN`` x (default 1.0) the thread-per-connection
  baseline serving ``PBIO_BENCH_ASYNC_BASE_CLIENTS`` (default 32).

Knobs: ``PBIO_BENCH_ASYNC_ROUNDS`` (default 4), ``PBIO_BENCH_ASYNC_BURST``
(default 16 frames per client per round), ``PBIO_BENCH_ASYNC_WINDOW``
(default 32 connections in flight) and ``PBIO_BENCH_ASYNC_REPS``
(default 3, best-of) tune the workload for slow CI.
"""

import os
import socket
import threading
import time

from repro.net import AsyncServer, SocketTransport, TransportError, echo_handler

PAYLOAD = b"\xa5" * 1024  # one of the paper's 1 KB records, opaque here


def _env_int(name: str, default: int) -> int:
    override = os.environ.get(name)
    return int(override) if override else default


def _async_clients() -> int:
    return _env_int("PBIO_BENCH_ASYNC_CLIENTS", 512)


def _base_clients() -> int:
    return _env_int("PBIO_BENCH_ASYNC_BASE_CLIENTS", 32)


def _rounds() -> int:
    return _env_int("PBIO_BENCH_ASYNC_ROUNDS", 4)


def _burst() -> int:
    return _env_int("PBIO_BENCH_ASYNC_BURST", 16)


def _window() -> int:
    return _env_int("PBIO_BENCH_ASYNC_WINDOW", 32)


def _reps() -> int:
    return _env_int("PBIO_BENCH_ASYNC_REPS", 3)


def _ratio_floor() -> float:
    override = os.environ.get("PBIO_BENCH_ASYNC_MIN")
    return float(override) if override else 1.0


class ThreadedEchoServer:
    """The design being replaced: one accept loop, one thread per
    connection, each blocking on its own socket in the same per-frame
    ``recv``/``send`` loop as :class:`repro.net.sockets.EchoServer`."""

    def __init__(self) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(512)
        self.address = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            threading.Thread(target=self._serve, args=(conn,), daemon=True).start()

    def _serve(self, conn: socket.socket) -> None:
        conn.settimeout(30.0)
        transport = SocketTransport(conn)
        try:
            while True:
                transport.send(transport.recv())  # EchoServer._serve verbatim
        except TransportError:
            pass
        finally:
            transport.close()

    def close(self) -> None:
        self._listener.close()
        self._accept_thread.join(timeout=5)


def _connect_all(address, count: int) -> list[SocketTransport]:
    clients = []
    for _ in range(count):
        sock = socket.create_connection(address, timeout=30.0)
        sock.settimeout(30.0)
        clients.append(SocketTransport(sock))
    return clients


def _pump(
    clients: list[SocketTransport], rounds: int, burst: int, window: int = 0
) -> float:
    """Drive every open connection through ``rounds`` echo bursts;
    returns aggregate records/sec.  A sliding window of ``window``
    connections (0 = all of them) holds in-flight traffic at once, so
    the server genuinely multiplexes — while bounding the bytes in
    flight to what kernel socket buffers absorb, so neither server
    design is measured through an artificial traffic jam."""
    frames = [PAYLOAD] * burst
    n = len(clients)
    if window <= 0 or window > n:
        window = n
    start = time.perf_counter()
    for _ in range(rounds):
        for i in range(n + window):
            if i < n:
                clients[i].send_many(frames)
            j = i - window
            if j >= 0:
                transport = clients[j]
                got = 0
                while got < burst:
                    got += len(transport.recv_many(burst - got))
    elapsed = time.perf_counter() - start
    return n * rounds * burst / elapsed


def _measure_threaded(n_clients: int, rounds: int, burst: int) -> float:
    server = ThreadedEchoServer()
    clients = _connect_all(server.address, n_clients)
    try:
        return max(
            _pump(clients, rounds, burst, _window()) for _ in range(_reps())
        )
    finally:
        for transport in clients:
            transport.close()
        server.close()


def _measure_async(n_clients: int, rounds: int, burst: int) -> tuple[float, int]:
    server = AsyncServer(echo_handler(), backlog=512)
    host, port = server.bind()
    loop_thread = threading.Thread(target=server.run, daemon=True)
    loop_thread.start()
    clients = _connect_all((host, port), n_clients)
    try:
        rate = max(
            _pump(clients, rounds, burst, _window()) for _ in range(_reps())
        )
        peak = server.active_connections
        return rate, peak
    finally:
        for transport in clients:
            transport.close()
        server.stop()
        loop_thread.join(timeout=10)


def test_shape_async_sustains_many_clients_at_baseline_rate():
    """ISSUE 6 acceptance gate: >= 512 concurrent clients on one event
    loop, aggregate records/sec >= the 32-thread baseline."""
    rounds, burst = _rounds(), _burst()
    baseline_rate = _measure_threaded(_base_clients(), rounds, burst)
    async_rate, peak = _measure_async(_async_clients(), rounds, burst)
    assert peak >= _async_clients(), (
        f"only {peak} connections concurrently open (need {_async_clients()})"
    )
    floor = _ratio_floor()
    assert async_rate >= baseline_rate * floor, (
        f"async @ {_async_clients()} clients: {async_rate:,.0f} rec/s < "
        f"{floor:.2f}x threaded @ {_base_clients()} clients: "
        f"{baseline_rate:,.0f} rec/s"
    )


def test_shape_async_echo_is_byte_faithful():
    """The gate only counts if every record comes back bit-identical."""
    server = AsyncServer(echo_handler())
    host, port = server.bind()
    loop_thread = threading.Thread(target=server.run, daemon=True)
    loop_thread.start()
    try:
        with SocketTransport(
            socket.create_connection((host, port), timeout=10.0)
        ) as transport:
            transport._sock.settimeout(10.0)
            frames = [bytes([i % 256]) * (1 + i * 37 % 2048) for i in range(64)]
            transport.send_many(frames)
            got = []
            while len(got) < len(frames):
                got.extend(transport.recv_many(len(frames) - len(got)))
            assert got == frames
    finally:
        server.stop()
        loop_thread.join(timeout=10)


def test_bench_async_echo_small_fleet(benchmark):
    """Tracked number: one echo round over 8 async-served connections."""
    server = AsyncServer(echo_handler(), backlog=64)
    host, port = server.bind()
    loop_thread = threading.Thread(target=server.run, daemon=True)
    loop_thread.start()
    clients = _connect_all((host, port), 8)
    benchmark.group = "async echo serving"
    try:
        benchmark(_pump, clients, 1, _burst())
    finally:
        for transport in clients:
            transport.close()
        server.stop()
        loop_thread.join(timeout=10)
