"""Extension benchmark — non-IEEE float heterogeneity (VAX <-> IEEE).

PBIO's meta-information carries the sender's float format, so exchanges
with a pre-IEEE machine work exactly like any other heterogeneous
exchange: the receiver's generated converter calls the float-format
subroutines for float runs and handles everything else as usual.  The
canonical-format baselines cannot express the exchange at all (they
assume IEEE hosts) — which is itself a result: the self-describing
format degrades gracefully where fixed formats simply stop.

Measures decode cost for VAX->x86 and x86->VAX at the paper's sizes, and
the raw codec throughput of the F/D conversion kernels.
"""

import numpy as np
import pytest

import support
from repro.abi import VAX, codec_for, layout_record
from repro.abi.floats import ieee_to_vax_d, vax_d_to_ieee
from repro.core import IOContext
from repro.workloads import mechanical

SIZES = ["1kb", "100kb"]


def vax_exchange(size, src, dst):
    schema = mechanical.schema_for_size(size)
    sender = IOContext(src)
    receiver = IOContext(dst)
    handle = sender.register_format(schema)
    receiver.expect(schema)
    receiver.receive(sender.announce(handle))
    native = codec_for(layout_record(schema, src)).encode(mechanical.sample_record(size))
    message = sender.encode_native(handle, native)
    receiver.decode_native(message)  # warm converter
    return receiver, message


@pytest.mark.parametrize("size", SIZES)
def test_decode_vax_to_x86(benchmark, size):
    receiver, message = vax_exchange(size, VAX, support.I86)
    benchmark.group = f"vax exchange {size}"
    benchmark(receiver.decode_native, message)


@pytest.mark.parametrize("size", SIZES)
def test_decode_x86_to_vax(benchmark, size):
    receiver, message = vax_exchange(size, support.I86, VAX)
    benchmark.group = f"vax exchange {size}"
    benchmark(receiver.decode_native, message)


def test_codec_kernel_throughput(benchmark):
    values = np.random.default_rng(1).uniform(-1e6, 1e6, 8192)
    raw = ieee_to_vax_d(values)
    benchmark.group = "vax codec kernels"
    benchmark(vax_d_to_ieee, raw)


def test_shape_vax_decode_cost_bounded():
    """VAX float conversion is several vectorized passes (bit-field
    extraction + rebias) instead of one byteswap, and the byte-packed VAX
    layout defeats run coalescing — so it costs a multiple of a plain
    byte-order decode, but must stay within the interpreted converter's
    neighbourhood (i.e. conversion remains a per-message cost, not a
    cliff)."""
    from repro.net import best_of

    receiver_vax, message_vax = vax_exchange("100kb", VAX, support.I86)
    t_vax = best_of(lambda: receiver_vax.decode_native(message_vax), repeats=5, inner=5)

    receiver_swap, message_swap = vax_exchange("100kb", support.SPARC, support.I86)
    t_swap = best_of(lambda: receiver_swap.decode_native(message_swap), repeats=5, inner=5)
    assert t_vax < 50 * t_swap
    # ...and well below a millisecond-per-record regime on a 100 KB record.
    assert t_vax < 5e-3


def test_shape_round_trip_preserves_values():
    from repro.abi import records_equal

    schema = mechanical.schema_for_size("1kb")
    rec = mechanical.sample_record("1kb")
    for src, dst in ((VAX, support.I86), (support.SPARC, VAX)):
        sender = IOContext(src)
        receiver = IOContext(dst)
        h = sender.register_format(schema)
        receiver.expect(schema)
        receiver.receive(sender.announce(h))
        out = receiver.receive(sender.encode(h, rec))
        assert records_equal(rec, out, rel_tol=1e-5)
