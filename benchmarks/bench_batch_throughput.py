"""Record-batch fast path: batched stream throughput vs the per-message loop.

The paper's applications stream *runs* of same-format records
(monitoring feeds, visualization frames).  The per-message path pays
fixed costs per record — header parse, registry lookup, converter
dispatch, one transport call per frame.  The batch path amortizes all
four: one ``send_many``/``recv_many`` pair per burst and one columnar
converter call per same-format run (see ``repro.core.conversion.batch``).

Workload: the 32 x 1kb mechanical-record stream of
``bench_stream_throughput.py``, SPARC -> x86, pre-encoded on the sender
side (the paper's protocol: data "is assumed to exist in binary format
prior to transmission") and delivered in the receiver's native layout
(the paper's receive contract, and what ``measure_decode_ms`` times for
every other system).

Gates (run in CI bench-smoke):

* the batch path must beat the per-message loop by at least
  ``PBIO_BENCH_BATCH_MIN`` x (default 2) in records/second;
* the scalar per-message path must not have regressed vs the seed:
  the seed's measured ordering (PBIO faster than MPICH on this exact
  workload, asserted since ``bench_stream_throughput.py`` landed) must
  still hold for the scalar loop running through the batch-capable
  pipeline.
"""

import os

import pytest

import support
from repro.abi import codec_for, layout_record
from repro.core import IOContext
from repro.net import InMemoryPipe, best_of
from repro.wire import MpiWire
from repro.workloads import mechanical
from repro.workloads.generators import record_stream

N_RECORDS = 32
SIZE = "1kb"


def _batch_min() -> float:
    override = os.environ.get("PBIO_BENCH_BATCH_MIN")
    return float(override) if override else 2.0


def _repeats() -> int:
    return max(support.default_repeats(), 5)


@pytest.fixture(scope="module")
def batch_setup():
    schema = mechanical.schema_for_size(SIZE)
    codec = codec_for(layout_record(schema, support.SPARC))
    natives = [
        codec.encode(r) for r in record_stream(schema, count=N_RECORDS, seed=3)
    ]
    sender = IOContext(support.SPARC)
    receiver = IOContext(support.I86, conversion="dcg")
    handle = sender.register_format(schema)
    receiver.expect(schema)
    receiver.receive(sender.announce(handle))
    frames = [sender.encode_native(handle, native) for native in natives]
    receiver.pipeline.decode_batch_native(frames)  # warm converters + batch plan
    return schema, natives, frames, receiver


def _loop_pump(frames, receiver):
    """The seed-era path: one transport call and one decode per record."""
    pipe = InMemoryPipe()
    for frame in frames:
        pipe.a.send(frame)
    for _ in frames:
        receiver.pipeline.decode_native(pipe.b.recv())


def _batch_pump(frames, receiver):
    """The fast path: one vectored send, one drain, one batch decode."""
    pipe = InMemoryPipe()
    pipe.a.send_many(frames)
    receiver.pipeline.decode_batch_native(pipe.b.recv_many())


def test_per_message_stream(benchmark, batch_setup):
    _, _, frames, receiver = batch_setup
    benchmark.group = f"batched stream ({N_RECORDS} x {SIZE})"
    benchmark(_loop_pump, frames, receiver)


def test_batched_stream(benchmark, batch_setup):
    _, _, frames, receiver = batch_setup
    benchmark.group = f"batched stream ({N_RECORDS} x {SIZE})"
    benchmark(_batch_pump, frames, receiver)


def test_shape_batch_beats_per_message_loop(batch_setup):
    """ISSUE 5 acceptance gate: >= 2x records/sec on the 32 x 1kb stream."""
    _, _, frames, receiver = batch_setup
    t_loop = best_of(lambda: _loop_pump(frames, receiver), repeats=_repeats())
    t_batch = best_of(lambda: _batch_pump(frames, receiver), repeats=_repeats())
    speedup = t_loop / t_batch
    floor = _batch_min()
    assert speedup >= floor, (
        f"batch path only {speedup:.2f}x over the per-message loop "
        f"(gate: {floor:.1f}x; loop {N_RECORDS / t_loop:,.0f} rec/s, "
        f"batch {N_RECORDS / t_batch:,.0f} rec/s)"
    )


def test_shape_scalar_path_not_regressed(batch_setup):
    """The batch machinery must not tax the scalar loop: the seed's
    throughput ordering (PBIO beats MPICH on this workload) still holds
    when every record goes through the per-message path one at a time."""
    schema, natives, frames, receiver = batch_setup
    src = layout_record(schema, support.SPARC)
    dst = layout_record(schema, support.I86)
    mpi = MpiWire().bind(src, dst)
    mpi_frames = [mpi.encode(native) for native in natives]
    mpi.decode(mpi_frames[0])  # warm

    def mpi_pump():
        pipe = InMemoryPipe()
        for frame in mpi_frames:
            pipe.a.send(frame)
        for _ in mpi_frames:
            mpi.decode(pipe.b.recv())

    t_scalar = best_of(lambda: _loop_pump(frames, receiver), repeats=_repeats())
    t_mpi = best_of(mpi_pump, repeats=_repeats())
    assert t_scalar < t_mpi, (
        f"scalar PBIO loop regressed: {N_RECORDS / t_scalar:,.0f} rec/s vs "
        f"MPICH {N_RECORDS / t_mpi:,.0f} rec/s (seed ordering: PBIO faster)"
    )


def test_shape_batch_is_byte_identical(batch_setup):
    """The gate only counts if the fast path returns the same bytes."""
    _, _, frames, receiver = batch_setup
    sequential = [receiver.pipeline.decode_native(frame) for frame in frames]
    assert receiver.pipeline.decode_batch_native(frames) == sequential
