"""Ablation — conversion overhead vs extent of the layout mismatch.

Section 4.4: "the overhead imposed by a mismatch varies proportionally
with the extent of the mismatch", which is why the paper recommends
appending new fields rather than prepending them.  We sweep the position
of one added field through a homogeneous record and measure the decode
cost as a function of how many expected fields get relocated.
"""

import pytest

import support
from repro.abi import CType, FieldDecl, RecordSchema, codec_for, layout_record
from repro.core import PbioWire
from repro.net import best_of

N_FIELDS = 16


def base_schema():
    return RecordSchema.from_pairs(
        "sweep", [(f"f{i}", "double[32]") for i in range(N_FIELDS)]
    )


def exchange_with_insertion(position: int):
    """Sender schema = base with one int field inserted at ``position``."""
    expected = base_schema()
    fields = list(expected.fields)
    fields.insert(position, FieldDecl("inserted", CType.INT))
    sent = RecordSchema("sweep", fields)
    src_layout = layout_record(sent, support.SPARC)
    dst_layout = layout_record(expected, support.SPARC)
    bound = PbioWire("dcg").bind(src_layout, dst_layout)
    record = {f"f{i}": tuple(float(j) for j in range(32)) for i in range(N_FIELDS)}
    record["inserted"] = 1
    wire = bound.encode(codec_for(src_layout).encode(record))
    bound.decode(wire)
    return bound, wire


POSITIONS = [0, N_FIELDS // 4, N_FIELDS // 2, 3 * N_FIELDS // 4, N_FIELDS]


@pytest.mark.parametrize("position", POSITIONS)
def test_decode_with_insertion_at(benchmark, position):
    bound, wire = exchange_with_insertion(position)
    benchmark.group = "ablation: mismatch extent"
    benchmark(bound.decode, wire)


def test_shape_mismatch_extent_is_proportional():
    """The *structural* mismatch (relocated fields) is proportional to how
    early the insertion lands — the paper's proportionality claim at the
    plan level (wall time is a step function here because the DCG plan
    coalesces relocated runs into bulk moves)."""
    from repro.abi import layout_record
    from repro.core import IOFormat, match_formats

    expected_fmt = IOFormat.from_layout(layout_record(base_schema(), support.SPARC))
    relocated = {}
    for position in POSITIONS:
        fields = list(base_schema().fields)
        fields.insert(position, FieldDecl("inserted", CType.INT))
        sent = RecordSchema("sweep", fields)
        wire_fmt = IOFormat.from_layout(layout_record(sent, support.SPARC))
        relocated[position] = match_formats(wire_fmt, expected_fmt).mismatch_count
    # Inserting at position k relocates exactly the N_FIELDS - k fields
    # after it.
    for position in POSITIONS:
        assert relocated[position] == N_FIELDS - position
    assert relocated[N_FIELDS] == 0


def test_shape_appending_preserves_zero_copy(capsys):
    """Wall-clock view of the same advice: append -> zero-copy decode;
    any interior insertion -> a conversion (~memcpy)."""
    times = {}
    for position in POSITIONS:
        bound, wire = exchange_with_insertion(position)
        times[position] = best_of(lambda: bound.decode_view(wire), repeats=9, inner=20)
    with capsys.disabled():
        for pos, t in times.items():
            print(f"  insertion at {pos:2d}: decode_view {t * 1e6:.2f} us")
    # The appended case is zero-copy and beats every interior insertion.
    assert times[N_FIELDS] < min(times[p] for p in POSITIONS if p != N_FIELDS)
