"""Steady-state overhead of the liveness heartbeat plane.

The self-healing plane must be deployable by default: a pair of
:class:`HeartbeatMonitor` instances pumped at the serving loop's natural
cadence (once per burst, the relay/async-pump discipline) has to stay
within a small budget of the bare stream on the workload the ISSUE
names — 32 records of ~1 KiB per burst.  This bench times one full
burst (32 sends → 32 decodes) over an :class:`InMemoryPipe`:

* ``bare``      — the pipe endpoints directly;
* ``monitored`` — both endpoints wearing a ticking HeartbeatMonitor
  (interval 0.25 s, so real pings and pongs flow during the run), with
  the receive loop doing what a serving loop integrating liveness does:
  one message-type check per frame to divert heartbeat control frames
  into :meth:`HeartbeatMonitor.observe`, and one proof-of-life
  observation per burst (*any* inbound frame proves the peer alive, so
  per-frame observation would be wasted work).

Acceptance: the monitored penalty is <= ``PBIO_BENCH_OVERHEAD_MAX``
percent (default 2) of the bare burst.  As in bench_fault_overhead, the
two loops are timed in interleaved rounds and the gate is the lower of
the median per-round ratio and the ratio of per-side minima, so neither
scheduler noise nor clock drift produces a false regression.
"""

import os
import statistics

import support
from repro.abi import RecordSchema
from repro.core import IOContext
from repro.core import encoder as enc
from repro.net import HeartbeatMonitor, InMemoryPipe, best_of

#: 32 records of ~1 KiB: the stream burst the acceptance gate names.
BURST = 32
SCHEMA = RecordSchema.from_pairs(
    "block1k", [("seq", "int"), ("values", "double[124]")]
)
RECORD = {"seq": 7, "values": tuple(float(i) for i in range(124))}


def _inner() -> int:
    override = os.environ.get("PBIO_BENCH_INNER")
    # ~5-10 ms per timing round at the ~100 us burst: long enough to
    # average out scheduler noise within a round.
    return max(1, int(override)) if override else 100


def _overhead_budget_pct() -> float:
    override = os.environ.get("PBIO_BENCH_OVERHEAD_MAX")
    return float(override) if override else 2.0


def _announce(client, server):
    """One announced one-way PBIO stream; returns (frames, decode ctx)."""
    ctx_tx = IOContext(support.SPARC)
    ctx_rx = IOContext(support.SPARC)
    handle = ctx_tx.register_format(SCHEMA)
    ctx_rx.expect(SCHEMA)
    client.send(ctx_tx.announce(handle))
    assert ctx_rx.receive(server.recv()) is None
    frames = [bytes(ctx_tx.encode(handle, RECORD)) for _ in range(BURST)]
    assert all(abs(len(f) - 1024) < 128 for f in frames), "burst is not ~1 KiB"
    return frames, ctx_rx


def _build_bare_loop():
    pipe = InMemoryPipe()
    client, server = pipe.a, pipe.b
    frames, ctx_rx = _announce(client, server)

    def burst():
        for frame in frames:
            client.send(frame)
        for _ in range(BURST):
            ctx_rx.decode(server.recv())

    burst()  # warm converters/caches outside the timed region
    return burst


def _build_monitored_loop():
    pipe = InMemoryPipe()
    client, server = pipe.a, pipe.b
    frames, ctx_rx = _announce(client, server)
    # A generous miss threshold: between interleaved rounds the monitors
    # sit unpumped, and a stale probe must never abort the measurement.
    tx_mon = HeartbeatMonitor(client, interval_s=0.25, miss_threshold=64)
    rx_mon = HeartbeatMonitor(server, interval_s=0.25, miss_threshold=64)
    ping_kind = enc.MSG_PING  # MSG_PING/MSG_PONG are the top type codes

    def burst():
        for frame in frames:
            client.send(frame)
        tx_mon.tick()  # harvests pongs; pings once per interval
        received = None
        count = 0
        while count < BURST:
            received = server.recv()
            if received[2] >= ping_kind:
                rx_mon.observe(received)  # answer the ping, note life
                continue
            ctx_rx.decode(received)
            count += 1
        rx_mon.observe(received)  # one proof-of-life per burst suffices
        rx_mon.tick()

    burst()
    return burst, tx_mon, rx_mon


def _compare() -> tuple[float, float, float, object, object]:
    bare_fn = _build_bare_loop()
    monitored_fn, tx_mon, rx_mon = _build_monitored_loop()
    inner = _inner()
    bare = monitored = float("inf")
    ratios = []
    for i in range(3 * support.default_repeats()):
        if i % 2 == 0:
            b = best_of(bare_fn, repeats=1, inner=inner)
            m = best_of(monitored_fn, repeats=1, inner=inner)
        else:
            m = best_of(monitored_fn, repeats=1, inner=inner)
            b = best_of(bare_fn, repeats=1, inner=inner)
        bare = min(bare, b)
        monitored = min(monitored, m)
        ratios.append(m / b)
    overhead = min(statistics.median(ratios), monitored / bare)
    return bare, monitored, (overhead - 1.0) * 100.0, tx_mon, rx_mon


def test_heartbeat_overhead_within_budget():
    # A 2% budget sits much closer to the noise floor than the 5% gates,
    # so allow extra re-measurements: noise spikes are uncorrelated
    # between attempts while a real regression is present in all of them.
    budget = _overhead_budget_pct()
    worst = -float("inf")
    for _ in range(5):
        bare, monitored, overhead_pct, tx_mon, rx_mon = _compare()
        print(
            f"\nbare {bare * 1e6:.2f} us | monitored {monitored * 1e6:.2f} us "
            f"-> overhead {overhead_pct:+.2f}% (budget {budget:.0f}%, "
            f"pings {tx_mon.pings_sent}+{rx_mon.pings_sent})"
        )
        # Liveness must have been exercised, not optimised away: each
        # side pinged, and the monitors still call the peer responsive.
        assert tx_mon.responsive and rx_mon.responsive
        if overhead_pct <= budget:
            return
        worst = max(worst, overhead_pct)
    raise AssertionError(
        f"heartbeats cost {worst:.2f}% in 5/5 measurements (> {budget}% budget)"
    )


if __name__ == "__main__":
    test_heartbeat_overhead_within_budget()
