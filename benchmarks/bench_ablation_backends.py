"""Ablation — conversion backend comparison: interpreted vs generated
Python vs the vcode virtual-RISC VM.

Mechanism-fidelity check (DESIGN.md): in the paper, DCG emits *native*
instructions, so generated code is the fastest path.  Under Python, the
structurally faithful vcode route executes on an interpreted VM and is
therefore the *slowest* — the performance role of native DCG transfers to
the generated-Python backend.  This ablation documents that inversion and
verifies all three backends agree bit-for-bit.
"""

import pytest

import support
from repro.abi import layout_record
from repro.core import IOFormat, build_plan
from repro.core.conversion import InterpretedConverter, generate_converter
from repro.workloads import mechanical

SIZES = ["100b", "1kb"]  # the VM is too slow for array-heavy 100 KB records


def make(size):
    schema = mechanical.schema_for_size(size)
    wire = IOFormat.from_layout(layout_record(schema, support.I86))
    native = IOFormat.from_layout(layout_record(schema, support.SPARC))
    plan = build_plan(wire, native)
    payload = mechanical.native_bytes(size, support.I86)
    return plan, payload


@pytest.mark.parametrize("size", SIZES)
def test_backend_interpreted(benchmark, size):
    plan, payload = make(size)
    conv = InterpretedConverter(plan)
    benchmark.group = f"ablation backends {size}"
    benchmark(conv.convert, payload)


@pytest.mark.parametrize("size", SIZES)
def test_backend_generated_python(benchmark, size):
    plan, payload = make(size)
    conv = generate_converter(plan, backend="python")
    benchmark.group = f"ablation backends {size}"
    benchmark(conv.convert, payload)


@pytest.mark.parametrize("size", SIZES)
def test_backend_vcode_vm(benchmark, size):
    plan, payload = make(size)
    conv = generate_converter(plan, backend="vcode")
    benchmark.group = f"ablation backends {size}"
    benchmark(conv.convert, payload)


def test_shape_backends_agree_and_rank():
    from repro.net import best_of

    for size in SIZES:
        plan, payload = make(size)
        interp = InterpretedConverter(plan)
        python = generate_converter(plan, backend="python")
        vcode = generate_converter(plan, backend="vcode")
        out = python.convert(payload)
        assert interp.convert(payload) == out
        assert vcode.convert(payload) == out
        t_int = best_of(lambda: interp.convert(payload), repeats=5, inner=5)
        t_py = best_of(lambda: python.convert(payload), repeats=5, inner=5)
        t_vc = best_of(lambda: vcode.convert(payload), repeats=5, inner=2)
        # Generated Python is the fastest backend; the VM route is the
        # slowest (the documented Python-world inversion).
        assert t_py <= t_int
        assert t_vc > t_py
