"""Figure 5 — end-to-end round-trip: PBIO (DCG) vs MPICH.

The paper composes the measured segment costs into full round-trips
(sparc -> i86 -> sparc) and finds PBIO completes the 100 KB exchange in
45 % of MPICH's time; at small sizes the gap narrows because the wire
time dominates.

CPU segments are measured; the network term comes from the calibrated
100 Mbps model (see repro.net.simulated).  The per-message benchmarks
below time the full local round trip (encode + decode both directions,
no network) so pytest-benchmark tracks the CPU totals; the shape test
checks the composed (network-inclusive) ratio.
"""

import pytest

import support


@pytest.fixture(scope="module")
def exchanges():
    out = {}
    for name, conv in (("MPICH", None), ("PBIO", "dcg")):
        for size in support.SIZES:
            fwd = support.build_exchange(name, size, support.SPARC, support.I86, conversion=conv)
            back = support.build_exchange(name, size, support.I86, support.SPARC, conversion=conv)
            out[(name, size)] = (fwd, back)
    return out


def _cpu_roundtrip(fwd, back):
    # sparc encode -> i86 decode -> i86 encode -> sparc decode
    message = fwd.bound.encode(fwd.native)
    fwd.bound.decode(message)
    reply = back.bound.encode(back.native)
    back.bound.decode(reply)


@pytest.mark.parametrize("size", support.SIZES)
@pytest.mark.parametrize("system", ["MPICH", "PBIO"])
def test_cpu_roundtrip(benchmark, exchanges, system, size):
    fwd, back = exchanges[(system, size)]
    benchmark.group = f"fig5 roundtrip {size}"
    benchmark(_cpu_roundtrip, fwd, back)


def test_shape_pbio_wins_and_gap_grows(exchanges):
    totals = {}
    for (name, size), (fwd, back) in exchanges.items():
        totals[(name, size)] = support.composed_roundtrip_ms(fwd, back)["total"]
    ratios = {size: totals[("PBIO", size)] / totals[("MPICH", size)] for size in support.SIZES}
    # PBIO no slower anywhere, and clearly faster for large messages.
    for size in support.SIZES:
        assert ratios[size] < 1.05
    # Paper: 45% at 100 KB.  Accept a band around it: the win must be
    # substantial (<85%) and bounded below by the incompressible network
    # share (>25%).
    assert 0.25 < ratios["100kb"] < 0.85
    # The relative gap widens with size (conversion cost scales, PBIO's
    # does much less).
    assert ratios["100kb"] < ratios["100b"]
