"""Figure 2 — sender-side encode times on the SPARC.

Paper: XML dramatically most expensive; MPICH and CORBA linear in record
size (34 µs to 13 ms for MPICH); PBIO flat (~3 µs) at every size because
NDR transmits the sender's bytes as-is.

The shape assertions check exactly those relations on our measurements:
PBIO flat and orders of magnitude below MPICH at 100 KB; XML the most
expensive; MPICH/CORBA linear.
"""

import pytest

import support

SYSTEMS = ["XML", "MPICH", "CORBA", "PBIO"]


@pytest.fixture(scope="module")
def exchanges():
    return {
        (name, size): support.build_exchange(name, size, support.SPARC, support.I86)
        for name in SYSTEMS
        for size in support.SIZES
    }


@pytest.mark.parametrize("size", support.SIZES)
@pytest.mark.parametrize("system", SYSTEMS)
def test_send_encode(benchmark, exchanges, system, size):
    ex = exchanges[(system, size)]
    benchmark.group = f"fig2 encode {size}"
    if system == "PBIO":
        benchmark(ex.bound.encode_segments, ex.native)
    else:
        benchmark(ex.bound.encode, ex.native)


def test_shape_pbio_flat_and_cheapest(exchanges):
    times = {
        key: support.measure_encode_ms(ex) for key, ex in exchanges.items()
    }
    # PBIO's encode cost is flat: 100 KB costs no more than 5x 100 B
    # (the paper reports a constant 3 µs; ours is constant header work).
    assert times[("PBIO", "100kb")] < 5 * times[("PBIO", "100b")]
    # 2-3 orders of magnitude under MPICH at 100 KB (paper: 13 ms vs 3 µs).
    assert times[("MPICH", "100kb")] / times[("PBIO", "100kb")] > 100
    for size in support.SIZES:
        # XML is the most expensive encode at every size.
        assert times[("XML", size)] > times[("MPICH", size)]
        assert times[("XML", size)] > times[("PBIO", size)]
        # PBIO is the cheapest at every size.
        assert times[("PBIO", size)] == min(times[(s, size)] for s in SYSTEMS)
    # MPICH and CORBA grow roughly linearly (100kb/1kb size ratio = 100x).
    for linear_system in ("MPICH", "CORBA"):
        growth = times[(linear_system, "100kb")] / times[(linear_system, "1kb")]
        assert 20 < growth < 500
