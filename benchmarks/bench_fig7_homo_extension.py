"""Figure 7 — receiver-side decode with and without an unexpected field,
homogeneous exchange (sparc -> sparc).

Here the mismatch matters: a matching exchange is zero-copy, while the
prepended unexpected field shifts every offset and forces the conversion
routine to relocate the fields.  The paper finds the resulting overhead
"non-negligible, but not as high as exists in the heterogeneous case",
and "roughly comparable to the cost of a memcpy() operation for the same
amount of data" — which is exactly what coalesced COPY plans produce.
"""

import pytest

import support
from bench_fig6_hetero_extension import build_extension_exchange
from repro.net import best_of


@pytest.fixture(scope="module")
def cases():
    return {
        (size, mismatched): build_extension_exchange(
            size, support.SPARC, support.SPARC, mismatched=mismatched
        )
        for size in support.SIZES
        for mismatched in (False, True)
    }


@pytest.mark.parametrize("size", support.SIZES)
@pytest.mark.parametrize("mismatched", [False, True], ids=["matched", "mismatched"])
def test_homo_receive(benchmark, cases, size, mismatched):
    bound, wire = cases[(size, mismatched)]
    benchmark.group = f"fig7 homo extension {size}"
    benchmark(bound.decode, wire)


def test_shape_mismatch_costs_about_a_memcpy(cases):
    for size in ("10kb", "100kb"):
        matched_bound, matched_wire = cases[(size, False)]
        mis_bound, mis_wire = cases[(size, True)]
        t_matched = best_of(lambda: matched_bound.decode(matched_wire), repeats=7, inner=5)
        t_mis = best_of(lambda: mis_bound.decode(mis_wire), repeats=7, inner=5)
        payload = bytes(mis_wire[16:])
        t_memcpy = best_of(lambda: bytes(bytearray(payload)), repeats=7, inner=10)
        overhead = t_mis - t_matched
        # Overhead is non-negligible but on the order of a memcpy.
        assert overhead < 20 * t_memcpy, size
        assert t_mis < 3 * (t_matched + 10 * t_memcpy), size


def test_shape_mismatched_homo_cheaper_than_heterogeneous(cases):
    """Paper: the homogeneous-mismatch overhead is 'not as high as exists
    in the heterogeneous case' (relocation is cheaper than byte-swapping
    every element)."""
    hetero = {
        size: build_extension_exchange(size, support.I86, support.SPARC, mismatched=True)
        for size in ("10kb", "100kb")
    }
    for size in ("10kb", "100kb"):
        homo_bound, homo_wire = cases[(size, True)]
        het_bound, het_wire = hetero[size]
        t_homo = best_of(lambda: homo_bound.decode(homo_wire), repeats=7, inner=5)
        t_het = best_of(lambda: het_bound.decode(het_wire), repeats=7, inner=5)
        assert t_homo < t_het, size
