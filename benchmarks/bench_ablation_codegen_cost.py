"""Ablation — one-time DCG generation cost vs per-record savings.

The paper (Section 3, citing [6]) argues "the one-time costs of
generating binary code coupled with the performance gains by then being
able to use compiled code far outweigh the costs of continually
interpreting data formats".  This ablation measures both sides: converter
generation time, and the per-record gap between interpreted and generated
conversion, giving the break-even record count.
"""

import pytest

import support
from repro.abi import layout_record
from repro.core import IOFormat, build_plan
from repro.core.conversion import InterpretedConverter, generate_converter
from repro.net import best_of
from repro.workloads import mechanical


def make_plan(size):
    schema = mechanical.schema_for_size(size)
    wire = IOFormat.from_layout(layout_record(schema, support.I86))
    native = IOFormat.from_layout(layout_record(schema, support.SPARC))
    return build_plan(wire, native)


@pytest.mark.parametrize("size", support.SIZES)
def test_generation_cost(benchmark, size):
    plan = make_plan(size)
    benchmark.group = "ablation: codegen one-time cost"
    benchmark(generate_converter, plan, backend="python")


@pytest.mark.parametrize("size", support.SIZES)
def test_interpreter_table_build_cost(benchmark, size):
    plan = make_plan(size)
    benchmark.group = "ablation: interpreter table one-time cost"
    benchmark(InterpretedConverter, plan)


def test_shape_breakeven_quickly(capsys):
    """Generation amortizes within a modest number of records."""
    for size in support.SIZES:
        plan = make_plan(size)
        native = mechanical.native_bytes(size, support.I86)
        gen = generate_converter(plan, backend="python")
        interp = InterpretedConverter(plan)
        t_gen = gen.generation_time_s
        t_dcg = best_of(lambda: gen.convert(native), repeats=5, inner=5)
        t_int = best_of(lambda: interp(native), repeats=5, inner=5)
        saving = t_int - t_dcg
        assert saving > 0, size
        breakeven = t_gen / saving
        with capsys.disabled():
            print(
                f"  codegen break-even {size}: generation {t_gen * 1e3:.3f} ms, "
                f"saving {saving * 1e6:.2f} us/record -> {breakeven:.0f} records"
            )
        # For array-heavy records DCG pays for itself within ~1000 records;
        # the paper's use case streams thousands to millions of records.
        if size in ("10kb", "100kb"):
            assert breakeven < 2000
