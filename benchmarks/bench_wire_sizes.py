"""Section 4.2 (text) — wire message sizes and the XML expansion factor.

The paper notes XML's "substantially higher network transmission costs
because the ASCII-encoded record is larger, often substantially larger,
than the binary original (an expansion factor of 6-8 is not unusual)"
and that packed formats (XDR/MPI/CDR) are slightly smaller than NDR
(which keeps native padding on the wire).
"""

import pytest

import support
from repro.wire import XdrWire
from repro.abi import layout_record
from repro.workloads import mechanical

SYSTEMS = ["XML", "MPICH", "CORBA", "PBIO"]


@pytest.fixture(scope="module")
def wire_sizes():
    sizes = {}
    for name in SYSTEMS:
        for size in support.SIZES:
            ex = support.build_exchange(name, size, support.SPARC, support.I86)
            sizes[(name, size)] = len(ex.wire)
    for size in support.SIZES:
        schema = mechanical.schema_for_size(size)
        src = layout_record(schema, support.SPARC)
        dst = layout_record(schema, support.I86)
        bound = XdrWire().bind(src, dst)
        sizes[("XDR", size)] = len(bound.encode(mechanical.native_bytes(size, support.SPARC)))
    return sizes


@pytest.mark.parametrize("size", support.SIZES)
@pytest.mark.parametrize("system", SYSTEMS)
def test_encode_for_size_accounting(benchmark, system, size):
    ex = support.build_exchange(system, size, support.SPARC, support.I86)
    benchmark.group = f"wire sizes {size}"
    benchmark.extra_info["wire_bytes"] = len(ex.wire)
    benchmark(ex.bound.encode, ex.native)


def test_shape_xml_expansion_factor(wire_sizes):
    # The paper quotes 6-8x for its records; ours are double-array-heavy
    # (17 significant digits ~= 2.5x per double plus tags), so the factor
    # lands lower for the large sizes and higher for the scalar-rich 100 B
    # record.  It must be substantially above 1 everywhere.
    for size in support.SIZES:
        native = mechanical.nominal_bytes(size)
        factor = wire_sizes[("XML", size)] / native
        assert 2.0 < factor < 12.0, (size, factor)
    assert wire_sizes[("XML", "100b")] / mechanical.nominal_bytes("100b") > 4.0


def test_shape_binary_formats_near_native_size(wire_sizes):
    for size in support.SIZES:
        native = mechanical.nominal_bytes(size)
        for system in ("MPICH", "CORBA", "XDR", "PBIO"):
            assert wire_sizes[(system, size)] < 1.3 * native + 64, (system, size)


def test_shape_packed_formats_never_larger_than_ndr(wire_sizes):
    # NDR ships native padding; packed formats squeeze it out (modulo
    # their own headers on small records).
    for size in ("10kb", "100kb"):
        assert wire_sizes[("MPICH", size)] <= wire_sizes[("PBIO", size)]
