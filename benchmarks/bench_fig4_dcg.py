"""Figure 4 — receiver-side costs: MPICH vs PBIO interpreted vs PBIO DCG.

The paper's key result: the dynamically generated conversion routine
"operates significantly faster than the interpreted version", removing
conversion as a major communication cost and bringing it "down to near
the level of a copy operation".

Shape assertions: DCG < interpreted < MPICH at every size above 100 B,
and DCG within a small multiple of a raw memcpy of the same record.
"""

import pytest

import support
from repro.net import best_of

VARIANTS = {
    "MPICH": ("MPICH", None),
    "PBIO-interpreted": ("PBIO", "interpreted"),
    "PBIO-DCG": ("PBIO", "dcg"),
}


@pytest.fixture(scope="module")
def exchanges():
    return {
        (label, size): support.build_exchange(name, size, support.I86, support.SPARC, conversion=conv)
        for label, (name, conv) in VARIANTS.items()
        for size in support.SIZES
    }


@pytest.mark.parametrize("size", support.SIZES)
@pytest.mark.parametrize("label", list(VARIANTS))
def test_recv_decode(benchmark, exchanges, label, size):
    ex = exchanges[(label, size)]
    benchmark.group = f"fig4 decode {size}"
    benchmark(ex.bound.decode, ex.wire)


def test_shape_dcg_fastest(exchanges):
    times = {key: support.measure_decode_ms(ex) for key, ex in exchanges.items()}
    for size in ("1kb", "10kb", "100kb"):
        assert times[("PBIO-DCG", size)] < times[("PBIO-interpreted", size)]
        assert times[("PBIO-interpreted", size)] < times[("MPICH", size)]
    # DCG improvement over interpretation is substantial at array-heavy
    # sizes (paper: ~3x at 100 KB; numpy lowering gives us more).
    assert times[("PBIO-interpreted", "100kb")] / times[("PBIO-DCG", "100kb")] > 3


def test_shape_dcg_near_copy_cost(exchanges):
    """DCG conversion approaches the cost of a copy of the same bytes."""
    ex = exchanges[("PBIO-DCG", "100kb")]
    payload = ex.wire[16:]
    copy_ms = best_of(lambda: bytes(bytearray(payload)), repeats=7, inner=5) * 1e3
    dcg_ms = support.measure_decode_ms(ex)
    assert dcg_ms < 10 * copy_ms
