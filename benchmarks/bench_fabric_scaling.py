"""Fabric scaling and edge filter push-down.

Two claims from the sharded-fabric design (docs/fabric.md) are gated
here:

* **Horizontal scaling** — one relay process is one event loop, so a
  sharded fabric should approach linear throughput in worker count.
  The measurement forks real OS processes (one per
  :class:`~repro.net.fabric.RelayWorker`), partitions the channels with
  the same :class:`~repro.net.fabric.HashRing` a dispatcher uses, and
  times the whole fleet wall-clock over a fixed workload of 32-record
  bursts of ~1 KiB mechanical records.  Gate: 1 -> 4 workers speeds up
  by >= ``PBIO_BENCH_FABRIC_SCALE_MIN`` (default 1.8x).  Skipped below
  4 CPUs — a single core cannot exhibit parallel speedup.

* **Filter push-down** — a subscriber interested in 1% of a stream
  should not decode the other 99%.  The same workload flows through a
  worker twice: once with ``filter_expr`` pushed down to the leaf (the
  DCG predicate reads two fields out of the packed bytes; only matches
  are delivered and decoded) and once delivered unfiltered with the
  subscriber decoding every record and filtering natively.  Gate: at 1%
  selectivity push-down is >= ``PBIO_BENCH_FABRIC_PUSHDOWN_MIN``
  (default 5x) faster end to end; 10% and 50% are reported alongside.

``PBIO_BENCH_FABRIC_CHANNELS`` / ``PBIO_BENCH_FABRIC_BURSTS`` scale the
workload (CI smoke shrinks it).
"""

import multiprocessing
import os
import struct
import time

import pytest

import support
from repro.core import IOContext
from repro.core import encoder as enc
from repro.net import HashRing, InMemoryPipe, RelayWorker
from repro.net.transport import Transport
from repro.workloads import mechanical
from repro.workloads.generators import record_stream

SCHEMA = mechanical.schema_for_size("1kb")
BURST = 32  # the acceptance workload: bursts of 32 x ~1kb records
BASE_CID = 0x5000


def _channels() -> int:
    return max(2, int(os.environ.get("PBIO_BENCH_FABRIC_CHANNELS", "8")))


def _bursts() -> int:
    return max(1, int(os.environ.get("PBIO_BENCH_FABRIC_BURSTS", "16")))


def _scale_min() -> float:
    return float(os.environ.get("PBIO_BENCH_FABRIC_SCALE_MIN", "1.8"))


def _pushdown_min() -> float:
    return float(os.environ.get("PBIO_BENCH_FABRIC_PUSHDOWN_MIN", "5.0"))


def _repeats() -> int:
    return min(3, support.default_repeats())


class _Sink(Transport):
    """A subscriber endpoint that absorbs frames at memcpy speed — the
    scaling bench measures the fabric's work, not a consumer's."""

    def send(self, message) -> None:
        pass

    def send_many(self, messages) -> None:
        pass

    def recv(self) -> bytes:
        raise NotImplementedError

    def poll_recv(self) -> None:
        return None

    def close(self) -> None:
        pass


def _channel_frames(channels: int, bursts: int) -> dict[tuple[int, int], list[bytes]]:
    """``{key: [announcement, *data frames]}`` for every channel.

    One encode pass builds the template channel; the others are the same
    frames re-addressed (the context id lives at a fixed header offset),
    exactly what a multi-tenant ingress stream looks like.
    """
    sender = IOContext(support.SPARC, context_id=BASE_CID)
    handle = sender.register_format(SCHEMA)
    records = list(record_stream(SCHEMA, count=BURST * bursts, seed=5))
    for i, record in enumerate(records):
        record["timestep"] = i % 100
    template = [sender.announce(handle)] + [sender.encode(handle, r) for r in records]
    out = {}
    for c in range(channels):
        cid = BASE_CID + c
        readdress = struct.Struct(">I").pack(cid)
        out[(cid, handle.format_id)] = [
            bytes(f[:4]) + readdress + bytes(f[8:]) for f in template
        ]
    return out


def _shard_main(name, shard, subscribers, barrier, out) -> None:
    """One forked fabric shard: subscribe sinks, sync, ingest, report."""
    worker = RelayWorker(name)
    for key in shard:
        for _ in range(subscribers):
            worker.subscribe(key, _Sink(), format_name=None)
    barrier.wait()
    t0 = time.perf_counter()
    routed = 0
    for key, frames in shard.items():
        worker.ingest(frames[0])  # the announcement
        data = frames[1:]
        for i in range(0, len(data), BURST):
            chunk = data[i : i + BURST]
            worker.ingest_batch([(m, enc.try_unpack_header(m)) for m in chunk])
            routed += len(chunk)
    elapsed = time.perf_counter() - t0
    barrier.wait()
    out.put((name, routed, elapsed))


def _run_fleet(frames_by_key, workers: int, subscribers: int = 2) -> tuple[float, int]:
    """Fork one process per worker, ring-partition the channels, return
    (fleet wall seconds, records routed)."""
    ring = HashRing([f"w{i}" for i in range(workers)])
    shards: dict[str, dict] = {f"w{i}": {} for i in range(workers)}
    for key, frames in frames_by_key.items():
        shards[ring.owner(key)][key] = frames
    shards = {name: shard for name, shard in shards.items() if shard}
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(len(shards) + 1)
    out = ctx.Queue()
    procs = [
        ctx.Process(target=_shard_main, args=(name, shard, subscribers, barrier, out))
        for name, shard in shards.items()
    ]
    for proc in procs:
        proc.start()
    barrier.wait()
    barrier.wait()
    # Fleet wall = the slowest shard's own clock.  Every shard starts
    # its timer on the same barrier release, so max(elapsed) is the
    # start-synchronized makespan — unlike timing barrier-to-barrier in
    # this parent, which undercounts arbitrarily when the parent is
    # descheduled between the barrier release and its t0.
    wall = 0.0
    routed = 0
    for _ in procs:
        _name, n, elapsed = out.get(timeout=30)
        routed += n
        wall = max(wall, elapsed)
    for proc in procs:
        proc.join(timeout=30)
    return wall, routed


def measure_scaling(worker_counts=(1, 2, 4)) -> dict[int, float]:
    """``{workers: records/second}`` over the fixed burst workload."""
    frames_by_key = _channel_frames(_channels(), _bursts())
    total = sum(len(frames) - 1 for frames in frames_by_key.values())
    rates = {}
    for workers in worker_counts:
        wall = float("inf")
        for _ in range(_repeats()):
            elapsed, routed = _run_fleet(frames_by_key, workers)
            assert routed == total, f"{routed} routed of {total}"
            wall = min(wall, elapsed)
        rates[workers] = total / wall
    return rates


def test_fabric_scaling_1_to_4_workers():
    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(f"parallel speedup needs >= 4 CPUs (this host has {cpus})")
    floor = _scale_min()
    rates = measure_scaling((1, 4))
    speedup = rates[4] / rates[1]
    print(
        f"\n1 worker {rates[1]:,.0f} rec/s | 4 workers {rates[4]:,.0f} rec/s "
        f"-> {speedup:.2f}x (gate >= {floor:.1f}x)"
    )
    assert speedup >= floor, (
        f"sharding 1 -> 4 workers sped up only {speedup:.2f}x (< {floor:.1f}x)"
    )


# -- filter push-down ----------------------------------------------------------


def _build_edge(frames, key, expression, cutoff=0):
    """One worker with a single subscriber leaf (filtered or not) and a
    decoding receiver; returns (run_once, delivered_counter)."""
    worker = RelayWorker("edge")
    pipe = InMemoryPipe()
    worker.subscribe(
        key, pipe.a, format_name=SCHEMA.name, filter_expr=expression
    )
    rx = IOContext(support.I86)
    rx.expect(SCHEMA)
    worker.ingest(frames[0])  # announcement: warm the leaf's registry
    data = frames[1:]
    pairs = [(m, enc.try_unpack_header(m)) for m in data]

    def run() -> int:
        for i in range(0, len(pairs), BURST):
            worker.ingest_batch(pairs[i : i + BURST])
        matched = 0
        while (frame := pipe.b.poll_recv()) is not None:
            record = rx.receive(frame)
            if record is None:
                continue  # the announcement replay
            if expression is None:
                # Subscriber-side filtering: full decode, then test.
                if record["timestep"] < cutoff:
                    matched += 1
            else:
                matched += 1
        return matched

    run()  # warm converters and the compiled predicate outside timing
    return run


def measure_pushdown(selectivities=(1, 10, 50)) -> dict[int, tuple[float, float]]:
    """``{selectivity_pct: (t_pushdown_s, t_full_decode_s)}`` per pass."""
    frames_by_key = _channel_frames(1, _bursts())
    ((key, frames),) = frames_by_key.items()
    out = {}
    for pct in selectivities:
        push = _build_edge(frames, key, f"timestep < {pct}")
        full = _build_edge(frames, key, None, cutoff=pct)
        n = len(frames) - 1
        expect = sum(1 for i in range(n) if i % 100 < pct)
        assert push() == full() == expect
        t_push = t_full = float("inf")
        for _ in range(_repeats()):
            t_push = min(t_push, _timed(push))
            t_full = min(t_full, _timed(full))
        out[pct] = (t_push, t_full)
    return out


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_filter_pushdown_beats_full_decode():
    floor = _pushdown_min()
    results = measure_pushdown()
    print()
    for pct, (t_push, t_full) in results.items():
        print(
            f"selectivity {pct:3d}%: push-down {t_push * 1e3:8.2f} ms | "
            f"full decode {t_full * 1e3:8.2f} ms -> {t_full / t_push:5.2f}x"
        )
    t_push, t_full = results[1]
    speedup = t_full / t_push
    assert speedup >= floor, (
        f"1%-selectivity push-down only {speedup:.2f}x faster than "
        f"subscriber-side full decode (< {floor:.1f}x)"
    )


if __name__ == "__main__":
    rates = measure_scaling()
    for workers, rate in rates.items():
        print(f"{workers} worker(s): {rate:12,.0f} rec/s")
    test_filter_pushdown_beats_full_decode()
