"""pytest configuration for the benchmark suite."""

import sys
from pathlib import Path

# Make `import support` work when pytest is invoked from the repo root.
sys.path.insert(0, str(Path(__file__).parent))
