"""Extension benchmark — RPC marshalling: PBIO-RPC vs the CORBA ORB.

Section 4.3 casts receiver conversion as the RPC marshalling problem and
claims runtime-generated conversions rival compile-time stubs (USC).
This bench runs the same calculator interface over both RPC stacks:

* CORBA: compile-time-style CDR stubs, element-wise marshal/unmarshal on
  both ends, every call;
* PBIO-RPC: NDR — the homogeneous case marshals nothing; the
  heterogeneous case pays one DCG conversion per direction.

Both measured as synchronous call round-trips over in-memory pipes (no
network term, isolating the marshalling cost the paper discusses).
"""

import pytest

import support
from repro.abi import RecordSchema
from repro.core import RpcClient, RpcInterface, RpcOperation, RpcServer
from repro.net import InMemoryPipe, best_of
from repro.wire.iiop import Interface, ObjectAdapter, Operation, OrbClient

REQ = RecordSchema.from_pairs("solve_req", [("rhs", "double[64]"), ("tol", "double")])
REP = RecordSchema.from_pairs("solve_rep", [("x", "double[64]"), ("iters", "int")])

REQUEST = {"rhs": tuple(float(i) for i in range(64)), "tol": 1e-9}


def solve(req):
    return {"x": tuple(v * 0.5 for v in req["rhs"]), "iters": 12}


def corba_stack(client_machine, server_machine):
    interface = Interface("Solver", [Operation("solve", REQ, REP)])
    pipe = InMemoryPipe()
    client = OrbClient(client_machine, interface)
    adapter = ObjectAdapter(server_machine, interface)
    adapter.register(b"solver", {"solve": solve})

    class Loop:
        def send(self, data):
            pipe.a.send(data)
            pipe.b.send(adapter.handle(pipe.b.recv()))

        def recv(self):
            return pipe.a.recv()

    transport = Loop()
    return lambda: client.invoke(transport, b"solver", "solve", REQUEST)


def pbio_stack(client_machine, server_machine):
    interface = RpcInterface("Solver", [RpcOperation("solve", REQ, REP)])
    pipe = InMemoryPipe()
    client = RpcClient(client_machine, interface)
    server = RpcServer(server_machine, interface)
    server.register(b"solver", {"solve": solve})

    class Loop:
        def send(self, data):
            pipe.a.send(data)

        def recv(self):
            while pipe.b.pending() and not pipe.a.pending():
                server.serve_one(pipe.b)
            return pipe.a.recv()

    transport = Loop()
    call = lambda: client.invoke(transport, b"solver", "solve", REQUEST)  # noqa: E731
    call()  # warm: announcements + converters
    return call


CASES = {
    "CORBA homogeneous": lambda: corba_stack(support.I86, support.I86),
    "CORBA heterogeneous": lambda: corba_stack(support.I86, support.SPARC),
    "PBIO homogeneous": lambda: pbio_stack(support.I86, support.I86),
    "PBIO heterogeneous": lambda: pbio_stack(support.I86, support.SPARC),
}


@pytest.mark.parametrize("case", list(CASES))
def test_rpc_call(benchmark, case):
    call = CASES[case]()
    benchmark.group = "rpc round-trip (64-double args)"
    benchmark(call)


def test_shape_pbio_rpc_cheaper():
    times = {name: best_of(CASES[name](), repeats=5, inner=5) for name in CASES}
    # PBIO beats the ORB in both configurations (no per-element stubs)...
    assert times["PBIO homogeneous"] < times["CORBA homogeneous"]
    assert times["PBIO heterogeneous"] < times["CORBA heterogeneous"]
    # ...while CORBA pays marshalling even between identical machines.
    assert times["CORBA homogeneous"] > 0.5 * times["CORBA heterogeneous"]
