"""Ablation — where should generated code switch from struct batching to
numpy lowering?

The DCG backend lowers element runs of >= NUMPY_THRESHOLD onto numpy
(frombuffer/astype/tobytes); below that it emits batched struct calls.
This ablation sweeps array lengths across the boundary and verifies the
configured threshold is sane: struct wins for tiny runs (numpy has fixed
per-call overhead), numpy wins decisively for long runs.
"""

import struct as struct_mod

import pytest

import support
from repro.abi import RecordSchema, codec_for, layout_record
from repro.core import IOFormat, build_plan
from repro.core.conversion import generate_python_converter
from repro.core.conversion.vectorized import NUMPY_THRESHOLD
from repro.net import best_of

COUNTS = [2, 8, NUMPY_THRESHOLD, 64, 1024, 8192]


def converter_for_count(count, *, force):
    """Build a double[count] swap converter with a chosen lowering."""
    import repro.core.conversion.vectorized as vec
    import repro.core.conversion.codegen as cg

    schema = RecordSchema.from_pairs("t", [("v", f"double[{count}]")])
    plan = build_plan(
        IOFormat.from_layout(layout_record(schema, support.I86)),
        IOFormat.from_layout(layout_record(schema, support.SPARC)),
    )
    original = (vec.NUMPY_THRESHOLD, cg.NUMPY_THRESHOLD)
    try:
        forced = 1 if force == "numpy" else 10**9
        vec.NUMPY_THRESHOLD = forced
        cg.NUMPY_THRESHOLD = forced
        gen = generate_python_converter(plan)
    finally:
        vec.NUMPY_THRESHOLD, cg.NUMPY_THRESHOLD = original
    payload = codec_for(layout_record(schema, support.I86)).encode(
        {"v": tuple(float(i) for i in range(count))}
    )
    return gen.convert, payload


@pytest.mark.parametrize("count", COUNTS)
@pytest.mark.parametrize("force", ["struct", "numpy"])
def test_swap_lowering(benchmark, count, force):
    convert, payload = converter_for_count(count, force=force)
    benchmark.group = f"numpy threshold, double[{count}]"
    benchmark(convert, payload)


def test_shape_both_lowerings_agree():
    for count in COUNTS:
        a, payload = converter_for_count(count, force="struct")
        b, _ = converter_for_count(count, force="numpy")
        assert a(payload) == b(payload)


def test_shape_numpy_wins_for_long_runs():
    t_struct = {}
    t_numpy = {}
    for count in (8, 8192):
        conv_s, payload = converter_for_count(count, force="struct")
        conv_n, _ = converter_for_count(count, force="numpy")
        t_struct[count] = best_of(lambda: conv_s(payload), repeats=7, inner=20)
        t_numpy[count] = best_of(lambda: conv_n(payload), repeats=7, inner=20)
    # At 8192 elements numpy must win by a wide margin...
    assert t_numpy[8192] < t_struct[8192] / 5
    # ...while at 8 elements it must not (struct within 3x either way).
    assert t_struct[8] < 3 * t_numpy[8]
