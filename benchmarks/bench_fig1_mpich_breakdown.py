"""Figure 1 — cost breakdown of an MPICH message round-trip.

The paper measures an MPI round-trip between a SPARC and an x86 host on
100 Mbps Ethernet and splits it into encode / network / decode segments
per leg, observing that encode+decode reaches ~66 % of the total for
heterogeneous exchanges.

Benchmarks here time the four CPU segments (sparc encode, i86 decode,
i86 encode, sparc decode); the shape test composes them with the
calibrated network model and checks the paper's headline observation.
Run ``python benchmarks/harness.py fig1`` for the full figure.
"""

import pytest

import support


@pytest.fixture(scope="module")
def exchanges():
    fwd = {s: support.build_exchange("MPICH", s, support.SPARC, support.I86) for s in support.SIZES}
    back = {s: support.build_exchange("MPICH", s, support.I86, support.SPARC) for s in support.SIZES}
    return fwd, back


@pytest.mark.parametrize("size", support.SIZES)
def test_sparc_encode(benchmark, exchanges, size):
    ex = exchanges[0][size]
    benchmark.group = f"fig1 {size}"
    benchmark(ex.bound.encode, ex.native)


@pytest.mark.parametrize("size", support.SIZES)
def test_i86_decode(benchmark, exchanges, size):
    ex = exchanges[0][size]
    benchmark.group = f"fig1 {size}"
    benchmark(ex.bound.decode, ex.wire)


@pytest.mark.parametrize("size", support.SIZES)
def test_i86_encode(benchmark, exchanges, size):
    ex = exchanges[1][size]
    benchmark.group = f"fig1 {size}"
    benchmark(ex.bound.encode, ex.native)


@pytest.mark.parametrize("size", support.SIZES)
def test_sparc_decode(benchmark, exchanges, size):
    ex = exchanges[1][size]
    benchmark.group = f"fig1 {size}"
    benchmark(ex.bound.decode, ex.wire)


def test_shape_encode_decode_dominate_total(exchanges):
    """Paper: encode/decode costs 'typically represent 66% of the total
    cost of the exchange' for MPICH heterogeneous round-trips.  With our
    Python CPU costs the fraction is not the paper's 66% (see
    EXPERIMENTS.md deviation D2; it hovers near 25% on the dev host), but
    it must be substantial (>15%) and must *grow* with message size,
    which is the observation that motivates the paper."""
    fwd, back = exchanges
    fractions = {}
    for size in support.SIZES:
        seg = support.composed_roundtrip_ms(fwd[size], back[size])
        cpu = seg["fwd_encode"] + seg["fwd_decode"] + seg["back_encode"] + seg["back_decode"]
        fractions[size] = cpu / seg["total"]
    assert fractions["100kb"] > 0.15
    assert fractions["100kb"] > fractions["100b"]
