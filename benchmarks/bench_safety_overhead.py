"""Happy-path overhead of the validated decode frontend (ISSUE 3).

Hostile-input hardening must be deployable by default: decoding with
``DEFAULT_LIMITS`` (size checks on every message, meta validation on
announcements, payload/record-size consistency) has to stay within a few
percent of ``limits=None`` (the seed behaviour: no resource checks) on
the steady-state path the paper measures — repeated data-message decode
with warm converters.

This bench times a recv-side decode loop on a heterogeneous pair:

* ``unchecked`` — the receive context built with ``limits=None``;
* ``checked``   — the same context shape with ``DEFAULT_LIMITS``.

Acceptance: the penalty is <= ``PBIO_BENCH_OVERHEAD_MAX`` percent
(default 5).  Timing discipline is the same as
``bench_fault_overhead.py``: interleaved rounds, median per-round ratio
vs ratio-of-minima, best of three measurements.
"""

import os
import statistics

import support
from repro.abi import RecordSchema, codec_for, layout_record
from repro.core import DEFAULT_LIMITS, IOContext
from repro.net import best_of

SCHEMA = RecordSchema.from_pairs(
    "sample", [("seq", "int"), ("values", "double[16]"), ("tag", "char[8]")]
)

RECORD = {"seq": 7, "values": tuple(float(i) for i in range(16)), "tag": b"round"}


def _inner() -> int:
    override = os.environ.get("PBIO_BENCH_INNER")
    return max(1, int(override)) if override else 2000


def _overhead_budget_pct() -> float:
    override = os.environ.get("PBIO_BENCH_OVERHEAD_MAX")
    return float(override) if override else 5.0


def _build_decode_loop(limits):
    """A warmed decode closure for one converting receive path."""
    sender = IOContext(support.X86)
    receiver = IOContext(support.SPARC, limits=limits)
    handle = sender.register_format(SCHEMA)
    receiver.expect(SCHEMA)
    receiver.receive(sender.announce(handle))
    codec = codec_for(layout_record(SCHEMA, support.X86))
    message = sender.encode_native(handle, codec.encode(RECORD))
    decode = receiver.decode

    def loop():
        decode(message)

    loop()  # warm the converter outside the timed region
    return loop


def _compare() -> tuple[float, float, float]:
    """Interleaved rounds: (unchecked_s, checked_s, overhead_pct)."""
    unchecked_fn = _build_decode_loop(None)
    checked_fn = _build_decode_loop(DEFAULT_LIMITS)
    inner = _inner()
    unchecked = checked = float("inf")
    ratios = []
    for i in range(3 * support.default_repeats()):
        if i % 2 == 0:
            u = best_of(unchecked_fn, repeats=1, inner=inner)
            c = best_of(checked_fn, repeats=1, inner=inner)
        else:
            c = best_of(checked_fn, repeats=1, inner=inner)
            u = best_of(unchecked_fn, repeats=1, inner=inner)
        unchecked = min(unchecked, u)
        checked = min(checked, c)
        ratios.append(c / u)
    overhead = min(statistics.median(ratios), checked / unchecked)
    return unchecked, checked, (overhead - 1.0) * 100.0


def test_default_limits_overhead_within_budget():
    """Same re-measure-on-noise discipline as bench_fault_overhead."""
    budget = _overhead_budget_pct()
    worst = -float("inf")
    for _ in range(3):
        unchecked, checked, overhead_pct = _compare()
        print(
            f"\nunchecked {unchecked * 1e6:.2f} us | checked {checked * 1e6:.2f} us "
            f"-> overhead {overhead_pct:+.2f}% (budget {budget:.0f}%)"
        )
        if overhead_pct <= budget:
            return
        worst = max(worst, overhead_pct)
    raise AssertionError(
        f"DEFAULT_LIMITS costs {worst:.2f}% in 3/3 measurements (> {budget}% budget)"
    )


if __name__ == "__main__":
    test_default_limits_overhead_within_budget()
