"""Figure 3 — receiver-side decode times on the SPARC (interpreted
converters), heterogeneous x86 -> sparc exchange.

Paper: XML "typically between one and two orders of decimal magnitude
more costly" than PBIO's interpreted NDR converter; PBIO's interpreter
"performs considerably better than MPI, in part because MPICH uses a
separate buffer for the unpacked message".

Note the direction: the paper measures the *SPARC* side, so the sender
here is the x86 machine.
"""

import pytest

import support

SYSTEMS = ["XML", "MPICH", "CORBA", "PBIO"]


@pytest.fixture(scope="module")
def exchanges():
    out = {}
    for name in SYSTEMS:
        for size in support.SIZES:
            conversion = "interpreted" if name == "PBIO" else None
            out[(name, size)] = support.build_exchange(
                name, size, support.I86, support.SPARC, conversion=conversion
            )
    return out


@pytest.mark.parametrize("size", support.SIZES)
@pytest.mark.parametrize("system", SYSTEMS)
def test_recv_decode(benchmark, exchanges, system, size):
    ex = exchanges[(system, size)]
    benchmark.group = f"fig3 decode {size}"
    benchmark(ex.bound.decode, ex.wire)


def test_shape_orderings(exchanges):
    times = {key: support.measure_decode_ms(ex) for key, ex in exchanges.items()}
    for size in ("1kb", "10kb", "100kb"):
        # XML most expensive; PBIO interpreted beats MPICH and CORBA.
        assert times[("XML", size)] > times[("MPICH", size)]
        assert times[("PBIO", size)] < times[("MPICH", size)]
        assert times[("PBIO", size)] < times[("CORBA", size)]
    # XML vs PBIO-interpreted: a large multiple (paper: 1-2 decimal orders
    # of magnitude; interpreter-ratio compression in Python shrinks this,
    # see EXPERIMENTS.md).
    assert times[("XML", "10kb")] / times[("PBIO", "10kb")] > 4
