"""Regenerate every table/figure of the paper in one run.

Usage::

    python benchmarks/harness.py            # everything
    python benchmarks/harness.py fig2 fig5  # selected figures

Output is the text form of each figure: the same rows/series the paper
reports, with our measured values (CPU segments measured on this host,
network segments from the calibrated 100 Mbps model).  EXPERIMENTS.md
records one full run next to the paper's numbers.
"""

from __future__ import annotations

import sys

import support
from repro.abi import CType, FieldDecl, codec_for, layout_record
from repro.core import IOContext, PbioWire
from repro.net import TimingTable, best_of, paper_network_times_ms
from repro.workloads import mechanical

SIZES = list(support.SIZES)


def fig1() -> None:
    print("=" * 78)
    print("Figure 1: MPICH round-trip cost breakdown (sparc <-> i86, 100 Mbps model)")
    print("=" * 78)
    paper_totals = {"100b": 0.66, "1kb": 1.11, "10kb": 8.43, "100kb": 80.0}
    for size in SIZES:
        fwd = support.build_exchange("MPICH", size, support.SPARC, support.I86)
        back = support.build_exchange("MPICH", size, support.I86, support.SPARC)
        seg = support.composed_roundtrip_ms(fwd, back)
        cpu_frac = (
            seg["fwd_encode"] + seg["fwd_decode"] + seg["back_encode"] + seg["back_decode"]
        ) / seg["total"]
        print(
            f"{size:>6}: sparc-enc {seg['fwd_encode']:.4f} | net {seg['fwd_network']:.3f} | "
            f"i86-dec {seg['fwd_decode']:.4f} | i86-enc {seg['back_encode']:.4f} | "
            f"net {seg['back_network']:.3f} | sparc-dec {seg['back_decode']:.4f}  "
            f"=> total {seg['total']:.3f} ms (enc+dec {cpu_frac * 100:.0f}%)"
        )
        print(
            f"        paper total {paper_totals[size]:.2f} ms; paper one-way net "
            f"{paper_network_times_ms()[size]:.3f} ms"
        )
    print()


def fig2() -> None:
    print("=" * 78)
    print("Figure 2: sender-side encode times on the sparc (ms)")
    print("=" * 78)
    table = TimingTable("send encode (ms)", SIZES)
    for name in ("XML", "MPICH", "CORBA", "PBIO"):
        row = []
        for size in SIZES:
            ex = support.build_exchange(name, size, support.SPARC, support.I86)
            row.append(support.measure_encode_ms(ex))
        table.add(name, row)
    print(table.render())
    print("paper: XML >> MPICH ~ CORBA (linear); PBIO flat ~0.003 ms at all sizes")
    print()


def fig3() -> None:
    print("=" * 78)
    print("Figure 3: receiver-side decode times on the sparc, interpreted (ms)")
    print("=" * 78)
    table = TimingTable("recv decode (ms)", SIZES)
    for name in ("XML", "MPICH", "CORBA", "PBIO"):
        conv = "interpreted" if name == "PBIO" else None
        row = []
        for size in SIZES:
            ex = support.build_exchange(name, size, support.I86, support.SPARC, conversion=conv)
            row.append(support.measure_decode_ms(ex))
        table.add(name if name != "PBIO" else "PBIO(interp)", row)
    print(table.render())
    print("paper: XML 1-2 orders above the rest; PBIO interpreted below MPICH/CORBA")
    print()


def fig4() -> None:
    print("=" * 78)
    print("Figure 4: receiver decode, interpreted vs DCG (ms)")
    print("=" * 78)
    table = TimingTable("recv decode (ms)", SIZES)
    for label, name, conv in (
        ("MPICH", "MPICH", None),
        ("PBIO(interp)", "PBIO", "interpreted"),
        ("PBIO(DCG)", "PBIO", "dcg"),
    ):
        row = []
        for size in SIZES:
            ex = support.build_exchange(name, size, support.I86, support.SPARC, conversion=conv)
            row.append(support.measure_decode_ms(ex))
        table.add(label, row)
    print(table.render())
    print("paper at 100Kb: MPICH 11.63, PBIO interp 3.32, PBIO DCG 1.16 (ms)")
    print()


def fig5() -> None:
    print("=" * 78)
    print("Figure 5: round-trip comparison, PBIO DCG vs MPICH (ms)")
    print("=" * 78)
    paper = {
        "MPICH": {"100b": 0.66, "1kb": 1.11, "10kb": 8.43, "100kb": 80.0},
        "PBIO": {"100b": 0.62, "1kb": 0.87, "10kb": 4.3, "100kb": 35.27},
    }
    totals: dict[tuple[str, str], float] = {}
    for name, conv in (("MPICH", None), ("PBIO", "dcg")):
        for size in SIZES:
            fwd = support.build_exchange(name, size, support.SPARC, support.I86, conversion=conv)
            back = support.build_exchange(name, size, support.I86, support.SPARC, conversion=conv)
            seg = support.composed_roundtrip_ms(fwd, back)
            totals[(name, size)] = seg["total"]
            print(
                f"{name:>6} {size:>6}: enc {seg['fwd_encode']:.4f} net {seg['fwd_network']:.3f} "
                f"dec {seg['fwd_decode']:.4f} | enc {seg['back_encode']:.4f} "
                f"net {seg['back_network']:.3f} dec {seg['back_decode']:.4f} "
                f"=> {seg['total']:.3f} ms (paper {paper[name][size]:.2f} ms)"
            )
    for size in SIZES:
        ratio = totals[("PBIO", size)] / totals[("MPICH", size)]
        paper_ratio = paper["PBIO"][size] / paper["MPICH"][size]
        print(f"  PBIO/MPICH at {size}: measured {ratio:.2f}, paper {paper_ratio:.2f}")
    print()


def _extension_case(size, src_machine, dst_machine, mismatched):
    expected = mechanical.schema_for_size(size)
    sent = (
        expected.extended(expected.name, [FieldDecl("unexpected", CType.INT)], prepend=True)
        if mismatched
        else expected
    )
    src_layout = layout_record(sent, src_machine)
    dst_layout = layout_record(expected, dst_machine)
    bound = PbioWire("dcg").bind(src_layout, dst_layout)
    record = mechanical.sample_record(size)
    if mismatched:
        record = dict(record, unexpected=7)
    wire = bound.encode(codec_for(src_layout).encode(record))
    bound.decode(wire)
    return bound, wire


def _extension_figure(title, src_machine, dst_machine, note):
    print("=" * 78)
    print(title)
    print("=" * 78)
    table = TimingTable("decode (ms)", SIZES)
    for mismatched, label in ((False, "matched"), (True, "mismatched")):
        row = []
        for size in SIZES:
            bound, wire = _extension_case(size, src_machine, dst_machine, mismatched)
            row.append(best_of(lambda: bound.decode(wire), repeats=7, inner=5) * 1e3)
        table.add(label, row)
    print(table.render())
    print(note)
    print()


def fig6() -> None:
    _extension_figure(
        "Figure 6: heterogeneous receive, with/without unexpected field (ms)",
        support.I86,
        support.SPARC,
        "paper: the extra field has no effect on heterogeneous receive cost",
    )


def fig7() -> None:
    _extension_figure(
        "Figure 7: homogeneous receive, with/without unexpected field (ms)",
        support.SPARC,
        support.SPARC,
        "paper: mismatch overhead non-negligible but ~ a memcpy of the record",
    )


def sizes() -> None:
    print("=" * 78)
    print("Wire sizes (bytes) and the XML expansion factor (Section 4.2)")
    print("=" * 78)
    table = TimingTable("wire bytes", SIZES, unit="bytes")
    for name in ("XML", "MPICH", "CORBA", "PBIO"):
        row = []
        for size in SIZES:
            ex = support.build_exchange(name, size, support.SPARC, support.I86)
            row.append(float(len(ex.wire)))
        table.add(name, row)
    print(table.render())
    for size in SIZES:
        ex = support.build_exchange("XML", size, support.SPARC, support.I86)
        print(f"  XML expansion at {size}: {len(ex.wire) / mechanical.nominal_bytes(size):.1f}x")
    print("paper: ASCII expansion factor of 6-8 'not unusual'")
    print()


def extensions() -> None:
    """Summaries for the beyond-the-paper capabilities (EXPERIMENTS.md)."""
    print("=" * 78)
    print("Extensions: filters, zero-copy ladder, VAX exchange, codegen cost")
    print("=" * 78)
    from repro.abi import VAX
    from repro.core import IOContext, RecordFilter
    from repro.core.conversion import InterpretedConverter, generate_converter
    from repro.core import IOFormat, build_plan

    # filter vs decode on 100 KB
    sender = IOContext(support.SPARC)
    receiver = IOContext(support.I86)
    schema = mechanical.schema_for_size("100kb")
    handle = sender.register_format(schema)
    receiver.expect(schema)
    receiver.receive(sender.announce(handle))
    message = sender.encode_native(handle, mechanical.native_bytes("100kb", support.SPARC))
    receiver.decode_native(message)
    flt = RecordFilter(receiver, schema.name, "temperature > 200.0")
    flt.matches(message)
    t_filter = best_of(lambda: flt.matches(message), repeats=7, inner=20) * 1e3
    t_decode = best_of(lambda: receiver.decode_native(message), repeats=7, inner=5) * 1e3
    print(f"filter vs decode (100kb): filter {t_filter:.4f} ms, full decode {t_decode:.4f} ms")

    # zero-copy ladder on 100 KB homogeneous
    s2 = IOContext(support.SPARC)
    r2 = IOContext(support.SPARC)
    h2 = s2.register_format(schema)
    r2.expect(schema)
    r2.receive(s2.announce(h2))
    msg2 = s2.encode_native(h2, mechanical.native_bytes("100kb", support.SPARC))
    t_view = best_of(lambda: r2.decode_view(msg2), repeats=7, inner=20) * 1e3
    t_native = best_of(lambda: r2.decode_native(msg2), repeats=7, inner=20) * 1e3
    t_dict = best_of(lambda: r2.decode(msg2), repeats=7, inner=5) * 1e3
    print(
        f"zero-copy ladder (100kb homogeneous): view {t_view:.4f} ms, "
        f"native copy {t_native:.4f} ms, full dict {t_dict:.4f} ms"
    )

    # VAX exchange
    s3 = IOContext(VAX)
    r3 = IOContext(support.I86)
    h3 = s3.register_format(schema)
    r3.expect(schema)
    r3.receive(s3.announce(h3))
    msg3 = s3.encode(h3, mechanical.sample_record("100kb"))
    r3.decode_native(msg3)
    t_vax = best_of(lambda: r3.decode_native(msg3), repeats=5, inner=5) * 1e3
    print(f"VAX->x86 decode (100kb, float format conversion): {t_vax:.4f} ms")

    # codegen one-time cost amortization
    for size in SIZES:
        sch = mechanical.schema_for_size(size)
        plan = build_plan(
            IOFormat.from_layout(layout_record(sch, support.I86)),
            IOFormat.from_layout(layout_record(sch, support.SPARC)),
        )
        native = mechanical.native_bytes(size, support.I86)
        gen = generate_converter(plan, backend="python")
        interp = InterpretedConverter(plan)
        t_dcg = best_of(lambda: gen.convert(native), repeats=5, inner=5)
        t_int = best_of(lambda: interp(native), repeats=5, inner=5)
        breakeven = gen.generation_time_s / max(t_int - t_dcg, 1e-12)
        print(
            f"codegen {size}: generation {gen.generation_time_s * 1e3:.3f} ms, "
            f"per-record saving {(t_int - t_dcg) * 1e6:.2f} us -> break-even {breakeven:.0f} records"
        )
    print()


def metrics() -> None:
    """Decode-runtime metrics: shared converter cache + per-stage timings."""
    print("=" * 78)
    print("Decode runtime metrics: shared cache, buffer pool, stage timings")
    print("=" * 78)
    from repro.core import ConverterCache
    from repro.net import EventChannel

    cache = ConverterCache()
    channel = EventChannel(cache=cache)
    schema = mechanical.schema_for_size("1kb")
    subscribers = []
    for _ in range(8):
        ctx = IOContext(support.SPARC)
        ctx.expect(schema)
        ctx.metrics.timing_enabled = True
        subscribers.append(channel.subscribe(ctx, lambda r: None))
    sender = IOContext(support.I86)
    handle = sender.register_format(schema)
    pub = channel.publisher(sender)
    record = mechanical.sample_record("1kb")
    for _ in range(50):
        pub.publish(handle, record)
    print(f"subscribers: {len(subscribers)}, records published: 50")
    print(f"shared cache: {cache.metrics.snapshot()['counters']}")
    snap = subscribers[0].ctx.metrics.snapshot()
    print(f"subscriber[0] counters: {snap['counters']}")
    for stage, timing in sorted(snap["timings"].items()):
        print(f"  {stage}: n={timing['count']} mean={timing['mean_s'] * 1e6:.2f} us")
    print("all 8 same-machine subscribers share one generated converter")
    print()


def faults() -> None:
    """Graceful degradation: relay fan-out with one chaotic downstream."""
    print("=" * 78)
    print("Robustness: relay with a faulty downstream (seeded chaos, docs/robustness.md)")
    print("=" * 78)
    from repro.net import FaultInjectingTransport, FaultPlan, InMemoryPipe, Relay

    relay = Relay(quarantine_after=3)
    healthy_pipes = [InMemoryPipe() for _ in range(2)]
    for pipe in healthy_pipes:
        relay.attach(pipe.a)
    faulty_pipe = InMemoryPipe()
    plan = FaultPlan(drop=0.2, corrupt=0.2, disconnect=0.05)
    injector = FaultInjectingTransport(faulty_pipe.a, plan, seed=0)
    faulty = relay.attach(injector)

    sender = IOContext(support.SPARC)
    schema = mechanical.schema_for_size("1kb")
    handle = sender.register_format(schema)
    relay.forward(sender.announce(handle))
    record = mechanical.sample_record("1kb")
    total = 100
    for _ in range(total):
        relay.forward(sender.encode(handle, record))

    receiver = IOContext(support.SPARC)
    receiver.expect(schema)
    delivered = 0
    pipe = healthy_pipes[0]
    while True:
        try:
            message = pipe.b.recv()
        except Exception:
            break
        if receiver.receive(message) is not None:
            delivered += 1
    print(f"records forwarded: {total}; healthy downstream decoded: {delivered}")
    print(f"faulty downstream quarantined: {faulty.quarantined}")
    print(f"injector counters: {injector.metrics.snapshot()['counters']}")
    print(f"faulty downstream counters: {faulty.metrics.snapshot()['counters']}")
    print(f"healthy downstream counters: {relay.active_downstreams[0].metrics.snapshot()['counters']}")
    print("one bad peer never starves the healthy ones: delivery to them is 100%")
    print()


def batch() -> None:
    """Record-batch fast path: batched vs per-message stream throughput."""
    print("=" * 78)
    print("Batching: 32 x 1kb same-format stream, sparc -> i86 (records/second)")
    print("=" * 78)
    from repro.net import InMemoryPipe
    from repro.workloads.generators import record_stream

    n = 32
    schema = mechanical.schema_for_size("1kb")
    codec = codec_for(layout_record(schema, support.SPARC))
    natives = [codec.encode(r) for r in record_stream(schema, count=n, seed=3)]
    sender = IOContext(support.SPARC)
    receiver = IOContext(support.I86, conversion="dcg")
    handle = sender.register_format(schema)
    receiver.expect(schema)
    receiver.receive(sender.announce(handle))
    frames = [sender.encode_native(handle, native) for native in natives]
    receiver.pipeline.decode_batch_native(frames)  # warm converters + batch plan

    def loop_pump():
        pipe = InMemoryPipe()
        for frame in frames:
            pipe.a.send(frame)
        for _ in frames:
            receiver.pipeline.decode_native(pipe.b.recv())

    def batch_pump():
        pipe = InMemoryPipe()
        pipe.a.send_many(frames)
        receiver.pipeline.decode_batch_native(pipe.b.recv_many())

    t_loop = best_of(loop_pump, repeats=7)
    t_batch = best_of(batch_pump, repeats=7)
    print(f"per-message loop: {n / t_loop:12,.0f} rec/s  ({t_loop * 1e6:8.1f} us/burst)")
    print(f"batched path:     {n / t_batch:12,.0f} rec/s  ({t_batch * 1e6:8.1f} us/burst)")
    print(f"speedup: {t_loop / t_batch:.2f}x (CI gate: >= 2x, bench_batch_throughput.py)")
    counters = receiver.metrics.snapshot()["counters"]
    batch_counters = {k: v for k, v in counters.items() if k.startswith("decode.batch.")}
    print(f"decode.batch.* counters: {batch_counters}")
    print("one columnar converter call per same-format run; byte-identical output")
    print()


def fabric() -> None:
    """Sharded relay fabric: throughput vs worker count, filter push-down."""
    print("=" * 78)
    print("Fabric: sharded relays (rec/s vs workers) and edge filter push-down")
    print("=" * 78)
    import os

    from bench_fabric_scaling import measure_pushdown, measure_scaling

    rates = measure_scaling((1, 2, 4))
    base = rates[1]
    cpus = os.cpu_count() or 1
    for workers, rate in rates.items():
        print(f"{workers} worker(s): {rate:12,.0f} rec/s  ({rate / base:4.2f}x)")
    print(
        f"({cpus} CPU(s) on this host; the >= 1.8x 1->4 gate runs in "
        f"bench_fabric_scaling.py on >= 4 CPUs)"
    )
    print()
    print("edge filter push-down vs subscriber-side full decode (1kb records):")
    for pct, (t_push, t_full) in measure_pushdown().items():
        print(
            f"selectivity {pct:3d}%: push-down {t_push * 1e3:8.2f} ms | "
            f"full decode {t_full * 1e3:8.2f} ms -> {t_full / t_push:5.2f}x"
        )
    print("the 1% row is gated >= 5x in bench_fabric_scaling.py")
    print()


def zerocopy() -> None:
    """Homogeneous-extension figure taken to its limit: decode cost per
    record for full-copy vs lend-mode (borrowed views) vs shm-ring
    delivery, 1 KB to 1 MB."""
    print("=" * 78)
    print("Zero-copy ladder: full-copy vs lend vs shm-ring, homogeneous (ms/record)")
    print("=" * 78)
    from repro.abi import RecordSchema
    from repro.net import shm_pair

    cases = [
        ("1kb", mechanical.schema_for_size("1kb"), 32),
        ("10kb", mechanical.schema_for_size("10kb"), 16),
        ("100kb", mechanical.schema_for_size("100kb"), 8),
        ("1mb", RecordSchema.from_pairs("blob1mb", [("a", "double[131072]")]), 2),
    ]
    points = []
    for label, schema, n in cases:
        sender = IOContext(support.SPARC)
        receiver = IOContext(support.SPARC)
        handle = sender.register_format(schema)
        receiver.expect(schema)
        receiver.receive(sender.announce(handle))
        if label == "1mb":
            message = sender.encode(handle, {"a": [0.0] * 131072})
        else:
            message = sender.encode_native(
                handle, mechanical.native_bytes(label, support.SPARC)
            )
        frames = [message] * n
        pipeline = receiver.pipeline
        pipeline.decode_batch_native(frames)  # warm converters
        pipeline.decode_batch_native(frames, lend=True)
        t_copy = best_of(lambda: pipeline.decode_batch_native(frames), repeats=5) / n
        t_lend = (
            best_of(lambda: pipeline.decode_batch_native(frames, lend=True), repeats=5)
            / n
        )
        # Same-host delivery *through the ring* plus the lend decode:
        # what a subscriber on this host actually pays per record.
        ring_cap = max(1 << 20, 4 * (len(message) + 16))
        a, b = shm_pair(capacity=ring_cap)
        try:

            def ring_pump():
                a.send_many(frames)
                pipeline.decode_batch_native(b.recv_many(), lend=True)

            ring_pump()  # warm the ring pages
            t_ring = best_of(ring_pump, repeats=5) / n
        finally:
            a.close()
            b.close()
        print(
            f"{label:>6}: full-copy {t_copy * 1e3:8.4f} | lend {t_lend * 1e3:8.4f} "
            f"({t_copy / t_lend:4.1f}x) | shm-ring {t_ring * 1e3:8.4f} ms/record"
        )
        points.append(
            support.trajectory_point(
                records=n,
                payload_bytes=len(message) * n,
                samples_s=[t_copy * n],
                extra={
                    "size": label,
                    "copy_ms_per_record": t_copy * 1e3,
                    "lend_ms_per_record": t_lend * 1e3,
                    "ring_ms_per_record": t_ring * 1e3,
                },
            )
        )
    support.append_trajectory("zerocopy_figure", points)
    print("paper shape: homogeneous receive ~ memcpy; lend removes even that copy")
    print()


FIGURES = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "sizes": sizes,
    "ext": extensions,
    "metrics": metrics,
    "faults": faults,
    "batch": batch,
    "fabric": fabric,
    "zerocopy": zerocopy,
}


def main(argv: list[str]) -> None:
    wanted = argv or list(FIGURES)
    unknown = [w for w in wanted if w not in FIGURES]
    if unknown:
        raise SystemExit(f"unknown figures {unknown}; available: {list(FIGURES)}")
    for name in wanted:
        FIGURES[name]()


if __name__ == "__main__":
    main(sys.argv[1:])
