"""Extension benchmark — what zero-copy receive is worth.

The paper's homogeneous-exchange claim is that "received data [can] be
used directly from the message buffer".  This bench quantifies the
ladder of receive-side options on a homogeneous exchange:

* ``decode_view`` — zero-copy: a RecordView over the message buffer;
* field access through the view — pay only for the fields you touch;
* ``decode_native`` — materialize the record bytes (one memcpy);
* ``decode`` — materialize every field into a Python dict (the
  convenience ceiling, closest to what object systems always pay).

And the relay tier: forwarding a message through a Relay is independent
of record size (header inspection only).
"""

import pytest

import support
from repro.abi import codec_for, layout_record
from repro.core import IOContext
from repro.net import InMemoryPipe, best_of
from repro.net.relay import Relay
from repro.workloads import mechanical

SIZES = ["1kb", "100kb"]


def homogeneous(size):
    schema = mechanical.schema_for_size(size)
    sender = IOContext(support.SPARC)
    receiver = IOContext(support.SPARC)
    h = sender.register_format(schema)
    receiver.expect(schema)
    receiver.receive(sender.announce(h))
    message = sender.encode_native(h, mechanical.native_bytes(size, support.SPARC))
    receiver.decode_view(message)  # warm caches
    return receiver, message


@pytest.mark.parametrize("size", SIZES)
def test_decode_view_zero_copy(benchmark, size):
    receiver, message = homogeneous(size)
    benchmark.group = f"receive options {size}"
    benchmark(receiver.decode_view, message)


@pytest.mark.parametrize("size", SIZES)
def test_view_single_field_access(benchmark, size):
    receiver, message = homogeneous(size)
    view = receiver.decode_view(message)
    benchmark.group = f"receive options {size}"
    benchmark(lambda: view["temperature"])


@pytest.mark.parametrize("size", SIZES)
def test_decode_native_materializes(benchmark, size):
    receiver, message = homogeneous(size)
    benchmark.group = f"receive options {size}"
    benchmark(receiver.decode_native, message)


@pytest.mark.parametrize("size", SIZES)
def test_decode_full_dict(benchmark, size):
    receiver, message = homogeneous(size)
    benchmark.group = f"receive options {size}"
    benchmark(receiver.decode, message)


def test_relay_forward_cost(benchmark):
    schema = mechanical.schema_for_size("100kb")
    sender = IOContext(support.SPARC)
    h = sender.register_format(schema)
    relay = Relay()
    pipe = InMemoryPipe()
    relay.attach(pipe.a)
    relay.forward(sender.announce(h))
    message = sender.encode_native(h, mechanical.native_bytes("100kb", support.SPARC))

    def forward_and_drain():
        relay.forward(message)
        pipe.b.recv()

    benchmark.group = "relay"
    benchmark(forward_and_drain)


def test_shape_zero_copy_ladder():
    for size in SIZES:
        receiver, message = homogeneous(size)
        t_view = best_of(lambda: receiver.decode_view(message), repeats=7, inner=20)
        t_native = best_of(lambda: receiver.decode_native(message), repeats=7, inner=20)
        t_dict = best_of(lambda: receiver.decode(message), repeats=7, inner=5)
        # Materializing every field always costs the most...
        assert t_native < t_dict, size
        # ...and the view stays within a small constant of the bulk copy
        # even at sizes where a 1 KB memcpy is nearly free (the view's
        # fixed object-construction cost dominates there).
        assert t_view < 3 * t_native, size
    # Where zero-copy matters — large records — the view beats the copy.
    receiver_big, message_big = homogeneous("100kb")
    t_view_big = best_of(lambda: receiver_big.decode_view(message_big), repeats=7, inner=20)
    t_native_big = best_of(lambda: receiver_big.decode_native(message_big), repeats=7, inner=20)
    assert t_view_big < t_native_big
    # And the zero-copy view is size-independent while the dict is not.
    r1, m1 = homogeneous("1kb")
    r2, m2 = homogeneous("100kb")
    t_view_small = best_of(lambda: r1.decode_view(m1), repeats=7, inner=20)
    t_view_big = best_of(lambda: r2.decode_view(m2), repeats=7, inner=20)
    assert t_view_big < 3 * t_view_small


def test_shape_relay_independent_of_size():
    times = {}
    for size in SIZES:
        schema = mechanical.schema_for_size(size)
        sender = IOContext(support.SPARC)
        h = sender.register_format(schema)
        relay = Relay()
        pipe = InMemoryPipe()
        relay.attach(pipe.a)
        relay.forward(sender.announce(h))
        message = sender.encode_native(h, mechanical.native_bytes(size, support.SPARC))

        def fwd():
            relay.forward(message)
            pipe.b.recv()

        times[size] = best_of(fwd, repeats=7, inner=20)
    assert times["100kb"] < 3 * times["1kb"]
