"""Extension benchmark — what zero-copy receive is worth.

The paper's homogeneous-exchange claim is that "received data [can] be
used directly from the message buffer".  This bench quantifies the
ladder of receive-side options on a homogeneous exchange:

* ``decode_view`` — zero-copy: a RecordView over the message buffer;
* field access through the view — pay only for the fields you touch;
* ``decode_native`` — materialize the record bytes (one memcpy);
* ``decode`` — materialize every field into a Python dict (the
  convenience ceiling, closest to what object systems always pay).

And the relay tier: forwarding a message through a Relay is independent
of record size (header inspection only).
"""

import multiprocessing
import statistics
import time

import pytest

import support
from repro.abi import RecordSchema, codec_for, layout_record
from repro.core import IOContext
from repro.net import InMemoryPipe, best_of, loopback_pair, shm_pair
from repro.net.relay import Relay
from repro.workloads import mechanical

SIZES = ["1kb", "100kb"]


def homogeneous(size):
    schema = mechanical.schema_for_size(size)
    sender = IOContext(support.SPARC)
    receiver = IOContext(support.SPARC)
    h = sender.register_format(schema)
    receiver.expect(schema)
    receiver.receive(sender.announce(h))
    message = sender.encode_native(h, mechanical.native_bytes(size, support.SPARC))
    receiver.decode_view(message)  # warm caches
    return receiver, message


def homogeneous_batch(size, n):
    """n same-format data frames on a homogeneous (zero-copy) exchange."""
    schema = mechanical.schema_for_size(size)
    sender = IOContext(support.SPARC)
    receiver = IOContext(support.SPARC)
    h = sender.register_format(schema)
    receiver.expect(schema)
    receiver.receive(sender.announce(h))
    native = mechanical.native_bytes(size, support.SPARC)
    messages = [sender.encode_native(h, native) for _ in range(n)]
    receiver.pipeline.decode_batch_native(messages)  # warm caches
    return receiver, messages


@pytest.mark.parametrize("size", SIZES)
def test_decode_view_zero_copy(benchmark, size):
    receiver, message = homogeneous(size)
    benchmark.group = f"receive options {size}"
    benchmark(receiver.decode_view, message)


@pytest.mark.parametrize("size", SIZES)
def test_view_single_field_access(benchmark, size):
    receiver, message = homogeneous(size)
    view = receiver.decode_view(message)
    benchmark.group = f"receive options {size}"
    benchmark(lambda: view["temperature"])


@pytest.mark.parametrize("size", SIZES)
def test_decode_native_materializes(benchmark, size):
    receiver, message = homogeneous(size)
    benchmark.group = f"receive options {size}"
    benchmark(receiver.decode_native, message)


@pytest.mark.parametrize("size", SIZES)
def test_decode_full_dict(benchmark, size):
    receiver, message = homogeneous(size)
    benchmark.group = f"receive options {size}"
    benchmark(receiver.decode, message)


def test_relay_forward_cost(benchmark):
    schema = mechanical.schema_for_size("100kb")
    sender = IOContext(support.SPARC)
    h = sender.register_format(schema)
    relay = Relay()
    pipe = InMemoryPipe()
    relay.attach(pipe.a)
    relay.forward(sender.announce(h))
    message = sender.encode_native(h, mechanical.native_bytes("100kb", support.SPARC))

    def forward_and_drain():
        relay.forward(message)
        pipe.b.recv()

    benchmark.group = "relay"
    benchmark(forward_and_drain)


def test_shape_zero_copy_ladder():
    for size in SIZES:
        receiver, message = homogeneous(size)
        t_view = best_of(lambda: receiver.decode_view(message), repeats=7, inner=20)
        t_native = best_of(lambda: receiver.decode_native(message), repeats=7, inner=20)
        t_dict = best_of(lambda: receiver.decode(message), repeats=7, inner=5)
        # Materializing every field always costs the most...
        assert t_native < t_dict, size
        # ...and the view stays within a small constant of the bulk copy
        # even at sizes where a 1 KB memcpy is nearly free (the view's
        # fixed object-construction cost dominates there).
        assert t_view < 3 * t_native, size
    # Where zero-copy matters — large records — the view beats the copy.
    receiver_big, message_big = homogeneous("100kb")
    t_view_big = best_of(lambda: receiver_big.decode_view(message_big), repeats=7, inner=20)
    t_native_big = best_of(lambda: receiver_big.decode_native(message_big), repeats=7, inner=20)
    assert t_view_big < t_native_big
    # And the zero-copy view is size-independent while the dict is not.
    r1, m1 = homogeneous("1kb")
    r2, m2 = homogeneous("100kb")
    t_view_small = best_of(lambda: r1.decode_view(m1), repeats=7, inner=20)
    t_view_big = best_of(lambda: r2.decode_view(m2), repeats=7, inner=20)
    assert t_view_big < 3 * t_view_small


def test_shape_relay_independent_of_size():
    times = {}
    for size in SIZES:
        schema = mechanical.schema_for_size(size)
        sender = IOContext(support.SPARC)
        h = sender.register_format(schema)
        relay = Relay()
        pipe = InMemoryPipe()
        relay.attach(pipe.a)
        relay.forward(sender.announce(h))
        message = sender.encode_native(h, mechanical.native_bytes(size, support.SPARC))

        def fwd():
            relay.forward(message)
            pipe.b.recv()

        times[size] = best_of(fwd, repeats=7, inner=20)
    assert times["100kb"] < 3 * times["1kb"]


# ---------------------------------------------------------------------------
# ISSUE 10 CI gates: the zero-copy steady state must actually be cheap.
# ---------------------------------------------------------------------------


def test_gate_lend_batch_100kb_within_2x_memcpy():
    """Homogeneous 100 KB batch decode with lend=True stays within 2x of
    a plain ``bytes()`` copy of the same payloads — i.e. the borrow path
    costs at most header parsing on top of (not even) a memcpy."""
    receiver, messages = homogeneous_batch("100kb", 8)
    views = [memoryview(m) for m in messages]
    repeats = support.default_repeats()
    t_lend = best_of(
        lambda: receiver.pipeline.decode_batch_native(messages, lend=True),
        repeats=repeats,
        inner=5,
    )
    t_copy = best_of(lambda: [bytes(v) for v in views], repeats=repeats, inner=5)
    payload = sum(len(m) for m in messages)
    support.append_trajectory(
        "zero_copy_lend_100kb",
        [
            support.trajectory_point(
                records=len(messages),
                payload_bytes=payload,
                samples_s=[t_lend],
                extra={"memcpy_s": t_copy, "ratio": t_lend / t_copy},
            )
        ],
    )
    assert t_lend < 2 * t_copy, (t_lend, t_copy)


def test_gate_lend_stream_beats_copy_mode_32x1kb():
    """On the 32x1kb workload, lend-mode decode (leased views) must beat
    copy-mode decode (materialized records) by >= 1.3x."""
    receiver, messages = homogeneous_batch("1kb", 32)
    receiver.pipeline.decode_batch(messages)  # warm the view/dict caches
    repeats = support.default_repeats()
    t_lend = best_of(
        lambda: receiver.pipeline.decode_batch(messages, lend=True),
        repeats=repeats,
        inner=20,
    )
    t_copy = best_of(
        lambda: receiver.pipeline.decode_batch(messages), repeats=repeats, inner=20
    )
    payload = sum(len(m) for m in messages)
    support.append_trajectory(
        "zero_copy_lend_stream",
        [
            support.trajectory_point(
                records=len(messages),
                payload_bytes=payload,
                samples_s=[t_lend],
                extra={"copy_mode_s": t_copy, "speedup": t_copy / t_lend},
            )
        ],
    )
    assert t_copy / t_lend >= 1.3, (t_lend, t_copy)


VAR_SCHEMA = RecordSchema.from_pairs(
    "var_gate", [(f"f{j}", "string") for j in range(8)] + [("i", "int")]
)


def var_length_exchange(n=1000):
    """Cross-machine string-heavy exchange: the var-length columnar gate
    workload (strings dominate the record, as in event/log streams)."""
    sender = IOContext(support.SPARC)
    receiver = IOContext(support.I86)
    h = sender.register_format(VAR_SCHEMA)
    receiver.expect(VAR_SCHEMA)
    receiver.receive(sender.announce(h))
    messages = [
        sender.encode(
            h,
            {**{f"f{j}": f"value-{k}-{j}" * (1 + (k + j) % 3) for j in range(8)}, "i": k},
        )
        for k in range(n)
    ]
    receiver.pipeline.decode_batch_native(messages)  # warm converter caches
    return receiver, messages


def test_gate_var_batch_2x_scalar_1k_records():
    """Var-length columnar decode >= 2x the scalar fallback on a
    1k-record string-bearing run, with byte-identical output."""
    import repro.core.runtime.pipeline as pipeline_mod

    receiver, messages = var_length_exchange(1000)
    engaged0 = receiver.metrics.value("decode.batch.converted")
    vec = [bytes(b) for b in receiver.pipeline.decode_batch_native(messages, lend=True)]
    assert receiver.metrics.value("decode.batch.converted") - engaged0 == 1000

    repeats = support.default_repeats()
    t_vec = best_of(
        lambda: receiver.pipeline.decode_batch_native(messages, lend=True),
        repeats=repeats,
        inner=3,
    )
    # Force the scalar fallback by lifting the engagement threshold out
    # of reach; same messages, same entry, only the columnar pass off.
    saved = pipeline_mod.NUMPY_THRESHOLD
    try:
        pipeline_mod.NUMPY_THRESHOLD = 1 << 30
        scalar = [
            bytes(b) for b in receiver.pipeline.decode_batch_native(messages, lend=True)
        ]
        t_scalar = best_of(
            lambda: receiver.pipeline.decode_batch_native(messages, lend=True),
            repeats=repeats,
            inner=3,
        )
    finally:
        pipeline_mod.NUMPY_THRESHOLD = saved

    assert vec == scalar  # byte-identical, frame for frame
    payload = sum(len(m) for m in messages)
    support.append_trajectory(
        "var_batch_decode",
        [
            support.trajectory_point(
                records=1000,
                payload_bytes=payload,
                samples_s=[t_vec],
                extra={"scalar_s": t_scalar, "speedup": t_scalar / t_vec},
            )
        ],
    )
    assert t_scalar / t_vec >= 2.0, (t_vec, t_scalar)


def _echo_until_sentinel(transport):
    """Child process body: echo frames back until the empty sentinel."""
    try:
        while True:
            frame = transport.recv()
            if frame == b"":
                return
            transport.send(frame)
    except Exception:
        pass  # parent tore down mid-echo; nothing to report


def _rtt_p50_us(transport, payload, rounds):
    samples = []
    send, recv = transport.send, transport.recv
    for _ in range(rounds):
        t0 = time.perf_counter_ns()
        send(payload)
        recv()
        samples.append(time.perf_counter_ns() - t0)
    return statistics.median(samples) / 1e3, samples


def test_gate_shm_ring_rtt_below_socket_loopback():
    """Same-host shm ring round-trip must beat TCP loopback on the same
    workload (64 B and 1 KB echo against a real peer process)."""
    ctx = multiprocessing.get_context("fork")
    rounds = 300
    results = {}
    for name, make in (("socket", loopback_pair), ("shm", shm_pair)):
        a, b = make()
        child = ctx.Process(target=_echo_until_sentinel, args=(b,), daemon=True)
        child.start()
        try:
            per_size = {}
            for size in (64, 1024):
                payload = bytes(size)
                for _ in range(20):  # warm the path and the child
                    a.send(payload)
                    a.recv()
                best = None
                for _ in range(3):
                    p50, samples = _rtt_p50_us(a, payload, rounds)
                    if best is None or p50 < best[0]:
                        best = (p50, samples)
                per_size[size] = best
            results[name] = per_size
        finally:
            try:
                a.send(b"")
            except Exception:
                pass
            child.join(timeout=10)
            if child.is_alive():
                child.terminate()
            a.close()
    points = []
    for size in (64, 1024):
        shm_p50, shm_samples = results["shm"][size]
        sock_p50, _ = results["socket"][size]
        points.append(
            support.trajectory_point(
                records=rounds,
                payload_bytes=size * rounds,
                samples_s=[s / 1e9 for s in shm_samples],
                extra={
                    "payload": size,
                    "shm_p50_us": shm_p50,
                    "socket_p50_us": sock_p50,
                },
            )
        )
        assert shm_p50 < sock_p50, (size, shm_p50, sock_p50)
    support.append_trajectory("shm_rtt", points)
