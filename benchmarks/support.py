"""Shared builders for the benchmark suite.

Every benchmark follows the paper's experimental setup (Section 4):

* machines: the Sun Ultra 30 (``SPARC_V8``, big-endian) and the x86 PC
  (``X86``, little-endian), as simulated ABIs;
* workload: the mechanical-engineering mixed-field records at 100 B,
  1 KB, 10 KB and 100 KB;
* protocol: data "is assumed to exist in binary format prior to
  transmission", so senders start from prebuilt native bytes, and
  receivers must deliver a record in their own native layout;
* one-time costs (format registration, meta exchange, datatype commit,
  converter generation) happen at bind time, before timing starts —
  except where a benchmark explicitly measures them (the ablations).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.abi import SPARC_V8, X86, MachineDescription, StructLayout, layout_record
from repro.core import PbioWire
from repro.net import NetworkModel, best_of
from repro.wire import IiopWire, MpiWire, XmlWire
from repro.wire.common import BoundFormat
from repro.workloads import mechanical

SIZES = mechanical.SIZES

#: The paper's two hosts.
SPARC = SPARC_V8
I86 = X86

#: Systems compared in Figures 2 and 3 (construction order = legend order).
SYSTEM_FACTORIES = {
    "XML": XmlWire,
    "MPICH": MpiWire,
    "CORBA": IiopWire,
    "PBIO": PbioWire,
}


@dataclass
class Exchange:
    """One (system, size, direction) measurement setup."""

    system: str
    size: str
    bound: BoundFormat
    native: bytes  # sender-side native record
    wire: bytes  # encoded message (for decode-side benchmarks)
    src_layout: StructLayout
    dst_layout: StructLayout


def build_exchange(
    system_name: str,
    size: str,
    src: MachineDescription = SPARC,
    dst: MachineDescription = I86,
    *,
    conversion: str | None = None,
) -> Exchange:
    """Bind one wire system for one record size and direction."""
    schema = mechanical.schema_for_size(size)
    src_layout = layout_record(schema, src)
    dst_layout = layout_record(schema, dst)
    if system_name == "PBIO":
        system = PbioWire(conversion or "dcg")
    elif conversion is not None:
        raise ValueError("conversion mode only applies to PBIO")
    else:
        system = SYSTEM_FACTORIES[system_name]()
    bound = system.bind(src_layout, dst_layout)
    native = mechanical.native_bytes(size, src)
    wire = bound.encode(native)
    # Warm the converter caches so benchmarks measure steady state.
    bound.decode(wire)
    return Exchange(system_name, size, bound, native, wire, src_layout, dst_layout)


def measure_encode_ms(ex: Exchange, *, repeats: int | None = None, inner: int | None = None) -> float:
    """Best-case encode time, in ms.  PBIO uses its scatter-gather path
    (header + application buffer), the others produce their wire bytes."""
    if hasattr(ex.bound, "encode_segments"):
        fn = lambda: ex.bound.encode_segments(ex.native)  # noqa: E731
    else:
        fn = lambda: ex.bound.encode(ex.native)  # noqa: E731
    return best_of(fn, repeats=repeats or default_repeats(), inner=inner or _inner_for(ex.size)) * 1e3


def measure_decode_ms(ex: Exchange, *, repeats: int | None = None, inner: int | None = None) -> float:
    """Best-case decode time (wire message -> receiver-native record), ms."""
    fn = lambda: ex.bound.decode(ex.wire)  # noqa: E731
    return best_of(fn, repeats=repeats or default_repeats(), inner=inner or _inner_for(ex.size)) * 1e3


def _inner_for(size: str) -> int:
    # PBIO_BENCH_INNER overrides the per-size loop counts — CI smoke runs
    # set it to 1 so the harness exercises every code path in seconds.
    override = os.environ.get("PBIO_BENCH_INNER")
    if override:
        return max(1, int(override))
    return {"100b": 50, "1kb": 20, "10kb": 5, "100kb": 2}[size]


def default_repeats() -> int:
    """Timing repeats per measurement (PBIO_BENCH_REPEATS overrides)."""
    override = os.environ.get("PBIO_BENCH_REPEATS")
    if override:
        return max(1, int(override))
    return 7


#: The paper-calibrated network model used by round-trip compositions.
NETWORK = NetworkModel.ethernet_100mbps()


def composed_roundtrip_ms(fwd: Exchange, back: Exchange) -> dict[str, float]:
    """Figure 1/5-style composition: measured CPU costs + modelled network.

    ``fwd`` is sparc->x86, ``back`` x86->sparc (or whatever pair the caller
    built).  Returns the per-segment breakdown in milliseconds.
    """
    segments = {
        "fwd_encode": measure_encode_ms(fwd),
        "fwd_network": NETWORK.one_way_s(len(fwd.wire)) * 1e3,
        "fwd_decode": measure_decode_ms(fwd) + NETWORK.receive_overhead_s() * 1e3,
        "back_encode": measure_encode_ms(back),
        "back_network": NETWORK.one_way_s(len(back.wire)) * 1e3,
        "back_decode": measure_decode_ms(back) + NETWORK.receive_overhead_s() * 1e3,
    }
    segments["total"] = sum(segments.values())
    return segments
