"""Shared builders for the benchmark suite.

Every benchmark follows the paper's experimental setup (Section 4):

* machines: the Sun Ultra 30 (``SPARC_V8``, big-endian) and the x86 PC
  (``X86``, little-endian), as simulated ABIs;
* workload: the mechanical-engineering mixed-field records at 100 B,
  1 KB, 10 KB and 100 KB;
* protocol: data "is assumed to exist in binary format prior to
  transmission", so senders start from prebuilt native bytes, and
  receivers must deliver a record in their own native layout;
* one-time costs (format registration, meta exchange, datatype commit,
  converter generation) happen at bind time, before timing starts —
  except where a benchmark explicitly measures them (the ablations).
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

from repro.abi import SPARC_V8, X86, MachineDescription, StructLayout, layout_record
from repro.core import PbioWire
from repro.net import NetworkModel, best_of
from repro.wire import IiopWire, MpiWire, XmlWire
from repro.wire.common import BoundFormat
from repro.workloads import mechanical

SIZES = mechanical.SIZES

#: The paper's two hosts.
SPARC = SPARC_V8
I86 = X86

#: Systems compared in Figures 2 and 3 (construction order = legend order).
SYSTEM_FACTORIES = {
    "XML": XmlWire,
    "MPICH": MpiWire,
    "CORBA": IiopWire,
    "PBIO": PbioWire,
}


@dataclass
class Exchange:
    """One (system, size, direction) measurement setup."""

    system: str
    size: str
    bound: BoundFormat
    native: bytes  # sender-side native record
    wire: bytes  # encoded message (for decode-side benchmarks)
    src_layout: StructLayout
    dst_layout: StructLayout


def build_exchange(
    system_name: str,
    size: str,
    src: MachineDescription = SPARC,
    dst: MachineDescription = I86,
    *,
    conversion: str | None = None,
) -> Exchange:
    """Bind one wire system for one record size and direction."""
    schema = mechanical.schema_for_size(size)
    src_layout = layout_record(schema, src)
    dst_layout = layout_record(schema, dst)
    if system_name == "PBIO":
        system = PbioWire(conversion or "dcg")
    elif conversion is not None:
        raise ValueError("conversion mode only applies to PBIO")
    else:
        system = SYSTEM_FACTORIES[system_name]()
    bound = system.bind(src_layout, dst_layout)
    native = mechanical.native_bytes(size, src)
    wire = bound.encode(native)
    # Warm the converter caches so benchmarks measure steady state.
    bound.decode(wire)
    return Exchange(system_name, size, bound, native, wire, src_layout, dst_layout)


def measure_encode_ms(ex: Exchange, *, repeats: int | None = None, inner: int | None = None) -> float:
    """Best-case encode time, in ms.  PBIO uses its scatter-gather path
    (header + application buffer), the others produce their wire bytes."""
    if hasattr(ex.bound, "encode_segments"):
        fn = lambda: ex.bound.encode_segments(ex.native)  # noqa: E731
    else:
        fn = lambda: ex.bound.encode(ex.native)  # noqa: E731
    return best_of(fn, repeats=repeats or default_repeats(), inner=inner or _inner_for(ex.size)) * 1e3


def measure_decode_ms(ex: Exchange, *, repeats: int | None = None, inner: int | None = None) -> float:
    """Best-case decode time (wire message -> receiver-native record), ms."""
    fn = lambda: ex.bound.decode(ex.wire)  # noqa: E731
    return best_of(fn, repeats=repeats or default_repeats(), inner=inner or _inner_for(ex.size)) * 1e3


def _inner_for(size: str) -> int:
    # PBIO_BENCH_INNER overrides the per-size loop counts — CI smoke runs
    # set it to 1 so the harness exercises every code path in seconds.
    override = os.environ.get("PBIO_BENCH_INNER")
    if override:
        return max(1, int(override))
    return {"100b": 50, "1kb": 20, "10kb": 5, "100kb": 2}[size]


def default_repeats() -> int:
    """Timing repeats per measurement (PBIO_BENCH_REPEATS overrides)."""
    override = os.environ.get("PBIO_BENCH_REPEATS")
    if override:
        return max(1, int(override))
    return 7


#: Where ``append_trajectory`` writes its machine-readable result files.
#: ``results/`` is gitignored; CI jobs upload it as an artifact instead.
TRAJECTORY_DIR = Path(__file__).resolve().parent.parent / "results"


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def trajectory_point(
    *,
    records: int,
    payload_bytes: int,
    samples_s: list[float],
    extra: dict | None = None,
) -> dict:
    """Summarise one benchmark run as a machine-readable point.

    ``samples_s`` are per-iteration wall times in seconds for processing
    ``records`` records / ``payload_bytes`` bytes.  Rates use the median
    sample so a single descheduled iteration cannot flatter or sandbag
    the trajectory.
    """
    ordered = sorted(samples_s)
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    point = {
        "records": records,
        "payload_bytes": payload_bytes,
        "p50_s": p50,
        "p99_s": p99,
        "records_per_sec": records / p50 if p50 else 0.0,
        "bytes_per_sec": payload_bytes / p50 if p50 else 0.0,
    }
    if extra:
        point.update(extra)
    return point


def append_trajectory(name: str, points: list[dict]) -> Path:
    """Append one timestamped run to ``results/BENCH_<name>.json``.

    The file holds a JSON array of runs; each run records the git sha,
    a UTC timestamp, and the measurement points, so successive CI runs
    build a perf trajectory that tooling can diff without scraping logs.
    """
    TRAJECTORY_DIR.mkdir(parents=True, exist_ok=True)
    path = TRAJECTORY_DIR / f"BENCH_{name}.json"
    runs: list[dict] = []
    if path.exists():
        try:
            runs = json.loads(path.read_text())
        except (ValueError, OSError):
            runs = []  # a torn previous write must not wedge the suite
    runs.append(
        {
            "name": name,
            "git_sha": _git_sha(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "points": points,
        }
    )
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(runs, indent=2) + "\n")
    tmp.replace(path)
    return path


#: The paper-calibrated network model used by round-trip compositions.
NETWORK = NetworkModel.ethernet_100mbps()


def composed_roundtrip_ms(fwd: Exchange, back: Exchange) -> dict[str, float]:
    """Figure 1/5-style composition: measured CPU costs + modelled network.

    ``fwd`` is sparc->x86, ``back`` x86->sparc (or whatever pair the caller
    built).  Returns the per-segment breakdown in milliseconds.
    """
    segments = {
        "fwd_encode": measure_encode_ms(fwd),
        "fwd_network": NETWORK.one_way_s(len(fwd.wire)) * 1e3,
        "fwd_decode": measure_decode_ms(fwd) + NETWORK.receive_overhead_s() * 1e3,
        "back_encode": measure_encode_ms(back),
        "back_network": NETWORK.one_way_s(len(back.wire)) * 1e3,
        "back_decode": measure_decode_ms(back) + NETWORK.receive_overhead_s() * 1e3,
    }
    segments["total"] = sum(segments.values())
    return segments
