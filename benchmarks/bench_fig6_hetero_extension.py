"""Figure 6 — receiver-side decode with and without an unexpected field,
heterogeneous exchange (x86 sender, sparc receiver).

Setup follows the paper's worst case: the unexpected field is *prepended*
so every expected field's offset shifts.  The paper finds the extra field
has "no effect upon the receive-side performance" in the heterogeneous
case: the receiver was converting every field anyway, so one more ignored
field and shifted offsets change nothing.
"""

import pytest

import support
from repro.abi import CType, FieldDecl, codec_for, layout_record
from repro.core import PbioWire
from repro.workloads import mechanical


def build_extension_exchange(size, src_machine, dst_machine, *, mismatched: bool):
    expected = mechanical.schema_for_size(size)
    if mismatched:
        sent = expected.extended(
            expected.name, [FieldDecl("unexpected", CType.INT)], prepend=True
        )
    else:
        sent = expected
    src_layout = layout_record(sent, src_machine)
    dst_layout = layout_record(expected, dst_machine)
    bound = PbioWire("dcg").bind(src_layout, dst_layout)
    record = mechanical.sample_record(size)
    if mismatched:
        record = dict(record, unexpected=7)
    native = codec_for(src_layout).encode(record)
    wire = bound.encode(native)
    bound.decode(wire)  # warm converter cache
    return bound, wire


@pytest.fixture(scope="module")
def cases():
    return {
        (size, mismatched): build_extension_exchange(
            size, support.I86, support.SPARC, mismatched=mismatched
        )
        for size in support.SIZES
        for mismatched in (False, True)
    }


@pytest.mark.parametrize("size", support.SIZES)
@pytest.mark.parametrize("mismatched", [False, True], ids=["matched", "mismatched"])
def test_hetero_receive(benchmark, cases, size, mismatched):
    bound, wire = cases[(size, mismatched)]
    benchmark.group = f"fig6 hetero extension {size}"
    benchmark(bound.decode, wire)


def test_shape_extension_is_free_heterogeneous(cases):
    """The unexpected field must add no significant receive cost."""
    from repro.net import best_of

    for size in support.SIZES:
        matched_bound, matched_wire = cases[(size, False)]
        mis_bound, mis_wire = cases[(size, True)]
        t_matched = best_of(lambda: matched_bound.decode(matched_wire), repeats=7, inner=5)
        t_mis = best_of(lambda: mis_bound.decode(mis_wire), repeats=7, inner=5)
        # Within 30% (measurement noise) — the paper shows no effect.
        assert t_mis < 1.3 * t_matched + 5e-6, size
