"""Happy-path overhead of the fault-tolerance wrappers.

The robustness layer (ISSUE 2) must be deployable by default: wrapping a
transport in :class:`FaultInjectingTransport` (all-zero plan) or
:class:`ReconnectingTransport` (stable link, no reconnects) has to stay
within noise of the bare transport on the paths the paper measures.
This bench times a full PBIO record round-trip (encode → send → recv →
decode → reply → recv) over an :class:`InMemoryPipe`:

* ``bare``      — the pipe endpoints directly (the seed baseline);
* ``wrapped``   — both endpoints behind an inactive fault injector;
* ``reconnect`` — the client endpoint behind a ReconnectingTransport.

Acceptance: the inactive-wrapper penalty is <= ``PBIO_BENCH_OVERHEAD_MAX``
percent (default 5) of the bare round-trip.  The bare and wrapped loops
are timed in *interleaved* rounds and the gate is the median per-round
ratio, so neither scheduler noise nor slow clock-frequency drift across
the run can produce a false regression (or hide a real one).
"""

import os
import statistics

import support
from repro.abi import RecordSchema, codec_for, layout_record
from repro.core import IOContext
from repro.net import (
    FaultInjectingTransport,
    FaultPlan,
    InMemoryPipe,
    ReconnectingTransport,
    RetryPolicy,
    best_of,
)

SCHEMA = RecordSchema.from_pairs(
    "sample", [("seq", "int"), ("values", "double[16]"), ("tag", "char[8]")]
)

RECORD = {"seq": 7, "values": tuple(float(i) for i in range(16)), "tag": b"round"}


def _inner() -> int:
    override = os.environ.get("PBIO_BENCH_INNER")
    # ~10 ms per timing round at the ~11 us round-trip: long enough to
    # average out scheduler noise within a round.
    return max(1, int(override)) if override else 1000


def _overhead_budget_pct() -> float:
    override = os.environ.get("PBIO_BENCH_OVERHEAD_MAX")
    return float(override) if override else 5.0


def _build_loop(client, server):
    """One announced duplex PBIO path; returns the round-trip closure."""
    ctx_a = IOContext(support.SPARC)
    ctx_b = IOContext(support.SPARC)
    handle_a = ctx_a.register_format(SCHEMA)
    handle_b = ctx_b.register_format(SCHEMA)
    ctx_a.expect(SCHEMA)
    ctx_b.expect(SCHEMA)
    codec = codec_for(layout_record(SCHEMA, support.SPARC))
    native = codec.encode(RECORD)
    client.send(ctx_a.announce(handle_a))
    assert ctx_b.receive(server.recv()) is None
    server.send(ctx_b.announce(handle_b))
    assert ctx_a.receive(client.recv()) is None
    wire_a = ctx_a.encode_native(handle_a, native)
    wire_b = ctx_b.encode_native(handle_b, native)

    def round_trip():
        client.send(wire_a)
        ctx_b.decode(server.recv())
        server.send(wire_b)
        ctx_a.decode(client.recv())

    round_trip()  # warm converters/caches outside the timed region
    return round_trip


def _compare(make_wrapped) -> tuple[float, float, float]:
    """Interleaved timing rounds: (bare_s, wrapped_s, overhead_pct).

    Each round times the bare loop and the wrapped loop back to back
    (order alternating between rounds, so neither side systematically
    lands on the busier half of a round).  The reported overhead is the
    lower of two robust estimators — the median per-round ratio and the
    ratio of per-side minima.  Each is immune to a different noise
    shape (slow drift cancels inside a ratio; one-sided scheduler hits
    are discarded by the min); a *real* regression moves both, so the
    gate still catches it while uncorrelated spikes on a loaded host
    rarely survive both.  Three rounds per configured repeat keep the
    sample wide enough.
    """
    bare_fn = _build_loop(*bare_endpoints())
    wrapped_fn = _build_loop(*make_wrapped())
    inner = _inner()
    bare = wrapped = float("inf")
    ratios = []
    for i in range(3 * support.default_repeats()):
        if i % 2 == 0:
            b = best_of(bare_fn, repeats=1, inner=inner)
            w = best_of(wrapped_fn, repeats=1, inner=inner)
        else:
            w = best_of(wrapped_fn, repeats=1, inner=inner)
            b = best_of(bare_fn, repeats=1, inner=inner)
        bare = min(bare, b)
        wrapped = min(wrapped, w)
        ratios.append(w / b)
    overhead = min(statistics.median(ratios), wrapped / bare)
    return bare, wrapped, (overhead - 1.0) * 100.0


def bare_endpoints():
    pipe = InMemoryPipe()
    return pipe.a, pipe.b


def wrapped_endpoints():
    pipe = InMemoryPipe()
    quiet = FaultPlan()  # all probabilities zero: inactive injector
    return (
        FaultInjectingTransport(pipe.a, quiet, seed=0),
        FaultInjectingTransport(pipe.b, quiet, seed=1),
    )


def reconnecting_endpoints():
    pipe = InMemoryPipe()
    link = ReconnectingTransport(lambda: pipe.a, policy=RetryPolicy(max_attempts=2))
    return link, pipe.b


def _gate(label: str, make_wrapped) -> None:
    """Measure up to three times; pass on the first within-budget result.

    The true wrapper overhead is 1-4%; on a loaded host a single
    measurement occasionally spikes past 5% from noise alone (it does so
    for literally-aliased methods too).  A *real* regression is present
    in every measurement, so re-measuring before failing converts noise
    flakes into passes without weakening the gate.
    """
    budget = _overhead_budget_pct()
    worst = -float("inf")
    for _ in range(3):
        bare, wrapped, overhead_pct = _compare(make_wrapped)
        print(
            f"\nbare {bare * 1e6:.2f} us | {label} {wrapped * 1e6:.2f} us "
            f"-> overhead {overhead_pct:+.2f}% (budget {budget:.0f}%)"
        )
        if overhead_pct <= budget:
            return
        worst = max(worst, overhead_pct)
    raise AssertionError(
        f"{label} wrapper costs {worst:.2f}% in 3/3 measurements (> {budget}% budget)"
    )


def test_inactive_wrapper_overhead_within_budget():
    _gate("wrapped", wrapped_endpoints)


def test_reconnecting_wrapper_overhead_within_budget():
    _gate("reconnecting", reconnecting_endpoints)


if __name__ == "__main__":
    test_inactive_wrapper_overhead_within_budget()
    test_reconnecting_wrapper_overhead_within_budget()
