"""Extension benchmark — a realistic mixed application trace.

Single-size loops flatter every system equally; real monitoring traffic
interleaves record types (mostly small telemetry, occasionally large
snapshots).  This bench replays the paper-mixture trace through each
wire system end to end and reports total CPU for the whole trace — the
number an application owner actually experiences.

PBIO's advantages compose here: flat send cost on every message, one
converter per record *type* (amortized across the trace), and zero-copy
for same-representation peers.
"""

import pytest

import support
from repro.abi import codec_for, layout_record
from repro.core import PbioWire
from repro.net import InMemoryPipe, best_of
from repro.wire import IiopWire, MpiWire, XmlWire
from repro.workloads import TraceSpec, generate_trace

N_EVENTS = 64

SYSTEMS = {
    "PBIO": lambda: PbioWire("dcg"),
    "MPICH": MpiWire,
    "CORBA": IiopWire,
    "XML": XmlWire,
}


@pytest.fixture(scope="module")
def trace_setup():
    spec = TraceSpec.paper_mixture()
    events = list(generate_trace(spec, count=N_EVENTS, seed=5))
    natives = []
    for event in events:
        src = layout_record(event.schema, support.SPARC)
        natives.append((event.schema, codec_for(src).encode(event.record)))
    return spec, natives


def build_bounds(spec, factory):
    bounds = {}
    for schema in spec.schemas():
        src = layout_record(schema, support.SPARC)
        dst = layout_record(schema, support.I86)
        bounds[schema.name] = factory().bind(src, dst)
    return bounds


def replay(bounds, natives):
    pipe = InMemoryPipe()
    for schema, native in natives:
        pipe.a.send(bounds[schema.name].encode(native))
    for schema, _ in natives:
        bounds[schema.name].decode(pipe.b.recv())


@pytest.mark.parametrize("system_name", list(SYSTEMS))
def test_mixed_trace_replay(benchmark, trace_setup, system_name):
    spec, natives = trace_setup
    bounds = build_bounds(spec, SYSTEMS[system_name])
    replay(bounds, natives)  # warm converters
    benchmark.group = f"mixed trace ({N_EVENTS} events)"
    benchmark(replay, bounds, natives)


def test_shape_trace_ordering(trace_setup):
    spec, natives = trace_setup
    times = {}
    for name, factory in SYSTEMS.items():
        bounds = build_bounds(spec, factory)
        replay(bounds, natives)
        times[name] = best_of(lambda b=bounds: replay(b, natives), repeats=5)
    assert times["PBIO"] < times["MPICH"]
    assert times["PBIO"] < times["CORBA"]
    assert times["MPICH"] < times["XML"]
