"""Benchmarks for the extension features: DCG filters and PBIO files.

* Filters: evaluating a predicate over two scalar fields must cost far
  less than fully decoding the record — the point of placing "selected
  message operations" into the message path (Section 5).
* Files: write/read throughput for self-describing record files, where
  write cost is NDR-flat per record and read cost is one conversion.
"""

import io

import pytest

import support
from repro.abi import codec_for, layout_record
from repro.core import IOContext, RecordFilter
from repro.core.files import PbioFileReader, PbioFileWriter
from repro.net import best_of
from repro.workloads import mechanical


def filtered_stream(size):
    sender = IOContext(support.SPARC)
    receiver = IOContext(support.I86)
    schema = mechanical.schema_for_size(size)
    handle = sender.register_format(schema)
    receiver.expect(schema)
    receiver.receive(sender.announce(handle))
    message = sender.encode_native(handle, mechanical.native_bytes(size, support.SPARC))
    flt = RecordFilter(receiver, schema.name, "temperature > 200.0 and pressure > 0.0")
    flt.matches(message)  # compile
    return receiver, flt, message


@pytest.mark.parametrize("size", ["1kb", "100kb"])
def test_filter_evaluation(benchmark, size):
    _, flt, message = filtered_stream(size)
    benchmark.group = f"filters vs decode {size}"
    benchmark(flt.matches, message)


@pytest.mark.parametrize("size", ["1kb", "100kb"])
def test_full_decode_for_comparison(benchmark, size):
    receiver, _, message = filtered_stream(size)
    benchmark.group = f"filters vs decode {size}"
    benchmark(receiver.decode_native, message)


def test_shape_filter_independent_of_record_size():
    times = {}
    for size in ("1kb", "100kb"):
        _, flt, message = filtered_stream(size)
        times[size] = best_of(lambda: flt.matches(message), repeats=7, inner=20)
    # Reading 2 scalars costs the same whether the record is 1 KB or
    # 100 KB; allow generous noise.
    assert times["100kb"] < 4 * times["1kb"]


def test_shape_filter_cheaper_than_decode_on_large_records():
    receiver, flt, message = filtered_stream("100kb")
    t_filter = best_of(lambda: flt.matches(message), repeats=7, inner=20)
    t_decode = best_of(lambda: receiver.decode_native(message), repeats=7, inner=5)
    assert t_filter < t_decode / 3


# --- files ------------------------------------------------------------------


def make_records(n=50):
    return [mechanical.sample_record("1kb", seed=s) for s in range(n)]


def test_file_write_throughput(benchmark):
    schema = mechanical.schema_for_size("1kb")
    ctx = IOContext(support.SPARC)
    handle = ctx.register_format(schema)
    natives = [codec_for(handle.layout).encode(r) for r in make_records()]

    def write_all():
        writer = PbioFileWriter(ctx, io.BytesIO())
        for native in natives:
            writer.write_native(handle, native)

    benchmark.group = "pbio files"
    benchmark(write_all)


def test_file_read_throughput(benchmark):
    schema = mechanical.schema_for_size("1kb")
    wctx = IOContext(support.SPARC)
    handle = wctx.register_format(schema)
    buf = io.BytesIO()
    writer = PbioFileWriter(wctx, buf)
    for record in make_records():
        writer.write(handle, record)
    blob = buf.getvalue()

    rctx = IOContext(support.I86)
    rctx.expect(schema)

    def read_all():
        return PbioFileReader(rctx, io.BytesIO(blob)).read_all()

    assert len(read_all()) == 50
    benchmark.group = "pbio files"
    benchmark(read_all)
