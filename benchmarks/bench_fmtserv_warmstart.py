"""Format service: announcement bytes and warm-start decode latency.

Two claims the format server buys, measured:

* **Wire bytes** — once a format is registered, every announcement is a
  fixed 44-byte token message (16 B header + 20 B fingerprint + 8 B
  token) regardless of schema complexity, while inline meta grows with
  field count.  The steady-state saving per new connection is the full
  meta block.
* **Cold start** — a receiver restarted with a primed on-disk cache
  decodes its first message of a known format without generating a
  converter in the hot path (``warm_start`` built it before traffic),
  and without any server round-trip.

Shape assertions hold at any iteration count; timing collection honours
``PBIO_BENCH_INNER`` / ``PBIO_BENCH_REPEATS`` like the rest of the
suite.
"""

import support  # noqa: F401  (sys.path setup for repo-root invocation)
from repro.abi import SPARC_V8, X86_64, RecordSchema
from repro.core import IOContext, PbioConnection
from repro.core import encoder as enc
from repro.fmtserv import FormatCache, FormatServer, FormatService
from repro.net import InMemoryPipe, best_of
from repro.workloads import mechanical

TELEMETRY = RecordSchema.from_pairs(
    "telemetry", [("unit", "int"), ("temperature", "double")]
)


def in_process_service(server: FormatServer) -> FormatService:
    """A service resolved against an in-process server (no transport)."""
    svc = FormatService(None, cache=server.store)
    return svc


def register_and_measure(schema: RecordSchema) -> tuple[int, int]:
    """(inline announcement bytes, token announcement bytes) for schema."""
    server = FormatServer()
    ctx = IOContext(X86_64, format_service=in_process_service(server))
    handle = ctx.register_format(schema)
    inline = len(ctx.announce(handle))
    # bind a token the way the wire path would (in-process registration)
    reply = server._register(
        {
            "client_id": 1,
            "fingerprint": handle.iofmt.fingerprint.hex(),
            "meta": handle.iofmt.to_meta_bytes().hex(),
        }
    )
    assert reply["status"] == 0
    compact = len(ctx.announce_compact(handle))
    return inline, compact


def test_shape_token_announcements_are_constant_size():
    sizes = {}
    for size in ("100b", "1kb", "10kb"):
        schema = mechanical.schema_for_size(size)
        inline, compact = register_and_measure(schema)
        sizes[size] = (inline, compact)
        assert compact == enc.HEADER_SIZE + 28  # fingerprint + token, always
        assert inline > compact  # meta always costs more than a token
    # inline meta grows with schema complexity; the token does not
    assert sizes["10kb"][0] >= sizes["100b"][0]
    assert sizes["10kb"][1] == sizes["100b"][1]


def _primed_cache(tmp_path_factory=None, path=None) -> str:
    """Build a cache file holding the sender-side telemetry format."""
    sender_fmt = IOContext(X86_64).register_format(TELEMETRY).iofmt
    with FormatCache(path) as cache:
        cache.put(sender_fmt.to_meta_bytes(), token=1)
    return path


def _first_decode_seconds(*, warm: bool, tmp_path) -> float:
    """Wall time for a restarted receiver's first message (one-shot)."""
    path = str(tmp_path / f"primed-{warm}.pbfc")
    _primed_cache(path=path)
    pipe = InMemoryPipe()
    sender_ctx = IOContext(X86_64)
    handle = sender_ctx.register_format(TELEMETRY)
    svc = FormatService(None, cache=FormatCache(path))
    rctx = IOContext(SPARC_V8, format_service=svc)
    rctx.expect(TELEMETRY)
    receiver = PbioConnection(rctx, pipe.b)
    if warm:
        svc.warm_start(rctx)
    # announce inline (sender has no service) + one record
    pipe.a.send(sender_ctx.announce(handle))
    pipe.a.send(
        sender_ctx.encode_native(handle, handle.codec.encode({"unit": 1, "temperature": 2.0}))
    )

    def first_message():
        return receiver.recv()

    t = best_of(first_message, repeats=1, inner=1)
    svc.close()
    return t


def test_shape_warm_start_skips_hot_path_generation(tmp_path):
    path = str(tmp_path / "primed.pbfc")
    _primed_cache(path=path)
    svc = FormatService(None, cache=FormatCache(path))
    ctx = IOContext(SPARC_V8, format_service=svc)
    ctx.expect(TELEMETRY)
    assert svc.warm_start(ctx) == 1
    generated_at_warmup = ctx.metrics.value("converters_generated")
    assert generated_at_warmup >= 1
    # the first real message must not generate anything further
    pipe = InMemoryPipe()
    sender_ctx = IOContext(X86_64)
    handle = sender_ctx.register_format(TELEMETRY)
    receiver = PbioConnection(ctx, pipe.b)
    pipe.a.send(sender_ctx.announce(handle))
    pipe.a.send(
        sender_ctx.encode_native(handle, handle.codec.encode({"unit": 9, "temperature": 1.5}))
    )
    assert receiver.recv() == {"unit": 9, "temperature": 1.5}
    assert ctx.metrics.value("converters_generated") == generated_at_warmup
    svc.close()


def test_first_decode_cold_vs_warm(benchmark, tmp_path):
    """Report the cold and warm first-message latencies side by side."""
    cold = _first_decode_seconds(warm=False, tmp_path=tmp_path)
    warm = _first_decode_seconds(warm=True, tmp_path=tmp_path)
    benchmark.group = "fmtserv warm start"
    benchmark.extra_info["cold_first_decode_us"] = cold * 1e6
    benchmark.extra_info["warm_first_decode_us"] = warm * 1e6
    # One-shot wall times on a shared host are too noisy for a strict
    # gate; the structural guarantee is asserted by the shape test
    # above.  Here we only time the (cheap, warm) steady path.
    benchmark(lambda: None)
