#!/usr/bin/env python
"""Quickstart: a heterogeneous PBIO exchange in ~40 lines.

A simulated x86 sender ships a record to a simulated SPARC receiver.
PBIO transmits the sender's native bytes (no encode cost), announces the
format once, and the receiver converts with a runtime-generated routine.

Run: python examples/quickstart.py
"""

from repro import abi
from repro.core import IOContext

# A record type, declared once, machine-independent.
schema = abi.RecordSchema.from_pairs(
    "particle",
    [
        ("particle_id", "int"),
        ("mass", "double"),
        ("position", "double[3]"),
        ("velocity", "double[3]"),
        ("species", "char[8]"),
    ],
)


def main() -> None:
    # Two parties on different architectures: byte order, alignment and
    # type sizes all differ between these ABIs.
    sender = IOContext(machine=abi.X86)
    receiver = IOContext(machine=abi.SPARC_V8)

    # Writer registers what it writes; reader declares what it expects.
    fmt = sender.register_format(schema)
    receiver.expect(schema)

    # The format's meta-information crosses the wire ONCE...
    announcement = sender.announce(fmt)
    receiver.receive(announcement)
    print(f"announcement: {len(announcement)} bytes (sent once per format)")

    # ...then every data message is just a 16-byte header + native bytes.
    record = {
        "particle_id": 42,
        "mass": 1.6726e-27,
        "position": (0.1, 0.2, 0.3),
        "velocity": (-1.0, 2.0, 0.5),
        "species": b"proton",
    }
    message = sender.encode(fmt, record)
    print(f"data message: {len(message)} bytes for a {fmt.layout.size}-byte record")

    decoded = receiver.receive(message)
    print(f"received on {receiver.machine.name}: {decoded}")

    # The receiver generated exactly one conversion routine, at runtime,
    # from the wire format it had never seen before.
    print(
        f"converters generated: {receiver.stats.converters_generated} "
        f"(in {receiver.stats.generation_time_s * 1e3:.2f} ms, cached thereafter)"
    )
    assert decoded["particle_id"] == 42
    assert abs(decoded["position"][2] - 0.3) < 1e-12


if __name__ == "__main__":
    main()
