#!/usr/bin/env python
"""Self-describing archives across decades of machines.

PBIO began as Portable Binary *I/O*: the same NDR + meta-information
design works for files.  This example runs an archival pipeline that
exercises the property that matters for archives — the reader needs *no*
knowledge of the writer:

1. a VAX-era instrument (byte-packed structs, VAX D floats!) writes a
   binary archive in its natural representation;
2. years later, the archive is appended to by an upgraded x86 collector
   whose record format gained a field;
3. a modern x86-64 analysis job reads the whole file — both eras, both
   formats — and a schema-less inspector (the ``pbio-dump`` machinery)
   lists everything without being told any format at all.

Run: python examples/archive_pipeline.py
"""

import os
import tempfile

from repro import abi
from repro.abi import CType, FieldDecl
from repro.core import IOContext, PbioFileReader, PbioFileWriter, generic_decode, incoming_format

OBSERVATION_V1 = abi.RecordSchema.from_pairs(
    "observation",
    [
        ("station", "int"),
        ("timestamp", "int"),
        ("reading", "double"),
        ("confidence", "float"),
    ],
)
# The upgrade appends a field (the evolution-friendly direction).
OBSERVATION_V2 = OBSERVATION_V1.extended(
    "observation", [FieldDecl("calibrated", CType.BOOL)]
)


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(), "observations.pbio")

    # --- era 1: the VAX instrument -----------------------------------------
    vax = IOContext(abi.VAX)
    with PbioFileWriter.open(vax, path) as writer:
        h = vax.register_format(OBSERVATION_V1)
        for i in range(3):
            writer.write(
                h,
                {"station": 7, "timestamp": 1000 + i, "reading": 20.5 + i, "confidence": 0.9},
            )
    size_era1 = os.path.getsize(path)
    print(f"era 1: VAX instrument wrote 3 records ({size_era1} bytes, VAX D floats inside)")

    # --- era 2: the upgraded x86 collector appends ---------------------------
    # PbioFileWriter.append continues the existing stream in whatever
    # framing version the file declares — new era, same archive.
    x86 = IOContext(abi.X86)
    with PbioFileWriter.append(x86, path) as writer:
        h2 = x86.register_format(OBSERVATION_V2)
        for i in range(2):
            writer.write(
                h2,
                {
                    "station": 7,
                    "timestamp": 2000 + i,
                    "reading": 21.0 + i,
                    "confidence": 0.95,
                    "calibrated": True,
                },
            )
    print(f"era 2: x86 collector appended 2 v2 records (+{os.path.getsize(path) - size_era1} bytes)")

    # --- era 3: a modern analysis job reads everything -----------------------
    modern = IOContext(abi.X86_64)
    modern.expect(OBSERVATION_V1)  # analysis only needs the v1 fields
    with PbioFileReader.open(modern, path) as reader:
        readings = [(r["timestamp"], r["reading"]) for r in reader]
    print(f"era 3: x86-64 analysis decoded {len(readings)} records across both eras:")
    for ts, val in readings:
        print(f"    t={ts}  reading={val:.2f}")
    assert len(readings) == 5

    # --- the schema-less inspector --------------------------------------------
    print("\nschema-less inspection (what pbio-dump does):")
    inspector = IOContext(abi.X86_64)  # no expect() calls at all
    seen = set()
    with PbioFileReader.open(inspector, path) as reader:
        for message in reader.iter_raw():
            fmt = incoming_format(inspector, message)
            if fmt.fingerprint not in seen:
                seen.add(fmt.fingerprint)
                head = fmt.describe().splitlines()[0]
                print(f"  discovered {head}")
            record = generic_decode(inspector, message)
    print(f"  ...{len(seen)} distinct wire formats in one file, zero schemas supplied")
    assert len(seen) == 2
    print("\nthe archive outlived two machine generations and a format change.")


if __name__ == "__main__":
    main()
