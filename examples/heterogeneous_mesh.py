#!/usr/bin/env python
"""Mechanical-engineering exchange over real TCP sockets, comparing wire
formats — a miniature of the paper's evaluation on the workload its
figures use.

A simulated SPARC "solver" streams mesh-node update records (the paper's
1 KB mixed-field structures) to a simulated x86 "coupler" over a real
loopback socket, once with each wire system.  The script reports per-
system sender CPU, receiver CPU, and bytes on the wire, and verifies all
systems deliver identical physics.

Run: python examples/heterogeneous_mesh.py
"""

import time

from repro import abi
from repro.abi import codec_for, layout_record, records_equal
from repro.core import PbioWire
from repro.net import loopback_pair
from repro.wire import IiopWire, MpiWire, XmlWire
from repro.workloads import mechanical
from repro.workloads.generators import record_stream

SIZE = "1kb"
N_RECORDS = 200


def run_system(name, system, records, src_layout, dst_layout):
    bound = system.bind(src_layout, dst_layout)
    src_codec = codec_for(src_layout)
    dst_codec = codec_for(dst_layout)
    natives = [src_codec.encode(r) for r in records]  # app-side data

    client, server = loopback_pair()
    try:
        send_cpu = recv_cpu = 0.0
        wire_bytes = 0
        decoded = []
        for native in natives:
            t0 = time.perf_counter()
            message = bound.encode(native)
            send_cpu += time.perf_counter() - t0
            wire_bytes += len(message)
            client.send(message)
            incoming = server.recv()
            t0 = time.perf_counter()
            out = bound.decode(incoming)
            recv_cpu += time.perf_counter() - t0
            decoded.append(dst_codec.decode(out))
        return send_cpu, recv_cpu, wire_bytes, decoded
    finally:
        client.close()
        server.close()


def main() -> None:
    schema = mechanical.schema_for_size(SIZE)
    src_layout = layout_record(schema, abi.SPARC_V8)
    dst_layout = layout_record(schema, abi.X86)
    records = list(record_stream(schema, count=N_RECORDS, seed=42))

    systems = [
        ("PBIO (DCG)", PbioWire("dcg")),
        ("PBIO (interp)", PbioWire("interpreted")),
        ("MPICH", MpiWire()),
        ("CORBA", IiopWire()),
        ("XML", XmlWire()),
    ]
    print(
        f"streaming {N_RECORDS} x {SIZE} mesh records, "
        f"{src_layout.machine.name} -> {dst_layout.machine.name}, real TCP loopback\n"
    )
    print(f"{'system':14s} {'send CPU':>10s} {'recv CPU':>10s} {'wire KB':>9s}")
    reference = None
    for name, system in systems:
        send_cpu, recv_cpu, wire_bytes, decoded = run_system(
            name, system, records, src_layout, dst_layout
        )
        print(
            f"{name:14s} {send_cpu * 1e3:8.2f} ms {recv_cpu * 1e3:8.2f} ms "
            f"{wire_bytes / 1024:8.1f}"
        )
        if reference is None:
            reference = decoded
        else:
            for want, got in zip(reference, decoded):
                assert records_equal(want, got, rel_tol=1e-5)
    print("\nall systems delivered identical records; only the costs differ.")


if __name__ == "__main__":
    main()
