#!/usr/bin/env python
"""A distributed-laboratory event channel — the paper's collaboration
scenario (Section 1: simulations interoperating with "environments for
human collaboration ... visualization engines and remote instruments").

One combustion simulation (simulated SPARC cluster) and one physical
instrument (StrongARM data-acquisition board — a platform from the
paper's future-work list) publish records into a shared channel.
Subscribers attach with different machines and different needs:

* a visualization frontend (x86) consumes every simulation frame;
* an alarm panel subscribes with a DCG-compiled *filter* — it pays to
  inspect only one scalar field per record, never a full decode, and
  reacts to hot readings from either producer;
* an archiver joins LATE, after the stream has started, and still
  decodes everything (the channel replays format announcements —
  "receivers ... can easily join ongoing communications").

Run: python examples/collaboration_channel.py
"""

from repro import abi
from repro.core import IOContext
from repro.net import EventChannel

FRAME = abi.RecordSchema.from_pairs(
    "frame",
    [("step", "int"), ("max_temp", "double"), ("cells", "double[32]")],
)
READING = abi.RecordSchema.from_pairs(
    "reading",
    [("probe", "int"), ("max_temp", "double"), ("volts", "float")],
)


def main() -> None:
    channel = EventChannel()

    # --- early subscribers ----------------------------------------------
    frames = []
    viz_ctx = IOContext(abi.X86)
    viz_ctx.expect(FRAME)
    channel.subscribe(viz_ctx, frames.append, format_name="frame")

    alarms = []
    alarm_ctx = IOContext(abi.X86)
    alarm_ctx.expect(FRAME)
    alarm_ctx.expect(READING)
    # Two filtered subscriptions share one context; the filter reads only
    # the max_temp scalar straight out of each message payload.
    channel.subscribe(
        alarm_ctx, lambda r: alarms.append(("sim", r["step"])),
        format_name="frame", filter_expr="max_temp > 1800.0",
    )
    channel.subscribe(
        alarm_ctx, lambda r: alarms.append(("probe", r["probe"])),
        format_name="reading", filter_expr="max_temp > 1800.0",
    )

    # --- producers ---------------------------------------------------------
    sim = channel.publisher(IOContext(abi.SPARC_V8))
    frame_fmt = sim.ctx.register_format(FRAME)
    instrument = channel.publisher(IOContext(abi.STRONGARM))
    reading_fmt = instrument.ctx.register_format(READING)

    for step in range(4):
        temp = 1500.0 + 150.0 * step  # heats up over time
        sim.publish(
            frame_fmt,
            {"step": step, "max_temp": temp, "cells": tuple(temp - i for i in range(32))},
        )
        instrument.publish(
            reading_fmt, {"probe": 1, "max_temp": temp - 50.0, "volts": 3.3}
        )

    # --- a late joiner -------------------------------------------------------
    archive = []
    arch_ctx = IOContext(abi.ALPHA)
    arch_ctx.expect(FRAME)
    channel.subscribe(arch_ctx, archive.append, format_name="frame")
    sim.publish(
        frame_fmt,
        {"step": 4, "max_temp": 2100.0, "cells": tuple(2100.0 - i for i in range(32))},
    )

    print(f"viz frontend received {len(frames)} frames (steps {[f['step'] for f in frames]})")
    print(f"alarm panel fired on: {alarms}")
    print(f"late-joining archiver caught frame steps {[f['step'] for f in archive]}")

    assert len(frames) == 5
    assert ("sim", 3) in alarms and ("sim", 4) in alarms  # the >1800 K frames
    assert ("probe", 1) in alarms  # the instrument's 1900 K reading at step 3
    assert [f["step"] for f in archive] == [4]
    print("\nthree machines, two producers, filters, and a late join — no a priori agreements.")


if __name__ == "__main__":
    main()
