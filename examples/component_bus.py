#!/usr/bin/env python
"""Plug-and-play components via reflection — Section 4.4's claim that
format meta-information "allows generic components to operate upon data
about which they have no a priori knowledge".

A message bus carries records from several producers.  Two generic
components consume them WITHOUT declaring any expected formats:

* an archiver logs every record of every type it has never seen, using
  ``generic_decode`` (reflection over the wire format's own description);
* a threshold filter inspects formats for a ``temperature`` field and
  alarms on hot records, whatever record type they ride in.

Run: python examples/component_bus.py
"""

from repro import abi
from repro.core import IOContext, generic_decode, incoming_format, peek_message

BUS_PRODUCERS = {
    "turbine_telemetry": (
        abi.SPARC_V8,
        abi.RecordSchema.from_pairs(
            "turbine_telemetry",
            [("unit", "int"), ("rpm", "double"), ("temperature", "double")],
        ),
        [
            {"unit": 1, "rpm": 3600.0, "temperature": 651.0},
            {"unit": 2, "rpm": 3612.5, "temperature": 702.5},
        ],
    ),
    "job_status": (
        abi.X86,
        abi.RecordSchema.from_pairs(
            "job_status",
            [("job_id", "int"), ("phase", "char[12]"), ("progress", "float")],
        ),
        [{"job_id": 77, "phase": b"assembly", "progress": 0.42}],
    ),
    "sensor_sample": (
        abi.ALPHA,
        abi.RecordSchema.from_pairs(
            "sensor_sample",
            [("sensor", "int"), ("temperature", "double"), ("valid", "bool")],
        ),
        [{"sensor": 9, "temperature": 713.2, "valid": True}],
    ),
}

HOT = 700.0


def main() -> None:
    # Producers on three different architectures publish onto the bus.
    bus: list[bytes] = []
    for name, (machine, schema, records) in BUS_PRODUCERS.items():
        ctx = IOContext(machine)
        fmt = ctx.register_format(schema)
        bus.append(ctx.announce(fmt))
        for rec in records:
            bus.append(ctx.encode(fmt, rec))

    # A generic consumer: knows NOTHING about the producers.
    consumer = IOContext(abi.X86_64)
    alarms = []
    for message in bus:
        info = peek_message(message)
        if info.is_format:
            fmt = incoming_format(consumer, message)
            consumer.receive(message)  # absorb the announcement
            print(f"[bus] new format announced: {fmt.name!r}")
            print("      " + "\n      ".join(fmt.describe().splitlines()[1:]))
            continue
        # Reflection: what type is this, and what fields does it carry?
        fmt = incoming_format(consumer, message)
        record = generic_decode(consumer, message)
        print(f"[archiver] {fmt.name}: {record}")
        if "temperature" in fmt and record["temperature"] > HOT:
            alarms.append((fmt.name, record["temperature"]))

    print("\n[filter] hot-temperature alarms:")
    for name, temp in alarms:
        print(f"  {name}: {temp:.1f} K")
    assert len(alarms) == 2  # turbine unit 2 and sensor 9
    print("\nno consumer declared a format; reflection did all the work.")


if __name__ == "__main__":
    main()
