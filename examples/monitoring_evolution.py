#!/usr/bin/env python
"""Online monitoring with application evolution — the paper's motivating
scenario (Section 1: "online visualization is being used to monitor the
progress of applications").

A long-running simulation streams state records to a visualization
monitor.  Mid-run, the simulation is upgraded and starts sending an
extended record with two new fields.  Because PBIO matches fields by
name:

* the OLD monitor keeps working, silently ignoring the new fields
  (no recompile, no relink, no restart — Section 4.4's type extension);
* a NEW monitor sees the added fields, and the evolution report shows
  the upgrade followed the append-at-the-end advice, so un-upgraded
  homogeneous readers would even keep their zero-copy path.

Run: python examples/monitoring_evolution.py
"""

from repro import abi
from repro.abi import CType, FieldDecl
from repro.core import IOContext, PbioConnection, check_evolution
from repro.core.formats import IOFormat
from repro.net import InMemoryPipe

SIM_MACHINE = abi.SPARC_V8  # the compute cluster
MON_MACHINE = abi.X86  # the scientist's desktop

STATE_V1 = abi.RecordSchema.from_pairs(
    "sim_state",
    [
        ("timestep", "int"),
        ("sim_time", "double"),
        ("residual", "double"),
        ("energy", "double"),
        ("temperatures", "double[16]"),
    ],
)

# v2 appends fields (the evolution-friendly direction).
STATE_V2 = STATE_V1.extended(
    "sim_state",
    [FieldDecl("pressure_max", CType.DOUBLE), FieldDecl("cells_refined", CType.INT)],
)


def state(timestep: int, version: int) -> dict:
    record = {
        "timestep": timestep,
        "sim_time": timestep * 1e-3,
        "residual": 10.0 ** (-timestep / 4),
        "energy": 42.0 + 0.01 * timestep,
        "temperatures": tuple(300.0 + i + timestep for i in range(16)),
    }
    if version == 2:
        record["pressure_max"] = 9.8e4 + timestep
        record["cells_refined"] = 128 * timestep
    return record


def main() -> None:
    pipe = InMemoryPipe()
    sim = PbioConnection(IOContext(SIM_MACHINE), pipe.a)
    monitor = PbioConnection(IOContext(MON_MACHINE), pipe.b)
    monitor.ctx.expect(STATE_V1)  # the deployed monitor knows only v1

    # --- phase 1: the original simulation streams v1 records ------------
    v1 = sim.ctx.register_format(STATE_V1)
    for t in range(3):
        sim.send(v1, state(t, version=1))
    for _ in range(3):
        rec = monitor.recv()
        print(f"[monitor] t={rec['timestep']} residual={rec['residual']:.2e}")

    # --- phase 2: the simulation is upgraded mid-run ---------------------
    report = check_evolution(
        old=IOFormat.from_layout(monitor.ctx._expected["sim_state"].layout),
        new=IOFormat.from_layout(abi.layout_record(STATE_V2, SIM_MACHINE)),
    )
    print("\n" + report.describe() + "\n")
    assert report.compatible

    v2 = sim.ctx.register_format(STATE_V2)
    for t in range(3, 6):
        sim.send(v2, state(t, version=2))

    # The OLD monitor keeps decoding, ignoring pressure_max/cells_refined.
    for _ in range(3):
        rec = monitor.recv()
        assert "pressure_max" not in rec
        print(f"[old monitor] t={rec['timestep']} energy={rec['energy']:.2f} (new fields ignored)")

    # --- phase 3: a NEW monitor joins the ongoing stream -----------------
    pipe2 = InMemoryPipe()
    sim2 = PbioConnection(sim.ctx, pipe2.a)  # same simulation context
    new_monitor = PbioConnection(IOContext(MON_MACHINE), pipe2.b)
    new_monitor.ctx.expect(STATE_V2)
    sim2.send(v2, state(6, version=2))
    rec = new_monitor.recv()
    print(f"[new monitor] t={rec['timestep']} pressure_max={rec['pressure_max']:.0f}")
    assert rec["cells_refined"] == 128 * 6
    print("\nno component was recompiled, relinked, or restarted.")


if __name__ == "__main__":
    main()
