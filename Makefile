.PHONY: install test bench bench-stats figures examples all

install:
	pip install -e .

test:
	pytest tests/

bench:            ## shape assertions only (fast)
	pytest benchmarks/ --benchmark-disable

bench-stats:      ## full pytest-benchmark statistics
	pytest benchmarks/ --benchmark-only

figures:          ## regenerate every paper figure
	python benchmarks/harness.py

examples:
	for example in examples/*.py; do python $$example; done

all: test bench figures examples
