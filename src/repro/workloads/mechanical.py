"""The paper's benchmark workload.

Figure 1's caption says the message sizes come from "a real mechanical
engineering application", exchanged as "mixed-field structures of various
sizes" (Section 4.3): roughly 100 bytes, 1 KB, 10 KB and 100 KB.  We model
them as finite-element node/element update records: a block of scalar
state (ids, timestep, scalar physics values, a tag) followed by
progressively larger arrays of doubles, floats, and ints.

The mixed primitive types matter: they force the conversion layer to do
more than one bulk byteswap (different element widths, interleaved with
padding), exactly the situation PBIO's planner and DCG are built for.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.abi import MachineDescription, RecordSchema, codec_for, layout_record

#: The four record sizes of the paper's evaluation, in presentation order.
SIZES: tuple[str, ...] = ("100b", "1kb", "10kb", "100kb")

# Scalar header shared by all sizes (~94 bytes of packed data on ILP32).
_SCALAR_HEADER: list[tuple[str, str]] = [
    ("node_id", "int"),
    ("timestep", "int"),
    ("mass", "double"),
    ("volume", "double"),
    ("temperature", "double"),
    ("pressure", "double"),
    ("flags", "unsigned int"),
    ("material", "short"),
    # A lone float here pushes the following double array onto a 4-mod-8
    # offset: the i386 ABI keeps it there while SPARC pads to 8, so the
    # two machines genuinely lay this struct out differently (the paper's
    # third heterogeneity source, beyond byte order and type sizes).
    ("epsilon", "float"),
    ("tag", "char[8]"),
    ("position", "double[3]"),
    ("velocity", "float[4]"),
]

# Array payloads per size, chosen so the x86 native record lands near the
# paper's nominal sizes (see test_mechanical.py for the enforced bounds).
_ARRAY_PAYLOADS: dict[str, list[tuple[str, str]]] = {
    "100b": [],
    "1kb": [
        ("displacement", "double[72]"),
        ("stress", "float[64]"),
        ("connectivity", "int[23]"),
    ],
    "10kb": [
        ("displacement", "double[768]"),
        ("stress", "float[512]"),
        ("connectivity", "int[383]"),
        ("strain", "double[52]"),
    ],
    "100kb": [
        ("displacement", "double[8192]"),
        ("stress", "float[4096]"),
        ("connectivity", "int[4096]"),
        ("strain", "double[500]"),
    ],
}


def schema_for_size(size: str, *, name: str | None = None) -> RecordSchema:
    """Return the mixed-field record schema for one of the paper's sizes.

    ``size`` is one of ``"100b"``, ``"1kb"``, ``"10kb"``, ``"100kb"``.
    """
    key = size.lower()
    if key not in _ARRAY_PAYLOADS:
        raise ValueError(f"size must be one of {SIZES}, got {size!r}")
    pairs = _SCALAR_HEADER + _ARRAY_PAYLOADS[key]
    return RecordSchema.from_pairs(name or f"mech_{key}", pairs)


def all_schemas() -> dict[str, RecordSchema]:
    """All four paper-sized schemas, keyed by size label."""
    return {size: schema_for_size(size) for size in SIZES}


def sample_record(size: str, *, seed: int = 0) -> dict[str, Any]:
    """Generate a deterministic, physically plausible record for ``size``."""
    schema = schema_for_size(size)
    rng = np.random.default_rng(seed)
    record: dict[str, Any] = {
        "node_id": int(rng.integers(1, 1_000_000)),
        "timestep": int(rng.integers(0, 100_000)),
        "mass": float(rng.uniform(0.1, 10.0)),
        "volume": float(rng.uniform(0.001, 1.0)),
        "temperature": float(rng.uniform(250.0, 2000.0)),
        "pressure": float(rng.uniform(1e3, 1e7)),
        "flags": int(rng.integers(0, 2**32)),
        "material": int(rng.integers(0, 512)),
        "epsilon": float(np.float32(rng.uniform(1e-9, 1e-3))),
        "tag": b"NODE%03d" % (seed % 1000),
        "position": tuple(float(x) for x in rng.uniform(-1.0, 1.0, 3)),
        "velocity": tuple(float(np.float32(x)) for x in rng.uniform(-10.0, 10.0, 4)),
    }
    for decl in schema:
        if decl.name in record:
            continue
        if decl.ctype.value == "double":
            record[decl.name] = rng.uniform(-1e3, 1e3, decl.count)
        elif decl.ctype.value == "float":
            record[decl.name] = rng.uniform(-1e3, 1e3, decl.count).astype(np.float32)
        else:  # int connectivity
            record[decl.name] = rng.integers(0, 1_000_000, decl.count, dtype=np.int64)
    return record


def native_bytes(size: str, machine: MachineDescription, *, seed: int = 0) -> bytes:
    """The record as it would sit in application memory on ``machine``.

    Benchmarks start from this: in the paper, data "is assumed to exist in
    binary format prior to transmission" (Section 4.2).
    """
    codec = codec_for(layout_record(schema_for_size(size), machine))
    return codec.encode(sample_record(size, seed=seed))


def nominal_bytes(size: str) -> int:
    """The nominal byte count a size label denotes (100b -> 100, ...)."""
    return {"100b": 100, "1kb": 1024, "10kb": 10240, "100kb": 102400}[size.lower()]
