"""Synthetic application traces: interleaved multi-type message streams.

Real applications in the paper's setting (monitoring, collaboration,
coupled codes) do not send one record type in a tight loop — they emit a
*mixture*: frequent small telemetry, periodic medium state updates, rare
large snapshots.  A :class:`TraceSpec` describes such a mixture;
:func:`generate_trace` expands it into a deterministic message sequence
that benchmarks and integration tests replay through any wire system.

The default spec mirrors the paper's workload sizes with a plausible
frequency profile (many 100 B messages, few 100 KB ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.abi import RecordSchema

from . import mechanical
from .generators import random_record


@dataclass(frozen=True)
class TraceEntry:
    """One record type and its relative frequency in the mixture."""

    schema: RecordSchema
    weight: float


@dataclass(frozen=True)
class TraceEvent:
    """One message of the expanded trace."""

    index: int
    schema: RecordSchema
    record: dict[str, Any]


class TraceSpec:
    """A weighted mixture of record types."""

    def __init__(self, entries: list[TraceEntry]):
        if not entries:
            raise ValueError("a trace needs at least one entry")
        total = sum(e.weight for e in entries)
        if total <= 0:
            raise ValueError("trace weights must be positive")
        names = [e.schema.name for e in entries]
        if len(set(names)) != len(names):
            raise ValueError("trace record types must have distinct names")
        self.entries = list(entries)
        self._probs = [e.weight / total for e in entries]

    def schemas(self) -> list[RecordSchema]:
        return [e.schema for e in self.entries]

    @classmethod
    def paper_mixture(cls) -> "TraceSpec":
        """The paper's four sizes with a telemetry-like frequency profile:
        the small records dominate counts, the large ones dominate bytes."""
        weights = {"100b": 70.0, "1kb": 20.0, "10kb": 8.0, "100kb": 2.0}
        return cls(
            [
                TraceEntry(mechanical.schema_for_size(size), weights[size])
                for size in mechanical.SIZES
            ]
        )


def generate_trace(spec: TraceSpec, *, count: int, seed: int = 0) -> Iterator[TraceEvent]:
    """Expand a spec into ``count`` deterministic events."""
    rng = np.random.default_rng(seed)
    choices = rng.choice(len(spec.entries), size=count, p=spec._probs)
    for i, choice in enumerate(choices):
        schema = spec.entries[int(choice)].schema
        yield TraceEvent(i, schema, random_record(schema, rng))


def trace_summary(events: list[TraceEvent]) -> dict[str, int]:
    """Message count per record type (sanity/reporting helper)."""
    out: dict[str, int] = {}
    for event in events:
        out[event.schema.name] = out.get(event.schema.name, 0) + 1
    return out
