"""Random schema and record generators.

Used by property-based tests (random layouts must round-trip through every
wire format) and by stream workloads (message sequences for the channel
and round-trip harnesses).
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.abi import CType, FieldDecl, RecordSchema

#: C types eligible for random schemas (strings excluded by default since
#: several baselines — notably the MPI pack baseline — model fixed-size
#: structures only).
_SCALAR_TYPES: tuple[CType, ...] = (
    CType.CHAR,
    CType.SIGNED_CHAR,
    CType.UNSIGNED_CHAR,
    CType.SHORT,
    CType.UNSIGNED_SHORT,
    CType.INT,
    CType.UNSIGNED_INT,
    CType.LONG,
    CType.UNSIGNED_LONG,
    CType.LONG_LONG,
    CType.UNSIGNED_LONG_LONG,
    CType.FLOAT,
    CType.DOUBLE,
    CType.BOOL,
)


def random_schema(
    rng: np.random.Generator,
    *,
    name: str = "random",
    min_fields: int = 1,
    max_fields: int = 12,
    max_array: int = 16,
    allow_strings: bool = False,
    allow_nested: bool = False,
    _depth: int = 0,
) -> RecordSchema:
    """Generate a random record schema (deterministic given ``rng`` state)."""
    n = int(rng.integers(min_fields, max_fields + 1))
    fields = []
    for i in range(n):
        if allow_nested and _depth < 2 and rng.random() < 0.15:
            sub = random_schema(
                rng,
                name=f"sub{_depth}_{i}",
                min_fields=1,
                max_fields=4,
                max_array=4,
                allow_strings=False,
                allow_nested=allow_nested,
                _depth=_depth + 1,
            )
            count = int(rng.integers(1, 4)) if rng.random() < 0.3 else 1
            fields.append(FieldDecl.nested(f"f{i}", sub, count))
            continue
        if allow_strings and rng.random() < 0.1:
            fields.append(FieldDecl(f"f{i}", CType.STRING))
            continue
        ctype = _SCALAR_TYPES[int(rng.integers(len(_SCALAR_TYPES)))]
        count = 1
        if ctype is not CType.BOOL and rng.random() < 0.3:
            count = int(rng.integers(2, max_array + 1))
        fields.append(FieldDecl(f"f{i}", ctype, count))
    return RecordSchema(name, fields)


def _int_bounds(ctype: CType, size: int) -> tuple[int, int]:
    if ctype.is_signed:
        return -(1 << (8 * size - 1)), (1 << (8 * size - 1)) - 1
    return 0, (1 << (8 * size)) - 1


def random_record(
    schema: RecordSchema,
    rng: np.random.Generator,
    *,
    int_size_hint: dict[str, int] | None = None,
) -> dict[str, Any]:
    """Generate values for every field of ``schema``.

    Integer values are drawn to fit the *smallest* size that field takes
    on any machine (``int_size_hint`` can narrow further), so records stay
    representable across heterogeneous exchanges.
    """
    out: dict[str, Any] = {}
    for decl in schema:
        if decl.is_nested:
            values = [
                random_record(decl.schema, rng, int_size_hint=int_size_hint)
                for _ in range(decl.count)
            ]
            out[decl.name] = values[0] if decl.count == 1 else values
            continue
        ctype = decl.ctype
        if ctype is CType.STRING:
            length = int(rng.integers(0, 24))
            out[decl.name] = "".join(
                chr(int(c)) for c in rng.integers(97, 123, length)
            )
            continue
        if ctype is CType.CHAR:
            raw = bytes(int(c) for c in rng.integers(32, 127, decl.count))
            out[decl.name] = raw if decl.count > 1 else raw[:1]
            continue
        if ctype is CType.BOOL:
            vals = [bool(rng.random() < 0.5) for _ in range(decl.count)]
            out[decl.name] = vals[0] if decl.count == 1 else tuple(vals)
            continue
        if ctype.is_float:
            vals = rng.uniform(-1e6, 1e6, decl.count)
            if ctype is CType.FLOAT:
                vals = vals.astype(np.float32).astype(float)
            out[decl.name] = float(vals[0]) if decl.count == 1 else tuple(float(v) for v in vals)
            continue
        # integers: respect the narrowest cross-machine size (long can be
        # 4 bytes on ILP32 targets, so bound longs at 4 bytes by default)
        base_size = {
            CType.SIGNED_CHAR: 1,
            CType.UNSIGNED_CHAR: 1,
            CType.SHORT: 2,
            CType.UNSIGNED_SHORT: 2,
            CType.INT: 4,
            CType.UNSIGNED_INT: 4,
            CType.LONG: 4,
            CType.UNSIGNED_LONG: 4,
            CType.LONG_LONG: 8,
            CType.UNSIGNED_LONG_LONG: 8,
        }[ctype]
        if int_size_hint and decl.name in int_size_hint:
            base_size = min(base_size, int_size_hint[decl.name])
        if base_size == 8:
            # 64-bit ranges overflow numpy's bounded-integer sampler; draw
            # raw bytes and reinterpret.
            signed = ctype.is_signed
            vals = [
                int.from_bytes(rng.bytes(8), "little", signed=signed)
                for _ in range(decl.count)
            ]
        else:
            lo, hi = _int_bounds(ctype, base_size)
            vals = [int(rng.integers(lo, hi, endpoint=True)) for _ in range(decl.count)]
        out[decl.name] = vals[0] if decl.count == 1 else tuple(vals)
    return out


def record_stream(
    schema: RecordSchema, *, count: int, seed: int = 0
) -> Iterator[dict[str, Any]]:
    """Yield ``count`` deterministic records for ``schema``."""
    rng = np.random.default_rng(seed)
    for _ in range(count):
        yield random_record(schema, rng)
