"""Benchmark workloads: the paper's mechanical-engineering records plus
random schema/record generators for property tests and streams."""

from . import mechanical
from .generators import random_record, random_schema, record_stream
from .mechanical import SIZES, all_schemas, native_bytes, nominal_bytes, sample_record, schema_for_size
from .trace import TraceEntry, TraceEvent, TraceSpec, generate_trace, trace_summary

__all__ = [
    "mechanical",
    "SIZES",
    "schema_for_size",
    "all_schemas",
    "sample_record",
    "native_bytes",
    "nominal_bytes",
    "random_schema",
    "random_record",
    "record_stream",
    "TraceSpec",
    "TraceEntry",
    "TraceEvent",
    "generate_trace",
    "trace_summary",
]
