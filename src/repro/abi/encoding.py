"""Encode/decode application values to a machine's native byte layout.

In the paper, the application's data already exists in memory in native
binary form; the middleware never sees "Python dicts".  This module is the
simulation's stand-in for the C compiler and memory: it turns canonical
Python values into exactly the bytes a struct instance would occupy on a
given simulated machine (including padding and byte order), and back.

Benchmarks pre-encode records once (that is "the application's data") and
then measure only what the middleware does with the bytes, so the cost of
this layer never pollutes a measurement.

Canonical value forms:

* integer/unsigned/boolean scalar -> :class:`int` / :class:`bool`
* float scalar -> :class:`float`
* scalar char -> 1-byte :class:`bytes`
* fixed array -> tuple of scalars (or numpy array for the fast path)
* char array -> :class:`bytes` (NUL-padded to declared length)
* string -> :class:`str` or ``None`` (stored out-of-line, pointer in-struct)
"""

from __future__ import annotations

import struct
from typing import Any, Mapping

import numpy as np

from .layout import LaidOutField, StructLayout
from .types import NUMPY_CODES, PrimKind, struct_code

#: Arrays at or above this element count take the numpy bulk path.
_NUMPY_THRESHOLD = 16


class NativeCodec:
    """Precompiled encoder/decoder between canonical values and the native
    bytes of one :class:`~repro.abi.layout.StructLayout`."""

    def __init__(self, layout: StructLayout):
        self.layout = layout
        endian = layout.machine.struct_endian
        self._ops: list[tuple] = []  # (mode, field, extra...)
        self._ptr_struct = struct.Struct(
            endian + ("Q" if layout.machine.pointer_size == 8 else "I")
        )
        # Flattened nested fields carry dotted names ("header.3.x"); the
        # codec navigates nested dicts/lists along these paths.
        self._paths = {f.name: _parse_path(f.name) for f in layout.fields}
        vax_floats = layout.machine.float_format == "vax"
        for f in layout.fields:
            if f.is_string:
                self._ops.append(("string", f))
            elif f.is_char_array:
                self._ops.append(("chars", f, struct.Struct(f"{endian}{f.count}s")))
            elif vax_floats and f.kind is PrimKind.FLOAT:
                self._ops.append(("vaxfloat", f, f.elem_size))
            elif f.count == 1:
                self._ops.append(("scalar", f, struct.Struct(f.struct_fmt(endian))))
            elif f.count >= _NUMPY_THRESHOLD and (f.kind, f.elem_size) in NUMPY_CODES:
                dtype = np.dtype(layout.machine.numpy_endian + NUMPY_CODES[(f.kind, f.elem_size)])
                self._ops.append(("nparray", f, dtype))
            else:
                self._ops.append(("array", f, struct.Struct(f.struct_fmt(endian))))

    # -- encoding ---------------------------------------------------------

    def encode(self, record: Mapping[str, Any]) -> bytes:
        """Produce the native bytes of ``record`` (fixed part + any string
        region).  Missing fields encode as zero."""
        buf = bytearray(self.layout.size)
        tail: list[bytes] = []
        tail_len = 0
        for op in self._ops:
            mode, f = op[0], op[1]
            path = self._paths[f.name]
            value = record.get(f.name) if len(path) == 1 else _get_path(record, path)
            if mode == "string":
                if value is None:
                    self._ptr_struct.pack_into(buf, f.offset, 0)
                else:
                    data = value.encode("utf-8") + b"\x00"
                    self._ptr_struct.pack_into(buf, f.offset, self.layout.size + tail_len)
                    tail.append(data)
                    tail_len += len(data)
            elif value is None:
                continue  # leave zeroed
            elif mode == "vaxfloat":
                from .floats import ieee_to_vax_d, ieee_to_vax_f

                values = [value] if f.count == 1 else list(value)
                raw = ieee_to_vax_f(values) if op[2] == 4 else ieee_to_vax_d(values)
                buf[f.offset : f.offset + f.total_size] = raw
            elif mode == "scalar":
                op[2].pack_into(buf, f.offset, value)
            elif mode == "chars":
                if isinstance(value, str):
                    value = value.encode("utf-8")
                op[2].pack_into(buf, f.offset, value)
            elif mode == "nparray":
                arr = np.asarray(value, dtype=op[2])
                if arr.size != f.count:
                    raise ValueError(
                        f"field {f.name}: expected {f.count} elements, got {arr.size}"
                    )
                buf[f.offset : f.offset + f.total_size] = arr.tobytes()
            else:  # array
                op[2].pack_into(buf, f.offset, *value)
        if tail:
            return bytes(buf) + b"".join(tail)
        return bytes(buf)

    # -- decoding ---------------------------------------------------------

    def decode(self, data: bytes | bytearray | memoryview, offset: int = 0) -> dict[str, Any]:
        """Rebuild the canonical value dict from native bytes.

        Nested fields come back as nested dicts (and lists for arrays of
        embedded records), mirroring what :meth:`encode` accepts."""
        out: dict[str, Any] = {}
        for op in self._ops:
            mode, f = op[0], op[1]
            pos = offset + f.offset
            if mode == "vaxfloat":
                from .floats import vax_d_to_ieee, vax_f_to_ieee

                raw = bytes(data[pos : pos + f.total_size])
                arr = vax_f_to_ieee(raw) if op[2] == 4 else vax_d_to_ieee(raw)
                value = float(arr[0]) if f.count == 1 else tuple(float(v) for v in arr)
            elif mode == "scalar":
                value = op[2].unpack_from(data, pos)[0]
                if f.kind is PrimKind.BOOLEAN:
                    value = bool(value)
            elif mode == "chars":
                value = op[2].unpack_from(data, pos)[0]
            elif mode == "nparray":
                raw = bytes(data[pos : pos + f.total_size])
                value = np.frombuffer(raw, dtype=op[2])
            elif mode == "array":
                value = op[2].unpack_from(data, pos)
            else:  # string
                ptr = self._ptr_struct.unpack_from(data, pos)[0]
                value = None if ptr == 0 else _read_cstring(data, offset + ptr)
            path = self._paths[f.name]
            if len(path) == 1:
                out[f.name] = value
            else:
                _set_path(out, path, value)
        return out

    def decode_field(self, data: bytes | bytearray | memoryview, name: str, offset: int = 0) -> Any:
        """Decode a single field without touching the rest of the record."""
        for op in self._ops:
            if op[1].name == name:
                f = op[1]
                pos = offset + f.offset
                mode = op[0]
                if mode == "vaxfloat":
                    from .floats import vax_d_to_ieee, vax_f_to_ieee

                    raw = bytes(data[pos : pos + f.total_size])
                    arr = vax_f_to_ieee(raw) if op[2] == 4 else vax_d_to_ieee(raw)
                    return float(arr[0]) if f.count == 1 else tuple(float(v) for v in arr)
                if mode == "scalar":
                    value = op[2].unpack_from(data, pos)[0]
                    return bool(value) if f.kind is PrimKind.BOOLEAN else value
                if mode == "chars":
                    return op[2].unpack_from(data, pos)[0]
                if mode == "nparray":
                    return np.frombuffer(bytes(data[pos : pos + f.total_size]), dtype=op[2])
                if mode == "array":
                    return op[2].unpack_from(data, pos)
                ptr = self._ptr_struct.unpack_from(data, pos)[0]
                return None if ptr == 0 else _read_cstring(data, offset + ptr)
        raise KeyError(name)


def _parse_path(name: str) -> tuple:
    """Split a (possibly dotted) field name into navigation steps.

    Numeric segments become integer list indices: ``"pts.2.x"`` ->
    ``("pts", 2, "x")``.
    """
    return tuple(int(p) if p.isdigit() else p for p in name.split("."))


def _get_path(record, path: tuple):
    """Navigate nested dicts/sequences; None anywhere short-circuits."""
    value = record
    for step in path:
        if value is None:
            return None
        try:
            if isinstance(step, int):
                value = value[step]
            else:
                value = value.get(step)
        except (IndexError, KeyError, TypeError, AttributeError):
            return None
    return value


def _set_path(out, path: tuple, value) -> None:
    """Store ``value`` at a nested path, creating dicts/lists as needed."""
    cur = out
    for i, step in enumerate(path[:-1]):
        empty = [] if isinstance(path[i + 1], int) else {}
        if isinstance(step, int):
            while len(cur) <= step:
                cur.append(None)
            if cur[step] is None:
                cur[step] = empty
            cur = cur[step]
        else:
            if step not in cur or cur[step] is None:
                cur[step] = empty
            cur = cur[step]
    last = path[-1]
    if isinstance(last, int):
        while len(cur) <= last:
            cur.append(None)
        cur[last] = value
    else:
        cur[last] = value


def _read_cstring(data: bytes | bytearray | memoryview, pos: int) -> str:
    raw = bytes(data[pos:])
    end = raw.find(b"\x00")
    if end < 0:
        raise ValueError("unterminated string in record buffer")
    return raw[:end].decode("utf-8")


# Codec cache, keyed on layout identity (layouts themselves are cached by
# repro.abi.layout.layout_record).
_CODEC_CACHE: dict[int, NativeCodec] = {}


def codec_for(layout: StructLayout) -> NativeCodec:
    """Return the (cached) codec for ``layout``."""
    codec = _CODEC_CACHE.get(id(layout))
    if codec is None or codec.layout is not layout:
        codec = NativeCodec(layout)
        _CODEC_CACHE[id(layout)] = codec
    return codec


def records_equal(a: Mapping[str, Any], b: Mapping[str, Any], *, rel_tol: float = 1e-6) -> bool:
    """Compare two canonical record dicts, tolerating float32 round-trips
    and tuple-vs-numpy array representation differences."""
    if set(a) != set(b):
        return False
    for name, va in a.items():
        vb = b[name]
        if isinstance(va, (bytes, bytearray)) and isinstance(vb, (bytes, bytearray)):
            # Char arrays round-trip with NUL padding to declared length.
            if bytes(va).rstrip(b"\x00") != bytes(vb).rstrip(b"\x00"):
                return False
        elif isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not np.allclose(np.asarray(va, dtype=float), np.asarray(vb, dtype=float), rtol=rel_tol):
                return False
        elif isinstance(va, Mapping) and isinstance(vb, Mapping):
            if not records_equal(va, vb, rel_tol=rel_tol):  # nested record
                return False
        elif isinstance(va, (tuple, list)):
            if len(va) != len(vb):
                return False
            for xa, xb in zip(va, vb):
                if isinstance(xa, Mapping):
                    if not isinstance(xb, Mapping) or not records_equal(xa, xb, rel_tol=rel_tol):
                        return False
                elif isinstance(xa, float):
                    if abs(xa - xb) > rel_tol * max(1.0, abs(xa)):
                        return False
                elif xa != xb:
                    return False
        elif isinstance(va, float):
            if abs(va - vb) > rel_tol * max(1.0, abs(va)):
                return False
        elif va != vb:
            return False
    return True
