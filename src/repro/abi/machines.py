"""Simulated machine / ABI descriptions.

The paper's experiments run between a Sun Ultra 30 (SPARC, big-endian,
Solaris 7) and a 450 MHz Pentium II (x86, little-endian).  PBIO's whole
reason to exist is that the *native* in-memory form of a structure differs
between such machines in three ways: byte order, primitive sizes
(``long`` is 4 bytes on SPARC v8 but 8 on Alpha), and alignment-driven
padding.  A :class:`MachineDescription` captures exactly those properties
so that layouts, encodings, and conversions between any pair of simulated
machines reproduce the paper's heterogeneous exchanges bit-for-bit in
structure (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from .types import CType


@dataclass(frozen=True)
class MachineDescription:
    """Sizes, alignments, and byte order of one simulated architecture.

    ``sizes`` and ``aligns`` map every :class:`CType` except ``STRING``
    (strings are represented out-of-line; the in-struct representation is
    a pointer whose size is ``pointer_size``).
    """

    name: str
    byte_order: str  # "big" | "little"
    pointer_size: int
    sizes: Mapping[CType, int]
    aligns: Mapping[CType, int]
    description: str = ""
    #: floating-point representation: "ieee754" or "vax" (F/D floating)
    float_format: str = "ieee754"

    def __post_init__(self) -> None:
        if self.byte_order not in ("big", "little"):
            raise ValueError(f"byte_order must be 'big' or 'little', got {self.byte_order!r}")
        if self.float_format not in ("ieee754", "vax"):
            raise ValueError(f"float_format must be 'ieee754' or 'vax', got {self.float_format!r}")
        for ctype in CType:
            if ctype is CType.STRING:
                continue
            if ctype not in self.sizes:
                raise ValueError(f"{self.name}: missing size for {ctype}")
            if ctype not in self.aligns:
                raise ValueError(f"{self.name}: missing alignment for {ctype}")
        # Freeze the mappings so machine descriptions are safely shareable.
        object.__setattr__(self, "sizes", MappingProxyType(dict(self.sizes)))
        object.__setattr__(self, "aligns", MappingProxyType(dict(self.aligns)))

    def size_of(self, ctype: CType) -> int:
        if ctype is CType.STRING:
            return self.pointer_size
        return self.sizes[ctype]

    def align_of(self, ctype: CType) -> int:
        if ctype is CType.STRING:
            return self.pointer_size
        return self.aligns[ctype]

    @property
    def struct_endian(self) -> str:
        """:mod:`struct` byte-order prefix for this machine."""
        return ">" if self.byte_order == "big" else "<"

    @property
    def numpy_endian(self) -> str:
        """numpy dtype byte-order prefix for this machine."""
        return ">" if self.byte_order == "big" else "<"

    def __repr__(self) -> str:
        return f"MachineDescription({self.name!r}, {self.byte_order}-endian)"


def _machine(
    name: str,
    byte_order: str,
    *,
    long_size: int,
    pointer_size: int,
    double_align: int,
    long_long_align: int | None = None,
    description: str = "",
) -> MachineDescription:
    """Construct a machine from the handful of parameters that actually
    vary across the architectures the paper targets."""
    if long_long_align is None:
        long_long_align = 8
    sizes = {
        CType.CHAR: 1,
        CType.SIGNED_CHAR: 1,
        CType.UNSIGNED_CHAR: 1,
        CType.SHORT: 2,
        CType.UNSIGNED_SHORT: 2,
        CType.INT: 4,
        CType.UNSIGNED_INT: 4,
        CType.LONG: long_size,
        CType.UNSIGNED_LONG: long_size,
        CType.LONG_LONG: 8,
        CType.UNSIGNED_LONG_LONG: 8,
        CType.FLOAT: 4,
        CType.DOUBLE: 8,
        CType.BOOL: 1,
    }
    aligns = {
        CType.CHAR: 1,
        CType.SIGNED_CHAR: 1,
        CType.UNSIGNED_CHAR: 1,
        CType.SHORT: 2,
        CType.UNSIGNED_SHORT: 2,
        CType.INT: 4,
        CType.UNSIGNED_INT: 4,
        CType.LONG: min(long_size, pointer_size) if long_size <= 4 else long_size,
        CType.UNSIGNED_LONG: min(long_size, pointer_size) if long_size <= 4 else long_size,
        CType.LONG_LONG: long_long_align,
        CType.UNSIGNED_LONG_LONG: long_long_align,
        CType.FLOAT: 4,
        CType.DOUBLE: double_align,
        CType.BOOL: 1,
    }
    return MachineDescription(
        name=name,
        byte_order=byte_order,
        pointer_size=pointer_size,
        sizes=sizes,
        aligns=aligns,
        description=description,
    )


# --- The architectures named in the paper (Section 4.3: "Sparc (v8, v9 and
# v9 64-bit), MIPS (old 32-bit, new 32-bit and 64-bit ABIs), DEC Alpha and
# Intel x86"), plus x86-64 for modern homogeneous tests. -------------------

X86 = _machine(
    "i86",
    "little",
    long_size=4,
    pointer_size=4,
    double_align=4,  # i386 System V ABI: double aligns to 4 inside structs
    long_long_align=4,
    description="Intel x86 (ILP32, System V i386 ABI) — the paper's Pentium II",
)

X86_64 = _machine(
    "x86_64",
    "little",
    long_size=8,
    pointer_size=8,
    double_align=8,
    description="AMD64 / x86-64 (LP64)",
)

SPARC_V8 = _machine(
    "sparc",
    "big",
    long_size=4,
    pointer_size=4,
    double_align=8,  # SPARC V8 ABI: 8-byte alignment for doubles
    description="SPARC v8 (ILP32, Solaris) — the paper's Ultra 30",
)

SPARC_V9 = _machine(
    "sparc_v9",
    "big",
    long_size=4,
    pointer_size=4,
    double_align=8,
    description="SPARC v9 running 32-bit ABI",
)

SPARC_V9_64 = _machine(
    "sparc_v9_64",
    "big",
    long_size=8,
    pointer_size=8,
    double_align=8,
    description="SPARC v9 64-bit ABI (LP64)",
)

MIPS_O32 = _machine(
    "mips_o32",
    "big",
    long_size=4,
    pointer_size=4,
    double_align=8,
    description="MIPS old 32-bit ABI (o32)",
)

MIPS_N32 = _machine(
    "mips_n32",
    "big",
    long_size=4,
    pointer_size=4,
    double_align=8,
    description="MIPS new 32-bit ABI (n32)",
)

MIPS_N64 = _machine(
    "mips_n64",
    "big",
    long_size=8,
    pointer_size=8,
    double_align=8,
    description="MIPS 64-bit ABI (n64, LP64)",
)

ALPHA = _machine(
    "alpha",
    "little",
    long_size=8,
    pointer_size=8,
    double_align=8,
    description="DEC Alpha (LP64, little-endian)",
)

# The paper's future-work targets ("most notably the Intel i960 and
# StrongArm platforms", Section 5).

I960 = _machine(
    "i960",
    "little",
    long_size=4,
    pointer_size=4,
    double_align=8,  # i960 ABI naturally aligns 8-byte quantities
    long_long_align=8,
    description="Intel i960 embedded RISC (ILP32)",
)

STRONGARM = _machine(
    "strongarm",
    "little",
    long_size=4,
    pointer_size=4,
    double_align=4,  # legacy ARM OABI: doubles align to 4 in structs
    long_long_align=4,
    description="StrongARM (legacy ARM OABI, ILP32)",
)

#: A pre-IEEE machine: VAX C packs structure members on byte boundaries
#: (no alignment padding) and floats are VAX F/D floating — the extreme
#: end of the heterogeneity spectrum PBIO's lineage handled.
VAX = MachineDescription(
    name="vax",
    byte_order="little",
    pointer_size=4,
    sizes={
        CType.CHAR: 1,
        CType.SIGNED_CHAR: 1,
        CType.UNSIGNED_CHAR: 1,
        CType.SHORT: 2,
        CType.UNSIGNED_SHORT: 2,
        CType.INT: 4,
        CType.UNSIGNED_INT: 4,
        CType.LONG: 4,
        CType.UNSIGNED_LONG: 4,
        CType.LONG_LONG: 8,
        CType.UNSIGNED_LONG_LONG: 8,
        CType.FLOAT: 4,
        CType.DOUBLE: 8,
        CType.BOOL: 1,
    },
    aligns={ctype: 1 for ctype in CType if ctype is not CType.STRING},
    description="DEC VAX (ILP32, byte-packed structs, VAX F/D floats)",
    float_format="vax",
)

#: All predefined machines, by name.
MACHINES: dict[str, MachineDescription] = {
    m.name: m
    for m in (
        X86,
        X86_64,
        SPARC_V8,
        SPARC_V9,
        SPARC_V9_64,
        MIPS_O32,
        MIPS_N32,
        MIPS_N64,
        ALPHA,
        I960,
        STRONGARM,
        VAX,
    )
}


def get_machine(name: str) -> MachineDescription:
    """Look up a predefined machine by name."""
    try:
        return MACHINES[name]
    except KeyError:
        raise KeyError(f"unknown machine {name!r}; known: {sorted(MACHINES)}") from None
