"""C structure layout computation for a simulated machine.

Given a machine-independent :class:`~repro.abi.types.RecordSchema` and a
:class:`~repro.abi.machines.MachineDescription`, compute the offsets,
padding, and total size the machine's C compiler would produce.  The rules
are the standard ones shared by the System V ABIs the paper targets:

* each field is placed at the next offset that is a multiple of its
  alignment (arrays align like their element type);
* the total structure size is rounded up to a multiple of the largest
  field alignment, so arrays of the structure stay aligned.

The *gaps* this introduces are central to the paper (Section 4.3): packed
wire formats like XDR/IIOP have no gaps, so moving between wire and native
form forces a copy.  PBIO's NDR keeps the gaps on the wire and thereby
keeps the native buffer usable as-is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .machines import MachineDescription
from .types import CType, PrimKind, RecordSchema, struct_code


@dataclass(frozen=True)
class LaidOutField:
    """One field bound to a concrete offset/size on a specific machine."""

    name: str
    ctype: CType
    kind: PrimKind
    offset: int
    elem_size: int  # size of one element
    count: int  # number of elements (1 for scalars)

    @property
    def total_size(self) -> int:
        return self.elem_size * self.count

    @property
    def end(self) -> int:
        return self.offset + self.total_size

    @property
    def is_array(self) -> bool:
        return self.count > 1 and self.kind is not PrimKind.CHAR

    @property
    def is_char_array(self) -> bool:
        return self.count > 1 and self.kind is PrimKind.CHAR

    @property
    def is_string(self) -> bool:
        return self.ctype is CType.STRING

    def struct_fmt(self, endian: str) -> str:
        """:mod:`struct` format for this field (without padding)."""
        if self.is_string:
            raise ValueError("variable strings have no fixed struct format")
        if self.kind is PrimKind.CHAR:
            return f"{endian}{self.count}s"
        code = struct_code(self.kind, self.elem_size)
        return f"{endian}{self.count}{code}" if self.count > 1 else f"{endian}{code}"


def _align_up(offset: int, alignment: int) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


class StructLayout:
    """The concrete in-memory form of a record on one machine.

    This *is* the Natural Data Representation of the record for that
    machine: PBIO puts these bytes on the wire unchanged.
    """

    def __init__(self, schema: RecordSchema, machine: MachineDescription):
        self.schema = schema
        self.machine = machine
        self.fields: list[LaidOutField] = []
        offset = 0
        max_align = 1
        for decl in schema:
            if decl.is_nested:
                # Complex subtype: lay out the embedded record recursively,
                # then flatten its fields under dotted names.  C semantics:
                # the struct member aligns to its own max alignment and
                # array elements stride by the padded struct size.
                sub = StructLayout(decl.schema, machine)
                if decl.count * len(sub.fields) > 4096:
                    raise ValueError(
                        f"field {decl.name}: nested array flattens to "
                        f"{decl.count * len(sub.fields)} fields (limit 4096)"
                    )
                max_align = max(max_align, sub.alignment)
                offset = _align_up(offset, sub.alignment)
                for i in range(decl.count):
                    base = offset + i * sub.size
                    prefix = f"{decl.name}." if decl.count == 1 else f"{decl.name}.{i}."
                    for sf in sub.fields:
                        self.fields.append(
                            LaidOutField(
                                name=prefix + sf.name,
                                ctype=sf.ctype,
                                kind=sf.kind,
                                offset=base + sf.offset,
                                elem_size=sf.elem_size,
                                count=sf.count,
                            )
                        )
                offset += sub.size * decl.count
                continue
            elem_size = machine.size_of(decl.ctype)
            align = machine.align_of(decl.ctype)
            max_align = max(max_align, align)
            offset = _align_up(offset, align)
            self.fields.append(
                LaidOutField(
                    name=decl.name,
                    ctype=decl.ctype,
                    kind=decl.ctype.kind,
                    offset=offset,
                    elem_size=elem_size,
                    count=decl.count,
                )
            )
            offset += elem_size * decl.count
        self.size = _align_up(offset, max_align)
        self.alignment = max_align
        self._by_name = {f.name: f for f in self.fields}
        self.has_strings = any(f.is_string for f in self.fields)

    def __iter__(self) -> Iterator[LaidOutField]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> LaidOutField:
        return self._by_name[name]

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def padding_bytes(self) -> int:
        """Total number of gap bytes the compiler inserted."""
        return self.size - sum(f.total_size for f in self.fields)

    def gaps(self) -> list[tuple[int, int]]:
        """(offset, length) of every padding gap, including tail padding."""
        result = []
        pos = 0
        for f in self.fields:
            if f.offset > pos:
                result.append((pos, f.offset - pos))
            pos = f.end
        if self.size > pos:
            result.append((pos, self.size - pos))
        return result

    def contiguous_runs(self) -> list[list[LaidOutField]]:
        """Group fields into maximal runs with no intervening padding.

        Conversion planning uses these to coalesce per-field copies into
        single bulk moves when source and destination runs line up.
        """
        runs: list[list[LaidOutField]] = []
        current: list[LaidOutField] = []
        pos = None
        for f in self.fields:
            if pos is not None and f.offset != pos:
                runs.append(current)
                current = []
            current.append(f)
            pos = f.end
        if current:
            runs.append(current)
        return runs

    def __repr__(self) -> str:
        return (
            f"StructLayout({self.schema.name!r} on {self.machine.name}, "
            f"size={self.size}, {len(self.fields)} fields)"
        )

    def describe(self) -> str:
        """Human-readable layout table (offsets, sizes, padding)."""
        lines = [f"struct {self.schema.name} on {self.machine.name} (size {self.size}):"]
        pos = 0
        for f in self.fields:
            if f.offset > pos:
                lines.append(f"  [{pos:5d}] <{f.offset - pos} pad bytes>")
            dim = f"[{f.count}]" if f.count > 1 else ""
            lines.append(
                f"  [{f.offset:5d}] {f.ctype.value} {f.name}{dim} ({f.total_size} bytes)"
            )
            pos = f.end
        if self.size > pos:
            lines.append(f"  [{pos:5d}] <{self.size - pos} tail pad bytes>")
        return "\n".join(lines)


# Cache keyed on (schema identity, machine name).  The cached layout holds a
# strong reference to its schema, so the id cannot be reused while the entry
# is alive.
_LAYOUT_CACHE: dict[tuple[int, str], StructLayout] = {}


def layout_record(schema: RecordSchema, machine: MachineDescription) -> StructLayout:
    """Compute (and cache) the native layout of ``schema`` on ``machine``."""
    key = (id(schema), machine.name)
    layout = _LAYOUT_CACHE.get(key)
    if layout is None or layout.schema is not schema:
        layout = StructLayout(schema, machine)
        _LAYOUT_CACHE[key] = layout
    return layout
