"""Primitive C-level type model used by the ABI simulator.

The paper's heterogeneity comes from three sources (Section 3): byte
ordering, differences in the *sizes* of data types (e.g. ``long`` vs
``int``), and differences in structure layout produced by compilers.  To
simulate all three we model the C type system abstractly: a record schema
names C types (``int``, ``long``, ``double`` ...), and each simulated
machine (:mod:`repro.abi.machines`) assigns concrete sizes and alignments
to them.

Two layers of "type" exist:

* :class:`CType` — the *declared* type in a record schema ("long").  Its
  size depends on the machine.
* :class:`PrimKind` — the *semantic* kind carried on the wire ("signed
  integer of 8 bytes").  PBIO field matching operates on kinds: an ``int``
  field on one machine and a ``long`` field on another both have kind
  ``INTEGER`` and may differ only in size, which the conversion layer
  reconciles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PrimKind(enum.Enum):
    """Semantic kind of a primitive value, independent of machine size."""

    INTEGER = "integer"
    UNSIGNED = "unsigned integer"
    FLOAT = "float"
    CHAR = "char"
    BOOLEAN = "boolean"
    STRING = "string"

    @classmethod
    def from_wire_name(cls, name: str) -> "PrimKind":
        """Parse the wire-format type name used in PBIO meta-information."""
        for kind in cls:
            if kind.value == name:
                return kind
        raise ValueError(f"unknown wire type name: {name!r}")


class CType(enum.Enum):
    """Declared C types available to record schemas."""

    CHAR = "char"
    SIGNED_CHAR = "signed char"
    UNSIGNED_CHAR = "unsigned char"
    SHORT = "short"
    UNSIGNED_SHORT = "unsigned short"
    INT = "int"
    UNSIGNED_INT = "unsigned int"
    LONG = "long"
    UNSIGNED_LONG = "unsigned long"
    LONG_LONG = "long long"
    UNSIGNED_LONG_LONG = "unsigned long long"
    FLOAT = "float"
    DOUBLE = "double"
    BOOL = "bool"
    STRING = "string"  # variable-length NUL-terminated string

    @classmethod
    def parse(cls, name: str) -> "CType":
        """Parse a C type name, accepting common aliases."""
        normalized = " ".join(name.split())
        aliases = {
            "uchar": cls.UNSIGNED_CHAR,
            "ushort": cls.UNSIGNED_SHORT,
            "uint": cls.UNSIGNED_INT,
            "unsigned": cls.UNSIGNED_INT,
            "ulong": cls.UNSIGNED_LONG,
            "int64": cls.LONG_LONG,
            "uint64": cls.UNSIGNED_LONG_LONG,
            "int32": cls.INT,
            "uint32": cls.UNSIGNED_INT,
            "int16": cls.SHORT,
            "uint16": cls.UNSIGNED_SHORT,
            "int8": cls.SIGNED_CHAR,
            "uint8": cls.UNSIGNED_CHAR,
            "_Bool": cls.BOOL,
        }
        if normalized in aliases:
            return aliases[normalized]
        for ctype in cls:
            if ctype.value == normalized:
                return ctype
        raise ValueError(f"unknown C type: {name!r}")

    @property
    def kind(self) -> PrimKind:
        """Semantic kind of this C type (what goes in wire meta-info)."""
        return _CTYPE_KINDS[self]

    @property
    def is_integer(self) -> bool:
        return self.kind in (PrimKind.INTEGER, PrimKind.UNSIGNED)

    @property
    def is_float(self) -> bool:
        return self.kind is PrimKind.FLOAT

    @property
    def is_signed(self) -> bool:
        return self.kind is PrimKind.INTEGER


_CTYPE_KINDS: dict[CType, PrimKind] = {
    CType.CHAR: PrimKind.CHAR,
    CType.SIGNED_CHAR: PrimKind.INTEGER,
    CType.UNSIGNED_CHAR: PrimKind.UNSIGNED,
    CType.SHORT: PrimKind.INTEGER,
    CType.UNSIGNED_SHORT: PrimKind.UNSIGNED,
    CType.INT: PrimKind.INTEGER,
    CType.UNSIGNED_INT: PrimKind.UNSIGNED,
    CType.LONG: PrimKind.INTEGER,
    CType.UNSIGNED_LONG: PrimKind.UNSIGNED,
    CType.LONG_LONG: PrimKind.INTEGER,
    CType.UNSIGNED_LONG_LONG: PrimKind.UNSIGNED,
    CType.FLOAT: PrimKind.FLOAT,
    CType.DOUBLE: PrimKind.FLOAT,
    CType.BOOL: PrimKind.BOOLEAN,
    CType.STRING: PrimKind.STRING,
}

#: struct-module codes per (kind, size); used by layout/encoding layers.
STRUCT_CODES: dict[tuple[PrimKind, int], str] = {
    (PrimKind.INTEGER, 1): "b",
    (PrimKind.INTEGER, 2): "h",
    (PrimKind.INTEGER, 4): "i",
    (PrimKind.INTEGER, 8): "q",
    (PrimKind.UNSIGNED, 1): "B",
    (PrimKind.UNSIGNED, 2): "H",
    (PrimKind.UNSIGNED, 4): "I",
    (PrimKind.UNSIGNED, 8): "Q",
    (PrimKind.FLOAT, 4): "f",
    (PrimKind.FLOAT, 8): "d",
    (PrimKind.CHAR, 1): "c",
    (PrimKind.BOOLEAN, 1): "B",
    (PrimKind.BOOLEAN, 4): "I",
}


def struct_code(kind: PrimKind, size: int) -> str:
    """Return the :mod:`struct` format code for a primitive, or raise."""
    try:
        return STRUCT_CODES[(kind, size)]
    except KeyError:
        raise ValueError(f"no struct code for {kind} of size {size}") from None


#: numpy dtype chars per (kind, size); used by vectorized conversion.
NUMPY_CODES: dict[tuple[PrimKind, int], str] = {
    (PrimKind.INTEGER, 1): "i1",
    (PrimKind.INTEGER, 2): "i2",
    (PrimKind.INTEGER, 4): "i4",
    (PrimKind.INTEGER, 8): "i8",
    (PrimKind.UNSIGNED, 1): "u1",
    (PrimKind.UNSIGNED, 2): "u2",
    (PrimKind.UNSIGNED, 4): "u4",
    (PrimKind.UNSIGNED, 8): "u8",
    (PrimKind.FLOAT, 4): "f4",
    (PrimKind.FLOAT, 8): "f8",
    (PrimKind.CHAR, 1): "S1",
    (PrimKind.BOOLEAN, 1): "u1",
    (PrimKind.BOOLEAN, 4): "u4",
}


@dataclass(frozen=True)
class FieldDecl:
    """A field declaration in a machine-independent record schema.

    ``count > 1`` declares a fixed-size array (``double data[100]``).
    ``CType.CHAR`` with ``count > 1`` is a fixed-size character buffer.

    A *nested* field embeds another record (a "complex subtype" in the
    paper's terms): construct it with :meth:`nested`, in which case
    ``schema`` is set and ``ctype`` is ``None``.  Nested fields may also
    be arrays (``count > 1`` — an array of structs).
    """

    name: str
    ctype: CType | None
    count: int = 1
    schema: "RecordSchema | None" = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"field name must be an identifier: {self.name!r}")
        if self.count < 1:
            raise ValueError(f"field {self.name}: count must be >= 1")
        if self.schema is not None:
            if self.ctype is not None:
                raise ValueError(f"field {self.name}: nested fields carry no ctype")
            return
        if self.ctype is None:
            raise ValueError(f"field {self.name}: ctype required for non-nested fields")
        if self.ctype is CType.STRING and self.count != 1:
            raise ValueError(f"field {self.name}: string fields cannot be arrays")

    @property
    def is_nested(self) -> bool:
        return self.schema is not None

    @classmethod
    def nested(cls, name: str, schema: "RecordSchema", count: int = 1) -> "FieldDecl":
        """Declare an embedded record field (``struct inner name[count]``)."""
        return cls(name=name, ctype=None, count=count, schema=schema)

    @classmethod
    def parse(cls, name: str, spec: str) -> "FieldDecl":
        """Parse a declaration like ``"double[100]"`` or ``"unsigned int"``."""
        spec = spec.strip()
        count = 1
        if spec.endswith("]"):
            base, _, dim = spec.rpartition("[")
            count = int(dim[:-1])
            spec = base.strip()
        return cls(name=name, ctype=CType.parse(spec), count=count)


class RecordSchema:
    """An ordered, machine-independent description of a record's fields.

    This is what an application author writes; binding it to a
    :class:`~repro.abi.machines.MachineDescription` (via
    :func:`repro.abi.layout.layout_record`) yields the concrete in-memory
    layout that machine's C compiler would produce.
    """

    def __init__(self, name: str, fields: list[FieldDecl]):
        if not fields:
            raise ValueError("a record schema needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate field names: {dupes}")
        self.name = name
        self.fields = list(fields)
        self._by_name = {f.name: f for f in fields}

    @classmethod
    def from_pairs(cls, name: str, pairs: list[tuple[str, str]]) -> "RecordSchema":
        """Build a schema from ``[("velocity", "double[3]"), ...]`` pairs."""
        return cls(name, [FieldDecl.parse(fname, spec) for fname, spec in pairs])

    def __iter__(self):
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> FieldDecl:
        return self._by_name[name]

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def extended(self, name: str, new_fields: list[FieldDecl], *, prepend: bool = False) -> "RecordSchema":
        """Return a new schema with extra fields, modelling type extension.

        The paper (Section 4.4) evaluates adding an unexpected field both
        at the front (worst case: every expected field's offset shifts) and
        at the end (best case for un-upgraded receivers).
        """
        fields = (new_fields + self.fields) if prepend else (self.fields + new_fields)
        return RecordSchema(name, fields)

    def __repr__(self) -> str:
        return f"RecordSchema({self.name!r}, {len(self.fields)} fields)"
