"""Floating-point format conversion: IEEE 754 <-> VAX F/D floating.

PBIO's meta-information describes the sender's complete natural
representation; in the original system's lineage that includes the
*floating-point format*, because pre-IEEE machines (VAX, IBM/370) were
still live targets.  This module provides the VAX side: F_floating
(32-bit) and D_floating (64-bit) as stored in memory on a VAX — including
the PDP-11 heritage word order, where the 16-bit words of a float are
little-endian *within* but ordered most-significant-word first.

Format recap (vs IEEE):

* F_floating: sign, 8-bit excess-128 exponent, 23-bit fraction with a
  hidden bit normalized to 0.1f (IEEE normalizes to 1.f), so for the same
  bit pattern VAX values are 4x smaller and the exponent bias works out
  to IEEE's exponent + 2.  No infinities, no NaN, no denormals: the whole
  exponent range encodes numbers, and an exponent of 0 with sign 0 is
  exactly zero (sign 1 is a reserved operand that traps).
* D_floating: same exponent field (8 bits!) with 55 fraction bits — more
  precision but *less* range than IEEE double.

Conversions use numpy integer bit manipulation, vectorized, so bulk
conversion of VAX data is a few array ops per call.
"""

from __future__ import annotations

import numpy as np

#: Values below cannot be represented in VAX F/D (tiny) or overflow (huge).
VAX_F_MAX = 1.7014118e38
VAX_F_MIN_NORMAL = 2.938736e-39
VAX_D_MAX = 1.70141183460469229e38


class VaxFloatError(ValueError):
    """Value not representable in the VAX format (overflow / reserved)."""


def _words_swap32(u32: np.ndarray) -> np.ndarray:
    """Swap the two 16-bit words of each 32-bit item (PDP-11 order)."""
    return ((u32 << 16) | (u32 >> 16)) & np.uint32(0xFFFFFFFF)


def _words_swap64(u64: np.ndarray) -> np.ndarray:
    """Reverse the four 16-bit words of each 64-bit item."""
    w0 = (u64 >> 48) & np.uint64(0xFFFF)
    w1 = (u64 >> 32) & np.uint64(0xFFFF)
    w2 = (u64 >> 16) & np.uint64(0xFFFF)
    w3 = u64 & np.uint64(0xFFFF)
    return (w3 << 48) | (w2 << 32) | (w1 << 16) | w0


def ieee_to_vax_f(values) -> bytes:
    """Encode IEEE doubles/floats as VAX F_floating memory bytes."""
    arr = np.atleast_1d(np.asarray(values, dtype=np.float64))
    if np.any(~np.isfinite(arr)):
        raise VaxFloatError("VAX F has no representation for inf/NaN")
    if np.any(np.abs(arr) > VAX_F_MAX):
        raise VaxFloatError("value overflows VAX F range")
    f32 = arr.astype(np.float32)
    bits = f32.view(np.uint32)
    sign = bits & np.uint32(0x80000000)
    exponent = (bits >> 23) & np.uint32(0xFF)
    fraction = bits & np.uint32(0x007FFFFF)
    # IEEE exponent e (biased 127) -> VAX exponent e + 2 (biased 128,
    # 0.1f normalization).  Zero stays all-zero; IEEE denormals flush to 0.
    nonzero = exponent != 0
    vax_exp = np.where(nonzero, exponent + np.uint32(2), np.uint32(0))
    if np.any(vax_exp > 0xFF):
        raise VaxFloatError("value overflows VAX F exponent range")
    vax_bits = np.where(
        nonzero, sign | (vax_exp << 23) | fraction, np.uint32(0)
    ).astype(np.uint32)
    return _words_swap32(vax_bits).astype("<u4").tobytes()  # MSW first, words LE


def vax_f_to_ieee(data: bytes | memoryview, count: int | None = None, offset: int = 0) -> np.ndarray:
    """Decode VAX F_floating memory bytes to IEEE float32."""
    if count is None:
        count = (len(data) - offset) // 4
    raw = np.frombuffer(data, dtype="<u4", count=count, offset=offset).astype(np.uint32)
    bits = _words_swap32(raw)
    sign = bits & np.uint32(0x80000000)
    exponent = (bits >> 23) & np.uint32(0xFF)
    fraction = bits & np.uint32(0x007FFFFF)
    nonzero = exponent != 0
    reserved = (~nonzero) & (sign != 0)
    if np.any(reserved):
        raise VaxFloatError("reserved operand (sign=1, exp=0) in VAX F data")
    ieee_bits = np.where(
        nonzero, sign | ((exponent - np.uint32(2)) << 23) | fraction, np.uint32(0)
    ).astype(np.uint32)
    return ieee_bits.view(np.float32)


def ieee_to_vax_d(values) -> bytes:
    """Encode IEEE doubles as VAX D_floating memory bytes."""
    arr = np.atleast_1d(np.asarray(values, dtype=np.float64))
    if np.any(~np.isfinite(arr)):
        raise VaxFloatError("VAX D has no representation for inf/NaN")
    if np.any(np.abs(arr) > VAX_D_MAX):
        raise VaxFloatError("value overflows VAX D range")
    bits = arr.view(np.uint64)
    sign = (bits >> np.uint64(63)) & np.uint64(1)
    exponent = (bits >> np.uint64(52)) & np.uint64(0x7FF)
    fraction = bits & np.uint64(0x000FFFFFFFFFFFFF)
    nonzero = exponent != 0
    # IEEE bias 1023 -> VAX D bias 128 with 0.1f normalization: e - 1023
    # + 128 + 1 = e - 894.  Range check: must fit in 8 bits.
    vax_exp = np.where(nonzero, exponent.astype(np.int64) - 894, 0)
    if np.any((vax_exp < 0) & nonzero):
        # underflow: flush to zero, as VAX hardware conversion would trap;
        # we choose flush-to-zero for usability (documented).
        flush = (vax_exp < 0) & nonzero
        nonzero = nonzero & ~flush
        vax_exp = np.where(flush, 0, vax_exp)
    if np.any(vax_exp > 0xFF):
        raise VaxFloatError("value overflows VAX D exponent range")
    # D fraction: 55 bits; IEEE gives 52 -> shift left 3.
    vax_frac = (fraction << np.uint64(3)) & np.uint64(0x007FFFFFFFFFFFFF)
    vax_bits = np.where(
        nonzero,
        (sign << np.uint64(63)) | (vax_exp.astype(np.uint64) << np.uint64(55)) | vax_frac,
        np.uint64(0),
    ).astype(np.uint64)
    return _words_swap64(vax_bits).astype("<u8").tobytes()


def vax_d_to_ieee(data: bytes | memoryview, count: int | None = None, offset: int = 0) -> np.ndarray:
    """Decode VAX D_floating memory bytes to IEEE float64."""
    if count is None:
        count = (len(data) - offset) // 8
    raw = np.frombuffer(data, dtype="<u8", count=count, offset=offset).astype(np.uint64)
    bits = _words_swap64(raw)
    sign = (bits >> np.uint64(63)) & np.uint64(1)
    exponent = (bits >> np.uint64(55)) & np.uint64(0xFF)
    fraction = (bits >> np.uint64(3)) & np.uint64(0x000FFFFFFFFFFFFF)
    nonzero = exponent != 0
    reserved = (~nonzero) & (sign != 0)
    if np.any(reserved):
        raise VaxFloatError("reserved operand in VAX D data")
    ieee_exp = np.where(nonzero, exponent + np.uint64(894), np.uint64(0))
    ieee_bits = np.where(
        nonzero,
        (sign << np.uint64(63)) | (ieee_exp << np.uint64(52)) | fraction,
        np.uint64(0),
    ).astype(np.uint64)
    return ieee_bits.view(np.float64)


def convert_float_bytes(
    data: bytes | memoryview,
    offset: int,
    count: int,
    src_size: int,
    src_format: str,
    src_endian: str,
    dst_size: int,
    dst_format: str,
    dst_endian: str,
) -> bytes:
    """General float-run conversion between formats, sizes and orders.

    ``*_format`` is ``"ieee754"`` or ``"vax"``; VAX uses F for 4-byte and
    D for 8-byte elements, and its byte order is fixed by the format (the
    PDP word order), so ``*_endian`` is ignored on the VAX side.
    """
    # load to IEEE float64
    if src_format == "vax":
        values = (
            vax_f_to_ieee(data, count, offset).astype(np.float64)
            if src_size == 4
            else vax_d_to_ieee(data, count, offset)
        )
    else:
        dtype = np.dtype(f"{'>' if src_endian in ('>', 'big') else '<'}f{src_size}")
        values = np.frombuffer(data, dtype=dtype, count=count, offset=offset).astype(np.float64)
    # store from IEEE float64
    if dst_format == "vax":
        return ieee_to_vax_f(values) if dst_size == 4 else ieee_to_vax_d(values)
    out_dtype = np.dtype(f"{'>' if dst_endian in ('>', 'big') else '<'}f{dst_size}")
    with np.errstate(over="ignore"):
        return values.astype(out_dtype).tobytes()
