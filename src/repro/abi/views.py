"""Zero-copy record views.

When a PBIO receiver's native format matches the incoming wire format
(the homogeneous case), the paper's key win is that "received data [can]
be used directly from the message buffer" — no unpack, no copy.  A
:class:`RecordView` is that capability: field access reads straight out of
the receive buffer through precompiled accessors; nothing is copied until
the caller asks for a materialized dict.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from .encoding import NativeCodec, codec_for
from .layout import StructLayout


class RecordView:
    """Lazy, read-only view of one record inside a byte buffer."""

    # __weakref__ lets the conversion runtime's buffer pool tie a pooled
    # destination buffer's release to this view's lifetime.  ``_data`` is
    # declared before ``_lease`` so the buffer slice is dropped before the
    # lease during deallocation (the lease's finalizer may recycle — or,
    # for mmap-backed readers, unmap — the underlying storage).
    __slots__ = ("_codec", "_data", "_offset", "_lease", "__weakref__")

    def __init__(
        self,
        layout_or_codec: StructLayout | NativeCodec,
        data,
        offset: int = 0,
        *,
        lease=None,
    ):
        if isinstance(layout_or_codec, NativeCodec):
            codec = layout_or_codec
        else:
            codec = codec_for(layout_or_codec)
        object.__setattr__(self, "_codec", codec)
        object.__setattr__(self, "_data", data)
        object.__setattr__(self, "_offset", offset)
        object.__setattr__(self, "_lease", lease)

    @property
    def layout(self) -> StructLayout:
        return self._codec.layout

    @property
    def buffer(self):
        """The underlying buffer — shared, not copied."""
        return self._data

    @property
    def lease(self):
        """The buffer lease keeping this view's storage alive (or None)."""
        return self._lease

    def detach(self) -> "RecordView":
        """Copy-on-escape: a RecordView over a private copy of the data.

        Lend-mode views alias a pooled receive buffer that is recycled
        when their lease dies; call :meth:`detach` before storing a view
        beyond the receive loop.  The returned view owns its bytes and
        carries no lease.
        """
        return RecordView(self._codec, bytes(self._data), self._offset)

    def __getitem__(self, name: str) -> Any:
        return self._codec.decode_field(self._data, name, self._offset)

    def __getattr__(self, name: str) -> Any:
        try:
            return self._codec.decode_field(self._data, name, self._offset)
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("RecordView is read-only")

    def __contains__(self, name: str) -> bool:
        return name in self._codec.layout

    def __iter__(self) -> Iterator[str]:
        return iter(self._codec.layout.field_names())

    def keys(self) -> list[str]:
        return self._codec.layout.field_names()

    def to_dict(self) -> dict[str, Any]:
        """Materialize every field (the only copying operation)."""
        return self._codec.decode(self._data, self._offset)

    def raw_bytes(self) -> memoryview:
        """Memoryview of the fixed-size portion of the record, zero-copy."""
        mv = memoryview(self._data)
        return mv[self._offset : self._offset + self._codec.layout.size]

    def __repr__(self) -> str:
        return (
            f"RecordView({self.layout.schema.name!r} on {self.layout.machine.name}, "
            f"offset={self._offset})"
        )


class RecordArrayView:
    """View of a packed array of identical records in one buffer.

    Useful for stream workloads: ``view[i]`` is a zero-copy
    :class:`RecordView` of the *i*-th record.
    """

    __slots__ = ("_codec", "_data", "_base", "_count", "_stride")

    def __init__(self, layout: StructLayout, data, count: int, base: int = 0):
        if layout.has_strings:
            raise ValueError("record arrays require fixed-size records (no strings)")
        self._codec = codec_for(layout)
        self._data = data
        self._base = base
        self._count = count
        self._stride = layout.size

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: int) -> RecordView:
        if not 0 <= index < self._count:
            raise IndexError(index)
        return RecordView(self._codec, self._data, self._base + index * self._stride)

    def __iter__(self) -> Iterator[RecordView]:
        for i in range(self._count):
            yield self[i]

    def column(self, name: str) -> np.ndarray:
        """Gather one scalar field across all records as a numpy array.

        Strided gathers like this are what zero-copy layouts make cheap;
        a packed wire format would have forced a full unpack first.
        """
        f = self._codec.layout[name]
        if f.count != 1:
            raise ValueError("column() supports scalar fields only")
        from .types import NUMPY_CODES

        code = NUMPY_CODES.get((f.kind, f.elem_size))
        if code is None:
            raise ValueError(f"field {name} has no numpy representation")
        dtype = np.dtype(self._codec.layout.machine.numpy_endian + code)
        raw = np.frombuffer(
            self._data,
            dtype=np.uint8,
            count=self._count * self._stride,
            offset=self._base,
        )
        strided = np.lib.stride_tricks.as_strided(
            raw[f.offset :].view(np.uint8),
            shape=(self._count, f.elem_size),
            strides=(self._stride, 1),
        )
        return np.ascontiguousarray(strided).view(dtype).reshape(self._count)
