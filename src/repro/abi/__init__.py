"""Machine/ABI simulation substrate.

Models the three sources of heterogeneity the paper's wire formats must
bridge: byte order, primitive type sizes, and compiler structure layout
(alignment padding).  See DESIGN.md §3.
"""

from .types import CType, FieldDecl, PrimKind, RecordSchema
from .machines import (
    ALPHA,
    I960,
    MACHINES,
    MIPS_N32,
    MIPS_N64,
    MIPS_O32,
    SPARC_V8,
    SPARC_V9,
    SPARC_V9_64,
    STRONGARM,
    VAX,
    X86,
    X86_64,
    MachineDescription,
    get_machine,
)
from . import floats
from .layout import LaidOutField, StructLayout, layout_record
from .encoding import NativeCodec, codec_for, records_equal
from .views import RecordArrayView, RecordView

__all__ = [
    "CType",
    "FieldDecl",
    "PrimKind",
    "RecordSchema",
    "MachineDescription",
    "MACHINES",
    "get_machine",
    "X86",
    "X86_64",
    "SPARC_V8",
    "SPARC_V9",
    "SPARC_V9_64",
    "MIPS_O32",
    "MIPS_N32",
    "MIPS_N64",
    "ALPHA",
    "I960",
    "STRONGARM",
    "VAX",
    "floats",
    "LaidOutField",
    "StructLayout",
    "layout_record",
    "NativeCodec",
    "codec_for",
    "records_equal",
    "RecordView",
    "RecordArrayView",
]
