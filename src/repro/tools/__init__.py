"""Command-line tools: inspect PBIO messages/files and struct layouts.

* ``pbio-layout`` (:mod:`repro.tools.layout_tool`) — print a record
  schema's native layout on one or many simulated machines.
* ``pbio-dump`` (:mod:`repro.tools.dump_tool`) — dump the messages of a
  PBIO file: formats, records, hex payloads.
* ``pbio-fsck`` (:mod:`repro.tools.fsck_tool`) — verify a PBIO file's
  per-record CRCs, report damage, repair or truncate.
* ``pbio-fmtserv`` (:mod:`repro.tools.fmtserv_tool`) — run a format
  server; list, prime and purge format caches.
* ``pbio-wal`` (:mod:`repro.tools.wal_tool`) — inspect, verify and
  compact durable-publisher WAL directories.
* ``pbio-fabric`` (:mod:`repro.tools.fabric_tool`) — run a sharded
  relay fabric; probe its status; print ring ownership offline.
"""

from .layout_tool import main as layout_main
from .dump_tool import main as dump_main
from .fsck_tool import main as fsck_main
from .fmtserv_tool import main as fmtserv_main
from .wal_tool import main as wal_main
from .fabric_tool import main as fabric_main

__all__ = [
    "layout_main",
    "dump_main",
    "fsck_main",
    "fmtserv_main",
    "wal_main",
    "fabric_main",
]
