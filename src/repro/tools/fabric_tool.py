"""pbio-fabric: run and inspect a sharded relay fabric.

Usage::

    pbio-fabric serve --port 7799 --workers 4            # run a fabric front
    pbio-fabric serve --port 0 --workers 2 --once        # CI smoke: one conn
    pbio-fabric status --server 127.0.0.1:7799           # liveness + depth
    pbio-fabric ring --workers 4                         # ownership, offline
    pbio-fabric ring --workers 4 --key 7:1 --channels 1000

``serve`` runs a :class:`~repro.net.fabric.FabricDispatcher` behind one
:class:`~repro.net.aio.AsyncServer` event loop: every peer is an ingress
publisher and a fabric-wide subscriber tap, frames route to the owning
:class:`~repro.net.fabric.RelayWorker` by header sniff alone, and the
healing pass (quarantine, probes, rebalance) runs once per pump burst.
With ``--port 0`` the kernel picks a free port, printed as ``listening
on HOST:PORT`` before the first accept — scripts can parse it.
``--once`` serves a single connection and exits (smoke tests).

``status`` dials a serving fabric, sends one ``MSG_PING`` and reports
the answering pong's aggregate queue depth — the same probe the
self-healing plane uses (docs/robustness.md §9).

``ring`` answers placement questions without any server: it builds the
same consistent-hash ring a dispatcher would and prints each worker's
owned share of the hash space (and, with ``--channels N`` /
``--key CID:FID``, where concrete channels land).  Operators use it to
predict rebalance impact before adding or draining a worker.

Exit codes: 0 — success; 1 — operation failed (cannot bind, server
unreachable, ping unanswered); 2 — usage error.
"""

from __future__ import annotations

import argparse
import socket
import sys

from repro.core import encoder as enc
from repro.core.errors import PbioError
from repro.net.aio import AsyncServer
from repro.net.fabric import DEFAULT_BRANCHING, DEFAULT_VNODES, FabricDispatcher, HashRing
from repro.net.health import ProbePolicy
from repro.net.sockets import SocketTransport
from repro.net.transport import TransportError


def _parse_endpoint(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def _parse_key(text: str) -> tuple[int, int]:
    cid, _, fid = text.partition(":")
    if not cid.isdigit() or not fid.isdigit():
        raise ValueError(f"expected CID:FID (two integers), got {text!r}")
    return int(cid), int(fid)


# -- serve ---------------------------------------------------------------------


def _serve(args) -> int:
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    from repro.net.fabric import fabric_handler

    dispatcher = FabricDispatcher(
        args.workers,
        vnodes=args.vnodes,
        branching_factor=args.branching,
        quarantine_after=args.quarantine_after,
        probe_policy=ProbePolicy(),
    )
    server = AsyncServer(
        fabric_handler(dispatcher),
        host=args.host,
        port=args.port,
        max_clients=args.max_clients,
        once=args.once,
    )
    try:
        host, port = server.bind()
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    print(
        f"fabric: {args.workers} worker(s), vnodes={args.vnodes}, "
        f"branching={args.branching}",
        flush=True,
    )
    print(f"listening on {host}:{port}", flush=True)
    try:
        server.run()
    except KeyboardInterrupt:
        pass
    finally:
        dispatcher.drain_and_stop()
        counters = dict(dispatcher.metrics.counters())
        for worker in dispatcher.workers:
            for name, value in worker.metrics.counters().items():
                counters[name] = counters.get(name, 0) + value
        counters.update(server.metrics.counters())
        if counters:
            summary = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
            print(f"served: {summary}", flush=True)
    return 0


# -- status --------------------------------------------------------------------


def _status(args) -> int:
    host, port = _parse_endpoint(args.server)
    try:
        sock = socket.create_connection((host, port), timeout=args.timeout)
    except OSError as exc:
        print(f"{args.server}: DOWN ({exc})", file=sys.stderr)
        return 1
    sock.settimeout(args.timeout)
    transport = SocketTransport(sock)
    nonce = 1  # any non-zero value; 0 is the goodbye sentinel
    try:
        transport.send(enc.encode_ping(nonce))
        while True:
            message = transport.recv()
            kind, _cid, _fid, _plen = enc.unpack_header(message)
            if kind != enc.MSG_PONG:
                continue  # a tap replay frame; keep waiting for our pong
            got, depth = enc.parse_pong(message)
            if got == nonce:
                print(f"{args.server}: alive (queue depth {depth})")
                return 0
    except (TransportError, PbioError, OSError) as exc:
        print(f"{args.server}: DOWN ({exc})", file=sys.stderr)
        return 1
    finally:
        transport.close()


# -- ring ----------------------------------------------------------------------


def _ring(args) -> int:
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    names = [f"w{i}" for i in range(args.workers)]
    ring = HashRing(names, vnodes=args.vnodes)
    fair = 1.0 / len(names)
    print(f"{len(names)} worker(s), vnodes={args.vnodes}")
    print(f"{'worker':8s}  {'arc share':>9s}  {'vs fair':>8s}")
    for name in names:
        share = ring.arc_shares()[name]
        print(f"{name:8s}  {share:9.4f}  {100 * (share - fair) / fair:+7.1f}%")
    if args.channels:
        counts = dict.fromkeys(names, 0)
        for i in range(args.channels):
            counts[ring.owner((i, 1))] += 1
        print(f"\n{args.channels} sample channel(s):")
        for name in names:
            print(f"{name:8s}  {counts[name]:6d}")
    for key in args.key or ():
        cid, fid = _parse_key(key)
        print(f"\nchannel ({cid}, {fid}) -> {ring.owner((cid, fid))}")
    return 0


# -- CLI -----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pbio-fabric",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a sharded relay fabric")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7799, help="0 = kernel-assigned")
    serve.add_argument("--workers", type=int, default=4, help="relay shards")
    serve.add_argument("--vnodes", type=int, default=DEFAULT_VNODES)
    serve.add_argument("--branching", type=int, default=DEFAULT_BRANCHING)
    serve.add_argument("--quarantine-after", type=int, default=3)
    serve.add_argument(
        "--once", action="store_true", help="serve one connection, then exit"
    )
    serve.add_argument(
        "--max-clients",
        type=int,
        default=None,
        help="shed connections beyond this many concurrent clients",
    )
    serve.set_defaults(func=_serve)

    status = sub.add_parser("status", help="ping a serving fabric")
    status.add_argument("--server", metavar="HOST:PORT", required=True)
    status.add_argument(
        "--timeout", type=float, default=5.0, help="seconds to wait for the pong"
    )
    status.set_defaults(func=_status)

    ring = sub.add_parser("ring", help="print ring ownership, offline")
    ring.add_argument("--workers", type=int, required=True, help="worker count")
    ring.add_argument("--vnodes", type=int, default=DEFAULT_VNODES)
    ring.add_argument(
        "--channels", type=int, default=0, help="sample this many concrete channels"
    )
    ring.add_argument(
        "--key",
        metavar="CID:FID",
        action="append",
        help="repeatable: print the owner of one channel",
    )
    ring.set_defaults(func=_ring)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
