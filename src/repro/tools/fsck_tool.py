"""pbio-fsck: verify and repair PBIO record files.

Usage::

    pbio-fsck data.pbio                 # scan, report per-frame verdicts
    pbio-fsck --quiet data.pbio         # summary line only
    pbio-fsck --repair clean.pbio data.pbio   # copy intact frames to a new file
    pbio-fsck --truncate data.pbio      # drop a torn tail in place

Exit codes: 0 — file clean; 1 — damage found (and, with ``--repair`` /
``--truncate``, repaired); 2 — not a PBIO file or usage error.

The v2 frame format (``u32 len | payload | u32 crc32 | u32 len-echo``)
makes three verdicts decidable per frame:

* ``ok``      — CRC matches the payload;
* ``corrupt`` — complete frame, CRC mismatch (bit rot / torn overwrite);
* ``torn``    — the file ends inside the frame (crash mid-append).

When a frame's length prefix and echo disagree *and* the CRC fails, the
framing itself is untrustworthy; the scanner then resynchronizes by
searching forward for the next offset that parses as a valid frame
(length sane, CRC matches, echo agrees) and reports the gap as
``framing`` damage.  v1 files (no trailer) are scanned for framing
consistency and torn tails only — content damage is undetectable there,
which is the argument for v2.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import zlib
from typing import BinaryIO

from repro.core.files import _FILE_HEADER, _MSG_LEN, _V2_TRAILER, FILE_MAGIC

#: Scanning resync never considers candidate frames larger than this —
#: a corrupted length prefix must not make the scanner "validate" an
#: absurd span by luck.
MAX_SCAN_FRAME = 1 << 30


@dataclasses.dataclass(frozen=True)
class FrameReport:
    """One scanned frame (or damaged region)."""

    offset: int  # file offset of the length prefix (or damage start)
    length: int  # payload length (or damaged span for framing/torn)
    verdict: str  # "ok" | "corrupt" | "torn" | "framing"

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclasses.dataclass
class FsckReport:
    version: int
    frames: list[FrameReport]
    file_size: int

    @property
    def ok(self) -> list[FrameReport]:
        return [f for f in self.frames if f.verdict == "ok"]

    @property
    def damaged(self) -> list[FrameReport]:
        return [f for f in self.frames if f.verdict != "ok"]

    @property
    def clean(self) -> bool:
        return not self.damaged

    @property
    def intact_prefix_end(self) -> int:
        """File offset up to which every frame is intact — the truncation
        point that drops a torn tail without losing good records."""
        end = _FILE_HEADER.size
        for frame in self.frames:
            if frame.verdict != "ok":
                break
            end = frame.end
        return end


class NotPbioFile(ValueError):
    pass


def _frame_at(data: bytes, pos: int, version: int) -> tuple[str, int, int] | None:
    """Try to parse one frame at ``pos``.

    Returns ``(verdict, payload_start, frame_end)`` for a structurally
    complete frame (verdict ``ok`` or ``corrupt``), ``("torn", pos,
    len(data))`` when the file ends inside the frame, or ``None`` when
    the bytes at ``pos`` cannot be framing at all (length/echo disagree
    with a failing CRC — resync territory)."""
    if pos + _MSG_LEN.size > len(data):
        return ("torn", pos, len(data))
    (n,) = _MSG_LEN.unpack_from(data, pos)
    if n > MAX_SCAN_FRAME:
        return None
    body_start = pos + _MSG_LEN.size
    if version < 2:
        end = body_start + n
        if end > len(data):
            return ("torn", pos, len(data))
        return ("ok", body_start, end)
    end = body_start + n + _V2_TRAILER.size
    if end > len(data):
        # Could be a torn tail — or a corrupted length pointing past EOF.
        # Trust it as torn only if nothing after it could resync anyway.
        return ("torn", pos, len(data))
    crc, echo = _V2_TRAILER.unpack_from(data, body_start + n)
    if zlib.crc32(data[body_start : body_start + n]) == crc:
        return ("ok", body_start, end)
    if echo == n:
        return ("corrupt", body_start, end)
    return None  # length and echo disagree AND the CRC fails: not framing


def _resync(data: bytes, pos: int, version: int) -> int:
    """The next offset >= pos+1 where a valid frame parses (or EOF)."""
    for candidate in range(pos + 1, len(data)):
        parsed = _frame_at(data, candidate, version)
        if parsed is not None and parsed[0] == "ok":
            return candidate
    return len(data)


def scan_region(data: bytes, start: int = 0, version: int = 2) -> list[FrameReport]:
    """Walk a framed region of ``data`` from ``start``, one verdict per frame.

    This is the fsck frame walker proper, header-agnostic so every framed
    file format built on :mod:`repro.core.framing` — PBIO record files,
    publisher WAL segments, ack cursor stores — shares one damage
    taxonomy (``ok`` / ``corrupt`` / ``torn`` / ``framing``) and one
    resynchronization strategy.
    """
    frames: list[FrameReport] = []
    pos = start
    while pos < len(data):
        parsed = _frame_at(data, pos, version)
        if parsed is None:
            resync_at = _resync(data, pos, version)
            frames.append(FrameReport(pos, resync_at - pos, "framing"))
            pos = resync_at
            continue
        verdict, _body_start, end = parsed
        frames.append(FrameReport(pos, end - pos, verdict))
        pos = end
    return frames


def scan_bytes(data: bytes) -> FsckReport:
    """Scan an in-memory PBIO file image."""
    if len(data) < _FILE_HEADER.size:
        raise NotPbioFile("truncated file header")
    magic, version = _FILE_HEADER.unpack_from(data, 0)
    if magic != FILE_MAGIC:
        raise NotPbioFile(f"bad magic {magic!r}")
    if version not in (1, 2):
        raise NotPbioFile(f"unsupported PBIO file version {version}")
    frames = scan_region(data, _FILE_HEADER.size, version)
    return FsckReport(version=version, frames=frames, file_size=len(data))


def scan(stream: BinaryIO) -> FsckReport:
    return scan_bytes(stream.read())


def repair_bytes(data: bytes, report: FsckReport | None = None) -> bytes:
    """A new file image containing only the intact frames of ``data``."""
    if report is None:
        report = scan_bytes(data)
    out = bytearray(data[: _FILE_HEADER.size])
    for frame in report.ok:
        out += data[frame.offset : frame.end]
    return bytes(out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pbio-fsck", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("path", help="PBIO file to check")
    parser.add_argument("--quiet", action="store_true", help="summary only, no per-frame report")
    parser.add_argument(
        "--repair", metavar="OUT", default=None, help="write intact frames to a new file OUT"
    )
    parser.add_argument(
        "--truncate",
        action="store_true",
        help="truncate the file in place at the end of its intact prefix",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.repair and args.truncate:
        print("--repair and --truncate are mutually exclusive", file=sys.stderr)
        return 2
    try:
        with open(args.path, "rb") as stream:
            data = stream.read()
        report = scan_bytes(data)
    except FileNotFoundError:
        print(f"no such file: {args.path}", file=sys.stderr)
        return 2
    except NotPbioFile as exc:
        print(f"not a PBIO file: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        for frame in report.frames:
            print(f"{frame.offset:#010x}  {frame.length:8d}  {frame.verdict}")
    counts = {"ok": 0, "corrupt": 0, "torn": 0, "framing": 0}
    for frame in report.frames:
        counts[frame.verdict] += 1
    print(
        f"{args.path}: v{report.version}, {report.file_size} bytes, "
        f"{counts['ok']} ok, {counts['corrupt']} corrupt, "
        f"{counts['torn']} torn, {counts['framing']} framing"
    )
    if report.clean:
        return 0
    if args.repair:
        repaired = repair_bytes(data, report)
        with open(args.repair, "wb") as out:
            out.write(repaired)
        print(f"repaired: {len(report.ok)} intact frame(s) -> {args.repair}")
    elif args.truncate:
        cut = report.intact_prefix_end
        with open(args.path, "r+b") as stream:
            stream.truncate(cut)
        print(f"truncated: {args.path} now {cut} bytes")
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
