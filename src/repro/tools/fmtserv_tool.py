"""pbio-fmtserv: run and administer the format server.

Usage::

    pbio-fmtserv serve --port 7788 --store formats.pbfc   # run a server
    pbio-fmtserv serve --port 0 --once                    # CI smoke: one conn
    pbio-fmtserv ls --server 127.0.0.1:7788               # list server formats
    pbio-fmtserv ls --cache formats.pbfc                  # list a cache file
    pbio-fmtserv prime --server 127.0.0.1:7788 --cache local.pbfc
    pbio-fmtserv purge --server 127.0.0.1:7788 [--fingerprint HEX]
    pbio-fmtserv purge --cache local.pbfc [--fingerprint HEX]
    pbio-fmtserv ping --server 127.0.0.1:7788 --server 127.0.0.1:7789

``serve`` accepts loopback-or-anywhere TCP connections, multiplexed on
one :class:`~repro.net.aio.AsyncServer` event loop — one process, no
per-connection threads; ``--store`` makes the population (and its token
bindings) survive restarts.  With ``--port 0`` the kernel picks a free
port, printed as ``listening on HOST:PORT`` before the first accept —
scripts can parse it.  ``--once`` serves a single connection and exits
(smoke tests); ``--max-clients`` sheds connections beyond the bound at
accept time (an orderly close, never a hung socket); the default serves
forever.

``prime`` is the warm-start half of the design: it copies the server's
whole format population into a local cache file, so a process restarted
with that file decodes known formats without any server round-trip.

``ping`` is the liveness probe of the self-healing plane
(docs/robustness.md §9): it dials each ``--server`` in turn, sends one
``MSG_PING`` control frame, and waits for the matching ``MSG_PONG``
(the serve loop's negotiator answers it without touching the RPC
layer).  Exit 0 when every server answered, 1 when any did not.

Exit codes: 0 — success; 1 — operation failed (server unreachable,
nothing purged when a fingerprint was named, ping unanswered);
2 — usage error.
"""

from __future__ import annotations

import argparse
import socket
import sys

from repro.core import encoder as enc
from repro.core.errors import PbioError
from repro.fmtserv import FormatCache, FormatServer, FormatService
from repro.net.aio import AsyncServer, fmtserv_handler
from repro.net.sockets import SocketTransport
from repro.net.transport import TransportError


def _parse_endpoint(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def _dial(endpoint: str, timeout_s: float = 5.0) -> SocketTransport:
    host, port = _parse_endpoint(endpoint)
    try:
        sock = socket.create_connection((host, port), timeout=timeout_s)
    except OSError as exc:
        # FormatService expects dial failures as TransportError (its
        # "server unreachable" path), not a raw socket exception.
        raise TransportError(f"cannot reach {endpoint}: {exc}") from exc
    sock.settimeout(timeout_s)
    return SocketTransport(sock)


def _service_for(args) -> FormatService:
    cache = FormatCache(getattr(args, "cache", None))
    endpoint = getattr(args, "server", None)
    connect = (lambda: _dial(endpoint)) if endpoint else None
    return FormatService(connect, cache=cache)


# -- serve ---------------------------------------------------------------------


def _serve(args) -> int:
    store = FormatCache(args.store) if args.store else None
    fserver = FormatServer(store=store)
    server = AsyncServer(
        fmtserv_handler(fserver),
        host=args.host,
        port=args.port,
        max_clients=args.max_clients,
        once=args.once,
    )
    try:
        host, port = server.bind()
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    print(f"listening on {host}:{port}", flush=True)
    try:
        server.run()
    except KeyboardInterrupt:
        pass
    finally:
        counters = dict(fserver.metrics.counters())
        counters.update(server.metrics.counters())
        if counters:
            summary = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
            print(f"served: {summary}", flush=True)
    return 0


# -- ls ------------------------------------------------------------------------


def _ls_rows_from_cache(cache: FormatCache) -> list[str]:
    rows = []
    for entry in cache.entries():
        fmt = cache.format_for(entry.fingerprint)
        name = fmt.name if fmt is not None else "?"
        size = fmt.record_size if fmt is not None else 0
        rows.append(f"{entry.fingerprint.hex()} {entry.token or 0} {name} {size}")
    return rows


def _ls(args) -> int:
    if args.server:
        service = _service_for(args)
        try:
            reply = service._call("list", {"max_entries": args.max})
        finally:
            service.close()
        if reply is None:
            print(f"server unreachable: {args.server}", file=sys.stderr)
            return 1
        rows = reply["listing"].splitlines()
    else:
        with FormatCache(args.cache) as cache:
            rows = _ls_rows_from_cache(cache)
        if args.max > 0:
            rows = rows[: args.max]
    print(f"{'fingerprint':40s}  {'token':>6s}  {'name':16s}  {'size':>6s}")
    for row in rows:
        fp_hex, token, name, size = row.split(" ", 3)
        print(f"{fp_hex:40s}  {token:>6s}  {name:16s}  {size:>6s}")
    print(f"{len(rows)} format(s)")
    return 0


# -- prime ---------------------------------------------------------------------


def _prime(args) -> int:
    service = _service_for(args)
    try:
        added = service.pull_all()
        if not service.online and added == 0:
            print(f"server unreachable: {args.server}", file=sys.stderr)
            return 1
        total = len(service.cache)
    finally:
        service.close()
    print(f"primed {args.cache}: {added} new, {total} total")
    return 0


# -- purge ---------------------------------------------------------------------


def _purge(args) -> int:
    fingerprint = ""
    if args.fingerprint:
        try:
            bytes.fromhex(args.fingerprint)
        except ValueError:
            print(f"not a hex fingerprint: {args.fingerprint}", file=sys.stderr)
            return 2
        fingerprint = args.fingerprint
    if args.server:
        service = _service_for(args)
        try:
            reply = service._call("purge", {"fingerprint": fingerprint})
        finally:
            service.close()
        if reply is None:
            print(f"server unreachable: {args.server}", file=sys.stderr)
            return 1
        removed = reply["removed"]
    else:
        with FormatCache(args.cache) as cache:
            removed = cache.purge(bytes.fromhex(fingerprint) if fingerprint else None)
    print(f"purged {removed} format(s)")
    return 0 if (removed or not fingerprint) else 1


# -- ping ----------------------------------------------------------------------


def _ping_one(endpoint: str, timeout_s: float) -> tuple[bool, str]:
    """One liveness round-trip; (alive, human-readable detail)."""
    try:
        transport = _dial(endpoint, timeout_s=timeout_s)
    except TransportError as exc:
        return False, str(exc)
    nonce = 1  # any non-zero value; 0 is the goodbye sentinel
    try:
        transport.send(enc.encode_ping(nonce))
        while True:
            message = transport.recv()
            kind, _cid, _fid, _plen = enc.unpack_header(message)
            if kind != enc.MSG_PONG:
                continue  # an announcement or stray frame; keep waiting
            got, depth = enc.parse_pong(message)
            if got == nonce:
                return True, f"queue depth {depth}"
    except (TransportError, PbioError) as exc:
        return False, str(exc)
    finally:
        transport.close()


def _ping(args) -> int:
    failures = 0
    for endpoint in args.server:
        alive, detail = _ping_one(endpoint, args.timeout)
        if alive:
            print(f"{endpoint}: alive ({detail})")
        else:
            print(f"{endpoint}: DOWN ({detail})", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


# -- CLI -----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pbio-fmtserv",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a format server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7788, help="0 = kernel-assigned")
    serve.add_argument("--store", default=None, help="persist formats to this file")
    serve.add_argument(
        "--once", action="store_true", help="serve one connection, then exit"
    )
    serve.add_argument(
        "--max-clients",
        type=int,
        default=None,
        help="shed connections beyond this many concurrent clients",
    )
    serve.set_defaults(func=_serve)

    ls = sub.add_parser("ls", help="list formats on a server or in a cache file")
    target = ls.add_mutually_exclusive_group(required=True)
    target.add_argument("--server", metavar="HOST:PORT")
    target.add_argument("--cache", metavar="PATH")
    ls.add_argument("--max", type=int, default=0, help="limit rows (0 = all)")
    ls.set_defaults(func=_ls)

    prime = sub.add_parser(
        "prime", help="copy the server's formats into a local cache file"
    )
    prime.add_argument("--server", metavar="HOST:PORT", required=True)
    prime.add_argument("--cache", metavar="PATH", required=True)
    prime.set_defaults(func=_prime)

    purge = sub.add_parser("purge", help="remove formats from a server or cache file")
    target = purge.add_mutually_exclusive_group(required=True)
    target.add_argument("--server", metavar="HOST:PORT")
    target.add_argument("--cache", metavar="PATH")
    purge.add_argument(
        "--fingerprint", default=None, help="hex fingerprint (omit to purge all)"
    )
    purge.set_defaults(func=_purge)

    ping = sub.add_parser("ping", help="liveness-check one or more servers")
    ping.add_argument(
        "--server",
        metavar="HOST:PORT",
        action="append",
        required=True,
        help="repeatable: every listed server is probed",
    )
    ping.add_argument(
        "--timeout", type=float, default=5.0, help="seconds to wait per server"
    )
    ping.set_defaults(func=_ping)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
