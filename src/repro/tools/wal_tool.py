"""pbio-wal: inspect, verify and compact publisher WAL directories.

Usage::

    pbio-wal ls WALDIR        # segments, per-stream sequence spans, cursors
    pbio-wal verify WALDIR    # frame-level damage scan of every file
    pbio-wal compact WALDIR   # heal torn tails, drop fully-acked segments

Exit codes: 0 — directory clean; 1 — damage found (``compact`` heals the
torn tails it finds and still reports 1); 2 — not a WAL directory or
usage error.

A WAL directory (:class:`repro.net.durable.PublisherWAL`) holds numbered
``wal-<n>.seg`` segment files of v2-framed wire messages plus an
``acked.cursors`` file of framed cursor entries.  Both use the same
``u32 len | payload | crc32 | len-echo`` frame discipline as PBIO record
files, so this tool shares the fsck frame walker
(:func:`repro.tools.fsck_tool.scan_region`) — one damage taxonomy
(``ok`` / ``corrupt`` / ``torn`` / ``framing``), one resync strategy —
and adds a payload layer on top: frames whose bytes are intact but do
not parse as a WAL-legal message (``MSG_DATA_SEQ``, ``MSG_FORMAT``,
``MSG_FORMAT_TOKEN``, or a cursor entry) are reported as ``payload``
damage.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys

from repro.core import encoder as enc
from repro.core.errors import PbioError
from repro.core.framing import MSG_LEN, V2_TRAILER
from repro.core.errors import MessageError
from repro.net.durable import (
    _CURSOR_ENTRY,
    _FILE_HEADER,
    CURSOR_MAGIC,
    WAL_MAGIC,
    WAL_VERSION,
    PublisherWAL,
    split_wal_frame,
)

from .fsck_tool import FrameReport, scan_region

CURSOR_FILE = "acked.cursors"


class NotWalFile(ValueError):
    pass


@dataclasses.dataclass
class FileScan:
    """One scanned WAL file: its frames plus the decoded payloads."""

    path: str
    file_size: int
    frames: list[FrameReport]
    #: (frame, payload bytes) for every structurally intact frame
    payloads: list[tuple[FrameReport, bytes]]
    #: intact frames whose payload is not a WAL-legal message
    payload_damage: int = 0

    @property
    def damaged(self) -> int:
        return sum(1 for f in self.frames if f.verdict != "ok") + self.payload_damage


def scan_wal_file(path: str, magic: bytes) -> FileScan:
    """Scan one WAL segment or cursor file with the fsck frame walker."""
    with open(path, "rb") as stream:
        data = stream.read()
    if len(data) < _FILE_HEADER.size:
        raise NotWalFile(f"{path}: truncated file header")
    found, version = _FILE_HEADER.unpack_from(data, 0)
    if found != magic:
        raise NotWalFile(f"{path}: bad magic {found!r}")
    if version != WAL_VERSION:
        raise NotWalFile(f"{path}: unsupported WAL version {version}")
    frames = scan_region(data, _FILE_HEADER.size, 2)
    payloads = [
        (f, data[f.offset + MSG_LEN.size : f.end - V2_TRAILER.size])
        for f in frames
        if f.verdict == "ok"
    ]
    return FileScan(path=path, file_size=len(data), frames=frames, payloads=payloads)


def segment_paths(directory: str) -> list[str]:
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith("wal-") and name.endswith(".seg")
    )


def scan_segment(path: str) -> tuple[FileScan, dict]:
    """Scan one segment; returns the scan plus a per-stream digest:
    ``{key: {"count", "lo", "hi", "announced"}}``."""
    scan = scan_wal_file(path, WAL_MAGIC)
    streams: dict[tuple[int, int], dict] = {}
    for _frame, payload in scan.payloads:
        # One frame carries one message or a whole journaled burst;
        # the embedded headers self-delimit (split_wal_frame).
        try:
            messages = split_wal_frame(payload)
        except MessageError:
            scan.payload_damage += 1
            continue
        for message in messages:
            header = enc.try_unpack_header(message)
            if header is None:
                scan.payload_damage += 1
                continue
            if header[0] in (enc.MSG_FORMAT, enc.MSG_FORMAT_TOKEN):
                key = (header[1], header[2])
                streams.setdefault(
                    key, {"count": 0, "lo": 0, "hi": 0, "announced": False}
                )
                streams[key]["announced"] = True
                continue
            try:
                cid, fid, seq, _record = enc.parse_data_seq(message)
            except PbioError:
                scan.payload_damage += 1
                continue
            digest = streams.setdefault(
                (cid, fid), {"count": 0, "lo": 0, "hi": 0, "announced": False}
            )
            digest["count"] += 1
            digest["lo"] = seq if not digest["lo"] else min(digest["lo"], seq)
            digest["hi"] = max(digest["hi"], seq)
    return scan, streams


def scan_cursors(path: str) -> tuple[FileScan, dict[tuple[int, int], int]]:
    """Scan the cursor file; returns the scan plus the effective cursors
    (append-wins, never-regress — the same read :class:`AckCursorStore`
    performs)."""
    scan = scan_wal_file(path, CURSOR_MAGIC)
    cursors: dict[tuple[int, int], int] = {}
    for _frame, payload in scan.payloads:
        if len(payload) != _CURSOR_ENTRY.size:
            scan.payload_damage += 1
            continue
        cid, fid, cursor = _CURSOR_ENTRY.unpack(payload)
        if cursor > cursors.get((cid, fid), 0):
            cursors[(cid, fid)] = cursor
    return scan, cursors


def _stream_name(key: tuple[int, int]) -> str:
    return f"ctx={key[0]:#x} fmt={key[1]}"


def cmd_ls(directory: str, quiet: bool) -> int:
    damage = 0
    cursors: dict[tuple[int, int], int] = {}
    cursor_path = os.path.join(directory, CURSOR_FILE)
    if os.path.exists(cursor_path):
        scan, cursors = scan_cursors(cursor_path)
        damage += scan.damaged
    totals: dict[tuple[int, int], dict] = {}
    for path in segment_paths(directory):
        scan, streams = scan_segment(path)
        damage += scan.damaged
        if not quiet:
            spans = ", ".join(
                f"{_stream_name(key)} "
                + (f"seq {d['lo']}..{d['hi']} ({d['count']})" if d["count"] else "meta only")
                for key, d in sorted(streams.items())
            )
            flag = "" if not scan.damaged else f"  [{scan.damaged} damaged]"
            print(f"{os.path.basename(path)}: {scan.file_size} bytes, {spans or 'empty'}{flag}")
        for key, digest in streams.items():
            total = totals.setdefault(key, {"count": 0, "hi": 0, "unacked": 0})
            total["count"] += digest["count"]
            total["hi"] = max(total["hi"], digest["hi"])
    for key, total in totals.items():
        acked = cursors.get(key, 0)
        total["unacked"] = max(0, total["hi"] - acked)
    for key in sorted(set(totals) | set(cursors)):
        total = totals.get(key, {"count": 0, "hi": 0, "unacked": 0})
        print(
            f"{_stream_name(key)}: {total['count']} journaled, "
            f"acked through {cursors.get(key, 0)}, ~{total['unacked']} unacked"
        )
    return 1 if damage else 0


def cmd_verify(directory: str, quiet: bool) -> int:
    damage = 0
    paths = []
    cursor_path = os.path.join(directory, CURSOR_FILE)
    if os.path.exists(cursor_path):
        paths.append((cursor_path, CURSOR_MAGIC))
    paths.extend((p, WAL_MAGIC) for p in segment_paths(directory))
    if not paths:
        print(f"{directory}: no WAL files", file=sys.stderr)
        return 2
    for path, magic in paths:
        if magic is CURSOR_MAGIC:
            scan, _cursors = scan_cursors(path)
        else:
            scan, _streams = scan_segment(path)
        counts = {"ok": 0, "corrupt": 0, "torn": 0, "framing": 0}
        for frame in scan.frames:
            counts[frame.verdict] += 1
        damage += scan.damaged
        if not quiet or scan.damaged:
            print(
                f"{path}: {scan.file_size} bytes, {counts['ok']} ok, "
                f"{counts['corrupt']} corrupt, {counts['torn']} torn, "
                f"{counts['framing']} framing, {scan.payload_damage} payload"
            )
    print(f"{directory}: {'DAMAGED' if damage else 'clean'}")
    return 1 if damage else 0


def cmd_compact(directory: str, quiet: bool) -> int:
    # Opening the WAL is the heal: torn tails are truncated at a clean
    # frame boundary, damaged entries are skipped, and compaction then
    # drops every non-active segment fully behind its acked cursor.
    wal = PublisherWAL(directory)
    try:
        removed = wal.compact()
        healed = int(
            wal.metrics.value("durable.wal_torn") + wal.metrics.value("durable.wal_corrupt")
        )
    finally:
        wal.close()
    if not quiet:
        print(
            f"{directory}: {removed} segment(s) compacted, "
            f"{healed} damaged frame(s) healed, {wal.unacked_count} entries unacked"
        )
    return 1 if healed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pbio-wal", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("command", choices=("ls", "verify", "compact"))
    parser.add_argument("directory", help="publisher WAL directory")
    parser.add_argument("--quiet", action="store_true", help="suppress per-file output")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not os.path.isdir(args.directory):
        print(f"not a directory: {args.directory}", file=sys.stderr)
        return 2
    try:
        if args.command == "ls":
            return cmd_ls(args.directory, args.quiet)
        if args.command == "verify":
            return cmd_verify(args.directory, args.quiet)
        return cmd_compact(args.directory, args.quiet)
    except NotWalFile as exc:
        print(f"not a WAL file: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"io error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
