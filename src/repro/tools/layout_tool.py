"""pbio-layout: show how a record schema lays out on simulated machines.

Usage::

    pbio-layout --machines i86,sparc  node_id:int  position:'double[3]'  tag:'char[8]'

Prints the per-machine struct layout (offsets, sizes, padding) plus a
cross-machine comparison showing exactly which heterogeneity sources
(byte order / type sizes / offsets) a PBIO exchange between each pair
would have to bridge.
"""

from __future__ import annotations

import argparse
import sys

from repro.abi import MACHINES, RecordSchema, layout_record
from repro.core import IOFormat, match_formats


def parse_field(spec: str) -> tuple[str, str]:
    name, sep, typ = spec.partition(":")
    if not sep or not name or not typ:
        raise argparse.ArgumentTypeError(f"field must be name:type, got {spec!r}")
    return name, typ


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pbio-layout", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--machines",
        default="i86,sparc",
        help=f"comma-separated machine names (known: {', '.join(sorted(MACHINES))})",
    )
    parser.add_argument("--name", default="record", help="record type name")
    parser.add_argument("fields", nargs="+", type=parse_field, help="name:type declarations")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    machine_names = [m.strip() for m in args.machines.split(",") if m.strip()]
    unknown = [m for m in machine_names if m not in MACHINES]
    if unknown:
        print(f"unknown machines: {unknown} (known: {sorted(MACHINES)})", file=sys.stderr)
        return 2
    try:
        schema = RecordSchema.from_pairs(args.name, list(args.fields))
    except ValueError as exc:
        print(f"bad schema: {exc}", file=sys.stderr)
        return 2

    layouts = {name: layout_record(schema, MACHINES[name]) for name in machine_names}
    for name, layout in layouts.items():
        print(layout.describe())
        print(f"  ({layout.padding_bytes()} pad bytes, {MACHINES[name].byte_order}-endian)\n")

    if len(machine_names) >= 2:
        print("cross-machine exchange analysis:")
        for i, a in enumerate(machine_names):
            for b in machine_names[i + 1 :]:
                wire = IOFormat.from_layout(layouts[a])
                native = IOFormat.from_layout(layouts[b])
                match = match_formats(wire, native)
                if match.zero_copy:
                    verdict = "identical natural representation -> zero-copy"
                else:
                    verdict = f"{match.mismatch_count} field(s) need conversion"
                print(f"  {a} -> {b}: {verdict}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
