"""pbio-dump: inspect a PBIO file without any schema knowledge.

Usage::

    pbio-dump data.pbio            # formats + decoded records
    pbio-dump --formats data.pbio  # format meta-information only
    pbio-dump --hex data.pbio      # add payload hex dumps
    pbio-dump --limit 10 data.pbio

Everything is driven by the file's own meta-information — this tool is
itself a demonstration of the reflection capability: it was never told
what records the file contains.
"""

from __future__ import annotations

import argparse
import sys

from repro.abi import X86_64
from repro.core import IOContext, MessageError, generic_decode, incoming_format
from repro.core.files import PbioFileReader


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pbio-dump", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("path", help="PBIO file to dump")
    parser.add_argument("--formats", action="store_true", help="show only format meta-information")
    parser.add_argument("--hex", action="store_true", help="hex-dump each record payload")
    parser.add_argument("--limit", type=int, default=None, help="stop after N records")
    return parser


def hex_dump(data: bytes, indent: str = "    ", width: int = 16) -> str:
    lines = []
    for off in range(0, len(data), width):
        chunk = data[off : off + width]
        hexpart = " ".join(f"{b:02x}" for b in chunk)
        text = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{indent}{off:06x}  {hexpart:<{width * 3}} |{text}|")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    ctx = IOContext(X86_64)  # the dumper's own machine is irrelevant
    seen_formats: set[bytes] = set()
    count = 0
    try:
        with PbioFileReader.open(ctx, args.path) as reader:
            for message in reader.iter_raw():
                fmt = incoming_format(ctx, message)
                if fmt.fingerprint not in seen_formats:
                    seen_formats.add(fmt.fingerprint)
                    print(fmt.describe())
                if args.formats:
                    continue
                record = generic_decode(ctx, message)
                count += 1
                print(f"record #{count} ({fmt.name}):")
                for key, value in record.items():
                    rendered = repr(value)
                    if len(rendered) > 70:
                        rendered = rendered[:67] + "..."
                    print(f"    {key} = {rendered}")
                if args.hex:
                    print(hex_dump(bytes(message[16:])))
                if args.limit is not None and count >= args.limit:
                    break
    except FileNotFoundError:
        print(f"no such file: {args.path}", file=sys.stderr)
        return 2
    except MessageError as exc:
        print(f"corrupt PBIO file: {exc}", file=sys.stderr)
        return 1
    if not args.formats:
        print(f"-- {count} record(s), {len(seen_formats)} format(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
