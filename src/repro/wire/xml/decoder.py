"""XML wire-format decoder: handler-based string->binary conversion.

The receiving side of the paper's XML baseline: an Expat-style handler
"interpret[s] the element name, convert[s] the data value from a string to
the appropriate binary type and store[s] it in the appropriate place".

Field matching is by element name, so — like PBIO — XML transparently
tolerates unexpected fields (ignored) and reordered fields; that is the
robustness Section 4.4 grants it.  The price is string parsing and
string->binary conversion for every element, every message.
"""

from __future__ import annotations

import struct

from repro.abi import PrimKind, StructLayout

from ..common import BoundFormat, WireFormatError, WireSystem
from .encoder import XmlEncoder
from .parser import SaxParser, XmlParseError


class _RecordHandler:
    """SAX handler that fills a native-layout buffer field by field."""

    def __init__(self, fields: dict[str, tuple], out: bytearray):
        self._fields = fields
        self._out = out
        self._depth = 0
        self._current: tuple | None = None
        self._text: list[str] = []

    def start_element(self, name: str, attrs: dict[str, str]) -> None:
        self._depth += 1
        if self._depth == 2:
            # Unknown element names are simply ignored — type extension.
            self._current = self._fields.get(name)
            self._text = []

    def characters(self, text: str) -> None:
        if self._current is not None:
            self._text.append(text)

    def end_element(self, name: str) -> None:
        if self._depth == 2 and self._current is not None:
            f, st = self._current
            raw = "".join(self._text)
            kind = f.kind
            try:
                if kind is PrimKind.CHAR:
                    st.pack_into(self._out, f.offset, raw.encode("latin-1"))
                elif kind is PrimKind.FLOAT:
                    values = [float(tok) for tok in raw.split()]
                    st.pack_into(self._out, f.offset, *values)
                elif kind is PrimKind.BOOLEAN:
                    values = [1 if tok == "true" else 0 for tok in raw.split()]
                    st.pack_into(self._out, f.offset, *values)
                else:
                    values = [int(tok) for tok in raw.split()]
                    st.pack_into(self._out, f.offset, *values)
            except (ValueError, struct.error) as exc:
                raise WireFormatError(f"XML field {name!r}: {exc}") from exc
            self._current = None
        self._depth -= 1


class XmlDecoder:
    """Per-layout compiled decoder."""

    def __init__(self, layout: StructLayout):
        if layout.has_strings:
            raise WireFormatError("XML baseline models fixed-size records")
        if layout.machine.float_format != "ieee754":
            raise WireFormatError("the XML baseline models IEEE hosts")
        self.layout = layout
        endian = layout.machine.struct_endian
        self._fields = {
            f.name: (f, struct.Struct(f.struct_fmt(endian))) for f in layout.fields
        }

    def decode(self, wire) -> bytes:
        out = bytearray(self.layout.size)
        handler = _RecordHandler(self._fields, out)
        try:
            SaxParser(handler).parse(wire)
        except XmlParseError as exc:
            raise WireFormatError(f"XML parse error: {exc}") from exc
        return bytes(out)


class XmlWire(WireSystem):
    """The XML-based system of the paper's comparison.

    Unlike the fixed-format systems, ``bind`` accepts *different* sender
    and receiver schemas: matching is by element name at parse time.
    """

    name = "XML"

    def bind(self, src_layout: StructLayout, dst_layout: StructLayout) -> "BoundXml":
        return BoundXml(src_layout, dst_layout)


class BoundXml(BoundFormat):
    system = "XML"

    def __init__(self, src_layout: StructLayout, dst_layout: StructLayout):
        self._encoder = XmlEncoder(src_layout)
        self._decoder = XmlDecoder(dst_layout)

    def encode(self, native) -> bytes:
        return self._encoder.encode(native)

    def decode(self, wire) -> bytes:
        return self._decoder.decode(wire)
