"""An event-driven (SAX / Expat-style) XML parser, from scratch.

The paper's XML baseline uses Expat, which "calls handler routines for
every data element in the XML stream" — the handler interprets the element
name, converts the string to a binary value and stores it.  This module
reproduces that architecture: :class:`SaxParser` scans the document once
and invokes ``start_element`` / ``characters`` / ``end_element`` callbacks;
it keeps no DOM.

Supported XML subset (all the wire format needs, plus the common cases a
robust parser must tolerate): elements with attributes, self-closing
elements, character data with the five standard entities plus numeric
character references, comments, processing instructions, and CDATA.
"""

from __future__ import annotations

from typing import Callable, Protocol


class XmlParseError(ValueError):
    """Malformed XML input."""


class ContentHandler(Protocol):
    def start_element(self, name: str, attrs: dict[str, str]) -> None: ...
    def characters(self, text: str) -> None: ...
    def end_element(self, name: str) -> None: ...


_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}


def unescape(text: str) -> str:
    if "&" not in text:
        return text
    out: list[str] = []
    pos = 0
    while True:
        amp = text.find("&", pos)
        if amp < 0:
            out.append(text[pos:])
            break
        out.append(text[pos:amp])
        end = text.find(";", amp + 1)
        if end < 0:
            raise XmlParseError("unterminated entity reference")
        entity = text[amp + 1 : end]
        if entity.startswith("#"):
            try:
                if entity[1:2] in ("x", "X"):
                    code_point = int(entity[2:], 16)
                else:
                    code_point = int(entity[1:])
                out.append(chr(code_point))
            except (ValueError, OverflowError) as exc:
                raise XmlParseError(f"bad character reference &{entity};") from exc
        elif entity in _ENTITIES:
            out.append(_ENTITIES[entity])
        else:
            raise XmlParseError(f"unknown entity &{entity};")
        pos = end + 1
    return "".join(out)


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in "_:"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_:.-"


class SaxParser:
    """Single-pass, callback-based parser over a complete document."""

    def __init__(self, handler: ContentHandler):
        self.handler = handler

    def parse(self, document: str | bytes) -> None:
        if isinstance(document, (bytes, bytearray, memoryview)):
            document = bytes(document).decode("utf-8")
        text = document
        n = len(text)
        pos = 0
        stack: list[str] = []
        handler = self.handler
        seen_root = False
        while pos < n:
            lt = text.find("<", pos)
            if lt < 0:
                if text[pos:].strip():
                    raise XmlParseError("character data outside root element")
                break
            if lt > pos:
                chunk = text[pos:lt]
                if stack:
                    handler.characters(unescape(chunk))
                elif chunk.strip():
                    raise XmlParseError("character data outside root element")
            pos = lt + 1
            if pos >= n:
                raise XmlParseError("truncated markup")
            ch = text[pos]
            if ch == "?":
                end = text.find("?>", pos)
                if end < 0:
                    raise XmlParseError("unterminated processing instruction")
                pos = end + 2
            elif ch == "!":
                if text.startswith("!--", pos):
                    end = text.find("-->", pos + 3)
                    if end < 0:
                        raise XmlParseError("unterminated comment")
                    pos = end + 3
                elif text.startswith("![CDATA[", pos):
                    end = text.find("]]>", pos + 8)
                    if end < 0:
                        raise XmlParseError("unterminated CDATA section")
                    if not stack:
                        raise XmlParseError("CDATA outside root element")
                    handler.characters(text[pos + 8 : end])
                    pos = end + 3
                else:
                    # DOCTYPE and friends: skip to closing '>'
                    end = text.find(">", pos)
                    if end < 0:
                        raise XmlParseError("unterminated declaration")
                    pos = end + 1
            elif ch == "/":
                pos += 1
                name, pos = self._read_name(text, pos)
                pos = self._skip_ws(text, pos)
                if pos >= n or text[pos] != ">":
                    raise XmlParseError(f"malformed end tag </{name}")
                pos += 1
                if not stack or stack[-1] != name:
                    raise XmlParseError(
                        f"mismatched end tag </{name}> (open: {stack[-1] if stack else None})"
                    )
                stack.pop()
                handler.end_element(name)
            else:
                name, pos = self._read_name(text, pos)
                attrs, pos = self._read_attrs(text, pos)
                if pos < n and text[pos] == "/":
                    if pos + 1 >= n or text[pos + 1] != ">":
                        raise XmlParseError("malformed self-closing tag")
                    pos += 2
                    if not stack and seen_root:
                        raise XmlParseError("multiple root elements")
                    seen_root = True
                    handler.start_element(name, attrs)
                    handler.end_element(name)
                elif pos < n and text[pos] == ">":
                    pos += 1
                    if not stack and seen_root:
                        raise XmlParseError("multiple root elements")
                    seen_root = True
                    stack.append(name)
                    handler.start_element(name, attrs)
                else:
                    raise XmlParseError(f"malformed start tag <{name}")
        if stack:
            raise XmlParseError(f"unclosed elements at end of document: {stack}")
        if not seen_root:
            raise XmlParseError("no root element")

    @staticmethod
    def _read_name(text: str, pos: int) -> tuple[str, int]:
        if pos >= len(text) or not _is_name_start(text[pos]):
            raise XmlParseError(f"expected name at position {pos}")
        start = pos
        pos += 1
        while pos < len(text) and _is_name_char(text[pos]):
            pos += 1
        return text[start:pos], pos

    @staticmethod
    def _skip_ws(text: str, pos: int) -> int:
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        return pos

    def _read_attrs(self, text: str, pos: int) -> tuple[dict[str, str], int]:
        attrs: dict[str, str] = {}
        n = len(text)
        while True:
            pos = self._skip_ws(text, pos)
            if pos >= n:
                raise XmlParseError("truncated start tag")
            if text[pos] in "/>":
                return attrs, pos
            name, pos = self._read_name(text, pos)
            pos = self._skip_ws(text, pos)
            if pos >= n or text[pos] != "=":
                raise XmlParseError(f"attribute {name!r} missing '='")
            pos = self._skip_ws(text, pos + 1)
            if pos >= n or text[pos] not in "'\"":
                raise XmlParseError(f"attribute {name!r} value must be quoted")
            quote = text[pos]
            end = text.find(quote, pos + 1)
            if end < 0:
                raise XmlParseError(f"unterminated attribute value for {name!r}")
            if name in attrs:
                raise XmlParseError(f"duplicate attribute {name!r}")
            attrs[name] = unescape(text[pos + 1 : end])
            pos = end + 1


def parse_with_callbacks(
    document: str | bytes,
    *,
    start: Callable[[str, dict[str, str]], None] | None = None,
    chars: Callable[[str], None] | None = None,
    end: Callable[[str], None] | None = None,
) -> None:
    """Convenience wrapper: parse with plain callables as handlers."""

    class _H:
        def start_element(self, name, attrs):
            if start:
                start(name, attrs)

        def characters(self, text):
            if chars:
                chars(text)

        def end_element(self, name):
            if end:
                end(name)

    SaxParser(_H()).parse(document)
