"""XML wire-format encoder: binary record -> ASCII text.

Reproduces the cost structure the paper attributes to XML (Section 2):
every binary value is converted to a decimal/text string and wrapped in
begin/end element tags, so encoding is dominated by binary->ASCII
conversion and the message grows by the 6-8x expansion factor the paper
quotes.

Floats are printed with round-trip precision (17 significant digits for
doubles, 9 for singles) — what a correct 2000-era XML encoder had to do
to avoid silently corrupting data.
"""

from __future__ import annotations

import struct

from repro.abi import PrimKind, StructLayout

from ..common import WireFormatError

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]


def escape_text(text: str) -> str:
    for raw, esc in _ESCAPES:
        text = text.replace(raw, esc)
    return text


class XmlEncoder:
    """Per-layout compiled encoder producing one XML document per record."""

    def __init__(self, layout: StructLayout):
        if layout.has_strings:
            # Strings are representable in XML, but the comparative
            # benchmarks model the paper's fixed-size records.
            raise WireFormatError("XML baseline models fixed-size records")
        if layout.machine.float_format != "ieee754":
            raise WireFormatError("the XML baseline models IEEE hosts")
        self.layout = layout
        endian = layout.machine.struct_endian
        self._fields = [
            (f, struct.Struct(f.struct_fmt(endian))) for f in layout.fields
        ]

    def encode(self, native) -> bytes:
        parts = [f"<{self.layout.schema.name}>"]
        append = parts.append
        for f, st in self._fields:
            name = f.name
            kind = f.kind
            if kind is PrimKind.CHAR:
                raw = st.unpack_from(native, f.offset)[0]
                text = escape_text(raw.rstrip(b"\x00").decode("latin-1"))
                append(f"<{name}>{text}</{name}>")
                continue
            values = st.unpack_from(native, f.offset)
            if kind is PrimKind.FLOAT:
                fmt = "%.9g" if f.elem_size == 4 else "%.17g"
                text = " ".join(fmt % v for v in values)
            elif kind is PrimKind.BOOLEAN:
                text = " ".join("true" if v else "false" for v in values)
            else:
                text = " ".join("%d" % v for v in values)
            append(f"<{name}>{text}</{name}>")
        append(f"</{self.layout.schema.name}>")
        return "\n".join(parts).encode("ascii")
