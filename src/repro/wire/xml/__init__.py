"""XML baseline: text encoder, from-scratch SAX parser (Expat stand-in),
and a handler-based decoder that converts strings back to native binary."""

from .encoder import XmlEncoder, escape_text
from .parser import ContentHandler, SaxParser, XmlParseError, parse_with_callbacks, unescape
from .decoder import BoundXml, XmlDecoder, XmlWire

__all__ = [
    "XmlEncoder",
    "XmlDecoder",
    "XmlWire",
    "BoundXml",
    "SaxParser",
    "ContentHandler",
    "XmlParseError",
    "parse_with_callbacks",
    "escape_text",
    "unescape",
]
