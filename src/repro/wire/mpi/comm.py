"""A minimal MPI-style point-to-point layer over a transport.

Provides the ``MPI_Send``/``MPI_Recv`` shape the round-trip experiments
need: messages carry a small envelope (tag, packed length) and a packed
external32 payload.  There is deliberately *no* format meta-information in
the message — that is MPI's design point, and the reason it cannot do the
type-extension experiments of Section 4.4.
"""

from __future__ import annotations

import struct

from repro.abi import StructLayout
from repro.net.transport import Transport

from ..common import WireFormatError
from .datatypes import CommittedDatatype
from .pack import mpi_pack, mpi_unpack

_ENVELOPE = struct.Struct(">iI")  # (tag, payload length)


class MpiEndpoint:
    """One communicating process: commit datatypes, then send/recv."""

    def __init__(self, transport: Transport):
        self.transport = transport
        self._types: dict[str, CommittedDatatype] = {}

    def commit(self, layout: StructLayout) -> CommittedDatatype:
        """``MPI_Type_commit`` for a structure datatype."""
        dtype = CommittedDatatype(layout)
        self._types[layout.schema.name] = dtype
        return dtype

    def send(self, dtype: CommittedDatatype, native, tag: int = 0) -> None:
        """Pack and transmit one record (``MPI_Send`` of a struct type)."""
        out = bytearray(dtype.wire_size)
        mpi_pack(dtype, native, out)
        self.transport.send(_ENVELOPE.pack(tag, len(out)) + bytes(out))

    def recv(self, dtype: CommittedDatatype, expected_tag: int = 0) -> bytes:
        """Receive and unpack one record into a fresh native buffer."""
        message = self.transport.recv()
        tag, length = _ENVELOPE.unpack_from(message, 0)
        if tag != expected_tag:
            raise WireFormatError(f"MPI: tag mismatch (got {tag}, want {expected_tag})")
        payload = memoryview(message)[_ENVELOPE.size :]
        if length != len(payload) or length != dtype.wire_size:
            raise WireFormatError(
                f"MPI: truncation error — message of {length} bytes does not "
                f"match receive type extent {dtype.wire_size}"
            )
        out = bytearray(dtype.layout.size)
        mpi_unpack(dtype, payload, 0, out)
        return bytes(out)
