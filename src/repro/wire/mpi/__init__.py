"""MPICH-like baseline: derived datatypes, interpreted pack/unpack, and a
point-to-point layer with strict a priori type agreement."""

from .datatypes import EXTERNAL32_SIZES, CommittedDatatype, TypemapEntry
from .pack import BoundMpi, MpiWire, mpi_pack, mpi_unpack
from .comm import MpiEndpoint
from .typealgebra import BasicType, CommittedType, Datatype

__all__ = [
    "CommittedDatatype",
    "TypemapEntry",
    "EXTERNAL32_SIZES",
    "MpiWire",
    "BoundMpi",
    "mpi_pack",
    "mpi_unpack",
    "MpiEndpoint",
    "Datatype",
    "BasicType",
    "CommittedType",
]
