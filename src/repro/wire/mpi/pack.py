"""``MPI_Pack`` / ``MPI_Unpack``: the interpreted marshalling engine.

Pack walks the committed typemap element by element, converting each
native element to its external32 wire form in a *separate, contiguous*
buffer — the data copy the paper blames on gap-free wire formats.  Unpack
does the inverse, again into a separate buffer ("MPICH uses a separate
buffer for the unpacked message rather than reusing the receive buffer",
Section 4.3).
"""

from __future__ import annotations

from repro.abi import StructLayout

from ..common import BoundFormat, WireFormatError, WireSystem, check_same_schema
from .datatypes import CommittedDatatype


def mpi_pack(dtype: CommittedDatatype, native, outbuf: bytearray, position: int = 0) -> int:
    """Pack one record; returns the new position (MPI_Pack semantics)."""
    for e in dtype.entries:
        if e.is_block:
            data = e.native_struct.unpack_from(native, e.native_offset)[0]
            e.wire_struct.pack_into(outbuf, position + e.wire_offset, data)
        else:
            value = e.native_struct.unpack_from(native, e.native_offset)[0]
            e.wire_struct.pack_into(outbuf, position + e.wire_offset, value)
    return position + dtype.wire_size


def mpi_unpack(dtype: CommittedDatatype, inbuf, position: int, outbuf: bytearray) -> int:
    """Unpack one record into ``outbuf`` (a fresh native-layout buffer)."""
    for e in dtype.entries:
        if e.is_block:
            data = e.wire_struct.unpack_from(inbuf, position + e.wire_offset)[0]
            e.native_struct.pack_into(outbuf, e.native_offset, data)
        else:
            value = e.wire_struct.unpack_from(inbuf, position + e.wire_offset)[0]
            e.native_struct.pack_into(outbuf, e.native_offset, value)
    return position + dtype.wire_size


class MpiWire(WireSystem):
    """MPICH-like system: committed datatypes + interpreted pack/unpack."""

    name = "MPICH"

    def bind(self, src_layout: StructLayout, dst_layout: StructLayout) -> "BoundMpi":
        check_same_schema(src_layout, dst_layout, self.name)
        return BoundMpi(src_layout, dst_layout)


class BoundMpi(BoundFormat):
    system = "MPICH"

    def __init__(self, src_layout: StructLayout, dst_layout: StructLayout):
        self.send_type = CommittedDatatype(src_layout)
        self.recv_type = CommittedDatatype(dst_layout)
        if self.send_type.signature() != self.recv_type.signature():
            raise WireFormatError(
                "MPICH: send/recv type signatures do not match "
                "(MPI type-matching rules violated)"
            )
        self.dst_layout = dst_layout

    def encode(self, native) -> bytes:
        out = bytearray(self.send_type.wire_size)
        mpi_pack(self.send_type, native, out)
        return bytes(out)

    def decode(self, wire) -> bytes:
        if len(wire) != self.recv_type.wire_size:
            raise WireFormatError(
                f"MPICH: message length {len(wire)} does not match committed "
                f"type extent {self.recv_type.wire_size} — any variation in "
                f"message content invalidates communication"
            )
        out = bytearray(self.dst_layout.size)
        mpi_unpack(self.recv_type, wire, 0, out)
        return bytes(out)
