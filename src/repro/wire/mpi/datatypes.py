"""MPI derived datatypes: construction, commit, and flattened typemaps.

Models the slice of MPI the paper benchmarks: user-defined structure
datatypes (``MPI_Type_create_struct``) whose pack/unpack engine walks a
flattened *typemap* — one entry per primitive element — exactly the
"table-driven interpreter" Section 4.3 describes ("most MPI
implementations marshal user-defined datatypes via mechanisms that amount
to interpreted versions of field-by-field packing").

The canonical wire representation follows MPI's ``external32``: packed
(no gaps), big-endian, with fixed per-type sizes so both parties agree
regardless of native ABI.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.abi import CType, PrimKind, StructLayout

from ..common import WireFormatError

#: external32 on-wire sizes per declared C type (MPI-2 standard, 13.5.2).
EXTERNAL32_SIZES: dict[CType, int] = {
    CType.CHAR: 1,
    CType.SIGNED_CHAR: 1,
    CType.UNSIGNED_CHAR: 1,
    CType.SHORT: 2,
    CType.UNSIGNED_SHORT: 2,
    CType.INT: 4,
    CType.UNSIGNED_INT: 4,
    CType.LONG: 4,
    CType.UNSIGNED_LONG: 4,
    CType.LONG_LONG: 8,
    CType.UNSIGNED_LONG_LONG: 8,
    CType.FLOAT: 4,
    CType.DOUBLE: 8,
    CType.BOOL: 1,
}


@dataclass(frozen=True)
class TypemapEntry:
    """One primitive element: where it lives natively and on the wire."""

    native_offset: int
    wire_offset: int
    native_struct: struct.Struct
    wire_struct: struct.Struct
    is_block: bool = False  # char-array block copy
    block_len: int = 0


class CommittedDatatype:
    """The result of ``MPI_Type_commit``: a flattened element typemap.

    ``entries`` drive the interpreted pack/unpack loops in
    :mod:`repro.wire.mpi.pack`; ``wire_size`` is the packed external32
    extent of one record.
    """

    def __init__(self, layout: StructLayout):
        if layout.has_strings:
            raise WireFormatError("MPI derived datatypes model fixed-size structs")
        if layout.machine.float_format != "ieee754":
            raise WireFormatError("the MPI baseline models IEEE hosts")
        self.layout = layout
        endian = layout.machine.struct_endian
        entries: list[TypemapEntry] = []
        wire_pos = 0
        from repro.abi.types import struct_code

        for f in layout.fields:
            wire_elem = EXTERNAL32_SIZES[f.ctype]
            if f.kind is PrimKind.CHAR:
                # Contiguous MPI_CHAR block: the one case every datatype
                # engine turns into a single copy.
                entries.append(
                    TypemapEntry(
                        native_offset=f.offset,
                        wire_offset=wire_pos,
                        native_struct=struct.Struct(f"{endian}{f.count}s"),
                        wire_struct=struct.Struct(f">{f.count}s"),
                        is_block=True,
                        block_len=f.count,
                    )
                )
                wire_pos += f.count
                continue
            native_code = struct_code(f.kind, f.elem_size)
            wire_kind = f.kind if f.kind is not PrimKind.BOOLEAN else PrimKind.UNSIGNED
            wire_code = struct_code(wire_kind, wire_elem)
            nst = struct.Struct(endian + native_code)
            wst = struct.Struct(">" + wire_code)
            for i in range(f.count):
                entries.append(
                    TypemapEntry(
                        native_offset=f.offset + i * f.elem_size,
                        wire_offset=wire_pos,
                        native_struct=nst,
                        wire_struct=wst,
                    )
                )
                wire_pos += wire_elem
        self.entries = entries
        self.wire_size = wire_pos

    def signature(self) -> tuple:
        """MPI type signature: the sequence of basic wire types.

        Two committed datatypes match (can communicate) iff their
        signatures are equal — MPI's strict a priori agreement.
        """
        return tuple(
            ("block", e.block_len) if e.is_block else ("elem", e.wire_struct.format)
            for e in self.entries
        )

    def __len__(self) -> int:
        return len(self.entries)
