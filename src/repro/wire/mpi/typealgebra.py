"""MPI derived-datatype algebra: the full constructor set.

The paper's MPI baseline exercises structure datatypes, but MPI's
datatype engine is an algebra: basic types composed through
``MPI_Type_contiguous``, ``MPI_Type_vector``, ``MPI_Type_indexed`` and
``MPI_Type_create_struct``, then committed.  This module implements that
algebra over the simulated ABIs.  A datatype denotes a *typemap* — a
sequence of (basic type, displacement) pairs — and composition follows
the MPI-2 rules:

* ``contiguous(n, T)`` — n copies of T at stride ``extent(T)``;
* ``vector(count, blocklen, stride, T)`` — blocks of T with a stride in
  units of ``extent(T)``;
* ``indexed(blocklens, displs, T)`` — irregular blocks, displacements in
  units of ``extent(T)``;
* ``create_struct(blocklens, byte_displs, types)`` — heterogeneous, byte
  displacements, extent padded to the max member alignment (as compilers
  pad structs).

Commit flattens to the element list used by the interpreted pack engine;
two committed types can communicate iff their *type signatures* (the
sequence of basic types, ignoring displacements) match — MPI's matching
rule, tested in ``tests/wire/test_typealgebra.py``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.abi import MachineDescription
from repro.abi.types import CType, PrimKind, struct_code

from ..common import WireFormatError
from .datatypes import EXTERNAL32_SIZES


@dataclass(frozen=True)
class BasicType:
    """A named MPI basic type bound to a machine representation."""

    ctype: CType
    machine: MachineDescription

    @property
    def size(self) -> int:
        return self.machine.size_of(self.ctype)

    @property
    def alignment(self) -> int:
        return self.machine.align_of(self.ctype)

    @property
    def wire_size(self) -> int:
        return EXTERNAL32_SIZES[self.ctype]

    def __repr__(self) -> str:
        return f"MPI_{self.ctype.name}"


@dataclass(frozen=True)
class TypemapItem:
    basic: BasicType
    displacement: int  # bytes from the datatype's origin


class Datatype:
    """An (uncommitted) derived datatype: a typemap plus lb/extent."""

    def __init__(self, typemap: list[TypemapItem], extent: int, alignment: int):
        if not typemap:
            raise WireFormatError("empty datatypes are not constructible")
        self.typemap = list(typemap)
        self.extent = extent
        self.alignment = alignment
        self._committed: CommittedType | None = None

    # -- constructors -------------------------------------------------------

    @classmethod
    def basic(cls, ctype: CType, machine: MachineDescription) -> "Datatype":
        b = BasicType(ctype, machine)
        return cls([TypemapItem(b, 0)], extent=b.size, alignment=b.alignment)

    def contiguous(self, count: int) -> "Datatype":
        """``MPI_Type_contiguous(count, self)``."""
        if count < 1:
            raise WireFormatError("contiguous count must be >= 1")
        typemap = [
            TypemapItem(item.basic, i * self.extent + item.displacement)
            for i in range(count)
            for item in self.typemap
        ]
        return Datatype(typemap, self.extent * count, self.alignment)

    def vector(self, count: int, blocklength: int, stride: int) -> "Datatype":
        """``MPI_Type_vector``: ``count`` blocks of ``blocklength`` elements,
        strides in units of the old type's extent."""
        if count < 1 or blocklength < 1:
            raise WireFormatError("vector count/blocklength must be >= 1")
        typemap = []
        for i in range(count):
            base = i * stride * self.extent
            for j in range(blocklength):
                off = base + j * self.extent
                typemap.extend(
                    TypemapItem(item.basic, off + item.displacement) for item in self.typemap
                )
        span = ((count - 1) * stride + blocklength) * self.extent
        return Datatype(typemap, span, self.alignment)

    def indexed(self, blocklengths: list[int], displacements: list[int]) -> "Datatype":
        """``MPI_Type_indexed``: displacements in units of the old extent."""
        if len(blocklengths) != len(displacements):
            raise WireFormatError("indexed: blocklengths and displacements differ in length")
        typemap = []
        max_end = 0
        for blocklength, displ in zip(blocklengths, displacements):
            for j in range(blocklength):
                off = (displ + j) * self.extent
                typemap.extend(
                    TypemapItem(item.basic, off + item.displacement) for item in self.typemap
                )
                max_end = max(max_end, off + self.extent)
        return Datatype(typemap, max_end, self.alignment)

    @classmethod
    def create_struct(
        cls,
        blocklengths: list[int],
        displacements: list[int],
        types: list["Datatype"],
    ) -> "Datatype":
        """``MPI_Type_create_struct``: byte displacements, mixed types."""
        if not (len(blocklengths) == len(displacements) == len(types)):
            raise WireFormatError("create_struct: argument lengths differ")
        typemap = []
        max_align = 1
        end = 0
        for blocklength, displ, dtype in zip(blocklengths, displacements, types):
            max_align = max(max_align, dtype.alignment)
            for j in range(blocklength):
                base = displ + j * dtype.extent
                typemap.extend(
                    TypemapItem(item.basic, base + item.displacement) for item in dtype.typemap
                )
                end = max(end, base + dtype.extent)
        extent = (end + max_align - 1) // max_align * max_align  # struct padding
        return cls(typemap, extent, max_align)

    # -- commit ------------------------------------------------------------

    def commit(self) -> "CommittedType":
        """Flatten and freeze for use by the pack engine."""
        if self._committed is None:
            self._committed = CommittedType(self)
        return self._committed

    @property
    def num_elements(self) -> int:
        return len(self.typemap)

    def signature(self) -> tuple:
        """The type signature: basic-type sequence without displacements."""
        return tuple(item.basic.ctype for item in self.typemap)


class CommittedType:
    """Committed form: per-element codecs and packed external32 layout."""

    def __init__(self, dtype: Datatype):
        self.datatype = dtype
        entries = []
        wire_pos = 0
        struct_cache: dict[tuple, struct.Struct] = {}
        for item in sorted(dtype.typemap, key=lambda it: it.displacement):
            b = item.basic
            kind = b.ctype.kind
            wire_kind = kind if kind is not PrimKind.BOOLEAN else PrimKind.UNSIGNED
            if kind is PrimKind.CHAR:
                nst = struct_cache.setdefault(
                    ("c", b.machine.struct_endian), struct.Struct(b.machine.struct_endian + "1s")
                )
                wst = struct_cache.setdefault(("c", ">"), struct.Struct(">1s"))
            else:
                nkey = (kind, b.size, b.machine.struct_endian)
                nst = struct_cache.setdefault(
                    nkey, struct.Struct(b.machine.struct_endian + struct_code(kind, b.size))
                )
                wkey = (wire_kind, b.wire_size, ">")
                wst = struct_cache.setdefault(
                    wkey, struct.Struct(">" + struct_code(wire_kind, b.wire_size))
                )
            entries.append((item.displacement, wire_pos, nst, wst))
            wire_pos += b.wire_size
        self.entries = entries
        self.wire_size = wire_pos

    def pack(self, native, outbuf: bytearray, position: int = 0) -> int:
        for noff, woff, nst, wst in self.entries:
            wst.pack_into(outbuf, position + woff, nst.unpack_from(native, noff)[0])
        return position + self.wire_size

    def unpack(self, inbuf, position: int, outbuf: bytearray) -> int:
        for noff, woff, nst, wst in self.entries:
            nst.pack_into(outbuf, noff, wst.unpack_from(inbuf, position + woff)[0])
        return position + self.wire_size

    def signature(self) -> tuple:
        return self.datatype.signature()
