"""Sun XDR (RFC 1832) encoding — the classic common wire format.

XDR is the style of format the paper argues against: big-endian, fully
packed into 4-byte units, no gaps.  *Every* sender must convert into it
and *every* receiver must convert out of it, even when both machines are
identical little-endian x86 boxes.  It is included both as a baseline in
its own right (Sun RPC style) and as the canonical-format substrate the
MPI baseline builds on.

Faithful to RFC 1832: all items occupy a multiple of 4 bytes (char/short
widen to 4; double/hyper take 8), byte order is big-endian, fixed-length
opaque data is padded to 4.
"""

from __future__ import annotations

import struct

from repro.abi import PrimKind, StructLayout

from .common import BoundFormat, WireFormatError, WireSystem, check_same_schema

_U32 = struct.Struct(">I")
_I32 = struct.Struct(">i")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F32 = struct.Struct(">f")
_F64 = struct.Struct(">d")


class XdrEncoder:
    """Append-only XDR output stream."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def put_int(self, value: int) -> None:
        self._parts.append(_I32.pack(value))

    def put_uint(self, value: int) -> None:
        self._parts.append(_U32.pack(value))

    def put_hyper(self, value: int) -> None:
        self._parts.append(_I64.pack(value))

    def put_uhyper(self, value: int) -> None:
        self._parts.append(_U64.pack(value))

    def put_float(self, value: float) -> None:
        self._parts.append(_F32.pack(value))

    def put_double(self, value: float) -> None:
        self._parts.append(_F64.pack(value))

    def put_bool(self, value: bool) -> None:
        self.put_uint(1 if value else 0)

    def put_opaque_fixed(self, data: bytes) -> None:
        """Fixed-length opaque: bytes plus zero padding to a 4 multiple."""
        self._parts.append(data)
        pad = (-len(data)) % 4
        if pad:
            self._parts.append(b"\x00" * pad)

    def put_opaque_var(self, data: bytes) -> None:
        """Variable-length opaque: u32 length then padded bytes."""
        self.put_uint(len(data))
        self.put_opaque_fixed(data)

    def put_string(self, text: str) -> None:
        self.put_opaque_var(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class XdrDecoder:
    """Sequential XDR input stream."""

    def __init__(self, data: bytes | bytearray | memoryview):
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> int:
        pos = self._pos
        if pos + n > len(self._data):
            raise WireFormatError("XDR stream truncated")
        self._pos = pos + n
        return pos

    def get_int(self) -> int:
        return _I32.unpack_from(self._data, self._take(4))[0]

    def get_uint(self) -> int:
        return _U32.unpack_from(self._data, self._take(4))[0]

    def get_hyper(self) -> int:
        return _I64.unpack_from(self._data, self._take(8))[0]

    def get_uhyper(self) -> int:
        return _U64.unpack_from(self._data, self._take(8))[0]

    def get_float(self) -> float:
        return _F32.unpack_from(self._data, self._take(4))[0]

    def get_double(self) -> float:
        return _F64.unpack_from(self._data, self._take(8))[0]

    def get_bool(self) -> bool:
        return bool(self.get_uint())

    def get_opaque_fixed(self, n: int) -> bytes:
        pos = self._take(n + ((-n) % 4))
        return bytes(self._data[pos : pos + n])

    def get_opaque_var(self) -> bytes:
        return self.get_opaque_fixed(self.get_uint())

    def get_string(self) -> str:
        return self.get_opaque_var().decode("utf-8")

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos


def xdr_item_size(kind: PrimKind, native_size: int) -> int:
    """On-wire size of one element under XDR rules."""
    if kind is PrimKind.FLOAT:
        return 4 if native_size == 4 else 8
    if kind in (PrimKind.INTEGER, PrimKind.UNSIGNED):
        return 8 if native_size == 8 else 4
    if kind in (PrimKind.CHAR, PrimKind.BOOLEAN):
        return 4
    raise WireFormatError(f"XDR cannot encode kind {kind}")


class XdrWire(WireSystem):
    """Sun-RPC style marshalling of whole records through XDR streams.

    Element-by-element, as rpcgen-generated stubs do: each field's
    elements pass through ``put_*``/``get_*`` calls individually.
    """

    name = "XDR"

    def bind(self, src_layout: StructLayout, dst_layout: StructLayout) -> "BoundXdr":
        check_same_schema(src_layout, dst_layout, self.name)
        return BoundXdr(src_layout, dst_layout)


class BoundXdr(BoundFormat):
    system = "XDR"

    def __init__(self, src_layout: StructLayout, dst_layout: StructLayout):
        if src_layout.has_strings or dst_layout.has_strings:
            raise WireFormatError("XDR record baseline models fixed-size records")
        if "ieee754" != src_layout.machine.float_format or "ieee754" != dst_layout.machine.float_format:
            raise WireFormatError("the XDR baseline models IEEE hosts (XDR mandates IEEE)")
        self.src_layout = src_layout
        self.dst_layout = dst_layout
        endian_src = src_layout.machine.struct_endian
        endian_dst = dst_layout.machine.struct_endian
        # Precompile per-field native accessors (the rpcgen stub's compiled
        # knowledge of the local struct).
        self._src_ops = [
            (f, struct.Struct(f.struct_fmt(endian_src))) for f in src_layout.fields
        ]
        self._dst_ops = [
            (f, struct.Struct(f.struct_fmt(endian_dst))) for f in dst_layout.fields
        ]

    def encode(self, native) -> bytes:
        enc = XdrEncoder()
        for f, st in self._src_ops:
            if f.kind is PrimKind.CHAR:
                enc.put_opaque_fixed(st.unpack_from(native, f.offset)[0])
                continue
            values = st.unpack_from(native, f.offset)
            kind = f.kind
            if kind is PrimKind.FLOAT:
                put = enc.put_float if f.elem_size == 4 else enc.put_double
                for v in values:
                    put(v)
            elif kind is PrimKind.INTEGER:
                put = enc.put_hyper if f.elem_size == 8 else enc.put_int
                for v in values:
                    put(v)
            elif kind is PrimKind.UNSIGNED:
                put = enc.put_uhyper if f.elem_size == 8 else enc.put_uint
                for v in values:
                    put(v)
            elif kind is PrimKind.BOOLEAN:
                for v in values:
                    enc.put_bool(bool(v))
            else:  # pragma: no cover - guarded in __init__
                raise WireFormatError(f"XDR: unsupported kind {kind}")
        return enc.getvalue()

    def decode(self, wire) -> bytes:
        dec = XdrDecoder(wire)
        out = bytearray(self.dst_layout.size)
        for f, st in self._dst_ops:
            kind = f.kind
            if kind is PrimKind.CHAR:
                st.pack_into(out, f.offset, dec.get_opaque_fixed(f.count))
                continue
            if kind is PrimKind.FLOAT:
                get = dec.get_float if _src_elem_size(self.src_layout, f.name) == 4 else dec.get_double
            elif kind is PrimKind.INTEGER:
                get = dec.get_hyper if _src_elem_size(self.src_layout, f.name) == 8 else dec.get_int
            elif kind is PrimKind.UNSIGNED:
                get = dec.get_uhyper if _src_elem_size(self.src_layout, f.name) == 8 else dec.get_uint
            elif kind is PrimKind.BOOLEAN:
                get = dec.get_bool
            else:  # pragma: no cover
                raise WireFormatError(f"XDR: unsupported kind {kind}")
            values = [get() for _ in range(f.count)]
            if kind is PrimKind.BOOLEAN:
                values = [1 if v else 0 for v in values]
            st.pack_into(out, f.offset, *values)
        return bytes(out)


def _src_elem_size(layout: StructLayout, name: str) -> int:
    return layout[name].elem_size
