"""Common interface all wire-format systems implement.

The paper's evaluation (Section 4) compares systems on an identical task:
the application holds a record *already in native binary form*; the
sender-side middleware turns it into a wire message; the receiver-side
middleware turns the wire message into a record in the *receiver's* native
form, usable by the application.  :class:`WireFormat` captures exactly
that contract, so benchmarks can treat PBIO, MPI, XML, XDR, and IIOP
uniformly.

A system may need per-format setup (MPI's ``MPI_Type_commit``, PBIO's
format registration, XML's schema binding); ``bind`` performs it once and
returns a :class:`BoundFormat` whose ``encode``/``decode`` are the steady-
state per-message operations the paper times.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.abi import StructLayout


class WireFormatError(RuntimeError):
    """Marshalling/unmarshalling failure (mismatched formats, bad data)."""


class BoundFormat(ABC):
    """Per-(sender layout, receiver layout) compiled marshalling state."""

    #: wire system name, e.g. "MPICH"
    system: str

    @abstractmethod
    def encode(self, native: bytes | bytearray | memoryview) -> bytes:
        """Sender side: native record bytes -> complete wire message."""

    @abstractmethod
    def decode(self, wire: bytes | bytearray | memoryview) -> bytes:
        """Receiver side: wire message -> record bytes in receiver layout."""

    def wire_size(self, native: bytes) -> int:
        """Size in bytes of the wire message for one record."""
        return len(self.encode(native))


class WireSystem(ABC):
    """Factory for bound formats; one instance per middleware under test."""

    name: str = "?"

    @abstractmethod
    def bind(self, src_layout: StructLayout, dst_layout: StructLayout) -> BoundFormat:
        """Compile marshalling state for one sender/receiver layout pair.

        For systems with a priori agreement (MPI, XDR, IIOP) the two
        layouts must describe the same schema; PBIO relaxes this to
        name-based matching.
        """


def check_same_schema(src_layout: StructLayout, dst_layout: StructLayout, system: str) -> None:
    """Enforce the a priori agreement fixed-format systems require.

    MPI's "type-matching rules require strict a priori agreement on the
    content of messages" — differing field lists are a usage error, which
    is exactly the inflexibility the paper contrasts PBIO against.
    """
    src_sig = [(f.name, f.kind, f.count) for f in src_layout.fields]
    dst_sig = [(f.name, f.kind, f.count) for f in dst_layout.fields]
    if src_sig != dst_sig:
        raise WireFormatError(
            f"{system}: sender and receiver record types disagree "
            f"(a priori agreement violated); sender={src_sig} receiver={dst_sig}"
        )
