"""A minimal ORB: GIOP Request/Reply with CDR-marshalled record arguments.

The paper's CORBA comparison concerns the wire format, but "CORBA-style
communications" (Section 1) means RPC: stubs marshal a request, the ORB
dispatches on object key + operation, a reply comes back.  This module
provides that slice so the repo can stand in for a 2000-era ORB in
end-to-end experiments: interface definitions (operation -> request/reply
record types), client-side invocation, server-side dispatch, and system
exceptions for unknown objects/operations.

Marshalling is the same element-wise CDR as :mod:`.cdr`; the GIOP request
header (request id, response flag, object key, operation name) follows
GIOP 1.0's shape with service contexts omitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.abi import MachineDescription, RecordSchema, codec_for, layout_record
from repro.net.transport import Transport

from ..common import WireFormatError
from .cdr import CdrInputStream, CdrOutputStream, CdrStructCodec
from .giop import HEADER_SIZE, MSG_REPLY, MSG_REQUEST, pack_header, unpack_header

#: GIOP reply status values (subset).
REPLY_OK = 0
REPLY_SYSTEM_EXCEPTION = 2


class CorbaSystemException(WireFormatError):
    """Raised client-side when the server replies with an exception."""


@dataclass(frozen=True)
class Operation:
    """One IDL operation: request and reply record types."""

    name: str
    request_schema: RecordSchema
    reply_schema: RecordSchema


class Interface:
    """A set of operations (an IDL interface, sans inheritance)."""

    def __init__(self, name: str, operations: list[Operation]):
        self.name = name
        self.operations = {op.name: op for op in operations}
        if len(self.operations) != len(operations):
            raise WireFormatError(f"interface {name}: duplicate operation names")

    def __getitem__(self, name: str) -> Operation:
        try:
            return self.operations[name]
        except KeyError:
            raise WireFormatError(f"interface {self.name} has no operation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.operations


def _put_string(out: CdrOutputStream, text: str) -> None:
    data = text.encode("utf-8") + b"\x00"
    out.put("I", 4, len(data))
    out.put_octets(data)


def _get_string(stream: CdrInputStream) -> str:
    n = stream.get("I", 4)
    raw = stream.get_octets(n)
    return raw[:-1].decode("utf-8")


def _put_sequence_octet(out: CdrOutputStream, data: bytes) -> None:
    out.put("I", 4, len(data))
    out.put_octets(data)


def _get_sequence_octet(stream: CdrInputStream) -> bytes:
    return stream.get_octets(stream.get("I", 4))


class OrbClient:
    """Client-side stubs: marshal request, send, unmarshal reply."""

    def __init__(self, machine: MachineDescription, interface: Interface):
        self.machine = machine
        self.interface = interface
        self._codecs: dict[tuple[str, str], CdrStructCodec] = {}
        self._next_request_id = 1

    def _codec(self, schema: RecordSchema) -> CdrStructCodec:
        key = (schema.name, self.machine.name)
        codec = self._codecs.get(key)
        if codec is None:
            codec = CdrStructCodec(layout_record(schema, self.machine))
            self._codecs[key] = codec
        return codec

    def invoke(self, transport: Transport, object_key: bytes, operation: str, request: dict) -> dict:
        op = self.interface[operation]
        request_id = self._next_request_id
        self._next_request_id += 1
        # -- marshal request ----------------------------------------------
        body = CdrOutputStream(self.machine.byte_order)
        body.put("I", 4, request_id)
        body.put("B", 1, 1)  # response_expected
        _put_sequence_octet(body, object_key)
        _put_string(body, operation)
        req_codec = self._codec(op.request_schema)
        native = codec_for(req_codec.layout).encode(request)
        arg_buf = bytearray(req_codec.wire_size)
        req_codec.marshal(native, arg_buf, self.machine.byte_order)
        body.align(8)  # body alignment boundary for the argument block
        body.put_octets(bytes(arg_buf))
        payload = body.getvalue()
        transport.send(pack_header(self.machine.byte_order, MSG_REQUEST, len(payload)) + payload)
        # -- unmarshal reply -----------------------------------------------
        message = transport.recv()
        order, msg_type, size = unpack_header(message)
        if msg_type != MSG_REPLY:
            raise WireFormatError(f"expected GIOP Reply, got message type {msg_type}")
        stream = CdrInputStream(memoryview(message)[HEADER_SIZE:], order, self.machine.byte_order)
        reply_id = stream.get("I", 4)
        if reply_id != request_id:
            raise WireFormatError(f"reply id {reply_id} does not match request {request_id}")
        status = stream.get("I", 4)
        if status == REPLY_SYSTEM_EXCEPTION:
            raise CorbaSystemException(_get_string(stream))
        stream.align(8)
        reply_codec = self._codec(op.reply_schema)
        out = bytearray(reply_codec.layout.size)
        reply_codec.unmarshal(memoryview(message)[HEADER_SIZE + stream.position :], order, out)
        return codec_for(reply_codec.layout).decode(out)


class ObjectAdapter:
    """Server side: object registry + request dispatch."""

    def __init__(self, machine: MachineDescription, interface: Interface):
        self.machine = machine
        self.interface = interface
        self._servants: dict[bytes, dict[str, Callable[[dict], dict]]] = {}
        self._codecs: dict[str, CdrStructCodec] = {}

    def register(self, object_key: bytes, operations: dict[str, Callable[[dict], dict]]) -> None:
        unknown = [op for op in operations if op not in self.interface]
        if unknown:
            raise WireFormatError(f"operations not in interface: {unknown}")
        self._servants[object_key] = dict(operations)

    def _codec(self, schema: RecordSchema) -> CdrStructCodec:
        codec = self._codecs.get(schema.name)
        if codec is None:
            codec = CdrStructCodec(layout_record(schema, self.machine))
            self._codecs[schema.name] = codec
        return codec

    def handle(self, message: bytes) -> bytes:
        """Process one GIOP Request; returns the GIOP Reply bytes."""
        order, msg_type, _size = unpack_header(message)
        if msg_type != MSG_REQUEST:
            raise WireFormatError(f"object adapter expects Requests, got type {msg_type}")
        stream = CdrInputStream(memoryview(message)[HEADER_SIZE:], order, self.machine.byte_order)
        request_id = stream.get("I", 4)
        stream.get("B", 1)  # response_expected
        object_key = _get_sequence_octet(stream)
        operation = _get_string(stream)
        try:
            servant = self._servants.get(object_key)
            if servant is None:
                raise CorbaSystemException(f"OBJECT_NOT_EXIST: {object_key!r}")
            method = servant.get(operation)
            if method is None:
                raise CorbaSystemException(f"BAD_OPERATION: {operation!r}")
            op = self.interface[operation]
            stream.align(8)
            req_codec = self._codec(op.request_schema)
            native = bytearray(req_codec.layout.size)
            req_codec.unmarshal(
                memoryview(message)[HEADER_SIZE + stream.position :], order, native
            )
            request = codec_for(req_codec.layout).decode(native)
            result = method(request)
            reply_codec = self._codec(op.reply_schema)
            result_native = codec_for(reply_codec.layout).encode(result)
            return self._reply_ok(request_id, reply_codec, result_native)
        except CorbaSystemException as exc:
            return self._reply_exception(request_id, str(exc))

    def _reply_ok(self, request_id: int, codec: CdrStructCodec, native: bytes) -> bytes:
        body = CdrOutputStream(self.machine.byte_order)
        body.put("I", 4, request_id)
        body.put("I", 4, REPLY_OK)
        body.align(8)
        arg = bytearray(codec.wire_size)
        codec.marshal(native, arg, self.machine.byte_order)
        body.put_octets(bytes(arg))
        payload = body.getvalue()
        return pack_header(self.machine.byte_order, MSG_REPLY, len(payload)) + payload

    def _reply_exception(self, request_id: int, text: str) -> bytes:
        body = CdrOutputStream(self.machine.byte_order)
        body.put("I", 4, request_id)
        body.put("I", 4, REPLY_SYSTEM_EXCEPTION)
        _put_string(body, text)
        payload = body.getvalue()
        return pack_header(self.machine.byte_order, MSG_REPLY, len(payload)) + payload
