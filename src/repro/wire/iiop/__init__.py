"""CORBA IIOP baseline: CDR marshalling with reader-makes-right byte
order, framed in GIOP messages."""

from .cdr import CDR_SIZES, CdrInputStream, CdrOutputStream, CdrStructCodec
from .giop import HEADER_SIZE, BoundIiop, IiopWire, pack_header, unpack_header
from .orb import (
    CorbaSystemException,
    Interface,
    ObjectAdapter,
    Operation,
    OrbClient,
)

__all__ = [
    "Interface",
    "Operation",
    "OrbClient",
    "ObjectAdapter",
    "CorbaSystemException",
    "CdrOutputStream",
    "CdrInputStream",
    "CdrStructCodec",
    "CDR_SIZES",
    "IiopWire",
    "BoundIiop",
    "pack_header",
    "unpack_header",
    "HEADER_SIZE",
]
