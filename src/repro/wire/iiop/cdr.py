"""CORBA CDR (Common Data Representation) marshalling.

CDR is the "reader-makes-right" format the paper discusses: the sender
writes in *its own* byte order and a header flag tells the receiver
whether to swap.  That avoids unnecessary byte-swapping between
same-order machines — but, as Section 2 notes, it is "not sufficient to
allow such message exchanges without copying of data at both sender and
receiver", because CDR's on-wire alignment (each primitive aligned to its
size from the start of the stream) still differs from native struct
layout, so both ends walk the data element by element.

IDL primitive sizes are fixed by the spec regardless of native ABI:
octet/char/boolean 1, short 2, long/float 4, long long/double 8.
"""

from __future__ import annotations

import struct

from repro.abi import CType, PrimKind, StructLayout

from ..common import WireFormatError

#: CDR on-wire size per declared C type (mapped to the closest IDL type).
CDR_SIZES: dict[CType, int] = {
    CType.CHAR: 1,
    CType.SIGNED_CHAR: 1,
    CType.UNSIGNED_CHAR: 1,
    CType.BOOL: 1,
    CType.SHORT: 2,
    CType.UNSIGNED_SHORT: 2,
    CType.INT: 4,
    CType.UNSIGNED_INT: 4,
    CType.LONG: 4,  # IDL long is 32-bit
    CType.UNSIGNED_LONG: 4,
    CType.LONG_LONG: 8,
    CType.UNSIGNED_LONG_LONG: 8,
    CType.FLOAT: 4,
    CType.DOUBLE: 8,
}


class CdrOutputStream:
    """Aligned, native-byte-order CDR writer (what ORB stubs call)."""

    def __init__(self, byte_order: str):
        self.byte_order = byte_order
        self._endian = ">" if byte_order == "big" else "<"
        self._buf = bytearray()

    def align(self, alignment: int) -> None:
        pad = (-len(self._buf)) % alignment
        if pad:
            self._buf.extend(b"\x00" * pad)

    def put(self, code: str, size: int, value) -> None:
        self.align(size)
        self._buf.extend(struct.pack(self._endian + code, value))

    def put_octets(self, data: bytes) -> None:
        self._buf.extend(data)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class CdrInputStream:
    """Aligned CDR reader; swaps iff sender and reader orders differ."""

    def __init__(self, data, sender_order: str, reader_order: str):
        self._data = data
        self._pos = 0
        self._endian = ">" if sender_order == "big" else "<"
        self.needs_swap = sender_order != reader_order

    def align(self, alignment: int) -> None:
        self._pos += (-self._pos) % alignment

    def get(self, code: str, size: int):
        self.align(size)
        if self._pos + size > len(self._data):
            raise WireFormatError("CDR stream truncated")
        value = struct.unpack_from(self._endian + code, self._data, self._pos)[0]
        self._pos += size
        return value

    def get_octets(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise WireFormatError("CDR stream truncated")
        out = bytes(self._data[self._pos : self._pos + n])
        self._pos += n
        return out

    @property
    def position(self) -> int:
        return self._pos


def _cdr_code(kind: PrimKind, size: int) -> str:
    from repro.abi.types import struct_code

    wire_kind = kind if kind is not PrimKind.BOOLEAN else PrimKind.UNSIGNED
    if wire_kind is PrimKind.CHAR:
        return "s"
    return struct_code(wire_kind, size)


class CdrStructCodec:
    """Marshals one struct layout to/from CDR, element by element.

    Equivalent to the stub an IDL compiler emits: CDR stream offsets
    (including alignment padding) are computed once at construction — a
    compiled stub knows them statically — and each element then moves
    through one marshalling call, which is the per-element cost structure
    of real ORB stubs that Figure 2/3 reflect for CORBA.

    Unmarshalling is built per byte-order at first need: reader-makes-
    right means the receiving stub picks the swap/no-swap variant from
    the GIOP flags byte.
    """

    def __init__(self, layout: StructLayout):
        if layout.has_strings:
            raise WireFormatError("CDR struct baseline models fixed-size records")
        if layout.machine.float_format != "ieee754":
            raise WireFormatError("the CDR baseline models IEEE hosts")
        self.layout = layout
        self._native_endian = layout.machine.struct_endian
        from repro.abi.types import struct_code

        pos = 0
        plan: list[tuple] = []
        for f in layout.fields:
            cdr_size = CDR_SIZES[f.ctype]
            if f.kind is PrimKind.CHAR:
                nst = struct.Struct(f"{self._native_endian}{f.count}s")
                plan.append(("chars", f.offset, pos, nst, f.count))
                pos += f.count
                continue
            native = struct.Struct(self._native_endian + struct_code(f.kind, f.elem_size))
            code = _cdr_code(f.kind, cdr_size)
            pos += (-pos) % cdr_size  # stub aligns once per field run
            for i in range(f.count):
                plan.append(("elem", f.offset + i * f.elem_size, pos, native, code, cdr_size))
                pos += cdr_size
        self._plan = plan
        self.wire_size = pos
        self._wire_structs: dict[str, list] = {}

    def _compiled(self, byte_order: str) -> list:
        """Per-element op list with wire structs for one byte order."""
        ops = self._wire_structs.get(byte_order)
        if ops is None:
            endian = ">" if byte_order == "big" else "<"
            cache: dict[str, struct.Struct] = {}
            ops = []
            for entry in self._plan:
                if entry[0] == "chars":
                    _, noff, woff, nst, count = entry
                    wst = cache.setdefault(f"{count}s", struct.Struct(f"{endian}{count}s"))
                    ops.append((noff, woff, nst, wst))
                else:
                    _, noff, woff, nst, code, _size = entry
                    wst = cache.setdefault(code, struct.Struct(endian + code))
                    ops.append((noff, woff, nst, wst))
            self._wire_structs[byte_order] = ops
        return ops

    def marshal(self, native, out: bytearray, byte_order: str) -> None:
        """Write one record into ``out`` (preallocated, ``wire_size`` long)."""
        for noff, woff, nst, wst in self._compiled(byte_order):
            wst.pack_into(out, woff, nst.unpack_from(native, noff)[0])

    def unmarshal(self, payload, sender_order: str, out: bytearray) -> None:
        """Read one record from CDR ``payload`` into a native buffer."""
        for noff, woff, nst, wst in self._compiled(sender_order):
            nst.pack_into(out, noff, wst.unpack_from(payload, woff)[0])
