"""GIOP message framing over CDR payloads.

The 12-byte GIOP header carries the magic, protocol version, a flags byte
whose low bit announces the sender's byte order (the reader-makes-right
flag), the message type, and the payload length.  This is the part of
IIOP the paper's comparison exercises; object keys, service contexts and
the rest of the request header are out of scope for a wire-format study
and omitted.
"""

from __future__ import annotations

import struct

from repro.abi import StructLayout

from ..common import BoundFormat, WireFormatError, WireSystem, check_same_schema
from .cdr import CdrInputStream, CdrOutputStream, CdrStructCodec

MAGIC = b"GIOP"
VERSION = (1, 0)
MSG_REQUEST = 0
MSG_REPLY = 1

_HEADER = struct.Struct(">4sBBBBI")  # magic, major, minor, flags, type, size
HEADER_SIZE = _HEADER.size


def pack_header(byte_order: str, msg_type: int, payload_len: int) -> bytes:
    flags = 0x01 if byte_order == "little" else 0x00
    # GIOP message size field is in the sender's order; keep the header
    # struct big-endian and note the flag governs only the *body* here,
    # matching how most ORBs emit GIOP 1.0.
    return _HEADER.pack(MAGIC, VERSION[0], VERSION[1], flags, msg_type, payload_len)


def unpack_header(message) -> tuple[str, int, int]:
    """Returns (sender byte order, message type, payload length)."""
    if len(message) < HEADER_SIZE:
        raise WireFormatError("GIOP message shorter than header")
    magic, major, minor, flags, msg_type, size = _HEADER.unpack_from(message, 0)
    if magic != MAGIC:
        raise WireFormatError(f"bad GIOP magic {magic!r}")
    if (major, minor) != VERSION:
        raise WireFormatError(f"unsupported GIOP version {major}.{minor}")
    order = "little" if flags & 0x01 else "big"
    return order, msg_type, size


class IiopWire(WireSystem):
    """CORBA-style system: GIOP framing + CDR reader-makes-right payload."""

    name = "CORBA"

    def bind(self, src_layout: StructLayout, dst_layout: StructLayout) -> "BoundIiop":
        check_same_schema(src_layout, dst_layout, self.name)
        return BoundIiop(src_layout, dst_layout)


class BoundIiop(BoundFormat):
    system = "CORBA"

    def __init__(self, src_layout: StructLayout, dst_layout: StructLayout):
        self._send_codec = CdrStructCodec(src_layout)
        self._recv_codec = CdrStructCodec(dst_layout)
        self._src_order = src_layout.machine.byte_order
        self._dst_order = dst_layout.machine.byte_order
        self.dst_layout = dst_layout

    def encode(self, native) -> bytes:
        payload = bytearray(self._send_codec.wire_size)
        self._send_codec.marshal(native, payload, self._src_order)
        return pack_header(self._src_order, MSG_REQUEST, len(payload)) + bytes(payload)

    def decode(self, wire) -> bytes:
        order, _msg_type, size = unpack_header(wire)
        payload = memoryview(wire)[HEADER_SIZE:]
        if len(payload) != size:
            raise WireFormatError(
                f"GIOP payload length mismatch: header says {size}, got {len(payload)}"
            )
        out = bytearray(self.dst_layout.size)
        self._recv_codec.unmarshal(payload, order, out)
        return bytes(out)
