"""Baseline wire-format systems the paper compares PBIO against.

All implement the :class:`~repro.wire.common.WireSystem` interface:

* :class:`~repro.wire.mpi.MpiWire` — MPICH-like interpreted pack/unpack
  into a canonical packed format (strict a priori agreement).
* :class:`~repro.wire.xml.XmlWire` — ASCII text with per-element tags,
  parsed by an Expat-style SAX parser.
* :class:`~repro.wire.iiop.IiopWire` — CORBA GIOP/CDR, reader-makes-right
  byte order but packed/aligned wire layout.
* :class:`~repro.wire.xdr.XdrWire` — Sun RPC style XDR streams.

PBIO itself lives in :mod:`repro.core` and exposes the same interface via
:class:`repro.core.PbioWire`.
"""

from .common import BoundFormat, WireFormatError, WireSystem, check_same_schema
from .xdr import BoundXdr, XdrDecoder, XdrEncoder, XdrWire, xdr_item_size
from .mpi import MpiWire
from .xml import XmlWire
from .iiop import IiopWire

__all__ = [
    "WireSystem",
    "BoundFormat",
    "WireFormatError",
    "check_same_schema",
    "XdrWire",
    "BoundXdr",
    "XdrEncoder",
    "XdrDecoder",
    "xdr_item_size",
    "MpiWire",
    "XmlWire",
    "IiopWire",
]
