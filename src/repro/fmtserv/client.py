"""Format-service client: publish, resolve, warm-start — never required.

The service wraps the resolution ladder every integration point uses:

1. local :class:`FormatCache` (memory, then the persisted disk layer),
2. the format servers — an *ordered replica list*, each behind its own
   :class:`~repro.net.health.CircuitBreaker` (the open/half-open/closed
   generalisation of the original flat server-down holdoff), tried in
   order under a :class:`~repro.net.faults.RetryPolicy`; a replica that
   fails (:class:`~repro.net.transport.PeerUnresponsive`, timeout, dead
   link) opens its breaker and the call fails over to the next,
3. nothing — the caller falls back to inline announcements.

Step 3 is load-bearing: the servers improve steady-state wire bytes and
cold-start latency but are *never* a hard dependency.  Every failure in
steps 1–2 — all replicas unreachable, faulted links, rejected
registration — degrades to exactly the pre-service behaviour.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.abi import MachineDescription
from repro.abi.machines import X86_64
from repro.core.errors import PbioError
from repro.core.formats import IOFormat
from repro.core.registry import fresh_context_id
from repro.core.rpc import RpcClient, RpcError
from repro.core.runtime import Metrics
from repro.core.safety import DEFAULT_LIMITS, DecodeLimits
from repro.net.faults import RetryPolicy
from repro.net.health import CircuitBreaker
from repro.net.transport import Transport, TransportError

from .cache import FormatCache
from .protocol import FMTSERV_INTERFACE, FMTSERV_OBJECT, STATUS_OK


class _ReplicaSlot:
    """One server in the ordered failover list: its dialer, its live
    transport (if any), and its circuit breaker."""

    __slots__ = ("connect", "transport", "breaker")

    def __init__(self, connect, breaker: CircuitBreaker):
        self.connect = connect
        # Anything with a send() is used as the connection directly (duck
        # typing matches the rest of the net layer); otherwise `connect`
        # is a dialer invoked lazily and after failures.
        self.transport: Transport | None = (
            connect if hasattr(connect, "send") else None
        )
        self.breaker = breaker

    def transport_for_call(self) -> Transport:
        if self.transport is None:
            self.transport = self.connect()
        return self.transport

    def drop_transport(self) -> None:
        """Close a (possibly wedged) dialled connection; the next attempt
        after the holdoff re-dials from scratch."""
        if self.transport is not None and callable(self.connect):
            try:
                self.transport.close()
            except Exception:
                pass
            self.transport = None


class FormatService:
    """One process's handle on the format service.

    ``connect`` is a :class:`~repro.net.transport.Transport`, a
    zero-argument callable producing one (re-dialled after failures), an
    ordered *list* of either (replicas, tried first-to-last), or
    ``None`` for *offline mode*: cache-only, every server step skipped.
    Offline mode is what an unconfigured system gets — it makes the
    service safe to thread through constructors unconditionally.

    ``server_retry_s`` seeds each replica's circuit breaker: after a
    transport failure or timeout that replica is not contacted again
    until the holdoff passes (doubling per consecutive failure), and
    calls fail over to the next replica in order.  Only when every
    breaker is open do callers fall straight through to inline fallback.
    ``clock``/``sleep`` are injectable for deterministic fault sweeps.
    """

    def __init__(
        self,
        connect: Transport | Callable[[], Transport] | None = None,
        *,
        cache: FormatCache | None = None,
        retry: RetryPolicy | None = None,
        deadline_s: float = 2.0,
        server_retry_s: float = 5.0,
        machine: MachineDescription = X86_64,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
        metrics: Metrics | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        client_id: int | None = None,
    ):
        self._connect = connect
        self.cache = cache if cache is not None else FormatCache(limits=limits)
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.1)
        )
        self.deadline_s = deadline_s
        self.server_retry_s = server_retry_s
        self.limits = limits
        self.metrics = metrics if metrics is not None else Metrics()
        self._clock = clock
        self._sleep = sleep
        self.client_id = client_id if client_id is not None else fresh_context_id()
        self._rpc = RpcClient(machine, FMTSERV_INTERFACE, limits=limits)
        if connect is None:
            targets: list = []
        elif isinstance(connect, (list, tuple)):
            targets = list(connect)
        else:
            targets = [connect]
        self._slots = [
            _ReplicaSlot(
                target,
                CircuitBreaker(server_retry_s, clock=clock),
            )
            for target in targets
        ]

    # -- server plumbing -----------------------------------------------------

    @property
    def online(self) -> bool:
        """Whether a server call would be attempted right now (some
        replica's breaker is not open)."""
        return any(slot.breaker.state != "open" for slot in self._slots)

    @property
    def replica_states(self) -> list[str]:
        """Breaker state per configured replica, in failover order."""
        return [slot.breaker.state for slot in self._slots]

    def _invoke_slot(self, slot: _ReplicaSlot, operation: str, request: dict) -> dict:
        return self._rpc.invoke(
            slot.transport_for_call(),
            FMTSERV_OBJECT,
            operation,
            request,
            retry=self.retry,
            deadline_s=self.deadline_s,
            sleep=self._sleep,
            clock=self._clock,
        )

    def _call(self, operation: str, request: dict) -> dict | None:
        """One RPC, walking the replica list; ``None`` if all are down.

        Replicas are tried in order, skipping open breakers.  A failure
        (dead link, :class:`~repro.net.transport.PeerUnresponsive`,
        retries exhausted, deadline blown) opens that replica's breaker
        and the call *fails over* to the next; a success closes the
        breaker.  Only when every replica has been skipped or failed does
        the caller see ``None`` — the inline-fallback signal.
        """
        attempted = 0
        for index, slot in enumerate(self._slots):
            if not slot.breaker.allow():
                continue
            attempted += 1
            try:
                reply = self._invoke_slot(slot, operation, request)
            except (TransportError, RpcError):
                # Link dead, retries exhausted, or deadline blown: open
                # the breaker and move down the list.
                slot.breaker.record_failure()
                slot.drop_transport()
                self.metrics.inc("fmtserv.replica_failures")
                continue
            except PbioError:
                # The replica (or an interposed fault) spoke garbage.
                # Treat like an outage: fail over rather than propagate —
                # the format service must never take the data plane down.
                self.metrics.inc("fmtserv.protocol_errors")
                slot.breaker.record_failure()
                slot.drop_transport()
                continue
            slot.breaker.record_success()
            if index > 0:
                self.metrics.inc("fmtserv.failovers")
            return reply
        if attempted:
            # At least one replica was tried and all tried replicas
            # failed.  Holdoff passes (every breaker open) stay silent,
            # matching the original single-server behaviour.
            self.metrics.inc("fmtserv.server_unreachable")
        return None

    # -- the client API ------------------------------------------------------

    def publish(self, fmt: IOFormat) -> int | None:
        """Register ``fmt`` with the server; the token, or ``None``.

        ``None`` means "announce inline": offline, unreachable, or the
        server rejected the registration (invalid/quota).  The result is
        cached either way, so a writer asks the network at most once per
        format per holdoff window.
        """
        cached = self.cache.token_for(fmt.fingerprint)
        if cached is not None:
            return cached
        if self.cache.is_negative(fmt.fingerprint) and not self.online:
            return None
        meta = fmt.to_meta_bytes()
        reply = self._call(
            "register",
            {
                "client_id": self.client_id,
                "fingerprint": fmt.fingerprint.hex(),
                "meta": meta.hex(),
            },
        )
        if reply is None:
            return None
        if reply["status"] != STATUS_OK:
            self.metrics.inc("fmtserv.server_rejections")
            self.cache.note_miss(fmt.fingerprint)
            return None
        token = reply["token"]
        self.cache.put(meta, token=token)
        self.metrics.inc("fmtserv.published")
        return token

    def resolve(self, fingerprint: bytes) -> IOFormat | None:
        """Resolve a fingerprint through the cache ladder.

        This is the resolver signature the decode pipeline calls when a
        token announcement refers to a format the receiver has never
        seen.  ``None`` tells the caller to use its next recovery step
        (META_REQUEST back-channel, or surface
        :class:`~repro.core.errors.TokenResolutionError`).
        """
        fingerprint = bytes(fingerprint)
        fmt = self.cache.format_for(fingerprint)
        if fmt is not None:
            self.metrics.inc("fmtserv.hits")
            return fmt
        if self.cache.is_negative(fingerprint):
            self.metrics.inc("fmtserv.negative_hits")
            return None
        reply = self._call("lookup", {"fingerprint": fingerprint.hex(), "token": 0})
        if reply is None:
            return None
        if reply["status"] != STATUS_OK or not reply["meta"]:
            self.cache.note_miss(fingerprint)
            self.metrics.inc("fmtserv.misses")
            return None
        try:
            meta = bytes.fromhex(reply["meta"])
            entry = self.cache.put(meta, token=reply["token"] or None)
        except (ValueError, PbioError):
            # The server returned bytes that don't validate: treat as a
            # miss, not an outage (the link works, the answer is bad).
            self.metrics.inc("fmtserv.protocol_errors")
            self.cache.note_miss(fingerprint)
            return None
        if entry.fingerprint != fingerprint:
            self.metrics.inc("fmtserv.protocol_errors")
            self.cache.note_miss(fingerprint)
            return None
        self.metrics.inc("fmtserv.misses_filled")
        return self.cache.format_for(fingerprint)

    def token_for(self, fingerprint: bytes) -> int | None:
        return self.cache.token_for(bytes(fingerprint))

    def note_inline_fallback(self) -> None:
        """Count one announcement that went inline instead of by token."""
        self.metrics.inc("fmtserv.inline_fallbacks")

    # -- warm start ----------------------------------------------------------

    def warm_start(self, ctx) -> int:
        """Prime ``ctx``'s converter cache from the persisted formats.

        For every cached format whose record name matches one of the
        context's expected formats, the full decode plan (matching +
        converter build) runs now, against the disk population — so the
        first *real* message of a known format decodes on a warm cache
        even in a freshly restarted process.  Returns the number of
        converters primed.
        """
        expected = getattr(ctx, "_expected", {})
        primed = 0
        for fmt in self.cache.formats():
            native = expected.get(fmt.name)
            if native is None:
                continue
            try:
                ctx.pipeline.entry_for(fmt, native)
            except PbioError:
                continue  # unmatchable pair: a real message would fail too
            primed += 1
        if primed:
            self.metrics.inc("fmtserv.warm_started", primed)
        return primed

    def pull_all(self) -> int:
        """Copy the server's whole population into the local cache
        (the ``pbio-fmtserv prime`` operation).  Returns entries added."""
        reply = self._call("list", {"max_entries": 0})
        if reply is None:
            return 0
        added = 0
        for row in reply["listing"].splitlines():
            fp_hex = row.split(" ", 1)[0]
            try:
                fingerprint = bytes.fromhex(fp_hex)
            except ValueError:
                continue
            if self.cache.get(fingerprint) is not None:
                continue
            if self.resolve(fingerprint) is not None:
                added += 1
        return added

    def close(self) -> None:
        for slot in self._slots:
            slot.drop_transport()
        self.cache.close()
