"""Format service: fingerprint-keyed format distribution.

The full PBIO/FFS lineage lifts format meta-information out of the data
path entirely: a *format server* stores each format description once,
keyed by its SHA-1 fingerprint, and issues a compact global token;
peers then announce ``(fingerprint, token)`` — 28 bytes — instead of
re-transmitting full meta on every connection.  With millions of
short-lived connections the one-time costs (meta bytes on the wire,
cold converter caches) become one-time per *cluster*, not per
connection.

Three pieces:

* :class:`FormatServer` — the daemon.  Self-hosting: its request/reply
  records are themselves PBIO formats served over the existing RPC
  stack, so the control plane exercises the same wire format it
  distributes (bootstrap uses inline announcements).
* :class:`FormatCache` — the client-side store: in-memory plus a
  crash-safe on-disk layer (the v2 file framing), negative caching and
  TTL, so a restarted process resolves fingerprints without touching
  the network.
* :class:`FormatService` — the client: publishes local formats to the
  server (returning tokens), resolves fingerprints through the cache
  ladder (memory → disk → server), degrades gracefully to inline
  announcements when the server is unreachable, and warm-starts the
  shared :class:`~repro.core.runtime.ConverterCache` from persisted
  formats.

The service is never a hard dependency: every integration point
(``PbioConnection``, ``EventChannel``, ``Relay``, RPC) falls back to
today's inline announcements when the server is down, faulted, or
simply not configured.  See docs/wire-format.md §7.
"""

from .cache import CachedFormat, FormatCache
from .client import FormatService
from .protocol import (
    FMTSERV_INTERFACE,
    FMTSERV_OBJECT,
    STATUS_INVALID,
    STATUS_MISS,
    STATUS_OK,
    STATUS_QUOTA,
)
from .server import FormatServer

__all__ = [
    "CachedFormat",
    "FormatCache",
    "FormatServer",
    "FormatService",
    "FMTSERV_INTERFACE",
    "FMTSERV_OBJECT",
    "STATUS_OK",
    "STATUS_MISS",
    "STATUS_INVALID",
    "STATUS_QUOTA",
]
