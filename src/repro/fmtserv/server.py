"""The format server: fingerprint-keyed meta store, token mint.

One server per cluster replaces per-connection meta exchange with a
single registration: a writer registers each format once (by meta
bytes), receives a compact global token, and thereafter announces only
``(fingerprint, token)`` to every peer.  Receivers that miss resolve
the fingerprint here — or, with a primed on-disk cache, not at all.

Ingress is hostile-input territory: every register goes through
:meth:`IOFormat.from_meta_bytes` under this server's
:class:`~repro.core.safety.DecodeLimits`, the claimed fingerprint must
match the one recomputed from the meta (content addressing means a
client cannot bind someone else's fingerprint to different meta), and a
per-client quota caps how many distinct formats any one ``client_id``
may register — the same ``max_formats_per_peer`` discipline the decode
path applies to announcements.
"""

from __future__ import annotations

from repro.abi import MachineDescription
from repro.abi.machines import X86_64
from repro.core.errors import FormatError, PbioError
from repro.core.formats import IOFormat
from repro.core.rpc import RpcServer
from repro.core.runtime import Metrics
from repro.core.safety import DEFAULT_LIMITS, DecodeLimits, LimitError
from repro.net.transport import Transport, TransportError, TransportTimeout

from .cache import FormatCache
from .protocol import (
    FMTSERV_INTERFACE,
    FMTSERV_OBJECT,
    STATUS_INVALID,
    STATUS_MISS,
    STATUS_OK,
    STATUS_QUOTA,
)

#: Consecutive protocol errors on one connection before the server
#: stops humouring it (a peer speaking garbage forever is an attack,
#: not a client).
_MAX_CONSECUTIVE_PROTOCOL_ERRORS = 64


class FormatServer:
    """A format server servicing register/lookup/list/purge calls.

    ``store`` is a :class:`FormatCache`; give it a path and the server's
    population (formats *and* token bindings) survives restarts — tokens
    are re-minted above the highest persisted one, so bindings cached by
    clients stay valid.  In-process use calls :meth:`serve_one` /
    :meth:`serve` directly on a transport; the ``pbio-fmtserv`` tool
    wraps :meth:`serve` around accepted sockets.
    """

    def __init__(
        self,
        *,
        machine: MachineDescription = X86_64,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
        store: FormatCache | None = None,
        metrics: Metrics | None = None,
        max_formats_per_client: int | None = None,
    ):
        self.limits = limits
        self.metrics = metrics if metrics is not None else Metrics()
        self.store = store if store is not None else FormatCache(limits=limits)
        if max_formats_per_client is None and limits is not None:
            max_formats_per_client = limits.max_formats_per_peer
        self.max_formats_per_client = max_formats_per_client
        self._rpc = RpcServer(machine, FMTSERV_INTERFACE, limits=limits)
        self._rpc.register(
            FMTSERV_OBJECT,
            {
                "register": self._register,
                "lookup": self._lookup,
                "list": self._list,
                "purge": self._purge,
            },
        )
        self._tokens: dict[int, bytes] = {}  # token -> fingerprint
        self._client_formats: dict[int, set[bytes]] = {}
        next_token = 1
        for entry in self.store.entries():
            if entry.token is not None:
                self._tokens[entry.token] = entry.fingerprint
                next_token = max(next_token, entry.token + 1)
        self._next_token = next_token

    # -- servants ------------------------------------------------------------

    def _register(self, request: dict) -> dict:
        client_id = request["client_id"]
        try:
            fingerprint = bytes.fromhex(request["fingerprint"] or "")
            meta = bytes.fromhex(request["meta"] or "")
        except ValueError:
            self.metrics.inc("fmtserv.rejected")
            return {"status": STATUS_INVALID, "token": 0}
        known = self.store.get(fingerprint)
        if known is not None and known.token is not None:
            # Idempotent re-registration: same content, same token.
            self.metrics.inc("fmtserv.reregistered")
            return {"status": STATUS_OK, "token": known.token}
        try:
            if self.limits is not None:
                self.limits.check_meta_size(len(meta))
            fmt = IOFormat.from_meta_bytes(meta, limits=self.limits)
        except (FormatError, LimitError):
            self.metrics.inc("fmtserv.rejected")
            return {"status": STATUS_INVALID, "token": 0}
        if fmt.fingerprint != fingerprint:
            self.metrics.inc("fmtserv.rejected")
            return {"status": STATUS_INVALID, "token": 0}
        owned = self._client_formats.setdefault(client_id, set())
        if (
            self.max_formats_per_client is not None
            and fingerprint not in owned
            and len(owned) >= self.max_formats_per_client
        ):
            self.metrics.inc("fmtserv.quota_rejections")
            return {"status": STATUS_QUOTA, "token": 0}
        owned.add(fingerprint)
        token = self._next_token
        self._next_token += 1
        self._tokens[token] = fingerprint
        self.store.put(meta, token=token)
        self.metrics.inc("fmtserv.registered")
        return {"status": STATUS_OK, "token": token}

    def _lookup(self, request: dict) -> dict:
        self.metrics.inc("fmtserv.lookups")
        try:
            fingerprint = bytes.fromhex(request["fingerprint"] or "")
        except ValueError:
            self.metrics.inc("fmtserv.rejected")
            return {"status": STATUS_INVALID, "token": 0, "meta": ""}
        if not fingerprint:
            fingerprint = self._tokens.get(request["token"], b"")
        entry = self.store.get(fingerprint) if fingerprint else None
        if entry is None:
            self.metrics.inc("fmtserv.lookup_misses")
            return {"status": STATUS_MISS, "token": 0, "meta": ""}
        self.metrics.inc("fmtserv.lookup_hits")
        return {
            "status": STATUS_OK,
            "token": entry.token or 0,
            "meta": entry.meta.hex(),
        }

    def _list(self, request: dict) -> dict:
        rows = []
        for entry in self.store.entries():
            name, size = "?", 0
            fmt = self.store.format_for(entry.fingerprint)
            if fmt is not None:
                name, size = fmt.name, fmt.record_size
            rows.append(f"{entry.fingerprint.hex()} {entry.token or 0} {name} {size}")
        limit = request["max_entries"]
        if limit > 0:
            rows = rows[:limit]
        return {"count": len(rows), "listing": "\n".join(rows)}

    def _purge(self, request: dict) -> dict:
        try:
            fingerprint = bytes.fromhex(request["fingerprint"] or "")
        except ValueError:
            return {"removed": 0}
        if fingerprint:
            removed = self.store.purge(fingerprint)
            self._tokens = {t: fp for t, fp in self._tokens.items() if fp != fingerprint}
        else:
            removed = self.store.purge()
            self._tokens.clear()
            self._client_formats.clear()
        self.metrics.inc("fmtserv.purged", removed)
        return {"removed": removed}

    # -- direct (in-process) access ------------------------------------------

    def token_for(self, fingerprint: bytes) -> int | None:
        return self.store.token_for(fingerprint)

    def fingerprint_for(self, token: int) -> bytes | None:
        return self._tokens.get(token)

    def __len__(self) -> int:
        return len(self.store)

    # -- serving -------------------------------------------------------------

    def serve_one(self, transport: Transport) -> None:
        """Handle exactly one RPC call on ``transport``."""
        self._rpc.serve_one(transport)

    def stop(self) -> None:
        """Ask every :meth:`serve` loop to exit (sticky; thread-safe).

        Loops blocked in ``recv`` notice once their transport next
        delivers a frame, errors, or — with ``poll_s`` — times out.
        """
        self._rpc.stop()

    def restart(self) -> None:
        """Clear a previous :meth:`stop` so new serve loops run."""
        self._rpc.restart()

    @property
    def stopped(self) -> bool:
        return self._rpc.stopped

    def drain_and_stop(self, deadline_s: float = 5.0) -> None:
        """Goodbye every known client link, then :meth:`stop`.

        Clients holding a :class:`~repro.fmtserv.client.FormatService`
        see the goodbye (or the subsequent closed link) as a replica
        failure and move down their server list — exactly the failover
        the drain wants to trigger promptly.
        """
        self._rpc.drain_and_stop(deadline_s)

    def serve(self, transport: Transport, *, poll_s: float | None = None) -> None:
        """Serve calls on one connection until the peer goes away or
        :meth:`stop` is called.

        Link failure ends the connection quietly (clients fall back to
        inline announcements; a format server outage is never fatal to
        the data plane).  Protocol damage is counted and survived, up to
        a cap of consecutive errors, after which the connection is
        dropped rather than parsed forever.  ``poll_s`` sets the
        transport timeout so a quiet connection re-checks the stop flag
        at least that often.
        """
        if poll_s is not None:
            transport.set_timeout(poll_s)
        consecutive_errors = 0
        while not self._rpc.stopped:
            try:
                self._rpc.serve_one(transport)
                consecutive_errors = 0
            except TransportTimeout:
                continue  # poll tick: re-check the stop flag
            except TransportError:  # includes PeerClosedError
                return
            except PbioError:
                self.metrics.inc("fmtserv.protocol_errors")
                consecutive_errors += 1
                if consecutive_errors >= _MAX_CONSECUTIVE_PROTOCOL_ERRORS:
                    self.metrics.inc("fmtserv.connections_dropped")
                    return
