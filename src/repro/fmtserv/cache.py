"""Client-side format cache: memory, disk, and negative entries.

Formats are content-addressed — the SHA-1 fingerprint *is* the
identity — so a cached entry can never go stale in the usual sense; TTL
exists to bound how long a *token* binding is trusted across server
restarts, and negative entries keep a dead server from being asked the
same unanswerable question on every message.

The on-disk layer is an append-only log of v2 frames (the crash-safe
framing from :mod:`repro.core.files`): ``u32 len | payload | u32 crc |
u32 len-echo``, one ``write`` per entry.  A process killed mid-append
tears at most the entry in flight; the loader stops cleanly at a torn
tail and truncates it, so the file is self-healing across restarts.
Entry payloads are versioned records::

    u8 kind (1 = entry) | 20s fingerprint | u64 token (0 = none)
    | f64 stored_at (epoch seconds) | u32 meta_len | meta bytes

Unknown kinds are skipped (forward compatibility).  One process may
write a given cache file at a time; concurrent readers are safe because
entries are immutable once their frame is complete.
"""

from __future__ import annotations

import os
import struct
import time
from dataclasses import dataclass
from typing import BinaryIO, Callable, Iterator

from repro.core.errors import FormatError, MessageError
from repro.core.framing import iter_frames, pack_frame
from repro.core.formats import IOFormat
from repro.core.runtime import Metrics
from repro.core.safety import DEFAULT_LIMITS, DecodeLimits

CACHE_MAGIC = b"PBIOFMTC"
CACHE_VERSION = 1
_CACHE_HEADER = struct.Struct(">8sHxx")  # magic, version, pad
_ENTRY_FIXED = struct.Struct(">B20sQdI")  # kind, fingerprint, token, stored_at, meta_len
_KIND_ENTRY = 1


@dataclass(frozen=True)
class CachedFormat:
    """One persisted format: its meta bytes, token and storage time."""

    fingerprint: bytes
    meta: bytes
    token: int | None
    stored_at: float


class FormatCache:
    """Fingerprint-keyed format store with optional disk persistence.

    ``path=None`` gives a purely in-memory cache (the format server's
    default store).  With a path, every :meth:`put` appends one
    crash-safe frame and restarted processes reload the full population
    at construction — the "resolve without touching the network" half of
    the format service.

    ``ttl_s`` bounds trust in a positive entry's *token* (``None`` =
    forever; the meta itself is content-addressed and never expires as a
    format description).  ``negative_ttl_s`` bounds how long a looked-up
    -and-missed fingerprint is answered ``None`` without consulting the
    server again.  ``clock`` must return epoch seconds (injectable for
    deterministic tests).
    """

    def __init__(
        self,
        path: str | None = None,
        *,
        ttl_s: float | None = None,
        negative_ttl_s: float = 30.0,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
        metrics: Metrics | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = path
        self.ttl_s = ttl_s
        self.negative_ttl_s = negative_ttl_s
        self.limits = limits
        self.metrics = metrics if metrics is not None else Metrics()
        self._clock = clock
        self._entries: dict[bytes, CachedFormat] = {}
        self._formats: dict[bytes, IOFormat] = {}  # lazy parse memo
        self._negative: dict[bytes, float] = {}  # fingerprint -> expiry
        self._stream: BinaryIO | None = None
        if path is not None:
            self._open(path)

    # -- disk layer ----------------------------------------------------------

    def _open(self, path: str) -> None:
        if not os.path.exists(path):
            stream = open(path, "w+b")
            stream.write(_CACHE_HEADER.pack(CACHE_MAGIC, CACHE_VERSION))
            stream.flush()
            self._stream = stream
            return
        stream = open(path, "r+b")
        try:
            header = stream.read(_CACHE_HEADER.size)
            if len(header) != _CACHE_HEADER.size:
                raise MessageError("not a format cache file: truncated header")
            magic, version = _CACHE_HEADER.unpack(header)
            if magic != CACHE_MAGIC:
                raise MessageError(f"not a format cache file: bad magic {magic!r}")
            if version != CACHE_VERSION:
                raise MessageError(f"unsupported format cache version {version}")
            pos = stream.tell()

            def damaged(what: str) -> None:
                self.metrics.inc(
                    "fmtserv.cache_torn" if what == "torn" else "fmtserv.cache_corrupt"
                )

            max_size = self.limits.max_meta_size + 256 if self.limits is not None else None
            for payload in iter_frames(stream, max_size=max_size, on_damage=damaged):
                self._load_entry(payload)
                pos = stream.tell()
            # Heal: drop any torn tail so future appends start at a clean
            # frame boundary (damage before `pos` was already skipped).
            stream.truncate(pos)
            stream.seek(pos)
        except Exception:
            stream.close()
            raise
        self._stream = stream

    def _load_entry(self, payload: bytes) -> None:
        if len(payload) < _ENTRY_FIXED.size:
            self.metrics.inc("fmtserv.cache_corrupt")
            return
        kind, fingerprint, token, stored_at, meta_len = _ENTRY_FIXED.unpack_from(payload, 0)
        if kind != _KIND_ENTRY:
            return  # unknown record kind: written by a newer version, skip
        meta = payload[_ENTRY_FIXED.size :]
        if len(meta) != meta_len:
            self.metrics.inc("fmtserv.cache_corrupt")
            return
        # Append-wins: a later frame for the same fingerprint (e.g. a
        # token refresh) overrides the earlier one.
        self._entries[fingerprint] = CachedFormat(
            fingerprint, meta, token or None, stored_at
        )
        self.metrics.inc("fmtserv.cache_loaded")

    def _persist(self, entry: CachedFormat) -> None:
        if self._stream is None:
            return
        payload = (
            _ENTRY_FIXED.pack(
                _KIND_ENTRY,
                entry.fingerprint,
                entry.token or 0,
                entry.stored_at,
                len(entry.meta),
            )
            + entry.meta
        )
        # Single write + flush: the torn-tail guarantee of the v2 framing.
        self._stream.write(pack_frame(payload))
        self._stream.flush()
        self.metrics.inc("fmtserv.cache_persisted")

    # -- positive entries ----------------------------------------------------

    def put(self, meta: bytes, *, token: int | None = None) -> CachedFormat:
        """Store one format description (validated before it is trusted).

        The meta block must parse under this cache's limits; its
        self-computed fingerprint is the key, so a caller can never
        poison the cache with a mismatched (fingerprint, meta) pair.
        Idempotent: re-putting an identical (meta, token) writes nothing.
        """
        meta = bytes(meta)
        fmt = IOFormat.from_meta_bytes(meta, limits=self.limits)
        fingerprint = fmt.fingerprint
        known = self._entries.get(fingerprint)
        if known is not None and (token is None or known.token == token):
            return known
        entry = CachedFormat(
            fingerprint, meta, token if token is not None else
            (known.token if known is not None else None), self._clock()
        )
        self._entries[fingerprint] = entry
        self._formats[fingerprint] = fmt
        self._negative.pop(fingerprint, None)
        self._persist(entry)
        return entry

    def get(self, fingerprint: bytes) -> CachedFormat | None:
        """The cached entry for ``fingerprint``, honoring ``ttl_s``."""
        entry = self._entries.get(bytes(fingerprint))
        if entry is None:
            return None
        if self.ttl_s is not None and self._clock() - entry.stored_at > self.ttl_s:
            self.metrics.inc("fmtserv.cache_expired")
            return None
        return entry

    def format_for(self, fingerprint: bytes) -> IOFormat | None:
        """The parsed :class:`IOFormat` for a cached fingerprint."""
        fingerprint = bytes(fingerprint)
        entry = self.get(fingerprint)
        if entry is None:
            return None
        fmt = self._formats.get(fingerprint)
        if fmt is None:
            try:
                fmt = IOFormat.from_meta_bytes(entry.meta, limits=self.limits)
            except FormatError:
                # A damaged persisted entry that still passed CRC (disk
                # bit rot inside an intact-looking frame): drop it.
                self.metrics.inc("fmtserv.cache_corrupt")
                self._entries.pop(fingerprint, None)
                return None
            if fmt.fingerprint != fingerprint:
                self.metrics.inc("fmtserv.cache_corrupt")
                self._entries.pop(fingerprint, None)
                return None
            self._formats[fingerprint] = fmt
        return fmt

    def token_for(self, fingerprint: bytes) -> int | None:
        entry = self.get(fingerprint)
        return entry.token if entry is not None else None

    def entries(self) -> list[CachedFormat]:
        """All live entries, insertion-ordered (the ``pbio-fmtserv ls`` view)."""
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: bytes) -> bool:
        return self.get(bytes(fingerprint)) is not None

    # -- negative entries ----------------------------------------------------

    def note_miss(self, fingerprint: bytes) -> None:
        """Record that the server does not know ``fingerprint`` (yet)."""
        self._negative[bytes(fingerprint)] = self._clock() + self.negative_ttl_s

    def is_negative(self, fingerprint: bytes) -> bool:
        expiry = self._negative.get(bytes(fingerprint))
        if expiry is None:
            return False
        if self._clock() >= expiry:
            del self._negative[bytes(fingerprint)]
            return False
        return True

    def clear_negative(self) -> None:
        self._negative.clear()

    # -- maintenance ---------------------------------------------------------

    def purge(self, fingerprint: bytes | None = None) -> int:
        """Drop one entry (or all), compacting the on-disk file.

        Compaction is atomic: the survivors are rewritten to a temporary
        file which then replaces the original, so a crash mid-purge
        leaves either the old or the new file, never a hybrid.
        """
        if fingerprint is None:
            removed = len(self._entries)
            self._entries.clear()
            self._formats.clear()
        else:
            fingerprint = bytes(fingerprint)
            removed = 1 if self._entries.pop(fingerprint, None) is not None else 0
            self._formats.pop(fingerprint, None)
        self._negative.clear()
        if self.path is not None and removed:
            self._rewrite()
        return removed

    def _rewrite(self) -> None:
        assert self.path is not None
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "wb") as tmp:
            tmp.write(_CACHE_HEADER.pack(CACHE_MAGIC, CACHE_VERSION))
            for entry in self._entries.values():
                payload = (
                    _ENTRY_FIXED.pack(
                        _KIND_ENTRY,
                        entry.fingerprint,
                        entry.token or 0,
                        entry.stored_at,
                        len(entry.meta),
                    )
                    + entry.meta
                )
                tmp.write(pack_frame(payload))
            tmp.flush()
            os.fsync(tmp.fileno())
        if self._stream is not None:
            self._stream.close()
        os.replace(tmp_path, self.path)
        self._stream = open(self.path, "r+b")
        self._stream.seek(0, os.SEEK_END)

    def formats(self) -> Iterator[IOFormat]:
        """Parse and yield every live cached format (warm-start sweep)."""
        for fingerprint in list(self._entries):
            fmt = self.format_for(fingerprint)
            if fmt is not None:
                yield fmt

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "FormatCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
