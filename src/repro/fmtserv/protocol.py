"""Wire records of the format-service RPC interface.

Self-hosting is the point: the format server's own request/reply
records are PBIO formats, marshalled by the exact NDR machinery whose
meta-information the server distributes.  The bootstrap is an inline
announcement — the first call on a fresh connection ships these records'
meta the old way — after which even the control plane could run on
tokens.

Binary values (fingerprints, meta blocks) ride in ``string`` fields as
lowercase hex: PBIO strings are NUL-terminated, so raw bytes with
embedded NULs cannot travel in them, and a fixed ``char`` array cannot
hold the variable-length meta.  Hex doubles the control-plane bytes but
the control plane is off the data path by construction.
"""

from __future__ import annotations

from repro.abi import RecordSchema
from repro.core.rpc import RpcInterface, RpcOperation

#: Object key the server registers its servants under.
FMTSERV_OBJECT = b"fmtserv"

# Reply status codes (shared by register and lookup).
STATUS_OK = 0  #: request satisfied
STATUS_MISS = 1  #: lookup: no such fingerprint/token registered
STATUS_INVALID = 2  #: register: meta failed validation (bad hex, bad parse, fingerprint mismatch)
STATUS_QUOTA = 3  #: register: client exceeded its per-client format quota

REGISTER_REQUEST = RecordSchema.from_pairs(
    "fmtserv_register_req",
    [
        ("client_id", "unsigned int"),
        ("fingerprint", "string"),  # 40 hex chars
        ("meta", "string"),  # full meta block, hex
    ],
)
REGISTER_REPLY = RecordSchema.from_pairs(
    "fmtserv_register_rep",
    [
        ("status", "int"),
        ("token", "unsigned long long"),
    ],
)

LOOKUP_REQUEST = RecordSchema.from_pairs(
    "fmtserv_lookup_req",
    [
        ("fingerprint", "string"),  # hex, empty when looking up by token
        ("token", "unsigned long long"),  # 0 when looking up by fingerprint
    ],
)
LOOKUP_REPLY = RecordSchema.from_pairs(
    "fmtserv_lookup_rep",
    [
        ("status", "int"),
        ("token", "unsigned long long"),
        ("meta", "string"),  # hex, empty on miss
    ],
)

LIST_REQUEST = RecordSchema.from_pairs(
    "fmtserv_list_req",
    [("max_entries", "int")],  # <= 0 means "all"
)
LIST_REPLY = RecordSchema.from_pairs(
    "fmtserv_list_rep",
    [
        ("count", "int"),
        # newline-separated "fingerprint_hex token name record_size" rows
        ("listing", "string"),
    ],
)

PURGE_REQUEST = RecordSchema.from_pairs(
    "fmtserv_purge_req",
    [("fingerprint", "string")],  # hex; empty purges everything
)
PURGE_REPLY = RecordSchema.from_pairs(
    "fmtserv_purge_rep",
    [("removed", "int")],
)

FMTSERV_INTERFACE = RpcInterface(
    "FormatService",
    [
        RpcOperation("register", REGISTER_REQUEST, REGISTER_REPLY),
        RpcOperation("lookup", LOOKUP_REQUEST, LOOKUP_REPLY),
        RpcOperation("list", LIST_REQUEST, LIST_REPLY),
        RpcOperation("purge", PURGE_REQUEST, PURGE_REPLY),
    ],
)
