"""repro — reproduction of *Efficient Wire Formats for High Performance
Computing* (Bustamante, Eisenhauer, Schwan, Widener; SC 2000).

The package implements PBIO (Portable Binary I/O) and its Natural Data
Representation wire format, the baselines the paper compares against
(MPI-style pack/unpack, XML, CORBA IIOP/CDR, XDR), and the substrates
needed to exercise them: a machine/ABI simulator, a Vcode-like dynamic
code generation layer, and a network model.

Quickstart::

    from repro import abi, core
    from repro.workloads import mechanical

    schema = mechanical.schema_for_size("1kb")
    sender = core.IOContext(machine=abi.X86)
    receiver = core.IOContext(machine=abi.SPARC_V8)
    fmt = sender.register_format(schema)
    wire = sender.encode(fmt, {...})
    record = receiver.decode(wire)
"""

__version__ = "1.0.0"

from . import abi  # noqa: F401
from . import core  # noqa: F401
from . import net  # noqa: F401
from . import vcode  # noqa: F401
from . import wire  # noqa: F401
from . import workloads  # noqa: F401

__all__ = ["abi", "core", "net", "vcode", "wire", "workloads", "__version__"]
