"""Event channels: publish/subscribe record distribution over PBIO.

The paper's introduction motivates loosely-coupled component systems —
online visualization, remote instruments, "plug-and-play" codes joining
ongoing computations — and its conclusion claims NDR lets "receivers who
have no a priori knowledge of data formats ... easily `join' ongoing
communications".  This module provides that composition layer (the role
DataExchange/ECho played in the original system's ecosystem):

* any number of publishers (each an :class:`~repro.core.IOContext` on its
  own simulated machine) emit records into a channel;
* subscribers attach with their own machine, their own expected formats,
  and optionally a DCG-compiled filter; they may join at any time —
  the channel replays the format announcements they missed;
* a channel constructed with a shared
  :class:`~repro.core.runtime.ConverterCache` hands it to every
  subscriber, so same-machine subscribers generate each converter once
  between them (the cache key includes the machine ABI, so heterogeneous
  subscriber sets share safely);
* each subscriber decodes through its context's decode pipeline: a
  zero-copy view for homogeneous publishers, generated conversion
  otherwise; filtered messages are rejected from the 16-byte header +
  referenced fields alone, without decoding the record.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.context import FormatHandle, IOContext
from repro.core.filters import RecordFilter
from repro.core.runtime import ConverterCache, Metrics, SubscriberStats
from repro.core import encoder as enc


class Subscription:
    """One subscriber: a context, an optional filter, and a handler."""

    def __init__(
        self,
        ctx: IOContext,
        handler: Callable[[dict[str, Any]], None],
        *,
        format_name: str | None = None,
        filter_expr: str | None = None,
    ):
        if filter_expr is not None and format_name is None:
            raise ValueError("a filter requires format_name")
        self.ctx = ctx
        self.handler = handler
        self.format_name = format_name
        self.metrics = Metrics()
        self.stats = SubscriberStats(self.metrics)
        self._filter = (
            RecordFilter(ctx, format_name, filter_expr) if filter_expr else None
        )

    def _offer(self, message: bytes) -> None:
        msg_type, context_id, format_id, _ = enc.unpack_header(message)
        if msg_type == enc.MSG_FORMAT:
            self.ctx.receive(message)
            return
        if self.format_name is not None:
            fmt = self.ctx.registry.remote_format(context_id, format_id)
            if fmt.name != self.format_name:
                self.metrics.inc("wrong_type")
                return
        if self._filter is not None and not self._filter.matches(message):
            self.metrics.inc("filtered_out")
            return
        self.metrics.inc("delivered")
        self.handler(self.ctx.decode(message))


class EventChannel:
    """An in-process record distribution hub with late-join support.

    ``cache`` (optional) is handed to every subscriber context at
    subscribe time, pooling converter generation across same-machine
    subscribers; pass :func:`repro.core.runtime.shared_cache()` for the
    process-global cache or a fresh :class:`ConverterCache` scoped to
    this channel.
    """

    def __init__(self, *, cache: ConverterCache | None = None) -> None:
        self._subscribers: list[Subscription] = []
        self._announcements: list[bytes] = []  # replayed to late joiners
        self._cache = cache
        self.messages_published = 0

    @property
    def cache(self) -> ConverterCache | None:
        return self._cache

    # -- subscribing ---------------------------------------------------------

    def subscribe(
        self,
        ctx: IOContext,
        handler: Callable[[dict[str, Any]], None],
        *,
        format_name: str | None = None,
        filter_expr: str | None = None,
    ) -> Subscription:
        """Attach a subscriber; formats announced before it joined are
        replayed so it can decode the ongoing stream immediately."""
        if self._cache is not None:
            ctx.use_cache(self._cache)
        sub = Subscription(ctx, handler, format_name=format_name, filter_expr=filter_expr)
        for announcement in self._announcements:
            sub._offer(announcement)
        self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        self._subscribers.remove(sub)

    # -- publishing ------------------------------------------------------------

    def publisher(self, ctx: IOContext) -> "ChannelPublisher":
        return ChannelPublisher(self, ctx)

    def _publish_message(self, message: bytes) -> None:
        if enc.message_kind(message) == enc.MSG_FORMAT:
            self._announcements.append(message)
        else:
            self.messages_published += 1
        for sub in list(self._subscribers):
            sub._offer(message)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)


class ChannelPublisher:
    """Publishing endpoint bound to one IOContext."""

    def __init__(self, channel: EventChannel, ctx: IOContext):
        self.channel = channel
        self.ctx = ctx
        self._announced: set[int] = set()

    def publish_native(self, handle: FormatHandle, native) -> None:
        if handle.format_id not in self._announced:
            self.channel._publish_message(self.ctx.announce(handle))
            self._announced.add(handle.format_id)
        self.channel._publish_message(self.ctx.encode_native(handle, native))

    def publish(self, handle: FormatHandle, record: dict[str, Any]) -> None:
        self.publish_native(handle, handle.codec.encode(record))
