"""Event channels: publish/subscribe record distribution over PBIO.

The paper's introduction motivates loosely-coupled component systems —
online visualization, remote instruments, "plug-and-play" codes joining
ongoing computations — and its conclusion claims NDR lets "receivers who
have no a priori knowledge of data formats ... easily `join' ongoing
communications".  This module provides that composition layer (the role
DataExchange/ECho played in the original system's ecosystem):

* any number of publishers (each an :class:`~repro.core.IOContext` on its
  own simulated machine) emit records into a channel;
* subscribers attach with their own machine, their own expected formats,
  and optionally a DCG-compiled filter; they may join at any time —
  the channel replays the format announcements they missed;
* a channel constructed with a shared
  :class:`~repro.core.runtime.ConverterCache` hands it to every
  subscriber, so same-machine subscribers generate each converter once
  between them (the cache key includes the machine ABI, so heterogeneous
  subscriber sets share safely);
* each subscriber decodes through its context's decode pipeline: a
  zero-copy view for homogeneous publishers, generated conversion
  otherwise; filtered messages are rejected from the 16-byte header +
  referenced fields alone, without decoding the record;
* delivery is failure-isolated per subscriber: each subscription has an
  error policy (``"raise"``, ``"suppress"`` or ``"detach"``) governing
  what a throwing handler or an undecodable stream does — under
  ``suppress``/``detach`` one bad subscriber never breaks delivery to
  the healthy ones.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.context import FormatHandle, IOContext
from repro.core.errors import PbioError, TokenResolutionError
from repro.core.filters import RecordFilter
from repro.core.runtime import ConverterCache, Metrics, SubscriberStats
from repro.core import encoder as enc

from .transport import TransportError

#: Per-subscriber error policies: propagate (pre-existing behaviour),
#: count-and-continue, or count-and-unsubscribe.
ERROR_POLICIES = ("raise", "suppress", "detach")

#: Delivery shapes: materialized dicts (pre-existing behaviour) or
#: :class:`~repro.abi.views.RecordView` objects — zero-copy for
#: homogeneous publishers, and *leased* straight out of the receive
#: buffer on lend-mode wire ingress (:meth:`EventChannel.ingest_many`).
DELIVERY_MODES = ("dict", "view")


class Subscription:
    """One subscriber: a context, an optional filter, and a handler."""

    def __init__(
        self,
        ctx: IOContext,
        handler: Callable[[dict[str, Any]], None],
        *,
        format_name: str | None = None,
        filter_expr: str | None = None,
        on_error: str = "raise",
        deliver: str = "dict",
    ):
        if filter_expr is not None and format_name is None:
            raise ValueError("a filter requires format_name")
        if on_error not in ERROR_POLICIES:
            raise ValueError(f"on_error must be one of {ERROR_POLICIES}, not {on_error!r}")
        if deliver not in DELIVERY_MODES:
            raise ValueError(f"deliver must be one of {DELIVERY_MODES}, not {deliver!r}")
        self.ctx = ctx
        self.handler = handler
        self.format_name = format_name
        self.error_policy = on_error
        self.deliver = deliver
        self.metrics = Metrics()
        self.stats = SubscriberStats(self.metrics)
        self._filter = (
            RecordFilter(ctx, format_name, filter_expr) if filter_expr else None
        )

    def _offer(self, message: bytes) -> None:
        try:
            msg_type, context_id, format_id, _ = enc.unpack_header(message)
        except PbioError:  # short frame / bad magic: damage, not delivery
            self.metrics.inc("decode_errors")
            raise
        if msg_type == enc.MSG_DATA_SEQ:
            # A plain subscriber on a durable stream: the sequence prefix
            # is transport bookkeeping it never asked for — strip it and
            # deliver the record (durable subscribers dedup upstream of
            # this method instead).
            try:
                _seq, message = enc.seq_to_data(message)
            except PbioError:
                self.metrics.inc("decode_errors")
                raise
            msg_type = enc.MSG_DATA
        if msg_type == enc.MSG_FORMAT:
            self.ctx.receive(message)
            return
        if msg_type == enc.MSG_FORMAT_TOKEN:
            try:
                self.ctx.receive(message)
            except TokenResolutionError:
                # No service (or a cold one) on this subscriber: the
                # publisher's fallback re-announces inline channel-wide.
                self.metrics.inc("unresolved_tokens")
                raise
            return
        if msg_type in (enc.MSG_FORMAT_REQUEST, enc.MSG_PING, enc.MSG_PONG, enc.MSG_ACK):
            return  # point-to-point recovery/liveness/ack traffic; not record delivery
        if self.format_name is not None:
            try:
                fmt = self.ctx.registry.remote_format(context_id, format_id)
            except PbioError:  # announced format never arrived (lossy link)
                self.metrics.inc("decode_errors")
                raise
            if fmt.name != self.format_name:
                self.metrics.inc("wrong_type")
                return
        if self._filter is not None and not self._filter.matches(message):
            self.metrics.inc("filtered_out")
            return
        self.metrics.inc("delivered")
        try:
            if self.deliver == "view":
                decoded = self.ctx.decode_view(message)
            else:
                decoded = self.ctx.decode(message)
        except PbioError:
            self.metrics.inc("decode_errors")
            raise
        try:
            self.handler(decoded)
        except Exception:
            self.metrics.inc("handler_errors")
            raise

    def _offer_batch(self, messages: list[bytes], suppress: bool, lease=None) -> None:
        """Offer a burst of messages, batching consecutive data frames.

        Mirrors a sequential :meth:`_offer` loop message for message —
        same screening order, same counters.  With ``suppress`` each
        failure is counted and the rest of the burst still delivers;
        otherwise the first failure propagates (the caller applies the
        raise/detach policy), leaving later messages unoffered exactly
        like the scalar loop.
        """
        run: list[tuple[bytes, int, int]] = []  # (message, cid, fid)
        for message in messages:
            header = enc.try_unpack_header(message)
            if header is not None and header[0] == enc.MSG_DATA:
                run.append((message, header[1], header[2]))
                continue
            if run:
                self._flush_run(run, suppress, lease)
                run = []
            try:
                self._offer(message)  # control / malformed: scalar path
            except Exception:
                if not suppress:
                    raise
        if run:
            self._flush_run(run, suppress, lease)

    def _flush_run(
        self, run: list[tuple[bytes, int, int]], suppress: bool, lease=None
    ) -> None:
        """Screen one run of data frames, then decode it in one batch."""
        deliverable: list[bytes] = []
        for message, context_id, format_id in run:
            if self.format_name is not None:
                try:
                    fmt = self.ctx.registry.remote_format(context_id, format_id)
                except PbioError:
                    self.metrics.inc("decode_errors")
                    if suppress:
                        continue
                    raise
                if fmt.name != self.format_name:
                    self.metrics.inc("wrong_type")
                    continue
            if self._filter is not None and not self._filter.matches(message):
                self.metrics.inc("filtered_out")
                continue
            self.metrics.inc("delivered")
            deliverable.append(message)
        if not deliverable:
            return
        try:
            decoded = self.ctx.pipeline.decode_batch(
                deliverable,
                on_error="skip" if suppress else "raise",
                lend=self.deliver == "view",
                lease=lease,
            )
        except PbioError:
            self.metrics.inc("decode_errors")
            raise
        for value in decoded:
            if value is None:  # rejected under "skip": counted here too
                self.metrics.inc("decode_errors")
                continue
            try:
                self.handler(value)
            except Exception:
                self.metrics.inc("handler_errors")
                if not suppress:
                    raise


class WireTap:
    """One wire-attached remote peer of an :class:`EventChannel`.

    ``send`` is the peer's frame sink — typically
    ``AsyncSocketTransport.send``, a synchronous bounded-queue enqueue,
    so fanning a message to hundreds of taps never blocks the
    publisher.  Per-tap counters: ``forwarded``, ``send_errors``,
    ``detached``.
    """

    __slots__ = ("send", "metrics")

    def __init__(self, send: Callable[[bytes], None]):
        self.send = send
        self.metrics = Metrics()


class EventChannel:
    """An in-process record distribution hub with late-join support.

    ``cache`` (optional) is handed to every subscriber context at
    subscribe time, pooling converter generation across same-machine
    subscribers; pass :func:`repro.core.runtime.shared_cache()` for the
    process-global cache or a fresh :class:`ConverterCache` scoped to
    this channel.

    Besides in-process :class:`Subscription` handlers, remote peers can
    attach *over the wire* (:meth:`attach_wire`): every published frame
    — announcements and data alike — is forwarded to their transport,
    and frames they send in arrive through :meth:`ingest`.  A tap whose
    transport fails (including a full bounded write queue on an async
    transport: the slow-consumer signal) is detached, never retried —
    the same failure isolation subscribers get.
    """

    def __init__(
        self, *, cache: ConverterCache | None = None, format_service=None
    ) -> None:
        self._subscribers: list[Subscription] = []
        self._taps: list[WireTap] = []
        self._announcements: list[bytes] = []  # replayed to late joiners
        #: MSG_ACK sinks (durable publishers); acks are point-to-point
        #: control, so they route here instead of fanning to subscribers
        self._ack_listeners: list[Callable[[bytes], None]] = []
        self._cache = cache
        #: Channel-wide format service: attached to every publisher and
        #: subscriber context, so token announcements published here are
        #: always resolvable from the shared cache (the in-process
        #: analogue of "every peer talks to the same format server").
        self._format_service = format_service
        self.messages_published = 0
        self.metrics = Metrics()  # channel-level: channel.frames_rejected

    @property
    def cache(self) -> ConverterCache | None:
        return self._cache

    @property
    def format_service(self):
        return self._format_service

    # -- subscribing ---------------------------------------------------------

    def subscribe(
        self,
        ctx: IOContext,
        handler: Callable[[dict[str, Any]], None],
        *,
        format_name: str | None = None,
        filter_expr: str | None = None,
        on_error: str = "raise",
        deliver: str = "dict",
    ) -> Subscription:
        """Attach a subscriber; formats announced before it joined are
        replayed so it can decode the ongoing stream immediately.

        ``on_error`` selects the failure policy for this subscriber:
        ``"raise"`` propagates handler/decode errors to the publisher
        (the historical behaviour), ``"suppress"`` counts them and keeps
        the subscription, ``"detach"`` counts them and unsubscribes the
        offender — either way the other subscribers still get the event.

        ``deliver="view"`` hands the handler
        :class:`~repro.abi.views.RecordView` objects instead of dicts —
        zero-copy for homogeneous publishers, and leased straight out of
        the receive buffer on lend-mode wire ingress
        (:meth:`ingest_many`).  A view handler must not keep a view past
        its return without calling ``view.detach()``.
        """
        if self._cache is not None:
            ctx.use_cache(self._cache)
        if self._format_service is not None and ctx.format_service is None:
            ctx.use_format_service(self._format_service)
        sub = Subscription(
            ctx,
            handler,
            format_name=format_name,
            filter_expr=filter_expr,
            on_error=on_error,
            deliver=deliver,
        )
        self._attach(sub)
        return sub

    def _attach(self, sub: Subscription) -> None:
        """Join a constructed subscription: append + announcement replay."""
        self._subscribers.append(sub)
        try:
            for announcement in self._announcements:
                self._deliver(sub, announcement)
        except Exception:  # "raise" policy during replay: don't half-join
            self._subscribers.remove(sub)
            raise

    def unsubscribe(self, sub: Subscription) -> None:
        self._subscribers.remove(sub)

    def subscribe_durable(
        self,
        ctx: IOContext,
        handler: Callable[[dict[str, Any]], None],
        *,
        cursor_path: str | None = None,
        format_name: str | None = None,
        filter_expr: str | None = None,
        on_error: str = "raise",
        window: int = 1024,
        ack_sink: Callable[[bytes], None] | None = None,
    ):
        """Attach an exactly-once-observed subscriber (see
        :mod:`repro.net.durable`): redelivered sequenced frames are
        absorbed by a dedup window and the ack cursor survives restarts
        when ``cursor_path`` is given.  ``ack_sink`` overrides where
        MSG_ACK frames go (default: back into this channel's listeners)."""
        from .durable import DurableSubscription  # avoid an import cycle

        return DurableSubscription(
            self,
            ctx,
            handler,
            cursor_path=cursor_path,
            format_name=format_name,
            filter_expr=filter_expr,
            on_error=on_error,
            window=window,
            ack_sink=ack_sink,
        )

    # -- ack routing -----------------------------------------------------------

    def add_ack_listener(self, listener: Callable[[bytes], None]) -> None:
        """Register a sink for MSG_ACK frames entering this channel."""
        self._ack_listeners.append(listener)

    def remove_ack_listener(self, listener: Callable[[bytes], None]) -> None:
        if listener in self._ack_listeners:
            self._ack_listeners.remove(listener)

    def route_ack(self, message: bytes) -> None:
        """Hand one MSG_ACK frame to every registered listener."""
        for listener in list(self._ack_listeners):
            listener(message)

    # -- wire attachment -------------------------------------------------------

    def attach_wire(self, send: Callable[[bytes], None]) -> WireTap:
        """Attach a remote peer by its frame sink; replays the
        announcement backlog first so the peer can decode the ongoing
        stream immediately (the wire analogue of :meth:`subscribe`'s
        late-join replay).  A replay failure propagates — don't
        half-join a broken transport."""
        tap = WireTap(send)
        for announcement in self._announcements:
            tap.send(announcement)
            tap.metrics.inc("forwarded")
        self._taps.append(tap)
        return tap

    def detach_wire(self, tap: WireTap) -> None:
        if tap in self._taps:
            self._taps.remove(tap)

    @property
    def tap_count(self) -> int:
        return len(self._taps)

    def ingest(self, message: bytes, *, exclude: WireTap | None = None) -> None:
        """Feed one frame arriving from the wire into the channel.

        Wire ingress is hostile-input territory: frames that are not
        PBIO messages are counted (``channel.frames_rejected``) and
        dropped rather than crashing delivery, and point-to-point
        recovery traffic (``MSG_FORMAT_REQUEST``) is meaningless
        in-channel so it is dropped silently.  ``exclude`` names the
        originating tap, which must not be echoed its own frame.
        """
        header = enc.try_unpack_header(message)
        if header is None:
            self.metrics.inc("channel.frames_rejected")
            return
        if header[0] == enc.MSG_ACK:
            # Point-to-point control flowing *against* the record stream:
            # route to durable publishers listening here, never fan out.
            self.route_ack(bytes(message))
            return
        if header[0] in (enc.MSG_FORMAT_REQUEST, enc.MSG_PING, enc.MSG_PONG):
            return
        self._publish_message(bytes(message), exclude=exclude)

    def ingest_many(
        self, messages, *, lease=None, exclude: WireTap | None = None
    ) -> None:
        """Feed a burst of wire frames into the channel in one pass.

        The batch analogue of :meth:`ingest`: same screening, but
        consecutive data frames fan out through :meth:`_publish_batch`
        (one columnar decode per subscriber per run).  ``lease`` is the
        receive-buffer lease when the frames are borrowed views from
        ``recv_many_leased`` — it is threaded through to ``deliver="view"``
        subscribers, whose views then keep the buffer alive; everything
        any other path retains (announcement replay, wire taps, dict
        decodes) is copied, so the caller may drop the lease as soon as
        this returns.
        """
        run: list = []
        for message in messages:
            header = enc.try_unpack_header(message)
            if header is None:
                self.metrics.inc("channel.frames_rejected")
                continue
            kind = header[0]
            if kind == enc.MSG_ACK:
                if run:
                    self._publish_batch(run, exclude=exclude, lease=lease)
                    run = []
                self.route_ack(bytes(message))
                continue
            if kind in (enc.MSG_FORMAT_REQUEST, enc.MSG_PING, enc.MSG_PONG):
                continue
            if kind in (enc.MSG_DATA, enc.MSG_DATA_SEQ):
                run.append(message)
                continue
            # Announcements: flush the run first so ordering holds, then
            # take the scalar path (replay list wants private bytes).
            if run:
                self._publish_batch(run, exclude=exclude, lease=lease)
                run = []
            self._publish_message(bytes(message), exclude=exclude)
        if run:
            self._publish_batch(run, exclude=exclude, lease=lease)

    def _fan_to_wire(self, message: bytes, exclude: WireTap | None) -> None:
        if not self._taps:
            return
        if not isinstance(message, bytes):
            # Taps may enqueue (async transports): never hand them a
            # borrowed view whose lease can expire before the send.
            message = bytes(message)
        for tap in list(self._taps):
            if tap is exclude:
                continue
            try:
                tap.send(message)
            except TransportError:  # includes WriteQueueFull: slow consumer
                tap.metrics.inc("send_errors")
                tap.metrics.inc("detached")
                self.detach_wire(tap)
            else:
                tap.metrics.inc("forwarded")

    # -- publishing ------------------------------------------------------------

    def publisher(self, ctx: IOContext) -> "ChannelPublisher":
        return ChannelPublisher(self, ctx)

    def _publish_message(self, message: bytes, *, exclude: WireTap | None = None) -> None:
        if enc.message_kind(message) in (enc.MSG_FORMAT, enc.MSG_FORMAT_TOKEN):
            self._announcements.append(message)
        else:
            self.messages_published += 1
        for sub in list(self._subscribers):
            self._deliver(sub, message)
        self._fan_to_wire(message, exclude)

    def _deliver(self, sub: Subscription, message: bytes) -> None:
        """Offer a message to one subscriber under its error policy."""
        try:
            sub._offer(message)
        except Exception:
            if sub.error_policy == "raise":
                raise
            if sub.error_policy == "detach":
                sub.metrics.inc("detached")
                if sub in self._subscribers:
                    self._subscribers.remove(sub)

    def _publish_batch(
        self, batch: list[bytes], *, exclude: WireTap | None = None, lease=None
    ) -> None:
        """Fan a burst of data messages to every subscriber, one batch
        decode per subscriber per run instead of one per message."""
        self.messages_published += len(batch)
        for sub in list(self._subscribers):
            try:
                sub._offer_batch(batch, suppress=sub.error_policy == "suppress", lease=lease)
            except Exception:
                if sub.error_policy == "raise":
                    raise
                # detach: same first-failure semantics as the scalar loop
                sub.metrics.inc("detached")
                if sub in self._subscribers:
                    self._subscribers.remove(sub)
        for message in batch:
            self._fan_to_wire(message, exclude)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)


class ChannelPublisher:
    """Publishing endpoint bound to one IOContext.

    On a channel with a format service, announcements go out as tokens;
    if any ``"raise"``-policy subscriber cannot resolve one (its own
    service is cold and the server unreachable), the publisher falls
    back channel-wide: the token message is withdrawn from the replay
    list and a classic inline announcement is published instead, so
    both current subscribers and late joiners decode identically.
    """

    def __init__(self, channel: EventChannel, ctx: IOContext):
        self.channel = channel
        self.ctx = ctx
        if channel._format_service is not None and ctx.format_service is None:
            ctx.use_format_service(channel._format_service)
        self._announced: set[int] = set()

    def publish_native(self, handle: FormatHandle, native) -> None:
        if handle.format_id not in self._announced:
            self._announce(handle)
            self._announced.add(handle.format_id)
        self.channel._publish_message(self.ctx.encode_native(handle, native))

    def _announce(self, handle: FormatHandle) -> None:
        # Token announcements only on a channel-coordinated service:
        # subscribers share its cache, so resolution is local and cheap.
        if self.channel._format_service is None or self.ctx.format_service is None:
            self.channel._publish_message(self.ctx.announce(handle))
            return
        message = self.ctx.announce_compact(handle)
        try:
            self.channel._publish_message(message)
        except TokenResolutionError:
            try:
                self.channel._announcements.remove(message)
            except ValueError:
                pass
            self.ctx.format_service.note_inline_fallback()
            self.channel._publish_message(self.ctx.announce(handle))

    def publish(self, handle: FormatHandle, record: dict[str, Any]) -> None:
        self.publish_native(handle, handle.codec.encode(record))

    def publish_native_batch(self, handle: FormatHandle, natives) -> None:
        """Publish many native-form records as one burst: the channel
        fans the whole batch to each subscriber, whose consecutive-frame
        runs decode through one columnar converter call."""
        if handle.format_id not in self._announced:
            self._announce(handle)
            self._announced.add(handle.format_id)
        encode = self.ctx.encode_native
        self.channel._publish_batch([encode(handle, n) for n in natives])

    def publish_batch(self, handle: FormatHandle, records) -> None:
        """Publish many value dicts as one burst."""
        codec = handle.codec
        self.publish_native_batch(handle, [codec.encode(r) for r in records])
